"""Quickstart: index trajectories and run both similarity searches.

Run:  python examples/quickstart.py
"""

from repro import TraSS, TraSSConfig, Trajectory, SpaceBounds
from repro.data.generators import TDRIVE_BOUNDS, tdrive_like


def main() -> None:
    # 1. Build a TraSS engine.  The config mirrors the paper's defaults:
    #    XZ* maximum resolution 16, Douglas-Peucker tolerance 0.01,
    #    discrete Fréchet as the similarity measure, 8 salt shards.
    config = TraSSConfig(
        bounds=TDRIVE_BOUNDS,  # index space for Beijing-area data
        max_resolution=16,
        dp_tolerance=0.01,
        shards=8,
    )
    trajectories = tdrive_like(500, seed=7)
    engine = TraSS.build(trajectories, config)
    print(f"indexed {len(engine)} trajectories "
          f"({engine.store.table.num_regions} region(s))")

    # 2. Threshold similarity search (Definition 3): everything within
    #    eps of the query under discrete Fréchet.
    query = trajectories[42]
    result = engine.threshold_search(query, eps=0.02)
    print(f"\nthreshold search around {query.tid} (eps=0.02):")
    for tid, dist in sorted(result.answers.items(), key=lambda kv: kv[1])[:5]:
        print(f"  {tid:<12} distance {dist:.5f}")
    print(f"  ... {len(result.answers)} answers from "
          f"{result.candidates} candidates "
          f"({result.retrieved_rows} rows scanned)")

    # 3. Top-k similarity search (Definition 4): the k nearest
    #    trajectories, found best-first.
    top = engine.topk_search(query, k=5)
    print(f"\ntop-5 most similar to {query.tid}:")
    for dist, tid in top.answers:
        print(f"  {tid:<12} distance {dist:.5f}")

    # 4. Other measures (Section VII) without rebuilding the store.
    hausdorff_hits = engine.threshold_search(query, 0.02, measure="hausdorff")
    dtw_hits = engine.threshold_search(query, 0.5, measure="dtw")
    print(f"\nHausdorff (eps=0.02): {len(hausdorff_hits.answers)} answers; "
          f"DTW (eps=0.5): {len(dtw_hits.answers)} answers")


if __name__ == "__main__":
    main()
