"""Spatial range query on the XZ* index.

The paper's conclusion notes that "XZ* index supports spatial range
query" — this example exercises that path: find every lorry that
entered a city's bounding box, entirely through index-range scans.

Run:  python examples/range_query.py
"""

from repro import MBR, TraSS, TraSSConfig
from repro.data.generators import LORRY_BOUNDS, lorry_like

#: rough bounding boxes of three metro areas
CITIES = {
    "Beijing": MBR(115.9, 39.5, 116.9, 40.3),
    "Shanghai": MBR(120.9, 30.8, 121.9, 31.6),
    "Chengdu": MBR(103.6, 30.1, 104.6, 31.0),
}


def main() -> None:
    config = TraSSConfig(
        bounds=LORRY_BOUNDS, max_resolution=16, dp_tolerance=0.01, shards=8
    )
    lorries = lorry_like(600, seed=41)
    engine = TraSS.build(lorries, config)
    print(f"indexed {len(engine)} lorry routes across China")

    for city, window in CITIES.items():
        engine.metrics.reset()
        tids = engine.range_query(window)
        scanned = engine.metrics.rows_scanned
        print(
            f"\n{city}: {len(tids)} routes touched the metro box "
            f"({scanned} rows scanned of {len(engine)})"
        )
        for tid in tids[:5]:
            print(f"  {tid}")

        # Verify against a linear sweep — the index must not miss any.
        expected = sorted(
            t.tid
            for t in lorries
            if any(window.contains_point(x, y) for x, y in t.points)
        )
        assert tids == expected, f"range query mismatch for {city}"

    print("\nall range-query results verified against a linear sweep")


if __name__ == "__main__":
    main()
