"""Close-contact discovery — the paper's motivating example.

"To find the close contacts of a patient with an infectious disease, we
would look for trajectories that are similar to the patient's
trajectory" (Section I).  This example indexes a city's worth of
movement traces, then finds every trace that stayed uniformly close to
a patient's trace, grading contacts by how tight the bound is.

Run:  python examples/contact_tracing.py
"""

from repro import TraSS, TraSSConfig, Trajectory
from repro.data.generators import TDRIVE_BOUNDS, tdrive_like

#: roughly 200m / 1km in degrees at Beijing's latitude
CLOSE_CONTACT_EPS = 0.002
LOOSE_CONTACT_EPS = 0.01


def main() -> None:
    config = TraSSConfig(
        bounds=TDRIVE_BOUNDS, max_resolution=16, dp_tolerance=0.005, shards=8
    )
    population = tdrive_like(800, seed=23)
    engine = TraSS.build(population, config)
    print(f"indexed {len(engine)} movement traces")

    # The patient's trace: a real trajectory plus GPS noise, so it is
    # close to its source but not identical.
    source = population[17]
    patient = Trajectory(
        "patient-0",
        [(x + 0.0004, y - 0.0003) for x, y in source.points],
    )

    # Discrete Fréchet requires the *whole* trace to stay within eps —
    # exactly the "moved together" semantics contact tracing wants
    # (unlike a range query, which a single shared point satisfies).
    close = engine.threshold_search(patient, CLOSE_CONTACT_EPS)
    loose = engine.threshold_search(patient, LOOSE_CONTACT_EPS)

    print(f"\nclose contacts (within {CLOSE_CONTACT_EPS} deg ~ 200 m):")
    for tid, dist in sorted(close.answers.items(), key=lambda kv: kv[1]):
        print(f"  {tid:<12} max separation {dist:.5f} deg")

    secondary = sorted(set(loose.answers) - set(close.answers))
    print(f"\nsecondary ring (within {LOOSE_CONTACT_EPS} deg ~ 1 km): "
          f"{len(secondary)} traces")
    for tid in secondary[:8]:
        print(f"  {tid}")

    print(
        f"\npruning did the work: {close.retrieved_rows} of "
        f"{len(engine)} rows scanned for the close ring, "
        f"{close.candidates} candidates survived local filtering, "
        f"precision {close.precision:.2f}"
    )
    assert source.tid in close.answers, "the noisy source must be found"


if __name__ == "__main__":
    main()
