"""Carpool candidate clustering — the paper's second motivating use.

"Trajectory similarity search is also conducive to carpooling
trajectory clustering" (Section I).  We synthesise commuters whose
trips follow a handful of corridors, then greedily cluster them with
repeated top-k searches: each unassigned commuter seeds a cluster and
pulls in its nearest unassigned neighbours while they stay within a
carpool-worthy distance.

Run:  python examples/carpool_clustering.py
"""

import random

from repro import TraSS, TraSSConfig, Trajectory
from repro.data.generators import TDRIVE_BOUNDS

#: max Fréchet separation (degrees) for two commutes to share a car
CARPOOL_EPS = 0.008
NUM_COMMUTERS = 240
NUM_CORRIDORS = 6


def synth_commuters(seed: int) -> list:
    """Commuters following shared home->work corridors with noise."""
    rng = random.Random(seed)
    corridors = []
    for _ in range(NUM_CORRIDORS):
        hx = rng.uniform(116.0, 117.0)
        hy = rng.uniform(39.6, 40.4)
        wx = hx + rng.uniform(-0.15, 0.15)
        wy = hy + rng.uniform(-0.15, 0.15)
        corridors.append(((hx, hy), (wx, wy)))
    commuters = []
    for i in range(NUM_COMMUTERS):
        (hx, hy), (wx, wy) = corridors[rng.randrange(NUM_CORRIDORS)]
        ox, oy = rng.gauss(0, 0.002), rng.gauss(0, 0.002)
        points = []
        for j in range(20):
            t = j / 19
            points.append(
                (
                    hx + t * (wx - hx) + ox + rng.gauss(0, 0.0005),
                    hy + t * (wy - hy) + oy + rng.gauss(0, 0.0005),
                )
            )
        commuters.append(Trajectory(f"commuter{i}", points))
    return commuters


def main() -> None:
    commuters = synth_commuters(seed=31)
    config = TraSSConfig(
        bounds=TDRIVE_BOUNDS, max_resolution=16, dp_tolerance=0.003, shards=8
    )
    engine = TraSS.build(commuters, config)
    print(f"indexed {len(engine)} commuter trips")

    unassigned = {t.tid: t for t in commuters}
    clusters = []
    while unassigned:
        seed_tid, seed_traj = next(iter(unassigned.items()))
        # Pull the nearest trips; keep those close enough to share a car
        # and not already clustered.
        result = engine.topk_search(seed_traj, k=min(40, len(commuters)))
        members = [seed_tid]
        for dist, tid in result.answers:
            if tid == seed_tid or tid not in unassigned:
                continue
            if dist > CARPOOL_EPS:
                break  # answers are ascending: nothing closer remains
            members.append(tid)
        for tid in members:
            unassigned.pop(tid, None)
        clusters.append(members)

    clusters.sort(key=len, reverse=True)
    pooled = sum(len(c) for c in clusters if len(c) > 1)
    print(f"\nformed {len(clusters)} clusters; "
          f"{pooled}/{len(commuters)} commuters can carpool")
    for rank, members in enumerate(clusters[:NUM_CORRIDORS], start=1):
        print(f"  cluster {rank}: {len(members)} trips "
              f"(e.g. {', '.join(members[:4])})")

    # With corridor-structured trips, the big clusters should roughly
    # recover the corridors.
    assert len(clusters[0]) > NUM_COMMUTERS / NUM_CORRIDORS / 2


if __name__ == "__main__":
    main()
