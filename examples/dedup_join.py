"""Near-duplicate detection with a similarity join.

Fleet GPS archives accumulate near-duplicate traces (re-uploads, twin
devices, resampled exports).  A trajectory similarity *join* — every
pair within ``eps`` — finds them in one pass over the index, instead of
comparing all n^2 pairs.

Run:  python examples/dedup_join.py
"""

import random

from repro import TraSS, TraSSConfig, Trajectory
from repro.core.join import similarity_join
from repro.data.generators import TDRIVE_BOUNDS, tdrive_like

DUP_EPS = 0.001  # ~100 m: tighter than any two distinct trips


def main() -> None:
    rng = random.Random(53)
    originals = tdrive_like(300, seed=53)

    # Plant near-duplicates: resampled/noisy copies of some trips.
    corpus = list(originals)
    planted = []
    for source in rng.sample(originals, 25):
        copy = Trajectory(
            f"{source.tid}_dup",
            [
                (x + rng.gauss(0, 0.0002), y + rng.gauss(0, 0.0002))
                for x, y in source.points
            ],
        )
        corpus.append(copy)
        planted.append((source.tid, copy.tid))

    config = TraSSConfig(
        bounds=TDRIVE_BOUNDS, max_resolution=16, dp_tolerance=0.005, shards=8
    )
    engine = TraSS.build(corpus, config)
    print(f"indexed {len(engine)} traces ({len(planted)} planted duplicates)")

    result = similarity_join(engine, DUP_EPS)
    print(
        f"\njoin found {len(result.pairs)} near-duplicate pairs in "
        f"{result.total_seconds:.2f}s "
        f"({result.rows_scanned} rows scanned across all probes, "
        f"vs {len(corpus) * (len(corpus) - 1) // 2} brute-force pairs)"
    )

    found = {(a, b) if a < b else (b, a) for a, b in result.pairs}
    planted_keys = {(a, b) if a < b else (b, a) for a, b in planted}
    recovered = planted_keys & found
    print(f"planted duplicates recovered: {len(recovered)}/{len(planted)}")
    for a, b in sorted(found - planted_keys)[:5]:
        print(f"  organic near-duplicate: {a} ~ {b}")

    assert len(recovered) == len(planted), "every planted duplicate is found"


if __name__ == "__main__":
    main()
