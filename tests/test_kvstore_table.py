"""Unit tests for regions and the table facade."""

import random

import pytest

from repro.exceptions import KVStoreError, RegionError
from repro.kvstore.filters import (
    AcceptAllFilter,
    ConjunctionFilter,
    PredicateFilter,
    PrefixFilter,
)
from repro.kvstore.region import Region
from repro.kvstore.table import KVTable, ScanRange


class TestRegion:
    def test_ownership(self):
        r = Region(b"b", b"d")
        assert r.owns(b"b")
        assert r.owns(b"c")
        assert not r.owns(b"d")
        assert not r.owns(b"a")

    def test_open_ended(self):
        r = Region(None, None)
        assert r.owns(b"")
        assert r.owns(b"\xff\xff")

    def test_misrouted_put_raises(self):
        r = Region(b"b", b"d")
        with pytest.raises(RegionError):
            r.put(b"a", b"1")

    def test_split(self):
        r = Region(None, None)
        for i in range(10):
            r.put(f"k{i}".encode(), b"v")
        left, right = r.split()
        assert left.end_key == right.start_key
        assert left.row_count + right.row_count == 10
        for i in range(10):
            key = f"k{i}".encode()
            owner = left if left.owns(key) else right
            assert owner.get(key) == b"v"

    def test_split_too_small_raises(self):
        r = Region(None, None)
        r.put(b"only", b"v")
        with pytest.raises(RegionError):
            r.split()

    def test_scan_respects_region_bounds(self):
        r = Region(b"b", b"d")
        r.put(b"b1", b"v")
        r.put(b"c1", b"v")
        assert [k for k, _ in r.scan(None, None)] == [b"b1", b"c1"]

    def test_row_count_tracks_overwrites_and_deletes(self):
        r = Region(None, None)
        r.put(b"a", b"1")
        r.put(b"a", b"2")
        assert r.row_count == 1
        r.delete(b"a")
        assert r.row_count == 0


class TestKVTable:
    def test_put_get(self):
        t = KVTable()
        t.put(b"a", b"1")
        assert t.get(b"a") == b"1"
        assert t.get(b"b") is None
        assert t.metrics.puts == 1
        assert t.metrics.gets == 2

    def test_auto_split(self):
        t = KVTable(max_region_rows=10)
        for i in range(100):
            t.put(f"key{i:03d}".encode(), b"v")
        assert t.num_regions > 1
        assert t.row_count == 100
        # Every key still readable after splits.
        for i in range(100):
            assert t.get(f"key{i:03d}".encode()) == b"v"

    def test_scan_across_regions(self):
        t = KVTable(max_region_rows=8)
        keys = [f"key{i:03d}".encode() for i in range(50)]
        for key in keys:
            t.put(key, key)
        got = [k for k, _ in t.scan()]
        assert got == keys  # global order preserved across regions

    def test_scan_range(self):
        t = KVTable(max_region_rows=8)
        for i in range(50):
            t.put(f"key{i:03d}".encode(), b"v")
        got = [k for k, _ in t.scan(b"key010", b"key015")]
        assert got == [f"key{i:03d}".encode() for i in range(10, 15)]

    def test_scan_counts_rejected_rows_as_io(self):
        """The Figure 11 distinction: rows the filter rejects still cost
        scan I/O."""
        t = KVTable()
        for i in range(20):
            t.put(f"key{i:03d}".encode(), b"even" if i % 2 == 0 else b"odd")
        keep_even = PredicateFilter(lambda k, v: v == b"even")
        rows = list(t.scan(None, None, keep_even))
        assert len(rows) == 10
        assert t.metrics.rows_scanned == 20
        assert t.metrics.rows_returned == 10
        assert t.metrics.filter_rejections == 10

    def test_scan_ranges_multi(self):
        t = KVTable()
        for i in range(30):
            t.put(f"key{i:03d}".encode(), b"v")
        ranges = [
            ScanRange(b"key000", b"key003"),
            ScanRange(b"key020", b"key022"),
        ]
        got = [k for k, _ in t.scan_ranges(ranges)]
        assert got == [b"key000", b"key001", b"key002", b"key020", b"key021"]
        assert t.metrics.range_seeks == 2

    def test_delete(self):
        t = KVTable()
        t.put(b"a", b"1")
        t.delete(b"a")
        assert t.get(b"a") is None

    def test_empty_scan_range_rejected(self):
        with pytest.raises(KVStoreError):
            ScanRange(b"b", b"a")

    def test_region_routing_after_many_splits(self):
        rng = random.Random(5)
        t = KVTable(max_region_rows=16)
        model = {}
        for _ in range(500):
            key = f"{rng.randrange(10**6):06d}".encode()
            value = str(rng.random()).encode()
            t.put(key, value)
            model[key] = value
        assert t.num_regions > 4
        assert dict(t.full_scan()) == model

    def test_flush_and_compact_preserve_data(self):
        t = KVTable(max_region_rows=20)
        for i in range(60):
            t.put(f"key{i:03d}".encode(), b"v")
        t.flush_all()
        t.compact_all()
        assert t.row_count == 60
        assert len(list(t.full_scan())) == 60


class TestFilters:
    def test_accept_all(self):
        assert AcceptAllFilter().accept(b"k", b"v")

    def test_prefix(self):
        f = PrefixFilter(b"ab")
        assert f.accept(b"abc", b"")
        assert not f.accept(b"ba", b"")

    def test_conjunction_short_circuits(self):
        calls = []

        def tracking(result):
            def predicate(k, v):
                calls.append(result)
                return result

            return PredicateFilter(predicate)

        f = ConjunctionFilter([tracking(False), tracking(True)])
        assert not f.accept(b"k", b"v")
        assert calls == [False]
