"""Unit tests for the bloom filter."""

import random

import pytest

from repro.exceptions import KVStoreError
from repro.kvstore.bloom import BloomFilter


class TestBloomFilter:
    def test_no_false_negatives(self):
        bf = BloomFilter(expected_items=500)
        keys = [f"key{i}".encode() for i in range(500)]
        for key in keys:
            bf.add(key)
        assert all(bf.might_contain(key) for key in keys)

    def test_false_positive_rate_reasonable(self):
        bf = BloomFilter(expected_items=1000, false_positive_rate=0.01)
        for i in range(1000):
            bf.add(f"member{i}".encode())
        rng = random.Random(1)
        false_hits = sum(
            bf.might_contain(f"absent{rng.random()}".encode()) for _ in range(5000)
        )
        # Allow generous slack over the 1% design point.
        assert false_hits / 5000 < 0.05

    def test_empty_filter_rejects(self):
        bf = BloomFilter(expected_items=10)
        assert not bf.might_contain(b"anything")

    def test_parameter_validation(self):
        with pytest.raises(KVStoreError):
            BloomFilter(expected_items=0)
        with pytest.raises(KVStoreError):
            BloomFilter(expected_items=10, false_positive_rate=1.5)

    def test_saturation_grows(self):
        bf = BloomFilter(expected_items=100)
        assert bf.saturation == 0.0
        for i in range(100):
            bf.add(str(i).encode())
        assert 0.0 < bf.saturation < 1.0

    def test_serialisation_roundtrip(self):
        bf = BloomFilter(expected_items=50)
        for i in range(50):
            bf.add(f"k{i}".encode())
        restored = BloomFilter.from_bytes(bf.to_bytes())
        assert restored.num_bits == bf.num_bits
        assert restored.num_hashes == bf.num_hashes
        assert all(restored.might_contain(f"k{i}".encode()) for i in range(50))

    def test_truncated_serialisation_raises(self):
        with pytest.raises(KVStoreError):
            BloomFilter.from_bytes(b"short")
