"""Unit tests for row-key encodings (Section IV-E, Figure 13(c))."""

import random

import pytest

from repro.exceptions import KVStoreError
from repro.kvstore.rowkey import (
    VALUE_WIDTH,
    decode_rowkey,
    decode_string_rowkey,
    encode_rowkey,
    encode_string_rowkey,
    rowkey_range,
    shard_of,
)


class TestIntegerKeys:
    def test_roundtrip(self):
        key = encode_rowkey(3, 123456789, "taxi42")
        assert decode_rowkey(key) == (3, 123456789, "taxi42")

    def test_layout(self):
        key = encode_rowkey(7, 1, "x")
        assert key[0] == 7
        assert len(key) == 1 + VALUE_WIDTH + 1

    def test_byte_order_equals_numeric_order(self):
        """Big-endian packing: the property every range scan relies on."""
        rng = random.Random(1)
        values = sorted(rng.randrange(2**62) for _ in range(200))
        keys = [encode_rowkey(0, v, "") for v in values]
        assert keys == sorted(keys)

    def test_shard_prefix_dominates(self):
        low_shard = encode_rowkey(0, 2**60, "z")
        high_shard = encode_rowkey(1, 0, "a")
        assert low_shard < high_shard

    def test_range(self):
        start, stop = rowkey_range(2, 100, 200)
        assert start < encode_rowkey(2, 100, "any") < stop
        assert start < encode_rowkey(2, 199, "zzz") < stop
        assert not start <= encode_rowkey(2, 200, "") < stop

    def test_validation(self):
        with pytest.raises(KVStoreError):
            encode_rowkey(300, 0, "a")
        with pytest.raises(KVStoreError):
            encode_rowkey(0, -1, "a")
        with pytest.raises(KVStoreError):
            rowkey_range(0, 5, 5)
        with pytest.raises(KVStoreError):
            decode_rowkey(b"short")


class TestStringKeys:
    def test_roundtrip(self):
        key = encode_string_rowkey(4, "0312", 7, "lorry9")
        assert decode_string_rowkey(key) == (4, "0312", 7, "lorry9")

    def test_string_keys_cost_about_double_at_r16(self):
        """Figure 13(c): string keys ~2x the integer key bytes."""
        int_key = encode_rowkey(0, 123, "t1")
        str_key = encode_string_rowkey(0, "0" * 16, 5, "t1")
        ratio = len(str_key) / len(int_key)
        assert 1.5 < ratio < 2.5

    def test_code_validation(self):
        with pytest.raises(KVStoreError):
            encode_string_rowkey(0, "01", 11, "t")

    def test_malformed_rejected(self):
        with pytest.raises(KVStoreError):
            decode_string_rowkey(b"\x00no-separators")


class TestSharding:
    def test_deterministic(self):
        assert shard_of("taxi1", 8) == shard_of("taxi1", 8)

    def test_spread(self):
        counts = [0] * 8
        for i in range(4000):
            counts[shard_of(f"t{i}", 8)] += 1
        # Roughly uniform: no shard below half or above double the mean.
        assert min(counts) > 250
        assert max(counts) < 1000

    def test_in_range(self):
        for shards in (1, 3, 16):
            for i in range(100):
                assert 0 <= shard_of(f"x{i}", shards) < shards

    def test_validation(self):
        with pytest.raises(KVStoreError):
            shard_of("a", 0)
