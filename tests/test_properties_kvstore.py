"""Property-based tests for the durability layer (WAL, persistence)."""

import os

from hypothesis import given, settings, strategies as st

from repro.kvstore.persistence import DurableKVTable, load_table, save_table
from repro.kvstore.table import KVTable
from repro.kvstore.wal import OP_DELETE, OP_PUT, WriteAheadLog

keys = st.binary(min_size=1, max_size=8)
values = st.binary(min_size=0, max_size=12)
wal_ops = st.lists(
    st.tuples(st.sampled_from(["put", "delete"]), keys, values), max_size=40
)


@given(wal_ops)
@settings(max_examples=100, deadline=None)
def test_wal_replay_reproduces_history(tmp_path_factory, operations):
    path = str(tmp_path_factory.mktemp("wal") / "wal.log")
    with WriteAheadLog(path) as wal:
        for op, key, value in operations:
            if op == "put":
                wal.append_put(key, value)
            else:
                wal.append_delete(key)
        wal.flush()
    replayed = WriteAheadLog.replay(path)
    expected = [
        (OP_PUT, k, v) if op == "put" else (OP_DELETE, k, b"")
        for op, k, v in operations
    ]
    assert replayed == expected


@given(wal_ops, st.integers(min_value=1, max_value=200))
@settings(max_examples=60, deadline=None)
def test_wal_any_truncation_yields_a_prefix(tmp_path_factory, operations, cut):
    """Chopping arbitrarily many bytes off the tail must yield a clean
    prefix of the history — the crash-recovery guarantee."""
    path = str(tmp_path_factory.mktemp("wal") / "wal.log")
    with WriteAheadLog(path) as wal:
        for op, key, value in operations:
            if op == "put":
                wal.append_put(key, value)
            else:
                wal.append_delete(key)
        wal.flush()
    data = open(path, "rb").read()
    open(path, "wb").write(data[: max(0, len(data) - cut)])
    replayed = WriteAheadLog.replay(path)
    expected = [
        (OP_PUT, k, v) if op == "put" else (OP_DELETE, k, b"")
        for op, k, v in operations
    ]
    assert replayed == expected[: len(replayed)]
    assert len(replayed) <= len(expected)


table_ops = st.lists(
    st.tuples(
        st.sampled_from(["put", "delete", "checkpoint"]),
        st.integers(min_value=0, max_value=12),
        values,
    ),
    max_size=30,
)


@given(table_ops)
@settings(max_examples=50, deadline=None)
def test_durable_table_recovery_matches_model(tmp_path_factory, operations):
    """After any operation sequence (with interleaved checkpoints), a
    reload from disk must equal the dict model."""
    directory = str(tmp_path_factory.mktemp("durable"))
    durable = DurableKVTable(KVTable(), directory)
    model = {}
    for op, key_id, value in operations:
        key = f"k{key_id:02d}".encode()
        if op == "put":
            durable.put(key, value)
            model[key] = value
        elif op == "delete":
            durable.delete(key)
            model.pop(key, None)
        else:
            durable.checkpoint()
    durable.close()
    # Never checkpointed => no manifest, but the WAL alone recovers the
    # full history; with a manifest it is snapshot + WAL-tail replay.
    # Either way the reload must equal the dict model.
    restored = load_table(directory)
    assert dict(restored.full_scan()) == model


@given(
    st.dictionaries(keys, values, max_size=40),
    st.integers(min_value=2, max_value=10),
)
@settings(max_examples=50, deadline=None)
def test_save_load_roundtrip_any_region_layout(
    tmp_path_factory, contents, max_region_rows
):
    directory = str(tmp_path_factory.mktemp("tbl"))
    table = KVTable(max_region_rows=max_region_rows)
    for key, value in contents.items():
        table.put(key, value)
    save_table(table, directory)
    restored = load_table(directory)
    assert dict(restored.full_scan()) == contents
