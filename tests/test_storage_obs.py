"""Storage-engine telemetry: LSM/SSTable/WAL counters, the key-space
heatmap, per-region scan stats, the advisor and the registry surface.

The invariants pinned here (DESIGN.md §9):

* telemetry off → **byte-identical answers and IOMetrics totals** (the
  telemetry layer never writes into the I/O accounting);
* parallel and sequential execution record identical telemetry (the
  worker-sink merge is exact);
* heat is keyed by the fixed key space, so region splits and
  compactions can neither double-count nor orphan it — region
  attribution always sums to the total;
* the advisor's recommendations cite the metric values that triggered
  them.
"""

import json
import random

import pytest

from repro import SpaceBounds, TraSS, TraSSConfig, Trajectory
from repro.kvstore.lsm import LSMStore
from repro.kvstore.metrics import SEEK_DEPTH_BUCKETS, FixedBucketCounts
from repro.kvstore.rowkey import shard_of
from repro.kvstore.sstable import SSTable
from repro.kvstore.wal import WriteAheadLog
from repro.obs.advisor import (
    HOT_REGION_SHARE,
    SALT_SKEW_RATIO,
    diagnose,
    report_json,
)
from repro.obs.heatmap import (
    KeySpaceHeatmap,
    heatmap_json,
    key_space_boundaries,
    render_heatmap,
)
from repro.obs.registry import parse_prometheus

BOUNDS = SpaceBounds(0.0, 0.0, 10.0, 10.0)


def make_walk(tid, rng, cx=None, cy=None, n=6, spread=0.01):
    x = cx if cx is not None else rng.uniform(0.5, 9.5)
    y = cy if cy is not None else rng.uniform(0.5, 9.5)
    points = [(x, y)]
    for _ in range(n - 1):
        x += rng.uniform(-spread, spread)
        y += rng.uniform(-spread, spread)
        points.append((x, y))
    return Trajectory(tid, points)


def small_config(**overrides):
    base = dict(
        max_resolution=8,
        bounds=BOUNDS,
        shards=4,
        dp_tolerance=0.005,
        max_region_rows=40,
    )
    base.update(overrides)
    return TraSSConfig(**base)


def build_engine(n=150, seed=3, **overrides):
    rng = random.Random(seed)
    trajectories = [make_walk(f"t{i}", rng) for i in range(n)]
    return TraSS.build(trajectories, small_config(**overrides)), trajectories


# ----------------------------------------------------------------------
# LSM / SSTable / WAL counters
# ----------------------------------------------------------------------
class TestStorageCounters:
    def test_fixed_bucket_counts(self):
        hist = FixedBucketCounts((1, 2, 4))
        for v in (1, 1, 2, 3, 9):
            hist.observe(v)
        assert hist.count == 5
        assert hist.sum == 16
        assert hist.counts == [2, 1, 1, 1]
        other = FixedBucketCounts((1, 2, 4))
        other.observe(2)
        hist.merge_from(other)
        assert hist.count == 6 and hist.counts[1] == 2
        with pytest.raises(ValueError):
            hist.merge_from(FixedBucketCounts((1, 2)))

    def test_seek_depth_tracks_structures_consulted(self):
        store = LSMStore(flush_threshold=10**9)
        store.put(b"a", b"1")
        store.flush()
        store.put(b"b", b"2")
        store.flush()
        # 'b' is in the newest run: memtable (1) + first table (2).
        assert store.get(b"b") == b"2"
        # 'a' is one run deeper: depth 3.
        assert store.get(b"a") == b"1"
        # miss consults everything: depth 3.
        assert store.get(b"zz") is None
        assert store.gets == 3
        assert store.seek_depth_total == 2 + 3 + 3
        assert store.seek_depth_hist.count == 3

    def test_flush_and_compaction_byte_accounting(self):
        store = LSMStore(flush_threshold=10**9, compaction_trigger=2)
        store.put(b"a", b"x" * 50)
        store.flush()
        assert store.flush_count == 1
        assert store.flush_bytes > 50
        assert store.flush_duration_hist.count == 1
        store.put(b"b", b"y" * 50)
        store.flush()  # second run trips the trigger
        assert store.compaction_count == 1
        assert store.compaction_bytes > 100
        assert store.compaction_duration_hist.count == 1

    def test_sstable_bloom_counters(self):
        run = SSTable.from_entries([(b"k%03d" % i, b"v") for i in range(50)])
        assert run.get(b"k001") == b"v"
        misses = 0
        for i in range(200, 400):
            if run.get(b"m%03d" % i) is None:
                misses += 1
        assert misses == 200
        assert run.reads == 201
        # Every miss was either bloom-filtered or a false positive.
        assert run.bloom_negatives + run.bloom_false_positives == 200
        assert run.bloom_negatives > 0

    def test_wal_append_and_fsync_counters(self, tmp_path):
        before = dict(WriteAheadLog.totals)
        with WriteAheadLog(str(tmp_path / "wal"), sync=True) as wal:
            wal.append_put(b"k", b"v")
            wal.append_delete(b"k")
            assert wal.appends == 2
            assert wal.fsyncs == 2  # sync=True fsyncs per append
            assert wal.bytes_appended > 0
        assert WriteAheadLog.totals["appends"] == before["appends"] + 2
        assert WriteAheadLog.totals["fsyncs"] >= before["fsyncs"] + 2


# ----------------------------------------------------------------------
# Telemetry parity and equivalence
# ----------------------------------------------------------------------
class TestTelemetryParity:
    def test_telemetry_off_identical_answers_and_io(self):
        rng = random.Random(11)
        trajectories = [make_walk(f"t{i}", rng) for i in range(120)]
        queries = trajectories[:15]
        answers = {}
        snapshots = {}
        for enabled in (True, False):
            engine = TraSS.build(
                trajectories, small_config(storage_telemetry=enabled)
            )
            got = []
            for q in queries:
                t = engine.threshold_search(q, 0.05)
                k = engine.topk_search(q, 5)
                got.append((sorted(t.answers.items()), k.answers))
            answers[enabled] = got
            snapshots[enabled] = engine.metrics.snapshot()
        assert answers[True] == answers[False]
        assert snapshots[True] == snapshots[False]
        # And the disabled engine really has no telemetry attached.
        engine = TraSS.build(
            trajectories[:5], small_config(storage_telemetry=False)
        )
        assert engine.storage_telemetry is None
        assert engine.workload_recorder is None

    def test_parallel_matches_sequential_telemetry(self):
        rng = random.Random(5)
        trajectories = [make_walk(f"t{i}", rng) for i in range(150)]
        queries = trajectories[:10]

        def run(workers):
            engine = TraSS.build(
                trajectories, small_config(scan_workers=workers)
            )
            for q in queries:
                engine.threshold_search(q, 0.05)
            tel = engine.storage_telemetry
            return (
                tel.heatmap.heat,
                tel.heatmap.rows,
                {
                    rid: (s.rows_scanned, s.rows_returned, s.bytes_read)
                    for rid, s in tel.regions.items()
                },
            )

        heat_seq, rows_seq, _ = run(1)
        heat_par, rows_par, _ = run(4)
        assert rows_seq == rows_par
        for a, b in zip(heat_seq, heat_par):
            assert a == pytest.approx(b)

    def test_region_stats_read_amplification(self):
        engine, trajectories = build_engine()
        for q in trajectories[:10]:
            engine.threshold_search(q, 0.05)
        tel = engine.storage_telemetry
        totals = tel.totals()
        io = engine.metrics.snapshot()
        # Telemetry's per-region tallies agree with IOMetrics exactly.
        assert totals["rows_scanned"] == io["rows_scanned"]
        assert totals["rows_returned"] == io["rows_returned"]
        for stats in tel.regions.values():
            if stats.rows_returned:
                assert stats.read_amplification == pytest.approx(
                    stats.rows_scanned / stats.rows_returned
                )


# ----------------------------------------------------------------------
# Heatmap: decay, attribution, generation safety
# ----------------------------------------------------------------------
class TestHeatmap:
    def test_boundaries_cover_all_shards(self):
        engine, _ = build_engine(n=20)
        boundaries = key_space_boundaries(engine.store, 8)
        shards = {b[0] for b in boundaries}
        assert shards == set(range(4))

    def test_record_and_decay(self):
        heatmap = KeySpaceHeatmap([b"\x01", b"\x02"], half_life=1.0)
        heatmap.record(b"\x00")
        heatmap.record(b"\x01")
        heatmap.record(b"\x03")
        assert heatmap.rows == [1, 1, 1]
        assert heatmap.total_heat == pytest.approx(3.0)
        heatmap.advance_tick()
        # half-life 1 → one tick halves the heat; lifetime rows persist.
        assert heatmap.total_heat == pytest.approx(1.5)
        assert heatmap.total_rows == 3

    def test_spawn_merge_equals_direct(self):
        heatmap = KeySpaceHeatmap([b"\x01", b"\x02"])
        child = heatmap.spawn()
        child.record(b"\x00")
        child.record(b"\x01\x05")
        heatmap.merge_from(child)
        assert heatmap.rows == [1, 1, 0]
        assert heatmap.total_heat == pytest.approx(2.0)

    def test_split_conserves_heat_no_double_count_no_orphan(self):
        """The generation-safety regression: split a hot region
        mid-workload and the region attribution still sums exactly to
        the recorded heat — nothing duplicated onto the daughters,
        nothing stranded on the retired parent."""
        engine, trajectories = build_engine(
            n=39, max_region_rows=100_000  # one region, no auto-split yet
        )
        for q in trajectories[:12]:
            engine.threshold_search(q, 0.05)
        tel = engine.storage_telemetry
        total_before = tel.heatmap.total_heat
        table = engine.store.table
        assert table.num_regions == 1
        attributed = sum(h for _, h in tel.heatmap.region_heat(table))
        assert attributed == pytest.approx(total_before)

        # Force the hot region to split mid-workload.
        table.max_region_rows = 10
        engine.add(make_walk("fresh", random.Random(99)))
        assert table.num_regions >= 2

        # Same heat, now distributed over the daughters: conserved.
        attributed = sum(h for _, h in tel.heatmap.region_heat(table))
        assert attributed == pytest.approx(tel.heatmap.total_heat)
        # More queries keep recording into the same fixed buckets.
        engine.threshold_search(trajectories[0], 0.05)
        attributed = sum(h for _, h in tel.heatmap.region_heat(table))
        assert attributed == pytest.approx(tel.heatmap.total_heat)

    def test_compaction_does_not_touch_heat(self):
        engine, trajectories = build_engine(n=60)
        for q in trajectories[:8]:
            engine.threshold_search(q, 0.05)
        heat_before = list(engine.storage_telemetry.heatmap.heat)
        engine.store.table.flush_all()
        engine.store.table.compact_all()
        assert engine.storage_telemetry.heatmap.heat == heat_before

    def test_render_and_json(self):
        engine, trajectories = build_engine(n=80)
        for q in trajectories[:10]:
            engine.threshold_search(q, 0.05)
        tel = engine.storage_telemetry
        text = render_heatmap(tel.heatmap, engine.store.table, 4)
        assert "key-space heatmap" in text
        assert "shard   0" in text
        payload = heatmap_json(tel.heatmap, engine.store.table)
        json.dumps(payload)  # serialisable
        assert payload["total_rows"] == tel.heatmap.total_rows
        assert sum(r["heat"] for r in payload["regions"]) == pytest.approx(
            payload["total_heat"]
        )

    def test_restore_rejects_mismatched_grid(self):
        a = KeySpaceHeatmap([b"\x01"])
        b = KeySpaceHeatmap([b"\x02"])
        b.record(b"\x00")
        assert a.restore_from(b) is False
        assert a.total_heat == 0.0
        c = KeySpaceHeatmap([b"\x02"])
        assert c.restore_from(b) is True
        assert c.total_rows == 1


# ----------------------------------------------------------------------
# Advisor
# ----------------------------------------------------------------------
class TestAdvisor:
    def test_skewed_workload_triggers_hot_region_and_salt_skew(self):
        """The ISSUE acceptance scenario: a seeded skewed workload makes
        the doctor emit hot-region-split AND salt-skew, each citing the
        triggering metric values."""
        rng = random.Random(21)
        # A small hot cluster whose tids all hash into shard 0 (so its
        # keys are contiguous and fit inside one region), plus a uniform
        # cold background spread over every shard.
        hot, cold, i = [], [], 0
        while len(hot) < 30 or len(cold) < 90:
            tid = f"t{i}"
            i += 1
            if shard_of(tid, 4) == 0 and len(hot) < 30:
                hot.append(
                    make_walk(tid, rng, cx=1.0 + rng.uniform(0, 0.2),
                              cy=1.0 + rng.uniform(0, 0.2))
                )
            elif len(cold) < 90:
                cold.append(make_walk(tid, rng))
        engine = TraSS.build(hot + cold, small_config(max_region_rows=30))
        for _ in range(2):
            for q in hot:
                engine.threshold_search(q, 0.1)
        recs = diagnose(engine)
        kinds = {r.kind for r in recs}
        assert "hot-region-split" in kinds
        assert "salt-skew" in kinds
        by_kind = {r.kind: r for r in recs}
        hot_rec = by_kind["hot-region-split"]
        assert hot_rec.evidence["heat_share"] >= HOT_REGION_SHARE
        assert hot_rec.evidence["region_rows"] >= 2
        assert "heat_share" in hot_rec.rationale or "share" in hot_rec.rationale
        skew = by_kind["salt-skew"]
        assert skew.evidence["skew_ratio"] >= SALT_SKEW_RATIO
        assert skew.evidence["hottest_shard"] == 0
        payload = report_json(recs)
        json.dumps(payload)
        assert payload["findings"] == len(recs)

    def test_uniform_workload_no_hot_region(self):
        engine, trajectories = build_engine(n=150, seed=13)
        for q in trajectories[::7]:
            engine.threshold_search(q, 0.02)
        kinds = {r.kind for r in diagnose(engine)}
        assert "hot-region-split" not in kinds

    def test_cache_recommendation_fires_when_disabled(self):
        engine, trajectories = build_engine(n=120)
        # A wide radius defeats pruning, so every query rescans most of
        # the store — the workload a block/record cache exists for.
        for _ in range(2):
            for q in trajectories[:20]:
                engine.threshold_search(q, 3.0)
        io = engine.metrics.snapshot()
        assert io["rows_scanned"] >= 1000
        recs = [r for r in diagnose(engine) if r.kind == "cache-tuning"]
        assert recs, "cache-tuning should fire with cache_mb=0 and heavy scans"
        assert recs[0].evidence["rows_scanned"] == io["rows_scanned"]

    def test_compaction_backlog_detection(self):
        engine, trajectories = build_engine(n=60)
        # Pile runs up to trigger-1 (the default trigger of 8 compacts
        # at 8, so 7 runs is the deepest reachable backlog).
        store = engine.store.table.regions[0].store
        while len(store.sstables) < store.compaction_trigger - 1:
            store.put(b"\x00backlog%d" % len(store.sstables), b"x")
            store.flush()
        recs = [
            r for r in diagnose(engine) if r.kind == "compaction-backlog"
        ]
        assert recs
        assert recs[0].evidence["max_runs_per_region"] >= 7
        assert recs[0].evidence["compaction_trigger"] == 8

    def test_telemetry_disabled_still_diagnoses(self):
        engine, trajectories = build_engine(storage_telemetry=False)
        for q in trajectories[:5]:
            engine.threshold_search(q, 0.05)
        recs = diagnose(engine)  # heat heuristics skip, others still run
        assert all(
            r.kind not in ("hot-region-split", "salt-skew") for r in recs
        )


# ----------------------------------------------------------------------
# Registry / stats / EXPLAIN surfaces
# ----------------------------------------------------------------------
class TestStorageSurfaces:
    def test_registry_exports_storage_metrics(self):
        engine, trajectories = build_engine()
        for q in trajectories[:10]:
            engine.threshold_search(q, 0.05)
        prom = engine.export_metrics("prometheus")
        samples = parse_prometheus(prom)
        assert "trass_storage_seek_depth_count" in samples
        assert "trass_storage_flush_count" in samples
        assert "trass_storage_wal_appends" in samples
        assert "trass_storage_read_amplification" in samples
        assert any(
            name.startswith("trass_storage_seek_depth_bucket")
            for name in samples
        )
        # Refreshing twice must not double-count the histograms.
        first = parse_prometheus(engine.export_metrics("prometheus"))[
            "trass_storage_seek_depth_count"
        ]
        second = parse_prometheus(engine.export_metrics("prometheus"))[
            "trass_storage_seek_depth_count"
        ]
        assert first == second

    def test_stats_storage_section(self):
        engine, trajectories = build_engine()
        for q in trajectories[:5]:
            engine.threshold_search(q, 0.05)
        storage = engine.stats()["storage"]
        assert storage["regions"]["count"] == engine.store.table.num_regions
        assert storage["sstables"]["runs_per_region"]
        assert 0.0 <= storage["bloom"]["false_positive_rate"] <= 1.0
        assert storage["seek_depth"]["buckets"] == list(SEEK_DEPTH_BUCKETS)
        json.dumps(storage, default=str)

    def test_explain_analyze_storage_section(self):
        engine, trajectories = build_engine()
        report = engine.explain_analyze(trajectories[0], eps=0.05)
        assert report.storage is not None
        st = report.storage
        assert st["rows_scanned"] == report.io_delta["rows_scanned"]
        assert sum(r["rows_scanned"] for r in st["regions"]) == st[
            "rows_scanned"
        ]
        rendered = report.render()
        assert "read amplification" in rendered
        payload = report.to_json()
        assert payload["storage"]["regions"] == st["regions"]

    def test_explain_analyze_storage_none_when_disabled(self):
        engine, trajectories = build_engine(storage_telemetry=False)
        report = engine.explain_analyze(trajectories[0], eps=0.05)
        assert report.storage is None
        report.render()  # must not crash without the section
