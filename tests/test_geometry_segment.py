"""Unit tests for Segment and OrientedBox."""

import math
import random

import pytest

from repro.exceptions import GeometryError
from repro.geometry.mbr import MBR
from repro.geometry.point import Point
from repro.geometry.segment import OrientedBox, Segment


class TestSegment:
    def test_length(self):
        assert Segment(Point(0, 0), Point(3, 4)).length == pytest.approx(5.0)

    def test_mbr(self):
        seg = Segment(Point(2, 1), Point(0, 3))
        assert seg.mbr() == MBR(0, 1, 2, 3)

    def test_distance_to_point(self):
        seg = Segment(Point(0, 0), Point(2, 0))
        assert seg.distance_to_point(Point(1, 2)) == pytest.approx(2.0)


class TestOrientedBoxCover:
    def test_empty_raises(self):
        with pytest.raises(GeometryError):
            OrientedBox.cover([])

    def test_single_point_degenerate(self):
        box = OrientedBox.cover([(1.0, 2.0)])
        assert box.distance_to_point(1.0, 2.0) == 0.0
        assert box.distance_to_point(1.0, 3.0) == pytest.approx(1.0)

    def test_covers_all_input_points(self):
        rng = random.Random(11)
        for _ in range(50):
            pts = [(rng.random(), rng.random()) for _ in range(rng.randint(2, 12))]
            box = OrientedBox.cover(pts)
            for x, y in pts:
                assert box.distance_to_point(x, y) == pytest.approx(0.0, abs=1e-9)
                assert box.contains_point(x, y, tol=1e-9)

    def test_diagonal_run_is_tight(self):
        """A diagonal run should produce a thin rotated box, far tighter
        than its axis-aligned envelope."""
        pts = [(i * 0.1, i * 0.1 + (0.001 if i % 2 else -0.001)) for i in range(20)]
        box = OrientedBox.cover(pts)
        envelope = box.mbr()
        # The rotated box is thin: a point off the diagonal but inside
        # the axis-aligned envelope must be far from the oriented box.
        assert box.distance_to_point(1.0, 0.2) > 0.3
        assert envelope.contains_point(1.0, 0.2)

    def test_each_edge_touches_a_point(self):
        """Tightness contract used by Lemma 14: every edge of the box
        carries at least one covered point."""
        rng = random.Random(5)
        for _ in range(30):
            pts = [(rng.random(), rng.random()) for _ in range(rng.randint(2, 10))]
            box = OrientedBox.cover(pts)
            for e0, e1 in box.edges():
                nearest = min(
                    min(
                        _point_seg(px, py, e0, e1)
                        for px, py in pts
                    )
                    for _ in [0]
                )
                assert nearest == pytest.approx(0.0, abs=1e-9)


def _point_seg(px, py, a, b):
    from repro.geometry.distance import point_segment_distance

    return point_segment_distance((px, py), (a.x, a.y), (b.x, b.y))


class TestOrientedBoxDistance:
    def test_distance_outside_along_axis(self):
        box = OrientedBox.cover([(0, 0), (2, 0)])
        assert box.distance_to_point(3.0, 0.0) == pytest.approx(1.0)

    def test_distance_perpendicular(self):
        box = OrientedBox.cover([(0, 0), (2, 0)])
        assert box.distance_to_point(1.0, 0.5) == pytest.approx(0.5)

    def test_rotated_frame_distance(self):
        # Box along the diagonal; a point perpendicular to it.
        box = OrientedBox.cover([(0, 0), (1, 1)])
        d = box.distance_to_point(0.0, 1.0)
        assert d == pytest.approx(math.sqrt(2) / 2)

    def test_distance_to_segment_zero_when_crossing(self):
        box = OrientedBox.cover([(0, 0), (2, 0), (2, 1), (0, 1)])
        assert box.distance_to_segment(Point(1, -1), Point(1, 2)) == 0.0

    def test_distance_to_segment_endpoint_inside(self):
        box = OrientedBox.cover([(0, 0), (2, 0), (2, 1)])
        assert box.distance_to_segment(Point(1.5, 0.2), Point(9, 9)) == 0.0

    def test_distance_to_segment_disjoint_exact(self):
        box = OrientedBox.cover([(0, 0), (2, 0)])
        d = box.distance_to_segment(Point(0, 2), Point(2, 2))
        assert d == pytest.approx(2.0)

    def test_distance_never_exceeds_point_distances(self):
        """Exactness: segment distance is <= distance of any point on
        the segment (sampled), and >= 0."""
        rng = random.Random(23)
        for _ in range(40):
            pts = [(rng.random(), rng.random()) for _ in range(4)]
            box = OrientedBox.cover(pts)
            a = Point(rng.random() + 1.5, rng.random())
            b = Point(rng.random() + 1.5, rng.random() + 1)
            d = box.distance_to_segment(a, b)
            for t in (0.0, 0.25, 0.5, 0.75, 1.0):
                x = a.x + (b.x - a.x) * t
                y = a.y + (b.y - a.y) * t
                assert d <= box.distance_to_point(x, y) + 1e-9

    def test_corners_and_mbr_consistent(self):
        box = OrientedBox.cover([(0, 0), (1, 1), (0.5, 0.8)])
        envelope = box.mbr()
        for corner in box.corners():
            assert envelope.contains_point(corner.x, corner.y)
