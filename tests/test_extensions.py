"""Tests for the extension modules: LCSS, alternative simplifiers, LRU
cache."""

import random

import pytest

from repro import TraSS, TraSSConfig, Trajectory, SpaceBounds
from repro.exceptions import KVStoreError
from repro.features.douglas_peucker import douglas_peucker
from repro.features.simplify import max_chord_error, opening_window, sliding_window
from repro.kvstore.cache import CachedKVTable, LRUCache
from repro.kvstore.table import KVTable
from repro.measures import get_measure
from repro.measures.lcss import LCSS, lcss_distance, lcss_length


def walk(rng, n, start=(0.0, 0.0), step=0.05):
    x, y = start
    pts = [(x, y)]
    for _ in range(n - 1):
        x += rng.uniform(-step, step)
        y += rng.uniform(-step, step)
        pts.append((x, y))
    return pts


class TestLCSS:
    def test_identical_distance_zero(self):
        pts = [(0, 0), (1, 0), (2, 0)]
        assert lcss_distance(pts, pts) == 0.0

    def test_disjoint_distance_one(self):
        a = [(0, 0), (1, 0)]
        b = [(100, 100), (101, 100)]
        assert lcss_distance(a, b) == 1.0

    def test_subsequence_matches_fully(self):
        a = [(0, 0), (2, 0)]
        b = [(0, 0), (1, 5), (2, 0)]  # outlier in the middle skipped
        assert lcss_length(a, b, delta=0.1) == 2
        assert lcss_distance(a, b, delta=0.1) == 0.0

    def test_outlier_robustness_vs_frechet(self):
        """The signature LCSS property: one huge outlier barely moves
        LCSS but dominates Fréchet."""
        from repro.measures import discrete_frechet

        a = [(0.1 * i, 0.0) for i in range(10)]
        b = list(a)
        b[5] = (0.5, 99.0)
        assert discrete_frechet(a, b) > 90
        assert lcss_distance(a, b, delta=0.01) == pytest.approx(0.1)

    def test_symmetric(self):
        rng = random.Random(1)
        a, b = walk(rng, 8), walk(rng, 11)
        assert lcss_distance(a, b) == pytest.approx(lcss_distance(b, a))

    def test_registry_and_flags(self):
        m = get_measure("lcss")
        assert isinstance(m, LCSS)
        assert not m.supports_point_lower_bound

    def test_engine_fallback_exact(self):
        rng = random.Random(2)
        data = [
            Trajectory(f"t{i}", walk(rng, 6, start=(0.5, 0.5), step=0.01))
            for i in range(30)
        ]
        cfg = TraSSConfig(bounds=SpaceBounds(0, 0, 1, 1), max_resolution=8, shards=2)
        engine = TraSS.build(data, cfg)
        m = get_measure("lcss")
        q = data[0]
        got = set(engine.threshold_search(q, 0.5, measure="lcss").answers)
        want = {t.tid for t in data if m.distance(q.points, t.points) <= 0.5}
        assert got == want

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            lcss_length([], [(0, 0)])

    def test_delta_validation(self):
        with pytest.raises(ValueError):
            LCSS(delta=-0.1)


class TestSimplifiers:
    @pytest.mark.parametrize("simplify", [sliding_window, opening_window])
    def test_error_contract(self, simplify):
        rng = random.Random(3)
        for _ in range(25):
            pts = walk(rng, rng.randint(3, 60))
            theta = 0.03
            kept = simplify(pts, theta)
            assert kept[0] == 0 and kept[-1] == len(pts) - 1
            assert max_chord_error(pts, kept) <= theta + 1e-12

    @pytest.mark.parametrize("simplify", [sliding_window, opening_window])
    def test_short_inputs(self, simplify):
        assert simplify([(0, 0)], 0.1) == [0]
        assert simplify([(0, 0), (1, 1)], 0.1) == [0, 1]

    @pytest.mark.parametrize("simplify", [sliding_window, opening_window])
    def test_straight_line_collapses(self, simplify):
        pts = [(float(i), 0.0) for i in range(30)]
        assert simplify(pts, 0.01) == [0, 29]

    def test_dp_same_contract(self):
        """All three simplifiers satisfy the same error bound, so they
        are interchangeable feature sources."""
        rng = random.Random(4)
        pts = walk(rng, 50)
        theta = 0.02
        for kept in (
            douglas_peucker(pts, theta),
            sliding_window(pts, theta),
            opening_window(pts, theta),
        ):
            assert max_chord_error(pts, kept) <= theta + 1e-12

    @pytest.mark.parametrize("simplify", [sliding_window, opening_window])
    def test_negative_theta(self, simplify):
        with pytest.raises(ValueError):
            simplify([(0, 0), (1, 1)], -1.0)


class TestLRUCache:
    def test_basic_hit_miss(self):
        cache = LRUCache(1024)
        assert cache.get(b"a") is None
        cache.put(b"a", b"1")
        assert cache.get(b"a") == b"1"
        assert cache.hits == 1
        assert cache.misses == 1

    def test_eviction_order(self):
        cache = LRUCache(capacity_bytes=8)  # fits two 4-byte entries
        cache.put(b"a", b"111")  # 4 bytes
        cache.put(b"b", b"222")  # 4 bytes
        cache.get(b"a")  # a is now most recent
        cache.put(b"c", b"333")  # evicts b
        assert cache.get(b"a") == b"111"
        assert cache.get(b"b") is None
        assert cache.evictions == 1

    def test_oversized_entry_not_cached(self):
        cache = LRUCache(capacity_bytes=4)
        cache.put(b"big", b"x" * 100)
        assert len(cache) == 0

    def test_overwrite_updates_budget(self):
        cache = LRUCache(capacity_bytes=64)
        cache.put(b"a", b"x" * 10)
        cache.put(b"a", b"y" * 5)
        assert cache.current_bytes == 1 + 5
        assert cache.get(b"a") == b"y" * 5

    def test_capacity_validation(self):
        with pytest.raises(KVStoreError):
            LRUCache(0)


class TestCachedKVTable:
    def test_repeat_reads_hit_cache(self):
        table = KVTable()
        table.put(b"k", b"v")
        cached = CachedKVTable(table, capacity_bytes=1024)
        assert cached.get(b"k") == b"v"
        gets_before = table.metrics.gets
        assert cached.get(b"k") == b"v"
        assert table.metrics.gets == gets_before  # served from cache
        assert cached.cache.hit_rate > 0

    def test_write_invalidates(self):
        table = KVTable()
        cached = CachedKVTable(table)
        cached.put(b"k", b"v1")
        assert cached.get(b"k") == b"v1"
        cached.put(b"k", b"v2")
        assert cached.get(b"k") == b"v2"

    def test_delete_invalidates(self):
        table = KVTable()
        cached = CachedKVTable(table)
        cached.put(b"k", b"v")
        cached.get(b"k")
        cached.delete(b"k")
        assert cached.get(b"k") is None

    def test_scan_passthrough(self):
        table = KVTable()
        cached = CachedKVTable(table)
        for i in range(5):
            cached.put(f"k{i}".encode(), b"v")
        assert len(list(cached.scan())) == 5
        assert cached.row_count == 5  # attribute delegation
