"""Unit tests for the distance kernels (soundness-critical)."""

import math

import pytest

from repro.geometry.distance import (
    edge_min_rect_distance,
    min_dist_edges_to_rect,
    min_dist_edges_to_rects,
    point_distance,
    point_polyline_distance,
    point_rect_distance,
    point_segment_distance,
    rect_polyline_distance,
    segment_distance,
    segment_rect_distance,
    segments_intersect,
)
from repro.geometry.mbr import MBR
from repro.geometry.point import Point


class TestPointSegment:
    def test_projection_inside(self):
        assert point_segment_distance((1, 1), (0, 0), (2, 0)) == pytest.approx(1.0)

    def test_projection_clamped_to_endpoint(self):
        assert point_segment_distance((5, 1), (0, 0), (2, 0)) == pytest.approx(
            math.hypot(3, 1)
        )

    def test_degenerate_segment(self):
        assert point_segment_distance((3, 4), (0, 0), (0, 0)) == pytest.approx(5.0)

    def test_point_on_segment(self):
        assert point_segment_distance((1, 0), (0, 0), (2, 0)) == 0.0


class TestSegmentsIntersect:
    def test_crossing(self):
        assert segments_intersect((0, 0), (2, 2), (0, 2), (2, 0))

    def test_touching_endpoint(self):
        assert segments_intersect((0, 0), (1, 1), (1, 1), (2, 0))

    def test_collinear_overlapping(self):
        assert segments_intersect((0, 0), (2, 0), (1, 0), (3, 0))

    def test_collinear_disjoint(self):
        assert not segments_intersect((0, 0), (1, 0), (2, 0), (3, 0))

    def test_parallel_disjoint(self):
        assert not segments_intersect((0, 0), (1, 0), (0, 1), (1, 1))


class TestSegmentDistance:
    def test_intersecting_is_zero(self):
        assert segment_distance((0, 0), (2, 2), (0, 2), (2, 0)) == 0.0

    def test_parallel(self):
        assert segment_distance((0, 0), (1, 0), (0, 1), (1, 1)) == pytest.approx(1.0)

    def test_endpoint_to_interior(self):
        d = segment_distance((0, 0), (1, 0), (2, -1), (2, 1))
        assert d == pytest.approx(1.0)

    def test_symmetric(self):
        a = segment_distance((0, 0), (1, 2), (3, 3), (4, 1))
        b = segment_distance((3, 3), (4, 1), (0, 0), (1, 2))
        assert a == pytest.approx(b)


class TestSegmentRect:
    def test_endpoint_inside(self):
        rect = MBR(0, 0, 2, 2)
        assert segment_rect_distance((1, 1), (5, 5), rect) == 0.0

    def test_crossing_without_endpoint_inside(self):
        rect = MBR(0, 0, 2, 2)
        assert segment_rect_distance((-1, 1), (3, 1), rect) == 0.0

    def test_disjoint(self):
        rect = MBR(0, 0, 1, 1)
        assert segment_rect_distance((3, 0), (3, 1), rect) == pytest.approx(2.0)


class TestPolylines:
    def test_point_polyline_vertices_only(self):
        line = [(0, 0), (2, 0)]
        # Vertex distance: nearest vertex is at distance sqrt(2);
        # the continuous segment would give 1.
        assert point_polyline_distance((1, 1), line) == pytest.approx(math.sqrt(2))
        assert point_polyline_distance((1, 1), line, vertices_only=False) == (
            pytest.approx(1.0)
        )

    def test_rect_polyline_vertices_only(self):
        rect = MBR(0.9, 0.9, 1.1, 1.1)
        line = [(0, 1), (2, 1)]
        # Vertices are 0.9 away horizontally; the segment crosses the rect.
        assert rect_polyline_distance(rect, line) == pytest.approx(0.9)
        assert rect_polyline_distance(rect, line, vertices_only=False) == 0.0

    def test_empty_polyline_raises(self):
        with pytest.raises(ValueError):
            point_polyline_distance((0, 0), [])


class TestMinDistEE:
    """Definition 10 semantics: max over MBR edges of the edge minimum."""

    def test_rect_containing_mbr_is_zero(self):
        mbr = MBR(1, 1, 2, 2)
        assert min_dist_edges_to_rect(mbr, MBR(0, 0, 3, 3)) == 0.0

    def test_tiny_centered_rect_is_large(self):
        # A tiny enlarged element centred in a big query MBR: every edge
        # of the MBR is far from it — Lemma 7's "too small" case.
        mbr = MBR(0, 0, 10, 10)
        tiny = MBR(4.9, 4.9, 5.1, 5.1)
        assert min_dist_edges_to_rect(mbr, tiny) == pytest.approx(4.9)

    def test_far_rect(self):
        mbr = MBR(0, 0, 1, 1)
        rect = MBR(5, 0, 6, 1)
        # The binding edge is the MBR's *left* edge: the point that must
        # exist on it is at least 5 away from the rect, so the max over
        # edges — Definition 10 — is 5, not the right edge's 4.
        assert min_dist_edges_to_rect(mbr, rect) == pytest.approx(5.0)

    def test_union_version_uses_nearest_member(self):
        mbr = MBR(0, 0, 1, 1)
        near = MBR(1.5, 0, 2, 1)
        far = MBR(9, 9, 10, 10)
        d_union = min_dist_edges_to_rects(mbr, [near, far])
        d_near = min_dist_edges_to_rect(mbr, near)
        assert d_union == pytest.approx(d_near)

    def test_union_empty_is_inf(self):
        assert min_dist_edges_to_rects(MBR(0, 0, 1, 1), []) == math.inf

    def test_lower_bounds_any_point_pair(self):
        """minDistEE must never exceed the distance between a point on
        an MBR edge and a point inside the rect (soundness)."""
        import random

        rng = random.Random(3)
        for _ in range(200):
            mbr = MBR.of_points([(rng.random(), rng.random()) for _ in range(2)])
            rect = MBR.of_points(
                [(rng.random() + 2, rng.random()) for _ in range(2)]
            )
            bound = min_dist_edges_to_rect(mbr, rect)
            # Points on each MBR edge vs points in the rect.
            for a, b in mbr.edges():
                t = rng.random()
                px = a.x + (b.x - a.x) * t
                py = a.y + (b.y - a.y) * t
                qx = rng.uniform(rect.min_x, rect.max_x)
                qy = rng.uniform(rect.min_y, rect.max_y)
                # There exists a point on SOME edge at >= bound from the
                # rect; every point in the rect is >= its edge-min away.
                # The max-over-edges bound must stay below the *maximum*
                # edge point distance, so check the defining inequality:
                assert edge_min_rect_distance((a, b), rect) <= math.hypot(
                    px - qx, py - qy
                ) + 1e-9
            assert bound >= 0.0
