"""The distributed serving tier: exactness, failover, hedging,
degraded accounting and admission control.

Every answer-bearing test asserts *bit-identical* agreement with the
single-process engine — the serving tier's contract is that sharding,
replication and failure handling change latency and availability,
never answers.  Timings are generous (the suite must pass on a 1-CPU
machine); determinism comes from in-band worker directives (stall /
crash land in a worker's FIFO at an exact queue position), not from
racing real kills against real queries.
"""

import os
import random
import threading
import time

import pytest

from repro import SpaceBounds, TraSS, TraSSConfig, Trajectory
from repro.exceptions import (
    ClusterError,
    DegradedResult,
    OverloadedError,
)
from repro.serve import AdmissionController, ServingCluster, TokenBucket

pytestmark = pytest.mark.serving

BEIJING = SpaceBounds(116.0, 39.5, 117.0, 40.5)
EPS = 0.01


def _walks(n, seed=11):
    rng = random.Random(seed)
    out = []
    for i in range(n):
        x = rng.uniform(116.1, 116.9)
        y = rng.uniform(39.6, 40.4)
        points = [(x, y)]
        for _ in range(rng.randint(5, 30)):
            x += rng.uniform(-0.005, 0.005)
            y += rng.uniform(-0.005, 0.005)
            points.append((x, y))
        out.append(Trajectory(f"t{i}", points))
    return out


@pytest.fixture(scope="module")
def dataset():
    return _walks(60)


@pytest.fixture(scope="module")
def engine(dataset):
    config = TraSSConfig(
        bounds=BEIJING, max_resolution=12, dp_tolerance=0.002, shards=4
    )
    return TraSS.build(dataset, config)


@pytest.fixture(scope="module")
def cluster(engine):
    with ServingCluster.from_engine(engine, partitions=2) as c:
        yield c


def _queries(dataset, n=4):
    return dataset[:n]


class TestExactness:
    def test_threshold_matches_single_process(self, engine, dataset, cluster):
        for q in _queries(dataset):
            local = engine.threshold_search(q, EPS)
            served = cluster.threshold_search(q, EPS)
            assert served.answers == local.answers
            assert served.candidates == local.candidates
            assert served.retrieved_rows == local.retrieved_rows
            # Scan-range accounting survives the partition merge: the
            # per-worker ranges_total values sum to the single-process
            # count (each worker scans |ranges| x |owned salts|).
            assert (
                served.resilience.ranges_total
                == local.resilience.ranges_total
            )
            assert served.skipped_ranges == []
            assert served.completeness == 1.0

    def test_threshold_batch_matches(self, engine, dataset, cluster):
        queries = _queries(dataset, 8)
        local = engine.threshold_search_many(queries, EPS)
        served = cluster.threshold_search_many(queries, EPS)
        assert [r.answers for r in served] == [r.answers for r in local]
        assert [r.candidates for r in served] == [
            r.candidates for r in local
        ]

    def test_topk_matches(self, engine, dataset, cluster):
        for q in _queries(dataset, 3):
            local = engine.topk_search(q, 5)
            served = cluster.topk_search(q, 5)
            # Answers are the contract; candidate counts legitimately
            # differ (each worker's incremental k-th-distance bound
            # tightens over its own slice only).
            assert served.answers == local.answers
            assert served.candidates >= len(local.answers)

    def test_topk_batch_matches(self, engine, dataset, cluster):
        queries = _queries(dataset, 6)
        local = [engine.topk_search(q, 3) for q in queries]
        served = cluster.topk_search_many(queries, 3)
        assert [r.answers for r in served] == [r.answers for r in local]

    def test_full_scan_fallback_matches(self, engine, dataset, cluster):
        """Measures without planning support fall back to a full scan;
        the partitioned full scan must union to the same answers."""
        q = dataset[0]
        local = engine.threshold_search(q, EPS, measure="edr")
        served = cluster.threshold_search(q, EPS, measure="edr")
        assert served.answers == local.answers

    def test_remote_executor_delegation(self, engine, dataset, cluster):
        """engine.set_remote_executor routes the public search API
        through the cluster (the `repro query --cluster` path)."""
        q = dataset[1]
        local = engine.threshold_search(q, EPS)
        engine.set_remote_executor(cluster)
        try:
            assert engine.remote_executor is cluster
            delegated = engine.threshold_search(q, EPS)
            topk_delegated = engine.topk_search(q, 4)
        finally:
            engine.set_remote_executor(None)
        assert delegated.answers == local.answers
        assert topk_delegated.answers == engine.topk_search(q, 4).answers

    def test_string_key_encoding_matches(self, dataset):
        config = TraSSConfig(
            bounds=BEIJING, max_resolution=10, dp_tolerance=0.002, shards=4
        )
        engine = TraSS.build(dataset[:30], config, key_encoding="string")
        with ServingCluster.from_engine(engine, partitions=2) as c:
            for q in dataset[:2]:
                local = engine.threshold_search(q, EPS)
                served = c.threshold_search(q, EPS)
                assert served.answers == local.answers

    def test_counters_track_queries(self, cluster):
        stats = cluster.stats()
        assert stats["partitions"] == 2
        assert stats["counters"]["threshold_queries"] > 0
        assert stats["counters"]["worker_errors"] == 0


class TestFailover:
    def test_sigkill_with_replica_is_exact(self, engine, dataset):
        """Killing a worker outright loses zero queries when a replica
        exists: the dead process is replaced and/or its peer serves."""
        with ServingCluster.from_engine(
            engine, partitions=2, replication=2
        ) as c:
            q = dataset[0]
            local = engine.threshold_search(q, EPS)
            assert c.threshold_search(q, EPS).answers == local.answers
            c.kill_replica(0, 0)
            served = c.threshold_search(q, EPS)
            assert served.answers == local.answers
            assert served.skipped_ranges == []
            stats = c.stats()
            assert (
                stats["counters"]["failovers"] + stats["worker_restarts"]
                >= 1
            )

    def test_inband_crash_mid_batch_fails_over(self, engine, dataset):
        """A worker that dies mid-stream (after receiving part of a
        pipelined batch) triggers EOF failover; answers stay exact."""
        queries = dataset[:6]
        local = engine.threshold_search_many(queries, EPS)
        with ServingCluster.from_engine(
            engine, partitions=2, replication=2, max_restarts=0
        ) as c:
            # The stall parks replica (0, 0) so the batch is assigned
            # to it while asleep; the crash directive queued behind the
            # stall kills it after it has consumed part of the batch.
            c.stall_replica(0, 0, seconds=0.2)
            c.crash_replica_inband(0, 0)
            served = c.threshold_search_many(queries, EPS)
            assert [r.answers for r in served] == [
                r.answers for r in local
            ]
            assert c.counters["failovers"] >= 1

    def test_restart_cap_limits_respawns(self, engine, dataset):
        with ServingCluster.from_engine(
            engine, partitions=1, replication=2, max_restarts=1
        ) as c:
            q = dataset[0]
            local = engine.threshold_search(q, EPS)
            for _ in range(3):
                c.kill_replica(0, 0)
                assert c.threshold_search(q, EPS).answers == local.answers
            # Slot (0, 0) was only allowed one respawn; the extra kills
            # were absorbed by replica 1, not by unbounded restarts.
            assert c.supervisor.total_restarts <= 2


class TestDegraded:
    def _dead_partition_cluster(self, engine):
        return ServingCluster.from_engine(
            engine,
            partitions=2,
            replication=1,
            max_restarts=0,
            max_attempts=1,
            degraded_mode=True,
        )

    def test_skipped_ranges_are_exact(self, engine, dataset):
        """With no replica left, the degraded answer reports *exactly*
        the row-key ranges the dead partition would have scanned."""
        q = dataset[0]
        with self._dead_partition_cluster(engine) as c:
            c.kill_replica(0, 0)
            served = c.threshold_search(q, EPS)
            plan = c.pruner.prune(q, EPS)
            expected_skipped = engine.store.scan_ranges_for(
                plan.ranges, shards=c.owned_salts(0)
            )
            assert served.skipped_ranges == expected_skipped
            assert 0.0 < served.completeness < 1.0
            assert c.counters["degraded_queries"] >= 1
            # The surviving partition's answers are all present and a
            # subset of the full answer set.
            local = engine.threshold_search(q, EPS)
            assert set(served.answers) <= set(local.answers)
            for tid, dist in served.answers.items():
                assert local.answers[tid] == dist

    def test_degraded_mode_off_raises_with_partial(self, engine, dataset):
        q = dataset[0]
        with ServingCluster.from_engine(
            engine,
            partitions=2,
            replication=1,
            max_restarts=0,
            max_attempts=1,
            degraded_mode=False,
        ) as c:
            c.kill_replica(0, 0)
            with pytest.raises(DegradedResult) as excinfo:
                c.threshold_search(q, EPS)
            assert excinfo.value.skipped_ranges
            assert excinfo.value.result is not None
            assert excinfo.value.result.completeness < 1.0

    def test_degraded_topk_reports_full_salt_spans(self, engine, dataset):
        """Top-k is plan-free on the wire, so a dead partition's
        skipped ranges are its whole salt spans."""
        q = dataset[0]
        with self._dead_partition_cluster(engine) as c:
            c.kill_replica(0, 0)
            served = c.topk_search(q, 5)
            starts = sorted(r.start[0] for r in served.skipped_ranges)
            assert starts == sorted(c.owned_salts(0))
            assert served.completeness < 1.0


class TestHedging:
    def test_hedged_request_beats_straggler(self, engine, dataset):
        q = dataset[0]
        local = engine.threshold_search(q, EPS)
        with ServingCluster.from_engine(
            engine,
            partitions=1,
            replication=2,
            hedge_delay_seconds=0.2,
        ) as c:
            c.stall_replica(0, 0, seconds=3.0)
            started = time.perf_counter()
            served = c.threshold_search(q, EPS)
            elapsed = time.perf_counter() - started
            assert served.answers == local.answers
            assert elapsed < 2.5  # did not wait out the 3s straggler
            assert c.counters["hedges"] >= 1
            assert c.counters["hedge_wins"] >= 1
            # The straggler's late reply is drained, not misdelivered:
            # the next query is exact.
            assert c.threshold_search(q, EPS).answers == local.answers


class TestAdmission:
    def test_token_bucket_refill_and_retry_after(self):
        now = [0.0]
        bucket = TokenBucket(rate=2.0, burst=2.0, clock=lambda: now[0])
        assert bucket.try_take() == (True, 0.0)
        assert bucket.try_take() == (True, 0.0)
        ok, retry_after = bucket.try_take()
        assert not ok
        assert retry_after == pytest.approx(0.5)
        now[0] += 0.5  # one token refilled
        assert bucket.try_take() == (True, 0.0)

    def test_quota_rejection_is_typed(self, engine, dataset):
        now = [0.0]
        admission = AdmissionController(
            tenant_rate=1.0, tenant_burst=2.0, clock=lambda: now[0]
        )
        q = dataset[0]
        with ServingCluster.from_engine(
            engine, partitions=1, admission=admission
        ) as c:
            c.threshold_search(q, EPS)
            c.threshold_search(q, EPS)
            with pytest.raises(OverloadedError) as excinfo:
                c.threshold_search(q, EPS)
            assert excinfo.value.reason == "quota"
            assert excinfo.value.tenant == "default"
            assert excinfo.value.retry_after_seconds > 0
            # An isolated tenant has its own bucket.
            c.threshold_search(q, EPS, tenant="other")
            snapshot = c.admission.snapshot()
            assert snapshot["admitted"] == 3
            assert snapshot["rejected_quota"] == 1
            assert snapshot["tenants"] == 2
            assert snapshot["in_flight"] == 0  # released after serving

    def test_queue_depth_shedding_is_typed(self, engine, dataset):
        q = dataset[0]
        admission = AdmissionController(max_in_flight=1)
        with ServingCluster.from_engine(
            engine, partitions=1, admission=admission
        ) as c:
            c.stall_replica(0, 0, seconds=1.5)
            first_result = {}

            def slow_query():
                first_result["r"] = c.threshold_search(q, EPS)

            t = threading.Thread(target=slow_query)
            t.start()
            time.sleep(0.4)  # query 1 is admitted, stuck on the stall
            with pytest.raises(OverloadedError) as excinfo:
                c.threshold_search(q, EPS)
            assert excinfo.value.reason == "queue_depth"
            assert excinfo.value.retry_after_seconds is None
            t.join()
            assert (
                first_result["r"].answers
                == engine.threshold_search(q, EPS).answers
            )
            assert c.admission.snapshot()["rejected_queue_depth"] == 1

    def test_rejection_does_not_leak_in_flight(self, engine):
        admission = AdmissionController(max_in_flight=1)
        admission.in_flight = 1  # simulate a stuck request
        cluster = ServingCluster.from_engine(
            engine, partitions=1, admission=admission
        )
        with pytest.raises(OverloadedError):
            cluster.threshold_search(Trajectory("q", [(116.5, 40.0)]), EPS)
        assert admission.snapshot()["in_flight"] == 1  # unchanged


class TestValidationAndObservability:
    def test_constructor_validation(self, engine):
        with pytest.raises(ClusterError):
            ServingCluster.from_engine(engine, partitions=0)
        with pytest.raises(ClusterError):
            # 4 salt shards cannot feed 5 partitions.
            ServingCluster.from_engine(engine, partitions=5)
        with pytest.raises(ClusterError):
            ServingCluster.from_engine(engine, partitions=2, replication=0)
        with pytest.raises(ClusterError):
            ServingCluster.from_engine(
                engine, partitions=2, request_timeout=0.0
            )
        with pytest.raises(ClusterError):
            ServingCluster.from_engine(
                engine, partitions=2, hedge_delay_seconds=-1.0
            )

    def test_owned_salts_partition_the_shards(self, engine):
        cluster = ServingCluster.from_engine(engine, partitions=2)
        salts = [
            s for p in range(2) for s in cluster.owned_salts(p)
        ]
        assert sorted(salts) == list(range(engine.config.shards))

    def test_registry_export(self, cluster):
        from repro.obs import MetricsRegistry, update_registry_from_cluster

        registry = MetricsRegistry()
        update_registry_from_cluster(registry, cluster)
        assert registry.get("trass.serve.partitions").value == 2
        exposition = registry.to_prometheus()
        assert "trass_serve_requests" in exposition.replace(".", "_")


@pytest.mark.segment
class TestSegmentSharing:
    """Shared-memory serving: with ``segment_dir`` set, every replica of
    a partition mmaps the *same* compact segment files, so the kernel
    page cache holds one physical copy of the cold data regardless of
    replication factor."""

    @pytest.mark.skipif(
        not os.path.isdir("/proc/self"), reason="requires Linux procfs"
    )
    def test_replicas_mmap_share_segments(self, engine, dataset, tmp_path):
        seg_root = str(tmp_path / "segments")
        with ServingCluster.from_engine(
            engine,
            partitions=2,
            replication=2,
            segment_dir=seg_root,
        ) as cluster:
            # Answers stay bit-identical to the single-process engine.
            for q in dataset[:4]:
                local = engine.threshold_search(q, EPS)
                served = cluster.threshold_search(q, EPS)
                assert served.answers == local.answers

            for partition in range(2):
                mapped = []
                for handle in cluster._replicas[partition]:
                    pid = handle.process.pid
                    with open(f"/proc/{pid}/maps") as fh:
                        segs = sorted(
                            {
                                line.split()[-1]
                                for line in fh
                                if line.rstrip().endswith(".seg")
                            }
                        )
                    mapped.append(segs)
                # Every replica mapped at least one segment file, and
                # all replicas of the partition map the SAME files.
                assert mapped[0], "worker did not mmap any segment"
                assert all(m == mapped[0] for m in mapped)
                assert all(p.startswith(seg_root) for p in mapped[0])

    @pytest.mark.skipif(
        not os.path.exists("/proc/self/smaps"),
        reason="requires /proc/<pid>/smaps",
    )
    def test_segment_mappings_have_no_private_dirty(self, engine, dataset, tmp_path):
        """Read-only segment mappings never dirty pages: all resident
        bytes are shared page-cache pages, not per-process copies."""
        seg_root = str(tmp_path / "segments")
        with ServingCluster.from_engine(
            engine, partitions=1, replication=2, segment_dir=seg_root
        ) as cluster:
            for q in dataset[:4]:
                cluster.threshold_search(q, EPS)
            for handle in cluster._replicas[0]:
                pid = handle.process.pid
                with open(f"/proc/{pid}/smaps") as fh:
                    smaps = fh.read()
                dirty = []
                current = None
                for line in smaps.splitlines():
                    if line.rstrip().endswith(".seg"):
                        current = line.split()[-1]
                    elif current and line.startswith("Private_Dirty:"):
                        dirty.append((current, int(line.split()[1])))
                        current = None
                assert dirty, "no .seg mapping found in smaps"
                assert all(kb == 0 for _, kb in dirty), dirty
