"""Tests for the similarity join and the cluster cost model."""

import random

import pytest

from repro import TraSS, TraSSConfig, Trajectory, SpaceBounds
from repro.core.join import similarity_join
from repro.exceptions import KVStoreError, QueryError
from repro.kvstore.cluster import ClusterModel
from repro.kvstore.table import KVTable, ScanRange
from repro.measures import discrete_frechet

BOUNDS = SpaceBounds(0, 0, 1, 1)


def clustered_dataset(rng, n=80):
    data = []
    for i in range(n):
        if i % 2 == 0:
            x, y = 0.5 + rng.uniform(-0.02, 0.02), 0.5 + rng.uniform(-0.02, 0.02)
        else:
            x, y = rng.random() * 0.9, rng.random() * 0.9
        pts = [(x, y)]
        for _ in range(rng.randint(2, 10)):
            x = min(0.99, max(0, x + rng.uniform(-0.01, 0.01)))
            y = min(0.99, max(0, y + rng.uniform(-0.01, 0.01)))
            pts.append((x, y))
        data.append(Trajectory(f"t{i}", pts))
    return data


class TestSimilarityJoin:
    def test_matches_brute_force(self):
        rng = random.Random(91)
        data = clustered_dataset(rng)
        cfg = TraSSConfig(bounds=BOUNDS, max_resolution=8, shards=2)
        engine = TraSS.build(data, cfg)
        eps = 0.05
        result = similarity_join(engine, eps)
        want = {}
        for i, a in enumerate(data):
            for b in data[i + 1 :]:
                d = discrete_frechet(a.points, b.points)
                if d <= eps:
                    key = (a.tid, b.tid) if a.tid < b.tid else (b.tid, a.tid)
                    want[key] = d
        assert set(result.pairs) == set(want)
        for key, dist in result.pairs.items():
            assert dist == pytest.approx(want[key])

    def test_empty_at_zero_eps_unless_duplicates(self):
        rng = random.Random(92)
        data = clustered_dataset(rng, 30)
        cfg = TraSSConfig(bounds=BOUNDS, max_resolution=8, shards=2)
        engine = TraSS.build(data, cfg)
        result = similarity_join(engine, 0.0)
        assert result.pairs == {}

    def test_duplicate_trajectories_always_pair(self):
        pts = [(0.3, 0.3), (0.32, 0.31)]
        data = [Trajectory("a", pts), Trajectory("b", pts)]
        cfg = TraSSConfig(bounds=BOUNDS, max_resolution=8, shards=2)
        engine = TraSS.build(data, cfg)
        result = similarity_join(engine, 0.0)
        assert result.pairs == {("a", "b"): 0.0}

    def test_negative_eps_rejected(self):
        engine = TraSS(TraSSConfig(bounds=BOUNDS, max_resolution=8, shards=1))
        with pytest.raises(QueryError):
            similarity_join(engine, -1.0)

    def test_accounting(self):
        rng = random.Random(93)
        data = clustered_dataset(rng, 40)
        cfg = TraSSConfig(bounds=BOUNDS, max_resolution=8, shards=2)
        engine = TraSS.build(data, cfg)
        result = similarity_join(engine, 0.03)
        assert result.rows_scanned > 0
        assert result.candidate_pairs >= len(result.pairs)


class TestClusterModel:
    def _table(self, rows=200, max_region_rows=25):
        table = KVTable(max_region_rows=max_region_rows)
        for i in range(rows):
            table.put(f"key{i:05d}".encode(), b"v")
        return table

    def test_validation(self):
        with pytest.raises(KVStoreError):
            ClusterModel(self._table(), nodes=0)

    def test_negative_row_cost_rejected(self):
        with pytest.raises(KVStoreError):
            ClusterModel(self._table(), nodes=2, row_cost=-1.0)

    def test_negative_seek_cost_rejected(self):
        with pytest.raises(KVStoreError):
            ClusterModel(self._table(), nodes=2, seek_cost=-0.5)

    def test_full_scan_load_covers_all_rows(self):
        table = self._table()
        model = ClusterModel(table, nodes=4)
        loads = model.simulate_scan([ScanRange(None, None)])
        assert sum(l.rows_scanned for l in loads.values()) == 200
        assert len(loads) == 4

    def test_makespan_at_least_mean(self):
        table = self._table()
        model = ClusterModel(table, nodes=4, row_cost=1.0, seek_cost=0.0)
        makespan = model.makespan([ScanRange(None, None)])
        assert makespan >= 200 / 4

    def test_skew_of_narrow_scan_is_high(self):
        """A scan hitting one region concentrates on one node."""
        table = self._table()
        model = ClusterModel(table, nodes=4)
        narrow = [ScanRange(b"key00000", b"key00005")]
        assert model.skew(narrow) == pytest.approx(4.0)

    def test_skew_of_balanced_scan_is_low(self):
        table = self._table()
        model = ClusterModel(table, nodes=4)
        assert model.skew([ScanRange(None, None)]) < 2.0

    def test_seek_cost_penalises_many_ranges(self):
        """Covering the same rows with more ranges costs more seeks."""
        table = self._table()
        model = ClusterModel(table, nodes=2, row_cost=0.0, seek_cost=5.0)
        span = ScanRange(b"key00000", b"key00010")
        one = model.makespan([span])
        many = model.makespan(
            [
                ScanRange(f"key{i:05d}".encode(), f"key{i + 1:05d}".encode())
                for i in range(0, 10)
            ]
        )
        assert many > one

    def test_empty_table_skew_is_one(self):
        model = ClusterModel(KVTable(), nodes=3)
        assert model.skew([ScanRange(None, None)]) == 1.0

    def test_bisect_routing_matches_linear_sweep(self):
        """simulate_scan's bisect routing must attribute exactly the
        loads the old O(ranges x regions) linear sweep did."""
        table = self._table(rows=300, max_region_rows=20)
        model = ClusterModel(table, nodes=4)
        ranges = [
            ScanRange(None, b"key00010"),
            ScanRange(b"key00055", b"key00056"),
            ScanRange(b"key00100", b"key00220"),
            ScanRange(b"key00290", None),
            ScanRange(b"zzz", None),  # beyond every row
        ]
        loads = model.simulate_scan(ranges)

        # Linear reference implementation (the pre-bisect behavior).
        expected = {node: [0, 0] for node in range(model.nodes)}
        for scan_range in ranges:
            for idx, region in enumerate(table.regions):
                starts_before_stop = (
                    scan_range.stop is None
                    or region.start_key is None
                    or region.start_key < scan_range.stop
                )
                ends_after_start = (
                    scan_range.start is None
                    or region.end_key is None
                    or scan_range.start < region.end_key
                )
                if not (starts_before_stop and ends_after_start):
                    continue
                node = expected[idx % model.nodes]
                node[0] += sum(
                    1 for _ in region.scan(scan_range.start, scan_range.stop)
                )
                node[1] += 1
        assert {
            n: [load.rows_scanned, load.range_seeks]
            for n, load in loads.items()
        } == expected

    def test_mid_query_split_does_not_double_count(self):
        """A region split landing between ranges of one simulated query
        must not shift node assignment or count the split region's rows
        both as the whole and as its halves: the model snapshots the
        region list once per simulate_scan call."""
        table = self._table(rows=100, max_region_rows=25)
        model = ClusterModel(table, nodes=3)
        full = [ScanRange(None, None), ScanRange(None, None)]
        baseline = model.simulate_scan(full)

        def ranges_with_midway_split():
            yield ScanRange(None, None)
            # Fault injection can force a split from inside region.scan;
            # model it landing between the two ranges of this query.
            table._split_region(0)
            yield ScanRange(None, None)

        loads = model.simulate_scan(ranges_with_midway_split())
        total = sum(l.rows_scanned for l in loads.values())
        assert total == sum(l.rows_scanned for l in baseline.values()) == 200
        assert {
            n: (l.rows_scanned, l.range_seeks) for n, l in loads.items()
        } == {
            n: (l.rows_scanned, l.range_seeks) for n, l in baseline.items()
        }
