"""Tests for engine extras: explain, and behavioural edge cases."""

import random

import pytest

from repro import QueryError, TraSS, TraSSConfig, Trajectory, SpaceBounds

BOUNDS = SpaceBounds(0, 0, 1, 1)


@pytest.fixture(scope="module")
def engine_and_data():
    rng = random.Random(71)
    data = []
    for i in range(80):
        x, y = rng.random() * 0.9, rng.random() * 0.9
        pts = [(x, y)]
        for _ in range(rng.randint(2, 12)):
            x = min(0.99, max(0, x + rng.uniform(-0.01, 0.01)))
            y = min(0.99, max(0, y + rng.uniform(-0.01, 0.01)))
            pts.append((x, y))
        data.append(Trajectory(f"t{i}", pts))
    cfg = TraSSConfig(bounds=BOUNDS, max_resolution=10, shards=2)
    return TraSS.build(data, cfg), data


class TestExplain:
    def test_explain_mentions_key_facts(self, engine_and_data):
        engine, data = engine_and_data
        text = engine.explain(data[0], 0.02)
        assert "resolution band" in text
        assert "scan plan" in text
        assert "rows inside the plan" in text
        assert f"of {len(data)}" in text

    def test_explain_rows_bound_plan_rows(self, engine_and_data):
        """The rows-inside-plan figure must match what a scan touches."""
        engine, data = engine_and_data
        q = data[3]
        text = engine.explain(q, 0.02)
        reported = int(
            text.split("rows inside the plan: ")[1].split(" of")[0]
        )
        result = engine.threshold_search(q, 0.02)
        assert result.retrieved_rows == reported

    def test_explain_shows_query_placement(self, engine_and_data):
        engine, data = engine_and_data
        text = engine.explain(data[5], 0.01)
        placed = engine.store.index.index(data[5])
        assert f"'{placed.element.sequence_str}'" in text
        assert f"position code {placed.position_code}" in text


class TestQueryEdgeCases:
    def test_single_point_query(self, engine_and_data):
        engine, data = engine_and_data
        q = Trajectory("ping", [(0.5, 0.5)])
        result = engine.threshold_search(q, 0.05)
        from repro.measures import discrete_frechet

        want = {
            t.tid
            for t in data
            if discrete_frechet(q.points, t.points) <= 0.05
        }
        assert set(result.answers) == want

    def test_query_far_outside_data(self, engine_and_data):
        engine, _ = engine_and_data
        q = Trajectory("far", [(0.001, 0.999), (0.002, 0.998)])
        result = engine.threshold_search(q, 0.001)
        assert result.answers == {}
        # And the plan touched almost nothing.
        assert result.retrieved_rows <= 2

    def test_huge_eps_returns_everything(self, engine_and_data):
        engine, data = engine_and_data
        q = data[0]
        result = engine.threshold_search(q, 10.0)
        assert len(result.answers) == len(data)

    def test_topk_on_duplicate_heavy_store(self):
        pts = [(0.4, 0.4), (0.42, 0.41), (0.44, 0.42)]
        data = [Trajectory(f"dup{i}", pts) for i in range(12)]
        cfg = TraSSConfig(bounds=BOUNDS, max_resolution=10, shards=2)
        engine = TraSS.build(data, cfg)
        result = engine.topk_search(data[0], 5)
        assert len(result.answers) == 5
        assert all(d == pytest.approx(0.0) for d, _ in result.answers)

    def test_metrics_accumulate_across_queries(self, engine_and_data):
        engine, data = engine_and_data
        before = engine.metrics.snapshot()
        engine.threshold_search(data[0], 0.02)
        engine.topk_search(data[1], 3)
        diff = engine.metrics.diff(before)
        assert diff["range_seeks"] > 0


class TestStatsAndMetricsExport:
    def test_stats_includes_observability_sections(self, engine_and_data):
        engine, data = engine_and_data
        engine.threshold_search(data[0], 0.02)
        stats = engine.stats()
        assert stats["io"]["range_seeks"] > 0
        breaker = stats["resilience"]["breaker"]
        assert set(breaker) >= {"open_regions", "tracked_regions", "trips"}
        assert stats["resilience"]["faults"] is None  # no injector installed
        assert isinstance(stats["slow_queries"], list)

    def test_export_metrics_json(self, engine_and_data):
        engine, data = engine_and_data
        payload = engine.export_metrics("json")
        assert payload["trass.store.trajectories"]["value"] == len(data)
        assert (
            payload["trass.io.rows_scanned"]["value"]
            == engine.metrics.snapshot()["rows_scanned"]
        )

    def test_export_metrics_unknown_format(self, engine_and_data):
        engine, _ = engine_and_data
        with pytest.raises(QueryError):
            engine.export_metrics("csv")
