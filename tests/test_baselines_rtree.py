"""Unit tests for the R-tree substrate."""

import random

import pytest

from repro.baselines.rtree import RTree, RTreeEntry
from repro.exceptions import ReproError
from repro.geometry.mbr import MBR


def random_entries(rng, n):
    out = []
    for i in range(n):
        x, y = rng.random(), rng.random()
        out.append(
            RTreeEntry(
                MBR(x, y, x + rng.random() * 0.05, y + rng.random() * 0.05), i
            )
        )
    return out


class TestInsertPath:
    def test_insert_and_search(self):
        rng = random.Random(1)
        entries = random_entries(rng, 300)
        tree = RTree(max_entries=8)
        for e in entries:
            tree.insert(e)
        assert len(tree) == 300
        tree.check_invariants()
        window = MBR(0.2, 0.2, 0.5, 0.5)
        got = {e.payload for e in tree.search(window)}
        want = {e.payload for e in entries if e.mbr.intersects(window)}
        assert got == want

    def test_splits_happen(self):
        rng = random.Random(2)
        tree = RTree(max_entries=4)
        for e in random_entries(rng, 100):
            tree.insert(e)
        assert tree.split_count > 0
        assert tree.height() > 1

    def test_min_fanout_validated(self):
        with pytest.raises(ReproError):
            RTree(max_entries=2)

    def test_empty_tree_search(self):
        tree = RTree()
        assert list(tree.search(MBR(0, 0, 1, 1))) == []
        assert tree.nearest(0.5, 0.5, 3) == []


class TestBulkLoad:
    def test_str_matches_linear_search(self):
        rng = random.Random(3)
        entries = random_entries(rng, 500)
        tree = RTree.bulk_load(entries, max_entries=16)
        assert len(tree) == 500
        tree.check_invariants()
        for _ in range(20):
            x, y = rng.random(), rng.random()
            window = MBR(x, y, min(1, x + 0.2), min(1, y + 0.2))
            got = {e.payload for e in tree.search(window)}
            want = {e.payload for e in entries if e.mbr.intersects(window)}
            assert got == want

    def test_bulk_load_empty(self):
        tree = RTree.bulk_load([])
        assert len(tree) == 0
        assert list(tree.search(MBR(0, 0, 1, 1))) == []

    def test_bulk_load_shallower_than_inserts(self):
        rng = random.Random(4)
        entries = random_entries(rng, 400)
        bulk = RTree.bulk_load(entries, max_entries=8)
        dynamic = RTree(max_entries=8)
        for e in entries:
            dynamic.insert(e)
        assert bulk.height() <= dynamic.height()


class TestNearest:
    def test_nearest_order(self):
        rng = random.Random(5)
        entries = random_entries(rng, 200)
        tree = RTree.bulk_load(entries)
        got = tree.nearest(0.5, 0.5, 10)
        dists = [e.mbr.distance_to_point(0.5, 0.5) for e in got]
        assert dists == sorted(dists)
        # Must match the true nearest set by distance.
        all_sorted = sorted(
            entries, key=lambda e: e.mbr.distance_to_point(0.5, 0.5)
        )
        assert dists[-1] <= all_sorted[10].mbr.distance_to_point(0.5, 0.5) + 1e-12

    def test_nearest_limit(self):
        rng = random.Random(6)
        tree = RTree.bulk_load(random_entries(rng, 50))
        assert len(tree.nearest(0.1, 0.1, 7)) == 7
        assert len(tree.nearest(0.1, 0.1, 500)) == 50
