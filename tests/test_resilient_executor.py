"""Unit tests for the resilient executor: retry policy, circuit
breaker, deadline budget, degraded mode, and the pass-through guarantee
(fault-free execution is byte-identical to a plain scan)."""

import random

import pytest

from repro.core.executor import (
    CircuitBreaker,
    ResilientExecutor,
    RetryPolicy,
    ScanReport,
)
from repro.exceptions import (
    RegionUnavailableError,
    ScanTimeoutError,
    TransientError,
)
from repro.kvstore.faults import FaultInjector, FaultSchedule
from repro.kvstore.table import KVTable, ScanRange


def make_table(n=60, max_region_rows=20):
    table = KVTable(max_region_rows=max_region_rows)
    for i in range(n):
        table.put(f"k{i:04d}".encode(), f"v{i}".encode())
    return table


class TestRetryPolicy:
    def test_exponential_growth_and_cap(self):
        policy = RetryPolicy(
            backoff_base=0.1, backoff_multiplier=2.0, backoff_max=0.5,
            jitter=0.0,
        )
        rng = random.Random(0)
        assert policy.delay(0, rng) == pytest.approx(0.1)
        assert policy.delay(1, rng) == pytest.approx(0.2)
        assert policy.delay(2, rng) == pytest.approx(0.4)
        assert policy.delay(3, rng) == pytest.approx(0.5)  # capped
        assert policy.delay(10, rng) == pytest.approx(0.5)

    def test_jitter_bounded_and_deterministic(self):
        policy = RetryPolicy(backoff_base=1.0, backoff_max=10.0, jitter=0.25)
        a = [policy.delay(0, random.Random(7)) for _ in range(3)]
        b = [policy.delay(0, random.Random(7)) for _ in range(3)]
        assert a == b  # same seed, same jitter
        for d in a:
            assert 1.0 <= d <= 1.25


class TestCircuitBreaker:
    def test_opens_after_threshold_and_half_opens(self):
        breaker = CircuitBreaker(failure_threshold=3, cooldown_seconds=10.0)
        span = (b"a", b"b")
        assert not breaker.record_failure(span, now=0.0)
        assert not breaker.record_failure(span, now=1.0)
        assert breaker.record_failure(span, now=2.0)  # open transition
        assert breaker.trips == 1
        assert breaker.is_open(span, now=5.0)
        # Cooldown over: half-open, one probe allowed...
        assert not breaker.is_open(span, now=13.0)
        # ...and a single failure re-opens immediately.
        assert breaker.record_failure(span, now=13.0)
        assert breaker.is_open(span, now=14.0)

    def test_success_closes(self):
        breaker = CircuitBreaker(failure_threshold=2, cooldown_seconds=10.0)
        span = (None, b"m")
        breaker.record_failure(span, now=0.0)
        breaker.record_failure(span, now=0.0)
        assert breaker.is_open(span, now=1.0)
        breaker.record_success(span)
        assert not breaker.is_open(span, now=1.0)
        assert not breaker.any_open


class TestPassThrough:
    """Without an injector the executor must be invisible."""

    def test_rows_and_metrics_identical_to_plain_scan(self):
        table = make_table()
        ranges = [
            ScanRange(b"k0000", b"k0015"),
            ScanRange(b"k0030", b"k0055"),
            ScanRange(b"k0050", None),
        ]
        table.metrics.reset()
        plain = table.scan_ranges(ranges)
        plain_delta = table.metrics.snapshot()

        table.metrics.reset()
        executor = ResilientExecutor(table)
        rows, report = executor.scan_ranges(ranges)
        resilient_delta = table.metrics.snapshot()

        assert rows == plain
        assert resilient_delta == plain_delta
        assert report.ranges_total == 3
        assert report.ranges_completed == 3
        assert report.completeness == 1.0
        assert report.retries == 0
        assert not report.degraded

    def test_empty_ranges(self):
        executor = ResilientExecutor(make_table())
        rows, report = executor.scan_ranges([])
        assert rows == []
        assert report.completeness == 1.0


class TestRetryMasking:
    def test_transient_outages_fully_masked(self):
        # Single region: the injector caps consecutive failures per
        # region span, so a retry budget larger than the cap is a hard
        # guarantee of masking.
        table = make_table(n=60, max_region_rows=500)
        assert table.num_regions == 1
        schedule = FaultSchedule(
            seed=1, region_unavailable_prob=0.5, max_consecutive_failures=2
        )
        expected = table.scan_ranges([ScanRange(None, None)])
        table.fault_injector = FaultInjector(schedule)
        executor = ResilientExecutor(
            table, RetryPolicy(max_attempts=4, jitter=0.0)
        )
        rows, report = executor.scan_ranges([ScanRange(None, None)])
        assert rows == expected
        assert report.retries > 0
        assert report.faults_encountered > 0
        assert report.completeness == 1.0
        assert table.metrics.retries == report.retries
        assert table.metrics.faults_injected == report.faults_encountered

    def test_retry_discards_partial_rows(self):
        """A fault after some regions already streamed must not leave
        duplicates in the materialised result."""
        table = make_table(n=60, max_region_rows=10)  # several regions
        assert table.num_regions > 3
        expected = table.scan_ranges([ScanRange(None, None)])
        table.fault_injector = FaultInjector(
            FaultSchedule(
                seed=11,
                region_unavailable_prob=0.3,
                max_consecutive_failures=1,
            )
        )
        executor = ResilientExecutor(table, RetryPolicy(max_attempts=12))
        rows, report = executor.scan_ranges([ScanRange(None, None)])
        assert rows == expected  # exactly once, in order
        assert report.faults_encountered > 0

    def test_exhausted_retries_raise_without_degraded_mode(self):
        table = make_table()
        table.fault_injector = FaultInjector(
            FaultSchedule(
                seed=1,
                region_unavailable_prob=1.0,
                max_consecutive_failures=10_000,
            )
        )
        executor = ResilientExecutor(table, RetryPolicy(max_attempts=3))
        with pytest.raises(RegionUnavailableError):
            executor.scan_ranges([ScanRange(None, None)])


class TestDegradedMode:
    def _always_failing_table(self):
        table = make_table()
        table.fault_injector = FaultInjector(
            FaultSchedule(
                seed=2,
                region_unavailable_prob=1.0,
                max_consecutive_failures=10_000,
            )
        )
        return table

    def test_skipped_ranges_reported_exactly(self):
        table = self._always_failing_table()
        ranges = [ScanRange(b"k0000", b"k0010"), ScanRange(b"k0020", b"k0030")]
        executor = ResilientExecutor(
            table, RetryPolicy(max_attempts=2), degraded_mode=True,
        )
        rows, report = executor.scan_ranges(ranges)
        assert rows == []
        assert report.skipped_ranges == ranges
        assert report.completeness == 0.0
        assert table.metrics.ranges_skipped == 2

    def test_partial_completeness(self):
        table = make_table(n=60, max_region_rows=10)
        # Fail only sometimes: some ranges survive, some are skipped.
        table.fault_injector = FaultInjector(
            FaultSchedule(
                seed=3,
                region_unavailable_prob=0.7,
                max_consecutive_failures=10_000,
            )
        )
        executor = ResilientExecutor(
            table, RetryPolicy(max_attempts=2), degraded_mode=True,
        )
        ranges = [
            ScanRange(f"k{i:04d}".encode(), f"k{i + 10:04d}".encode())
            for i in range(0, 60, 10)
        ]
        rows, report = executor.scan_ranges(ranges)
        assert 0.0 < report.completeness < 1.0
        assert report.skipped_ranges
        # Every returned row is outside every skipped range.
        for key, _ in rows:
            for skipped in report.skipped_ranges:
                assert not (
                    (skipped.start is None or key >= skipped.start)
                    and (skipped.stop is None or key < skipped.stop)
                )


class TestDeadline:
    def test_injected_latency_trips_deadline(self):
        table = make_table(n=60, max_region_rows=10)
        table.fault_injector = FaultInjector(
            FaultSchedule(
                seed=4, slow_region_prob=1.0, slow_region_seconds=5.0
            )
        )
        executor = ResilientExecutor(table, deadline_seconds=8.0)
        ranges = [
            ScanRange(f"k{i:04d}".encode(), f"k{i + 10:04d}".encode())
            for i in range(0, 60, 10)
        ]
        with pytest.raises(ScanTimeoutError):
            executor.scan_ranges(ranges)

    def test_deadline_degrades_instead_of_raising(self):
        table = make_table(n=60, max_region_rows=10)
        table.fault_injector = FaultInjector(
            FaultSchedule(
                seed=4, slow_region_prob=1.0, slow_region_seconds=5.0
            )
        )
        executor = ResilientExecutor(
            table, deadline_seconds=8.0, degraded_mode=True
        )
        ranges = [
            ScanRange(f"k{i:04d}".encode(), f"k{i + 10:04d}".encode())
            for i in range(0, 60, 10)
        ]
        rows, report = executor.scan_ranges(ranges)
        assert report.deadline_exceeded
        assert report.skipped_ranges
        assert report.completeness < 1.0

    def test_no_deadline_no_timeout(self):
        table = make_table()
        executor = ResilientExecutor(table)
        assert executor.deadline_from_now() is None


class TestBreakerIntegration:
    def test_breaker_short_circuits_after_persistent_failures(self):
        table = make_table()  # single region
        table.fault_injector = FaultInjector(
            FaultSchedule(
                seed=6,
                region_unavailable_prob=1.0,
                max_consecutive_failures=10_000,
            )
        )
        executor = ResilientExecutor(
            table,
            RetryPolicy(max_attempts=2, jitter=0.0),
            degraded_mode=True,
            breaker=CircuitBreaker(failure_threshold=3, cooldown_seconds=1e9),
        )
        ranges = [ScanRange(None, None)] * 6
        rows, report = executor.scan_ranges(ranges)
        assert rows == []
        assert table.metrics.breaker_trips == 1
        assert report.breaker_short_circuits > 0
        # Short-circuited ranges burned no scan attempts: the injector
        # stopped being consulted once the breaker opened.
        assert report.faults_encountered < 2 * len(ranges)

    def test_open_breaker_raises_fast_without_degraded_mode(self):
        table = make_table()
        table.fault_injector = FaultInjector(
            FaultSchedule(
                seed=6,
                region_unavailable_prob=1.0,
                max_consecutive_failures=10_000,
            )
        )
        executor = ResilientExecutor(
            table,
            RetryPolicy(max_attempts=4, jitter=0.0),
            breaker=CircuitBreaker(failure_threshold=2, cooldown_seconds=1e9),
        )
        with pytest.raises(RegionUnavailableError):
            executor.scan_ranges([ScanRange(None, None)])
        # Breaker is now open; the next call fails without consuming
        # any retry budget.
        faults_before = table.metrics.faults_injected
        with pytest.raises(RegionUnavailableError):
            executor.scan_ranges([ScanRange(None, None)])
        assert table.metrics.faults_injected == faults_before
