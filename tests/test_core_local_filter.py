"""Unit tests for local filtering (Algorithm 2, Lemmas 12-14)."""

import math
import random

import pytest

from repro.core.local_filter import LocalFilter, LocalFilterRowFilter
from repro.core.codec import encode_row
from repro.core.storage import TrajectoryRecord
from repro.exceptions import QueryError
from repro.features.dp_features import extract_dp_features
from repro.geometry.trajectory import Trajectory
from repro.measures import discrete_frechet, get_measure

THETA = 0.01


def record_of(tid, points):
    features = extract_dp_features(points, THETA)
    return TrajectoryRecord(tid, tuple(points), features, 0)


def walk(rng, start, n, step=0.02):
    x, y = start
    pts = [(x, y)]
    for _ in range(n - 1):
        x += rng.uniform(-step, step)
        y += rng.uniform(-step, step)
        pts.append((x, y))
    return pts


class TestSoundness:
    def test_never_rejects_similar(self):
        """The filter may only reject trajectories that are provably
        dissimilar — similar ones must always pass (no false
        dismissals)."""
        rng = random.Random(21)
        measure = get_measure("frechet")
        for _ in range(40):
            q = Trajectory("q", walk(rng, (0.5, 0.5), 12))
            t_points = walk(rng, (0.5 + rng.uniform(-0.1, 0.1), 0.5), 10)
            exact = discrete_frechet(q.points, t_points)
            filt = LocalFilter(q, measure, eps=exact + 1e-9, dp_tolerance=THETA)
            assert filt.passes(record_of("t", t_points))

    @pytest.mark.parametrize("name", ["frechet", "hausdorff", "dtw"])
    def test_never_rejects_similar_all_measures(self, name):
        rng = random.Random(22)
        measure = get_measure(name)
        for _ in range(25):
            q = Trajectory("q", walk(rng, (0.5, 0.5), 10))
            t_points = walk(rng, (0.52, 0.5), 9)
            exact = measure.distance(q.points, t_points)
            filt = LocalFilter(q, measure, eps=exact + 1e-9, dp_tolerance=THETA)
            assert filt.passes(record_of("t", t_points)), name


class TestRejections:
    def test_mbr_gap_rejection(self):
        q = Trajectory("q", [(0.1, 0.1), (0.12, 0.1)])
        filt = LocalFilter(q, get_measure("frechet"), 0.01, THETA)
        assert not filt.passes(record_of("far", [(0.9, 0.9), (0.92, 0.9)]))
        assert filt.stats.rejected_mbr == 1

    def test_start_end_rejection_frechet(self):
        """Lemma 12: same area but reversed direction fails for ordered
        measures."""
        pts = [(0.1 * i, 0.0) for i in range(6)]
        q = Trajectory("q", pts)
        reversed_t = record_of("r", list(reversed(pts)))
        filt = LocalFilter(q, get_measure("frechet"), 0.1, THETA)
        assert not filt.passes(reversed_t)
        assert filt.stats.rejected_start_end == 1

    def test_start_end_skipped_for_hausdorff(self):
        """Hausdorff ignores order; the reversed trajectory is at
        distance 0 and must pass (Section VII-A)."""
        pts = [(0.1 * i, 0.0) for i in range(6)]
        q = Trajectory("q", pts)
        reversed_t = record_of("r", list(reversed(pts)))
        filt = LocalFilter(q, get_measure("hausdorff"), 0.01, THETA)
        assert filt.passes(reversed_t)

    def test_rep_point_rejection(self):
        """Lemma 13: a spike far from the query's boxes kills the
        candidate even when endpoints and MBR gap pass."""
        q = Trajectory("q", [(0.0, 0.0), (0.5, 0.0), (1.0, 0.0)])
        spike = [(0.0, 0.0), (0.5, 0.4), (1.0, 0.0)]  # big detour
        filt = LocalFilter(q, get_measure("frechet"), 0.05, THETA)
        assert not filt.passes(record_of("s", spike))
        assert filt.stats.rejected_rep_points >= 1

    def test_infinite_eps_passes_everything(self):
        q = Trajectory("q", [(0.1, 0.1), (0.2, 0.1)])
        filt = LocalFilter(q, get_measure("frechet"), math.inf, THETA)
        assert filt.passes(record_of("far", [(0.9, 0.9)]))
        assert filt.stats.passed == 1

    def test_threshold_tightening(self):
        q = Trajectory("q", [(0.1, 0.1), (0.2, 0.1)])
        filt = LocalFilter(q, get_measure("frechet"), math.inf, THETA)
        near_miss = record_of("m", [(0.4, 0.1), (0.5, 0.1)])
        assert filt.passes(near_miss)
        filt.set_threshold(0.01)
        assert not filt.passes(near_miss)

    def test_negative_eps_rejected(self):
        q = Trajectory("q", [(0.1, 0.1)])
        with pytest.raises(QueryError):
            LocalFilter(q, get_measure("frechet"), -1.0, THETA)


class TestRowFilterAdapter:
    def test_accepted_rows_cached(self):
        q = Trajectory("q", [(0.1, 0.1), (0.2, 0.1)])
        filt = LocalFilter(q, get_measure("frechet"), 0.5, THETA)
        row_filter = LocalFilterRowFilter(filt)
        points = [(0.12, 0.1), (0.22, 0.1)]
        blob = encode_row("t9", points, extract_dp_features(points, THETA))
        assert row_filter.accept(b"key9", blob)
        assert b"key9" in row_filter.accepted
        assert row_filter.accepted[b"key9"].tid == "t9"

    def test_rejected_rows_not_cached(self):
        q = Trajectory("q", [(0.1, 0.1), (0.2, 0.1)])
        filt = LocalFilter(q, get_measure("frechet"), 0.01, THETA)
        row_filter = LocalFilterRowFilter(filt)
        points = [(0.9, 0.9), (0.92, 0.9)]
        blob = encode_row("far", points, extract_dp_features(points, THETA))
        assert not row_filter.accept(b"keyF", blob)
        assert b"keyF" not in row_filter.accepted


class TestFilterPower:
    def test_statistics_accumulate(self):
        rng = random.Random(23)
        q = Trajectory("q", walk(rng, (0.5, 0.5), 10))
        filt = LocalFilter(q, get_measure("frechet"), 0.05, THETA)
        for i in range(50):
            start = (rng.random(), rng.random())
            filt.passes(record_of(f"t{i}", walk(rng, start, 8)))
        assert filt.stats.evaluated == 50
        assert filt.stats.passed + filt.stats.rejected == 50
        # Most random trajectories are nowhere near the query.
        assert filt.stats.rejected > 25
