"""Mid-scan splits and compactions must not duplicate or drop rows.

A scan captures the overlapping region list and each region's LSM
iterators when it starts; ``Region.split`` builds two new regions
without touching the old one, and ``compact`` swaps in a new SSTable
list leaving the old runs intact.  An in-flight scan therefore keeps
draining the pre-mutation structures and delivers every row exactly
once — the classic HBase split-races-scanner guarantee, pinned here
both manually and through the fault injector.

Also pins the bisect region-routing rewrite: ``overlapping_region_span``
must agree with the brute-force linear overlap test on every range.
"""

import bisect

import pytest

from repro.core.executor import ResilientExecutor, RetryPolicy
from repro.kvstore.faults import FaultInjector, FaultSchedule
from repro.kvstore.table import KVTable, ScanRange


def make_table(rows=120, max_region_rows=30):
    table = KVTable(max_region_rows=max_region_rows)
    for i in range(rows):
        table.put(f"key{i:05d}".encode(), f"v{i}".encode())
    return table


def expected_rows(rows=120):
    return [
        (f"key{i:05d}".encode(), f"v{i}".encode()) for i in range(rows)
    ]


class TestManualRaces:
    def test_split_mid_scan_is_exactly_once(self):
        table = make_table()
        regions_before = table.num_regions
        scan = table.scan(None, None)
        collected = [next(scan) for _ in range(10)]
        # Split the region currently being drained *and* a later one.
        table._split_region(0)
        table._split_region(table.num_regions - 1)
        assert table.num_regions == regions_before + 2
        collected.extend(scan)
        assert collected == expected_rows()

    def test_compaction_mid_scan_is_exactly_once(self):
        table = make_table()
        table.flush_all()  # push rows into SSTables so compact has work
        scan = table.scan(None, None)
        collected = [next(scan) for _ in range(10)]
        for region in table.regions:
            region.store.compact()
        collected.extend(scan)
        assert collected == expected_rows()

    def test_split_then_fresh_scan_sees_same_rows(self):
        table = make_table()
        stale = list(table.scan(None, None))
        table._split_region(1)
        assert list(table.scan(None, None)) == stale

    def test_writes_behind_scan_cursor_do_not_duplicate(self):
        """A put routed into an already-drained region is invisible to
        the in-flight scan (snapshot iterators), visible to the next."""
        table = make_table()
        scan = table.scan(None, None)
        collected = [next(scan) for _ in range(40)]  # past region 0
        table.put(b"key00000a", b"late")
        collected.extend(scan)
        assert collected == expected_rows()
        assert (b"key00000a", b"late") in list(table.scan(None, None))


class TestInjectedRaces:
    def test_forced_splits_during_scan(self):
        table = make_table()
        regions_before = table.num_regions
        table.fault_injector = injector = FaultInjector(
            FaultSchedule(seed=7, split_prob=1.0)
        )
        rows = list(table.scan(None, None))
        assert rows == expected_rows()
        assert injector.forced_splits > 0
        assert table.num_regions > regions_before

    def test_forced_compactions_during_scan(self):
        table = make_table()
        table.flush_all()
        table.fault_injector = injector = FaultInjector(
            FaultSchedule(seed=7, compact_prob=1.0)
        )
        rows = list(table.scan(None, None))
        assert rows == expected_rows()
        assert injector.forced_compactions > 0

    def test_disruptions_with_retries_stay_exactly_once(self):
        """The full chaos mix — outages, stragglers, splits,
        compactions — resolved through the executor still yields the
        exact row set."""
        table = make_table()
        table.fault_injector = injector = FaultInjector(
            FaultSchedule(
                seed=13,
                region_unavailable_prob=0.3,
                max_consecutive_failures=1,
                slow_region_prob=0.3,
                split_prob=0.2,
                compact_prob=0.2,
            )
        )
        executor = ResilientExecutor(table, RetryPolicy(max_attempts=12))
        rows, report = executor.scan_ranges([ScanRange(None, None)])
        assert rows == expected_rows()
        assert report.completeness == 1.0
        assert injector.forced_splits + injector.forced_compactions > 0


class TestBisectRouting:
    """The O(log regions) routing must match the linear overlap test."""

    def _brute_force_span(self, table, start, stop):
        hits = [
            i
            for i, r in enumerate(table.regions)
            if (stop is None or r.start_key is None or r.start_key < stop)
            and (start is None or r.end_key is None or start < r.end_key)
        ]
        return hits

    @pytest.mark.parametrize("max_region_rows", [25, 1000])
    def test_span_matches_brute_force(self, max_region_rows):
        table = make_table(rows=200, max_region_rows=max_region_rows)
        keys = [None] + [f"key{i:05d}".encode() for i in range(0, 220, 7)]
        probes = [
            (start, stop)
            for start in keys
            for stop in keys
            if start is None or stop is None or start < stop
        ]
        assert probes
        for start, stop in probes:
            lo, hi = table.overlapping_region_span(start, stop)
            assert list(range(lo, hi)) == self._brute_force_span(
                table, start, stop
            ), (start, stop)

    def test_point_routing_matches_scan(self):
        table = make_table(rows=200, max_region_rows=25)
        for i in range(0, 220, 3):
            key = f"key{i:05d}".encode()
            region = table.region_for(key)
            assert region.start_key is None or region.start_key <= key
            assert region.end_key is None or key < region.end_key

    def test_cache_invalidated_by_split(self):
        table = make_table(rows=100, max_region_rows=1000)
        assert table.overlapping_region_span(b"key00050", b"key00060") == (
            0,
            1,
        )
        table._split_region(0)
        lo, hi = table.overlapping_region_span(None, None)
        assert (lo, hi) == (0, 2)
        # Routing still agrees with brute force after the split.
        for start, stop in [(b"key00000", b"key00099"), (None, b"key00050")]:
            lo, hi = table.overlapping_region_span(start, stop)
            assert list(range(lo, hi)) == self._brute_force_span(
                table, start, stop
            )

    def test_cache_invalidated_by_wholesale_region_assignment(self):
        """load_table replaces table.regions outright; the cache must
        notice."""
        table = make_table(rows=100, max_region_rows=25)
        spans = table.overlapping_region_span(None, None)
        bigger = make_table(rows=200, max_region_rows=20)
        table.regions = bigger.regions
        lo, hi = table.overlapping_region_span(None, None)
        assert (lo, hi) == (0, len(bigger.regions))
        assert (lo, hi) != spans
