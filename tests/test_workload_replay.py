"""Workload capture, deterministic replay, telemetry persistence, and
the observability CLI surface (heatmap / doctor / replay / stats).

The replay contract: re-executing a captured workload produces
**byte-identical answer digests** and identical per-query IOMetrics
deltas — the digest round-trips floats through ``repr``, so a single
ULP of drift in any distance is a named divergence, not a pass.
"""

import json
import random

import pytest

from repro import SpaceBounds, TraSS, TraSSConfig, Trajectory
from repro.cli import main as cli_main
from repro.obs.workload_log import (
    TELEMETRY_FILE,
    WorkloadEntry,
    WorkloadRecorder,
    answers_digest,
    load_observability,
    replay_workload,
    save_observability,
)

BOUNDS = SpaceBounds(0.0, 0.0, 10.0, 10.0)


def make_walk(tid, rng, n=6):
    x, y = rng.uniform(0.5, 9.5), rng.uniform(0.5, 9.5)
    points = [(x, y)]
    for _ in range(n - 1):
        x += rng.uniform(-0.05, 0.05)
        y += rng.uniform(-0.05, 0.05)
        points.append((x, y))
    return Trajectory(tid, points)


def small_config(**overrides):
    base = dict(
        max_resolution=8,
        bounds=BOUNDS,
        shards=4,
        dp_tolerance=0.005,
    )
    base.update(overrides)
    return TraSSConfig(**base)


def build_engine(n=120, seed=7, **overrides):
    rng = random.Random(seed)
    trajectories = [make_walk(f"t{i}", rng) for i in range(n)]
    return TraSS.build(trajectories, small_config(**overrides)), trajectories


def run_mixed_workload(engine, trajectories, count=12):
    for i, q in enumerate(trajectories[:count]):
        if i % 3 == 2:
            engine.topk_search(q, 5)
        else:
            engine.threshold_search(q, 0.08)


# ----------------------------------------------------------------------
# Recorder
# ----------------------------------------------------------------------
class TestRecorder:
    def test_queries_are_captured_with_io_and_digest(self):
        engine, trajectories = build_engine()
        run_mixed_workload(engine, trajectories, 9)
        recorder = engine.workload_recorder
        entries = recorder.entries()
        assert len(entries) == 9
        assert [e.seq for e in entries] == list(range(9))
        kinds = [e.kind for e in entries]
        assert kinds.count("topk") == 3 and kinds.count("threshold") == 6
        for e in entries:
            assert e.measure == "frechet"
            assert e.answers_digest and len(e.answers_digest) == 64
            assert e.io_delta["rows_scanned"] >= 0
            assert e.points  # query geometry travels with the entry
        # The summed per-query deltas reproduce the engine totals.
        total = sum(e.io_delta["rows_scanned"] for e in entries)
        assert total == engine.metrics.snapshot()["rows_scanned"]

    def test_ring_buffer_keeps_newest(self):
        engine, trajectories = build_engine(workload_log_size=5)
        run_mixed_workload(engine, trajectories, 12)
        entries = engine.workload_recorder.entries()
        assert len(entries) == 5
        assert [e.seq for e in entries] == list(range(7, 12))

    def test_paused_suspends_and_restores(self):
        recorder = WorkloadRecorder(capacity=4)
        assert recorder.enabled
        with recorder.paused():
            assert not recorder.enabled
        assert recorder.enabled

    def test_json_round_trip(self):
        engine, trajectories = build_engine()
        run_mixed_workload(engine, trajectories, 6)
        recorder = engine.workload_recorder
        payload = json.loads(json.dumps(recorder.to_json()))
        other = WorkloadRecorder(capacity=recorder.capacity)
        other.restore_from_json(payload)
        assert [e.to_json() for e in other.entries()] == [
            e.to_json() for e in recorder.entries()
        ]

    def test_digest_sensitive_to_membership_and_order(self):
        class _Threshold:
            def __init__(self, answers):
                self.answers = answers

        class _TopK:
            def __init__(self, answers):
                self.answers = answers

        a = answers_digest("threshold", _Threshold({"a": 0.1, "b": 0.2}))
        # dict ordering is canonicalised away...
        b = answers_digest("threshold", _Threshold({"b": 0.2, "a": 0.1}))
        assert a == b
        # ...but membership and distance changes are not
        assert a != answers_digest("threshold", _Threshold({"a": 0.1}))
        assert a != answers_digest(
            "threshold", _Threshold({"a": 0.1 + 1e-15, "b": 0.2})
        )
        # top-k ranking order matters
        k1 = answers_digest("topk", _TopK([(0.1, "a"), (0.2, "b")]))
        k2 = answers_digest("topk", _TopK([(0.2, "b"), (0.1, "a")]))
        assert k1 != k2


# ----------------------------------------------------------------------
# Replay determinism
# ----------------------------------------------------------------------
class TestReplay:
    def test_replay_is_byte_identical(self):
        engine, trajectories = build_engine()
        run_mixed_workload(engine, trajectories, 12)
        before = len(engine.workload_recorder)
        report = engine.replay()
        assert report.total == 12
        assert report.ok, report.render()
        for outcome in report.outcomes:
            assert outcome.digest == outcome.entry.answers_digest
            assert outcome.answers == outcome.entry.answers
        # Replaying did not append to the log it replayed from.
        assert len(engine.workload_recorder) == before
        # And the registry-visible I/O deltas match the recording:
        # identical queries against identical data scan identical rows.
        io_before = engine.metrics.snapshot()
        engine.replay()
        replay_delta = engine.metrics.diff(io_before)
        recorded = engine.workload_recorder.entries()
        assert replay_delta["rows_scanned"] == sum(
            e.io_delta["rows_scanned"] for e in recorded
        )
        assert replay_delta["rows_returned"] == sum(
            e.io_delta["rows_returned"] for e in recorded
        )

    def test_replay_survives_save_load(self, tmp_path):
        engine, trajectories = build_engine()
        run_mixed_workload(engine, trajectories, 8)
        engine.save(str(tmp_path))
        loaded = TraSS.load(str(tmp_path))
        assert len(loaded.workload_recorder) == 8
        report = loaded.replay()
        assert report.total == 8
        assert report.ok, report.render()

    def test_replay_detects_divergence(self):
        engine, trajectories = build_engine()
        for q in trajectories[:4]:
            engine.threshold_search(q, 0.08)
        entries = engine.workload_recorder.entries()
        # Corrupt one recorded digest: the report must name exactly it.
        entries[2].answers_digest = "0" * 64
        report = replay_workload(engine, entries)
        assert not report.ok
        assert [o.entry.seq for o in report.mismatches] == [2]
        rendered = report.render()
        assert "DIVERGED seq=2" in rendered
        payload = report.to_json()
        assert payload["mismatched"] == 1 and payload["ok"] is False

    def test_replay_parallel_engine_matches_sequential_recording(self):
        engine, trajectories = build_engine()
        run_mixed_workload(engine, trajectories, 8)
        entries = engine.workload_recorder.entries()
        parallel = TraSS.build(
            trajectories, small_config(scan_workers=4)
        )
        report = replay_workload(parallel, entries)
        assert report.ok, report.render()


# ----------------------------------------------------------------------
# Persistence (TELEMETRY.json)
# ----------------------------------------------------------------------
class TestTelemetryPersistence:
    def test_save_load_round_trips_heat_and_workload(self, tmp_path):
        engine, trajectories = build_engine()
        run_mixed_workload(engine, trajectories, 10)
        heat = list(engine.storage_telemetry.heatmap.heat)
        rows = list(engine.storage_telemetry.heatmap.rows)
        engine.save(str(tmp_path))
        assert (tmp_path / TELEMETRY_FILE).exists()
        loaded = TraSS.load(str(tmp_path))
        restored = loaded.storage_telemetry.heatmap
        assert restored.rows == rows
        for a, b in zip(restored.heat, heat):
            assert a == pytest.approx(b)
        assert len(loaded.workload_recorder) == 10

    def test_missing_telemetry_file_degrades_gracefully(self, tmp_path):
        engine, trajectories = build_engine()
        run_mixed_workload(engine, trajectories, 4)
        engine.save(str(tmp_path))
        (tmp_path / TELEMETRY_FILE).unlink()
        loaded = TraSS.load(str(tmp_path))  # no error
        assert loaded.storage_telemetry.heatmap.total_rows == 0
        assert len(loaded.workload_recorder) == 0
        # And queries still work and record afresh.
        loaded.threshold_search(trajectories[0], 0.08)
        assert len(loaded.workload_recorder) == 1

    def test_grid_mismatch_keeps_fresh_state(self, tmp_path):
        engine, trajectories = build_engine()
        run_mixed_workload(engine, trajectories, 4)
        save_observability(engine, str(tmp_path))
        # A store with a different heatmap resolution cannot adopt the
        # persisted grid — it keeps its empty state instead of guessing.
        other, _ = build_engine(n=40, heatmap_buckets_per_shard=4)
        assert load_observability(other, str(tmp_path))  # workload restores
        assert other.storage_telemetry.heatmap.total_rows == 0
        assert len(other.workload_recorder) == 4

    def test_disabled_telemetry_saves_nothing(self, tmp_path):
        engine, trajectories = build_engine(storage_telemetry=False)
        for q in trajectories[:3]:
            engine.threshold_search(q, 0.08)
        engine.save(str(tmp_path))
        assert not (tmp_path / TELEMETRY_FILE).exists()
        loaded = TraSS.load(str(tmp_path))
        assert loaded.storage_telemetry is None
        assert loaded.workload_recorder is None


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------
class TestObservabilityCLI:
    @pytest.fixture()
    def store_dir(self, tmp_path):
        engine, trajectories = build_engine(n=80)
        run_mixed_workload(engine, trajectories, 8)
        engine.save(str(tmp_path / "store"))
        return str(tmp_path / "store")

    def test_heatmap_json(self, store_dir, capsys):
        rc = cli_main(["heatmap", "--store", store_dir, "--json"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["total_rows"] > 0
        assert payload["regions"] and payload["buckets"]

    def test_heatmap_ascii(self, store_dir, capsys):
        rc = cli_main(["heatmap", "--store", store_dir])
        assert rc == 0
        out = capsys.readouterr().out
        assert "key-space heatmap" in out
        assert "shard   0" in out

    def test_doctor_json(self, store_dir, capsys):
        rc = cli_main(["doctor", "--store", store_dir, "--json"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert "recommendations" in payload
        for rec in payload["recommendations"]:
            assert rec["kind"] and rec["evidence"]

    def test_replay_matches(self, store_dir, capsys):
        rc = cli_main(["replay", "--store", store_dir])
        assert rc == 0
        out = capsys.readouterr().out
        assert "replayed 8 queries" in out
        assert "8 matched, 0 diverged" in out

    def test_replay_empty_log_fails(self, tmp_path, capsys):
        engine, _ = build_engine(n=20)
        engine.save(str(tmp_path / "empty"))
        rc = cli_main(["replay", "--store", str(tmp_path / "empty")])
        assert rc == 1

    def test_heatmap_requires_telemetry(self, tmp_path, capsys):
        engine, _ = build_engine(n=20, storage_telemetry=False)
        engine.save(str(tmp_path / "off"))
        rc = cli_main(["heatmap", "--store", str(tmp_path / "off")])
        assert rc == 1

    def test_stats_json_includes_storage(self, store_dir, capsys):
        rc = cli_main(["stats", "--store", store_dir, "--json"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        storage = payload["storage"]
        assert storage["regions"]["count"] >= 1
        assert "bloom" in storage and "wal" in storage
