"""Observability: tracing, the metrics registry, EXPLAIN ANALYZE and
the slow-query log.

The three invariants pinned here (DESIGN.md §8):

* tracing is zero-overhead when off and *never* perturbs answers or
  ``IOMetrics`` — traced and untraced runs are byte-identical;
* the span tree reassembles in plan order across parallel workers;
* under fault injection the tracer runs on purely virtual time, so
  chaos span durations are a deterministic function of
  ``(seed, workload)``.
"""

import json
import random
import threading

import pytest

from repro import SpaceBounds, TraSS, TraSSConfig, Trajectory
from repro.exceptions import QueryError
from repro.kvstore.faults import FaultInjector, FaultSchedule
from repro.obs.registry import (
    Histogram,
    MetricsRegistry,
    parse_prometheus,
    update_registry_from_engine,
)
from repro.obs.slowlog import SlowQueryLog
from repro.obs.tracing import (
    NULL_SPAN,
    NULL_TRACER,
    Span,
    Tracer,
    format_span_tree,
)

BOUNDS = SpaceBounds(116.0, 39.5, 117.0, 40.5)


def make_walk(tid, rng, n_range=(5, 40)):
    x = rng.uniform(116.1, 116.9)
    y = rng.uniform(39.6, 40.4)
    points = [(x, y)]
    for _ in range(rng.randint(*n_range)):
        x += rng.uniform(-0.005, 0.005)
        y += rng.uniform(-0.005, 0.005)
        points.append((x, y))
    return Trajectory(tid, points)


def build_engine(plan_cache_size=0, **overrides):
    """A deterministic engine; plan cache off by default so repeated
    identical queries produce identical counter deltas."""
    rng = random.Random(11)
    data = [make_walk(f"t{i}", rng) for i in range(150)]
    cfg = TraSSConfig(
        bounds=BOUNDS,
        max_resolution=12,
        dp_tolerance=0.002,
        shards=4,
        plan_cache_size=plan_cache_size,
        **overrides,
    )
    return TraSS.build(data, cfg), data


@pytest.fixture(scope="module")
def obs_engine():
    return build_engine()


# ----------------------------------------------------------------------
# Tracer unit behaviour
# ----------------------------------------------------------------------
class TestTracer:
    def test_null_tracer_is_free_and_silent(self):
        assert NULL_TRACER.enabled is False
        span = NULL_TRACER.span("anything", attr=1)
        assert span is NULL_SPAN
        with span as s:
            s.set_attr("a", 1)
            s.set_attrs(b=2)
            s.add_event("e")
            s.set_duration(5.0)
        assert span.duration == 0.0
        assert NULL_TRACER.current_span is None
        assert NULL_TRACER.traces() == []

    def test_nesting_builds_a_tree(self):
        t = Tracer()
        with t.span("root") as root:
            assert t.current_span is root
            with t.span("child") as child:
                with t.span("grandchild"):
                    pass
            assert child.parent is root
        assert t.current_span is None
        assert [s.name for s in root.walk()] == [
            "root",
            "child",
            "grandchild",
        ]
        assert t.traces() == [root]
        assert root.duration >= 0.0

    def test_explicit_parent_crosses_threads(self):
        t = Tracer()
        with t.span("root") as root:
            def worker():
                # The worker thread has no active span of its own; the
                # explicit parent carries the trace context across.
                with t.span("worker-span", parent=root, **{"plan.index": 0}):
                    assert t.current_span.name == "worker-span"

            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        assert [c.name for c in root.children] == ["worker-span"]

    def test_sort_children_restores_plan_order(self):
        t = Tracer()
        root = t.span("root")
        for i in (2, 0, 1):
            t.span("child", parent=root, **{"plan.index": i})
        t.span("no-index", parent=root)
        Tracer.sort_children(root)
        assert [c.attrs.get("plan.index") for c in root.children] == [
            0,
            1,
            2,
            None,
        ]

    def test_event_cap_counts_overflow(self, monkeypatch):
        monkeypatch.setattr(Span, "MAX_EVENTS", 3)
        t = Tracer()
        with t.span("s") as span:
            for i in range(5):
                span.add_event("e", i=i)
        assert len(span.events) == 3
        assert span.dropped_events == 2
        assert span.to_dict()["dropped_events"] == 2

    def test_exception_is_recorded_and_propagated(self):
        t = Tracer()
        with pytest.raises(ValueError):
            with t.span("boom"):
                raise ValueError("nope")
        root = t.traces()[0]
        assert "ValueError" in root.attrs["error"]
        assert t.current_span is None

    def test_add_event_lands_on_current_span(self):
        t = Tracer()
        with t.span("a") as a:
            t.add_event("hit", x=1)
        assert a.events[0][1] == "hit"
        t.add_event("orphan")  # no active span: silently dropped

    def test_duration_override(self):
        t = Tracer(clock=lambda: 0.0)
        with t.span("s") as s:
            pass
        assert s.duration == 0.0
        s.set_duration(1.5)
        assert s.duration == 1.5

    def test_format_span_tree_elides_wide_fanouts(self):
        t = Tracer()
        with t.span("root") as root:
            for i in range(20):
                with t.span("leaf", **{"plan.index": i}):
                    pass
        text = format_span_tree(root, max_children=4)
        assert "16 more child span(s) elided" in text
        assert text.count("leaf") == 4

    def test_injectable_clock(self):
        ticks = iter([1.0, 3.5])
        t = Tracer(clock=lambda: next(ticks))
        with t.span("s") as s:
            pass
        assert s.duration == pytest.approx(2.5)


# ----------------------------------------------------------------------
# Metrics registry and exporters
# ----------------------------------------------------------------------
class TestRegistry:
    def test_counter_gauge_histogram(self):
        reg = MetricsRegistry()
        c = reg.counter("trass.test.count")
        c.inc()
        c.inc(4)
        assert c.value == 5
        with pytest.raises(ValueError):
            c.inc(-1)
        g = reg.gauge("trass.test.gauge")
        g.set(7)
        g.inc()
        g.dec(3)
        assert g.value == 5
        h = reg.histogram("trass.test.seconds", buckets=(0.1, 1.0))
        for v in (0.05, 0.5, 5.0):
            h.observe(v)
        assert h.counts == [1, 1, 1]
        assert h.cumulative_counts() == [1, 2, 3]
        assert h.count == 3
        assert h.sum == pytest.approx(5.55)

    def test_get_or_create_is_idempotent_but_kind_strict(self):
        reg = MetricsRegistry()
        assert reg.counter("trass.x") is reg.counter("trass.x")
        with pytest.raises(ValueError):
            reg.gauge("trass.x")

    def test_name_validation(self):
        reg = MetricsRegistry()
        for bad in ("Trass.x", "trass..x", "1trass", "trass x", ""):
            with pytest.raises(ValueError):
                reg.counter(bad)

    def test_prometheus_export_parses(self):
        reg = MetricsRegistry()
        reg.counter("trass.test.count", "a counter").inc(3)
        reg.gauge("trass.test.gauge").set(1.5)
        h = reg.histogram("trass.test.seconds", buckets=(0.1, 1.0))
        h.observe(0.05)
        h.observe(0.5)
        text = reg.to_prometheus()
        samples = parse_prometheus(text)
        assert samples["trass_test_count"] == 3
        assert samples["trass_test_gauge"] == 1.5
        assert samples['trass_test_seconds_bucket{le="0.1"}'] == 1
        assert samples['trass_test_seconds_bucket{le="1"}'] == 2
        assert samples['trass_test_seconds_bucket{le="+Inf"}'] == 2
        assert samples["trass_test_seconds_count"] == 2

    def test_parse_prometheus_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_prometheus("this is not { prometheus\n")

    def test_json_export_round_trips(self):
        reg = MetricsRegistry()
        reg.counter("trass.a").inc(2)
        reg.histogram("trass.b", buckets=(1.0,)).observe(0.5)
        payload = json.loads(json.dumps(reg.to_json()))
        assert payload["trass.a"]["value"] == 2
        assert payload["trass.b"]["type"] == "histogram"

    def test_update_registry_from_engine(self, obs_engine):
        engine, data = obs_engine
        engine.threshold_search(data[0], 0.01)
        reg = MetricsRegistry()
        update_registry_from_engine(reg, engine)
        io = engine.metrics.snapshot()
        assert (
            reg.get("trass.io.rows_scanned").value == io["rows_scanned"]
        )
        assert reg.get("trass.store.trajectories").value == len(data)
        assert reg.get("trass.resilience.breaker.open_regions") is not None


# ----------------------------------------------------------------------
# Query tracing: span tree shape
# ----------------------------------------------------------------------
class TestQueryTracing:
    def test_threshold_span_tree_shape(self, obs_engine):
        engine, data = obs_engine
        with engine.traced() as tracer:
            result = engine.threshold_search(data[0], 0.02)
        root = tracer.traces()[-1]
        assert root.name == "query.threshold"
        assert [c.name for c in root.children] == ["prune", "scan", "refine"]
        prune = root.children[0]
        assert [c.name for c in prune.children] == [
            "prune.walk",
            "prune.ranges",
        ]
        scan = root.children[1]
        ranges = root.find("scan.range")
        assert len(ranges) == result.resilience.ranges_total
        assert scan.attrs["rows_retrieved"] == result.retrieved_rows
        assert root.attrs["answers"] == len(result.answers)
        assert root.attrs["candidates"] == result.candidates
        # tracing is disabled again outside the context manager
        assert engine.tracer is NULL_TRACER
        assert engine.store.executor.tracer is NULL_TRACER

    def test_scan_range_spans_are_in_plan_order(self, obs_engine):
        engine, data = obs_engine
        with engine.traced() as tracer:
            engine.threshold_search(data[0], 0.02)
        ranges = tracer.traces()[-1].find("scan.range")
        indices = [s.attrs["plan.index"] for s in ranges]
        assert indices == sorted(indices)

    def test_filter_events_recorded_on_scan_spans(self, obs_engine):
        engine, data = obs_engine
        with engine.traced() as tracer:
            result = engine.threshold_search(data[0], 0.02)
        root = tracer.traces()[-1]
        names = [
            name
            for span in root.walk()
            for _, name, _ in span.events
        ]
        stats = result.filter_stats
        assert names.count("filter.pass") == stats.passed
        assert names.count("filter.reject") == stats.rejected

    def test_topk_span_tree_shape(self, obs_engine):
        engine, data = obs_engine
        with engine.traced() as tracer:
            result = engine.topk_search(data[0], 3)
        root = tracer.traces()[-1]
        assert root.name == "query.topk"
        search = root.children[0]
        assert search.name == "search"
        assert search.attrs["units_scanned"] == result.units_scanned
        assert len(root.find("topk.unit")) == result.units_scanned
        assert root.attrs["answers"] == len(result.answers)

    def test_refine_span_carries_early_abandon_stats(self, obs_engine):
        engine, data = obs_engine
        with engine.traced() as tracer:
            result = engine.threshold_search(data[0], 0.02)
        refine = tracer.traces()[-1].find("refine")[0]
        assert refine.attrs["refined"] == result.candidates
        assert refine.attrs["answers"] == len(result.answers)
        assert (
            refine.attrs["early_abandoned"]
            == result.candidates - len(result.answers)
        )

    def test_parallel_workers_reassemble_in_plan_order(self):
        engine, data = build_engine(scan_workers=4)
        with engine.traced() as tracer:
            sequentialish = engine.threshold_search(data[0], 0.02)
        root = tracer.traces()[-1]
        ranges = root.find("scan.range")
        assert len(ranges) == sequentialish.resilience.ranges_total
        indices = [s.attrs["plan.index"] for s in ranges]
        assert indices == sorted(indices)
        # the spans record which worker ran each range
        assert all("worker" in s.attrs for s in ranges)


# ----------------------------------------------------------------------
# The non-perturbation contract
# ----------------------------------------------------------------------
class TestTracingParity:
    def test_traced_runs_are_byte_identical_to_untraced(self, obs_engine):
        engine, data = obs_engine
        query = data[1]

        before = engine.metrics.snapshot()
        plain = engine.threshold_search(query, 0.02)
        plain_delta = engine.metrics.diff(before)

        before = engine.metrics.snapshot()
        with engine.traced():
            traced = engine.threshold_search(query, 0.02)
        traced_delta = engine.metrics.diff(before)

        assert traced.answers == plain.answers
        assert traced.candidates == plain.candidates
        assert traced.retrieved_rows == plain.retrieved_rows
        assert traced_delta == plain_delta

    def test_topk_parity(self, obs_engine):
        engine, data = obs_engine
        query = data[2]
        before = engine.metrics.snapshot()
        plain = engine.topk_search(query, 5)
        plain_delta = engine.metrics.diff(before)
        before = engine.metrics.snapshot()
        with engine.traced():
            traced = engine.topk_search(query, 5)
        traced_delta = engine.metrics.diff(before)
        assert traced.answers == plain.answers
        assert traced_delta == plain_delta


# ----------------------------------------------------------------------
# EXPLAIN ANALYZE
# ----------------------------------------------------------------------
class TestExplainAnalyze:
    def test_counts_match_iometrics_deltas(self, obs_engine):
        engine, data = obs_engine
        report = engine.explain_analyze(data[3], eps=0.02)
        # The phase tree's counts ARE the counter deltas.
        assert report.io_delta["rows_scanned"] == report.retrieved_rows
        scan = report.root.find("scan")[0]
        assert scan.attrs["rows_retrieved"] == report.io_delta["rows_scanned"]
        fs = report.filter_stats
        assert fs["evaluated"] == report.io_delta["filter_evaluations"]
        assert fs["rejected"] == report.io_delta["filter_rejections"]
        assert fs["passed"] == report.candidates
        assert fs["evaluated"] == fs["passed"] + fs["rejected"]
        assert report.answers == len(report.result.answers)

    def test_requires_exactly_one_of_eps_and_k(self, obs_engine):
        engine, data = obs_engine
        with pytest.raises(QueryError):
            engine.explain_analyze(data[0])
        with pytest.raises(QueryError):
            engine.explain_analyze(data[0], eps=0.01, k=3)

    def test_render_and_json(self, obs_engine):
        engine, data = obs_engine
        report = engine.explain_analyze(data[0], eps=0.02)
        text = report.render()
        assert "EXPLAIN ANALYZE threshold" in text
        assert "local filter funnel" in text
        assert "query.threshold" in text
        payload = json.loads(json.dumps(report.to_json(), default=str))
        assert payload["kind"] == "threshold"
        assert payload["trace"]["name"] == "query.threshold"

    def test_topk_report(self, obs_engine):
        engine, data = obs_engine
        report = engine.explain_analyze(data[0], k=4)
        assert report.kind == "topk"
        assert report.answers == 4
        assert "k=4" in report.render()

    def test_full_scan_fallback_measure(self, obs_engine):
        engine, data = obs_engine
        report = engine.explain_analyze(data[0], eps=0.05, measure="edr")
        assert report.filter_stats is None
        assert report.resilience is None
        assert report.root.name == "query.threshold"

    def test_tracer_restored_after_report(self, obs_engine):
        engine, data = obs_engine
        engine.explain_analyze(data[0], eps=0.02)
        assert engine.tracer is NULL_TRACER


# ----------------------------------------------------------------------
# Deterministic virtual time under fault injection
# ----------------------------------------------------------------------
class TestVirtualClockUnderChaos:
    @staticmethod
    def _chaos_durations():
        engine, data = build_engine()
        injector = FaultInjector(
            FaultSchedule(
                seed=5,
                region_unavailable_prob=0.2,
                slow_region_prob=1.0,
                slow_region_seconds=0.05,
            )
        )
        engine.install_fault_injector(injector)
        try:
            with engine.traced() as tracer:
                engine.threshold_search(data[0], 0.02)
        finally:
            engine.install_fault_injector(None)
        root = tracer.traces()[-1]
        # The refine span's duration is real callback wall time (its
        # set_duration override), so it is excluded from the virtual-
        # time determinism check.
        return [
            (s.name, s.duration)
            for s in root.walk()
            if s.name != "refine"
        ]

    def test_same_seed_same_span_durations(self):
        first = self._chaos_durations()
        second = self._chaos_durations()
        assert first == second
        # With slow_region_prob=1.0 every scanned range charges virtual
        # latency, so the trace shows real (virtual) time, not zeros.
        assert any(
            name == "scan.range" and duration > 0.0
            for name, duration in first
        )


# ----------------------------------------------------------------------
# Slow-query log
# ----------------------------------------------------------------------
class TestSlowQueryLog:
    def test_disabled_without_threshold(self):
        log = SlowQueryLog(capacity=4)
        assert not log.enabled
        assert not log.observe("threshold", "q", 0.1, 99.0, 0, 0)
        assert len(log) == 0

    def test_threshold_and_eviction(self):
        log = SlowQueryLog(capacity=2, threshold_seconds=1.0)
        assert not log.observe("threshold", "fast", 0.1, 0.5, 0, 0)
        for i in range(3):
            assert log.observe("threshold", f"q{i}", 0.1, 2.0 + i, 1, 1)
        entries = log.entries()
        assert [e.query_tid for e in entries] == ["q1", "q2"]
        assert json.dumps(log.to_json())
        log.clear()
        assert len(log) == 0

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            SlowQueryLog(capacity=0)

    def test_engine_records_slow_queries(self):
        engine, data = build_engine(slow_query_threshold_seconds=0.0)
        engine.threshold_search(data[0], 0.02)
        engine.topk_search(data[0], 3)
        entries = engine.slow_query_log.entries()
        assert [e.kind for e in entries] == ["threshold", "topk"]
        assert entries[0].query_tid == data[0].tid
        assert entries[0].completeness == 1.0
        stats = engine.stats()
        assert len(stats["slow_queries"]) == 2

    def test_config_round_trips_through_save_load(self, tmp_path):
        engine, data = build_engine(
            slow_query_threshold_seconds=1.5, slow_query_log_size=7
        )
        engine.save(str(tmp_path / "store"))
        loaded = TraSS.load(str(tmp_path / "store"))
        assert loaded.config.slow_query_threshold_seconds == 1.5
        assert loaded.config.slow_query_log_size == 7
        assert loaded.slow_query_log.threshold_seconds == 1.5
        assert loaded.slow_query_log.capacity == 7

    def test_config_validation(self):
        with pytest.raises(QueryError):
            TraSSConfig(slow_query_threshold_seconds=-1.0)
        with pytest.raises(QueryError):
            TraSSConfig(slow_query_log_size=0)


# ----------------------------------------------------------------------
# Engine-level exporters
# ----------------------------------------------------------------------
class TestEngineMetricsExport:
    def test_export_json_and_prometheus(self, obs_engine):
        engine, data = obs_engine
        engine.threshold_search(data[0], 0.02)
        payload = engine.export_metrics("json")
        assert payload["trass.store.trajectories"]["value"] == len(data)
        samples = parse_prometheus(engine.export_metrics("prometheus"))
        assert "trass_io_rows_scanned" in samples
        assert "trass_query_seconds_count" in samples
        assert samples["trass_query_seconds_count"] >= 1

    def test_unknown_format_raises(self, obs_engine):
        engine, _ = obs_engine
        with pytest.raises(QueryError):
            engine.export_metrics("xml")


# ----------------------------------------------------------------------
# Histogram quantiles and merge semantics (the SLO building block)
# ----------------------------------------------------------------------
class TestHistogramQuantiles:
    BUCKETS = (0.001, 0.01, 0.1, 1.0)

    def test_empty_histogram_has_no_quantiles(self):
        h = Histogram("t.q", buckets=self.BUCKETS)
        assert h.quantile(0.5) is None
        summary = h.summary()
        assert summary["count"] == 0
        assert summary["p99"] is None

    def test_quantile_interpolates_inside_bucket(self):
        h = Histogram("t.q", buckets=self.BUCKETS)
        for _ in range(100):
            h.observe(0.05)  # all mass in the (0.01, 0.1] bucket
        # Every quantile lands inside that bucket's bounds.
        for q in (0.5, 0.95, 0.99):
            assert 0.01 < h.quantile(q) <= 0.1

    def test_quantile_overflow_clamps_to_top_bound(self):
        h = Histogram("t.q", buckets=self.BUCKETS)
        for _ in range(10):
            h.observe(50.0)  # all in +Inf
        assert h.quantile(0.5) == 1.0  # lower-bound estimate, as in PromQL

    def test_quantile_validation(self):
        h = Histogram("t.q", buckets=self.BUCKETS)
        with pytest.raises(ValueError):
            h.quantile(0.0)
        with pytest.raises(ValueError):
            h.quantile(1.5)

    def test_merge_from_accumulates(self):
        a = Histogram("t.a", buckets=self.BUCKETS)
        b = Histogram("t.b", buckets=self.BUCKETS)
        for v in (0.005, 0.05, 0.5):
            a.observe(v)
        for v in (0.0005, 5.0):
            b.observe(v)
        a.merge_from(b)
        assert a.count == 5
        assert a.sum == pytest.approx(0.005 + 0.05 + 0.5 + 0.0005 + 5.0)
        assert sum(a.counts) == 5

    def test_merge_from_rejects_mismatched_buckets(self):
        a = Histogram("t.a", buckets=(0.1, 1.0))
        b = Histogram("t.b", buckets=(0.2, 2.0))
        with pytest.raises(ValueError):
            a.merge_from(b)

    def test_set_state_overwrites_not_accumulates(self):
        h = Histogram("t.q", buckets=(0.1, 1.0))
        h.set_state([1, 2, 3], 4.5, 6)
        h.set_state([1, 2, 3], 4.5, 6)  # a refresh must not double-count
        assert h.counts == [1, 2, 3]
        assert h.count == 6
        assert h.sum == 4.5
        with pytest.raises(ValueError):
            h.set_state([1, 2], 1.0, 3)  # wrong slot count


# ----------------------------------------------------------------------
# Prometheus exposition: pinned byte-for-byte against a golden file
# ----------------------------------------------------------------------
class TestPrometheusGolden:
    def _registry(self):
        reg = MetricsRegistry()
        reg.counter(
            "trass.io.rows_scanned", "rows scanned by range scans"
        ).inc(1234)
        reg.gauge("trass.store.trajectories", "trajectories stored").set(56)
        h = reg.histogram(
            "trass.query.seconds",
            "end-to-end query seconds",
            buckets=(0.001, 0.01, 0.1, 1.0),
        )
        for v in (0.0005, 0.004, 0.004, 0.05, 0.2, 5.0):
            h.observe(v)
        return reg

    def test_exposition_matches_golden_file(self):
        import os

        golden = os.path.join(
            os.path.dirname(__file__), "golden", "prometheus_small.txt"
        )
        with open(golden) as fh:
            expected = fh.read()
        assert self._registry().to_prometheus() == expected

    def test_histogram_buckets_are_cumulative_and_monotone(self):
        text = self._registry().to_prometheus()
        samples = parse_prometheus(text)
        # le buckets must be cumulative: each bound's count >= the
        # previous, +Inf equals the series count.
        counts = [
            samples[f'trass_query_seconds_bucket{{le="{le}"}}']
            for le in ("0.001", "0.01", "0.1", "1")
        ]
        assert counts == sorted(counts)
        assert samples['trass_query_seconds_bucket{le="+Inf"}'] == samples[
            "trass_query_seconds_count"
        ]
        assert counts[-1] <= samples["trass_query_seconds_count"]
