"""Unit tests for the edit-based measures (EDR, ERP) and the engine's
full-scan fallback for non-prunable measures."""

import math
import random

import pytest

from repro import TraSS, TraSSConfig, Trajectory, SpaceBounds
from repro.measures import get_measure
from repro.measures.edr import EDR, edr, edr_within
from repro.measures.erp import ERP, erp, erp_within


def walk(rng, n, start=(0.0, 0.0), step=0.05):
    x, y = start
    pts = [(x, y)]
    for _ in range(n - 1):
        x += rng.uniform(-step, step)
        y += rng.uniform(-step, step)
        pts.append((x, y))
    return pts


class TestEDR:
    def test_identical_is_zero(self):
        pts = [(0, 0), (1, 0), (2, 0)]
        assert edr(pts, pts) == 0.0

    def test_single_substitution(self):
        a = [(0, 0), (1, 0), (2, 0)]
        b = [(0, 0), (1, 5), (2, 0)]  # middle point far -> 1 edit
        assert edr(a, b, delta=0.1) == 1.0

    def test_length_difference_costs_inserts(self):
        a = [(0, 0)]
        b = [(0, 0), (0.001, 0), (0.002, 0)]
        assert edr(a, b, delta=0.01) == 2.0

    def test_symmetric(self):
        rng = random.Random(1)
        a, b = walk(rng, 10), walk(rng, 14)
        assert edr(a, b) == edr(b, a)

    def test_bounded_by_max_length(self):
        rng = random.Random(2)
        a, b = walk(rng, 8), walk(rng, 12, start=(5, 5))
        assert edr(a, b) <= max(len(a), len(b))

    def test_within_agrees_with_exact(self):
        rng = random.Random(3)
        for _ in range(40):
            a, b = walk(rng, 8), walk(rng, 9, start=(0.05, 0.0))
            d = edr(a, b)
            for eps in (max(0, d - 1), d, d + 1):
                assert edr_within(a, b, eps) == (d <= eps)

    def test_no_point_lower_bound_flag(self):
        m = get_measure("edr")
        assert not m.supports_point_lower_bound
        assert not m.supports_start_end_filter

    def test_delta_validation(self):
        with pytest.raises(ValueError):
            EDR(delta=-1)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            edr([], [(0, 0)])


class TestERP:
    def test_identical_is_zero(self):
        pts = [(1, 1), (2, 1)]
        assert erp(pts, pts) == pytest.approx(0.0)

    def test_single_point_vs_pair(self):
        # Align (g)-gap: one point must be gap-deleted.
        a = [(1.0, 0.0)]
        b = [(1.0, 0.0), (2.0, 0.0)]
        # Optimal: match (1,0)-(1,0) cost 0, delete (2,0) at cost d((2,0), g=origin)=2.
        assert erp(a, b) == pytest.approx(2.0)

    def test_symmetric(self):
        rng = random.Random(4)
        a, b = walk(rng, 9), walk(rng, 12)
        assert erp(a, b) == pytest.approx(erp(b, a))

    def test_triangle_inequality(self):
        """ERP is a metric (unlike DTW)."""
        rng = random.Random(5)
        for _ in range(25):
            a, b, c = walk(rng, 6), walk(rng, 7), walk(rng, 8)
            assert erp(a, c) <= erp(a, b) + erp(b, c) + 1e-9

    def test_within_agrees_with_exact(self):
        rng = random.Random(6)
        for _ in range(40):
            a, b = walk(rng, 8), walk(rng, 10, start=(0.1, 0.1))
            d = erp(a, b)
            for eps in (d * 0.5, d, d * 1.5):
                assert erp_within(a, b, eps) == (d <= eps + 1e-12)

    def test_custom_gap_point(self):
        a = [(1.0, 0.0)]
        b = [(1.0, 0.0), (2.0, 0.0)]
        m = ERP(gap=(2.0, 0.0))
        assert m.distance(a, b) == pytest.approx(0.0)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            erp([(0, 0)], [])


class TestEngineFallback:
    """EDR/ERP queries run through the engine via a verified full scan."""

    @pytest.fixture(scope="class")
    def engine_and_data(self):
        rng = random.Random(7)
        bounds = SpaceBounds(0, 0, 1, 1)
        data = []
        for i in range(60):
            x, y = rng.random() * 0.9, rng.random() * 0.9
            pts = [(x, y)]
            for _ in range(rng.randint(2, 10)):
                x = min(0.99, max(0, x + rng.uniform(-0.01, 0.01)))
                y = min(0.99, max(0, y + rng.uniform(-0.01, 0.01)))
                pts.append((x, y))
            data.append(Trajectory(f"t{i}", pts))
        cfg = TraSSConfig(bounds=bounds, max_resolution=8, shards=2)
        return TraSS.build(data, cfg), data

    @pytest.mark.parametrize("measure", ["edr", "erp"])
    def test_threshold_fallback_matches_brute(self, engine_and_data, measure):
        engine, data = engine_and_data
        m = get_measure(measure)
        q = data[0]
        eps = 3.0 if measure == "edr" else 0.5
        got = set(engine.threshold_search(q, eps, measure=measure).answers)
        want = {t.tid for t in data if m.distance(q.points, t.points) <= eps}
        assert got == want

    @pytest.mark.parametrize("measure", ["edr", "erp"])
    def test_topk_fallback_matches_brute(self, engine_and_data, measure):
        engine, data = engine_and_data
        m = get_measure(measure)
        q = data[3]
        got = engine.topk_search(q, 5, measure=measure)
        want = sorted((m.distance(q.points, t.points), t.tid) for t in data)[:5]
        assert [round(d, 9) for d, _ in got.answers] == [
            round(d, 9) for d, _ in want
        ]

    def test_fallback_scans_everything(self, engine_and_data):
        engine, data = engine_and_data
        result = engine.threshold_search(data[0], 2.0, measure="edr")
        assert result.candidates == len(data)
