"""Unit tests for the memtable."""

import pytest

from repro.exceptions import KVStoreError
from repro.kvstore.memtable import TOMBSTONE, MemTable


class TestMemTable:
    def test_put_get(self):
        m = MemTable()
        m.put(b"a", b"1")
        assert m.get(b"a") == b"1"
        assert m.get(b"b") is None

    def test_overwrite(self):
        m = MemTable()
        m.put(b"a", b"1")
        m.put(b"a", b"22")
        assert m.get(b"a") == b"22"
        assert len(m) == 1

    def test_delete_records_tombstone(self):
        m = MemTable()
        m.put(b"a", b"1")
        m.delete(b"a")
        assert m.get(b"a") is TOMBSTONE

    def test_delete_of_absent_key_still_tombstones(self):
        # The key may exist in an older SSTable; the tombstone must be
        # recorded regardless.
        m = MemTable()
        m.delete(b"ghost")
        assert m.get(b"ghost") is TOMBSTONE

    def test_scan_sorted(self):
        m = MemTable()
        for key in [b"c", b"a", b"b"]:
            m.put(key, key)
        assert [k for k, _ in m.scan()] == [b"a", b"b", b"c"]

    def test_scan_range_half_open(self):
        m = MemTable()
        for key in [b"a", b"b", b"c", b"d"]:
            m.put(key, key)
        got = [k for k, _ in m.scan(b"b", b"d")]
        assert got == [b"b", b"c"]

    def test_scan_includes_tombstones(self):
        m = MemTable()
        m.put(b"a", b"1")
        m.delete(b"b")
        entries = dict(m.scan())
        assert entries[b"b"] is TOMBSTONE

    def test_type_validation(self):
        m = MemTable()
        with pytest.raises(KVStoreError):
            m.put("a", b"1")  # type: ignore[arg-type]
        with pytest.raises(KVStoreError):
            m.put(b"a", "1")  # type: ignore[arg-type]

    def test_approximate_size_tracks_updates(self):
        m = MemTable()
        m.put(b"a", b"xxxx")
        first = m.approximate_size
        m.put(b"a", b"xx")
        assert m.approximate_size < first

    def test_clear(self):
        m = MemTable()
        m.put(b"a", b"1")
        m.clear()
        assert len(m) == 0
        assert m.approximate_size == 0
        assert m.get(b"a") is None
