"""Tests for the declarative experiment runner."""

import math

import pytest

from repro import TraSS, TraSSConfig, SpaceBounds
from repro.baselines import BruteForceBaseline
from repro.eval import (
    DatasetSpec,
    ExperimentSpec,
    SweepAxis,
    SystemSpec,
    load_result,
    render_result,
    run_experiment,
    save_result,
)
from repro.exceptions import QueryError, ReproError


def tiny_trass():
    return TraSS(
        TraSSConfig(
            bounds=SpaceBounds.whole_earth(),
            max_resolution=12,
            dp_tolerance=0.01,
            shards=2,
        )
    )


def tiny_spec(query_type="threshold", systems=None):
    sweep = (
        SweepAxis("eps", (0.005, 0.02))
        if query_type == "threshold"
        else SweepAxis("k", (2, 5))
    )
    return ExperimentSpec(
        name="tiny",
        dataset=DatasetSpec("tdrive", size=60, seed=5, num_queries=3),
        systems=systems
        or (
            SystemSpec("TraSS", tiny_trass),
            SystemSpec("Brute", BruteForceBaseline),
        ),
        query_type=query_type,
        sweep=sweep,
    )


class TestSpecValidation:
    def test_bad_query_type(self):
        with pytest.raises(QueryError):
            ExperimentSpec(
                name="x",
                dataset=DatasetSpec("tdrive", 10),
                systems=(SystemSpec("a", tiny_trass),),
                query_type="knn",
                sweep=SweepAxis("eps", (1.0,)),
            )

    def test_sweep_parameter_must_match(self):
        with pytest.raises(QueryError):
            tiny_spec_bad = ExperimentSpec(
                name="x",
                dataset=DatasetSpec("tdrive", 10),
                systems=(SystemSpec("a", tiny_trass),),
                query_type="threshold",
                sweep=SweepAxis("k", (5,)),
            )

    def test_empty_sweep(self):
        with pytest.raises(QueryError):
            SweepAxis("eps", ())

    def test_empty_systems(self):
        with pytest.raises(ReproError):
            ExperimentSpec(
                name="x",
                dataset=DatasetSpec("tdrive", 10),
                systems=(),
                query_type="threshold",
                sweep=SweepAxis("eps", (1.0,)),
            )

    def test_bad_dataset_size(self):
        with pytest.raises(ReproError):
            DatasetSpec("tdrive", size=0)


class TestRunner:
    def test_threshold_experiment(self):
        result = run_experiment(tiny_spec())
        assert result.systems() == ["TraSS", "Brute"]
        assert result.sweep_values() == [0.005, 0.02]
        assert len(result.records) == 4
        assert set(result.build_seconds) == {"TraSS", "Brute"}
        for record in result.records:
            assert record.median_ms >= 0
            assert record.mean_candidates >= 0

    def test_systems_agree_on_answers(self):
        result = run_experiment(tiny_spec())
        for value in result.sweep_values():
            answers = {
                r.system: r.mean_answers
                for r in result.records
                if r.value == value
            }
            assert answers["TraSS"] == pytest.approx(answers["Brute"])

    def test_topk_experiment(self):
        result = run_experiment(tiny_spec(query_type="topk"))
        assert len(result.records) == 4
        for record in result.records:
            assert record.mean_answers == record.value  # k answers each

    def test_progress_callback(self):
        lines = []
        run_experiment(tiny_spec(), progress=lines.append)
        assert any("building TraSS" in line for line in lines)


class TestReport:
    def test_render_contains_table_and_trend(self):
        result = run_experiment(tiny_spec())
        text = render_result(result)
        assert "tiny: median_ms" in text
        assert "trend:" in text
        assert "ingestion:" in text
        assert "TraSS" in text and "Brute" in text

    def test_render_unknown_metric(self):
        result = run_experiment(tiny_spec())
        with pytest.raises(ReproError):
            render_result(result, metric="latency")

    def test_save_load_roundtrip(self, tmp_path):
        result = run_experiment(tiny_spec())
        path = str(tmp_path / "result.json")
        save_result(result, path)
        restored = load_result(path)
        assert restored.name == result.name
        assert restored.build_seconds == pytest.approx(result.build_seconds)
        assert len(restored.records) == len(result.records)
        assert restored.records[0] == result.records[0]

    def test_load_garbage(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{")
        with pytest.raises(ReproError):
            load_result(str(path))
