"""Tests for the WAL, table persistence, and engine save/load."""

import os
import random

import pytest

from repro import TraSS, TraSSConfig, SpaceBounds
from repro.data.generators import TDRIVE_BOUNDS, tdrive_like
from repro.exceptions import KVStoreError
from repro.kvstore.persistence import DurableKVTable, load_table, save_table
from repro.kvstore.table import KVTable
from repro.kvstore.wal import OP_DELETE, OP_PUT, WriteAheadLog


class TestWriteAheadLog:
    def test_roundtrip(self, tmp_path):
        path = str(tmp_path / "wal.log")
        with WriteAheadLog(path) as wal:
            wal.append_put(b"a", b"1")
            wal.append_delete(b"b")
            wal.append_put(b"c", b"333")
            wal.flush()
        assert WriteAheadLog.replay(path) == [
            (OP_PUT, b"a", b"1"),
            (OP_DELETE, b"b", b""),
            (OP_PUT, b"c", b"333"),
        ]

    def test_replay_missing_file_is_empty(self, tmp_path):
        assert WriteAheadLog.replay(str(tmp_path / "nope.log")) == []

    def test_torn_tail_stops_cleanly(self, tmp_path):
        path = str(tmp_path / "wal.log")
        with WriteAheadLog(path) as wal:
            wal.append_put(b"a", b"1")
            wal.append_put(b"b", b"2")
            wal.flush()
        data = open(path, "rb").read()
        with open(path, "wb") as fh:
            fh.write(data[:-5])  # tear the final record
        records = WriteAheadLog.replay(path)
        assert records == [(OP_PUT, b"a", b"1")]

    def test_mid_file_corruption_raises(self, tmp_path):
        path = str(tmp_path / "wal.log")
        with WriteAheadLog(path) as wal:
            wal.append_put(b"aaaa", b"1111")
            wal.append_put(b"bbbb", b"2222")
            wal.flush()
        data = bytearray(open(path, "rb").read())
        data[10] ^= 0xFF  # corrupt the first record's body
        open(path, "wb").write(bytes(data))
        with pytest.raises(KVStoreError):
            WriteAheadLog.replay(path)

    def test_truncate(self, tmp_path):
        path = str(tmp_path / "wal.log")
        wal = WriteAheadLog(path)
        wal.append_put(b"a", b"1")
        wal.truncate()
        wal.append_put(b"b", b"2")
        wal.flush()
        wal.close()
        assert WriteAheadLog.replay(path) == [(OP_PUT, b"b", b"2")]

    def test_close_is_idempotent(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path / "wal.log"))
        wal.append_put(b"a", b"1")
        wal.close()
        assert wal.closed
        wal.close()  # second close is a no-op, not an error
        wal.flush()  # flush on a closed log is a safe no-op too
        assert wal.closed

    def test_append_after_close_raises(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path / "wal.log"))
        wal.close()
        with pytest.raises(KVStoreError):
            wal.append_put(b"a", b"1")

    def test_context_manager_closes_and_flushes(self, tmp_path):
        path = str(tmp_path / "wal.log")
        with WriteAheadLog(path, sync=True) as wal:
            wal.append_put(b"a", b"1")
            assert not wal.closed
        assert wal.closed
        assert WriteAheadLog.replay(path) == [(OP_PUT, b"a", b"1")]

    def test_truncate_reopens_closed_log(self, tmp_path):
        path = str(tmp_path / "wal.log")
        wal = WriteAheadLog(path)
        wal.append_put(b"a", b"1")
        wal.close()
        wal.truncate()  # checkpoint path: reusable after close
        assert not wal.closed
        wal.append_put(b"b", b"2")
        wal.close()
        assert WriteAheadLog.replay(path) == [(OP_PUT, b"b", b"2")]

    def test_durable_table_context_manager(self, tmp_path):
        directory = str(tmp_path / "durable")
        with DurableKVTable(KVTable(), directory) as durable:
            durable.put(b"a", b"1")
        assert durable.wal.closed
        durable.close()  # idempotent through the wrapper as well
        assert dict(load_table(directory).full_scan()) == {b"a": b"1"}

    def test_load_wal_only_directory(self, tmp_path):
        """A store that died before its first checkpoint (WAL, no
        manifest) must still recover."""
        directory = str(tmp_path / "durable")
        durable = DurableKVTable(KVTable(), directory, sync=True)
        durable.put(b"a", b"1")
        durable.put(b"b", b"2")
        durable.delete(b"a")
        # No checkpoint, no close: recover from the log alone.
        assert dict(load_table(directory).full_scan()) == {b"b": b"2"}

    def test_load_empty_directory_raises(self, tmp_path):
        d = tmp_path / "empty"
        d.mkdir()
        with pytest.raises(KVStoreError):
            load_table(str(d))


class TestTablePersistence:
    def test_roundtrip(self, tmp_path):
        table = KVTable(max_region_rows=20)
        rng = random.Random(1)
        model = {}
        for i in range(100):
            key = f"key{rng.randrange(1000):04d}".encode()
            value = str(i).encode()
            table.put(key, value)
            model[key] = value
        save_table(table, str(tmp_path / "tbl"))
        restored = load_table(str(tmp_path / "tbl"))
        assert dict(restored.full_scan()) == model
        assert restored.num_regions == table.num_regions

    def test_missing_manifest(self, tmp_path):
        with pytest.raises(KVStoreError):
            load_table(str(tmp_path))

    def test_corrupt_manifest(self, tmp_path):
        d = tmp_path / "tbl"
        d.mkdir()
        (d / "MANIFEST.json").write_text("{not json")
        with pytest.raises(KVStoreError):
            load_table(str(d))

    def test_durable_table_recovers_from_wal(self, tmp_path):
        directory = str(tmp_path / "durable")
        durable = DurableKVTable(KVTable(), directory)
        durable.put(b"a", b"1")
        durable.checkpoint()  # snapshot holds {a}
        durable.put(b"b", b"2")  # only in the WAL
        durable.delete(b"a")  # only in the WAL
        durable.close()
        # "Crash" and restart: snapshot + WAL replay.
        restored = load_table(directory)
        assert dict(restored.full_scan()) == {b"b": b"2"}

    def test_durable_checkpoint_truncates_wal(self, tmp_path):
        directory = str(tmp_path / "durable")
        durable = DurableKVTable(KVTable(), directory)
        durable.put(b"a", b"1")
        durable.checkpoint()
        durable.close()
        assert WriteAheadLog.replay(os.path.join(directory, "wal.log")) == []
        restored = load_table(directory)
        assert dict(restored.full_scan()) == {b"a": b"1"}


class TestEngineSaveLoad:
    def test_engine_roundtrip(self, tmp_path):
        data = tdrive_like(80, seed=31)
        cfg = TraSSConfig(
            bounds=TDRIVE_BOUNDS, max_resolution=12, dp_tolerance=0.005, shards=3
        )
        engine = TraSS.build(data, cfg)
        q = data[5]
        before = engine.threshold_search(q, 0.02)

        engine.save(str(tmp_path / "store"))
        restored = TraSS.load(str(tmp_path / "store"))

        assert len(restored) == len(engine)
        assert restored.config.max_resolution == 12
        assert restored.config.shards == 3
        after = restored.threshold_search(q, 0.02)
        assert set(after.answers) == set(before.answers)
        # Statistics rebuilt.
        assert restored.store.value_histogram == engine.store.value_histogram

    def test_engine_roundtrip_topk(self, tmp_path):
        data = tdrive_like(60, seed=32)
        cfg = TraSSConfig(
            bounds=TDRIVE_BOUNDS, max_resolution=12, dp_tolerance=0.005, shards=2
        )
        engine = TraSS.build(data, cfg)
        engine.save(str(tmp_path / "store"))
        restored = TraSS.load(str(tmp_path / "store"))
        q = data[0]
        a = [tid for _, tid in engine.topk_search(q, 5).answers]
        b = [tid for _, tid in restored.topk_search(q, 5).answers]
        assert a == b

    def test_load_missing_directory(self, tmp_path):
        with pytest.raises(KVStoreError):
            TraSS.load(str(tmp_path / "missing"))
