"""Failure-injection tests: corruption and malformed inputs must fail
loudly (never silently return wrong answers)."""

import pytest

from repro import TraSS, TraSSConfig, Trajectory, SpaceBounds
from repro.core.codec import decode_row, encode_row
from repro.exceptions import (
    CorruptSSTableError,
    EncodingError,
    KVStoreError,
    QueryError,
)
from repro.features.dp_features import extract_dp_features
from repro.index.xzstar import XZStarIndex
from repro.kvstore.sstable import SSTable


class TestCorruptData:
    def test_bit_flips_never_pass_sstable_checksum(self):
        import random

        rng = random.Random(81)
        entries = [
            (f"key{i:03d}".encode(), f"value{i}".encode()) for i in range(40)
        ]
        table = SSTable.from_entries(entries)
        blob = table.to_bytes()
        for _ in range(25):
            corrupted = bytearray(blob)
            pos = rng.randrange(len(blob) - 4)  # keep the CRC intact
            corrupted[pos] ^= 1 << rng.randrange(8)
            with pytest.raises(CorruptSSTableError):
                SSTable.from_bytes(bytes(corrupted))

    def test_row_blob_truncations_always_detected(self):
        points = [(0.1, 0.2), (0.3, 0.4), (0.5, 0.6)]
        blob = encode_row("t", points, extract_dp_features(points, 0.01))
        for cut in range(len(blob)):
            with pytest.raises(KVStoreError):
                decode_row(blob[:cut])

    def test_decode_rejects_foreign_values(self):
        index = XZStarIndex(4, SpaceBounds(0, 0, 1, 1))
        with pytest.raises(EncodingError):
            index.decode(index.total_index_spaces + 100)


class TestBadQueries:
    def setup_method(self):
        cfg = TraSSConfig(
            bounds=SpaceBounds(0, 0, 1, 1), max_resolution=8, shards=2
        )
        self.engine = TraSS.build(
            [Trajectory("a", [(0.5, 0.5), (0.51, 0.5)])], cfg
        )

    def test_negative_threshold(self):
        with pytest.raises(QueryError):
            self.engine.threshold_search(
                Trajectory("q", [(0.5, 0.5)]), -0.01
            )

    def test_zero_k(self):
        with pytest.raises(QueryError):
            self.engine.topk_search(Trajectory("q", [(0.5, 0.5)]), 0)

    def test_empty_query_trajectory(self):
        from repro.exceptions import GeometryError

        with pytest.raises(GeometryError):
            Trajectory("q", [])

    def test_out_of_bounds_query_still_answers(self):
        """Coordinates outside the configured bounds clamp into the
        space rather than corrupting the index walk."""
        q = Trajectory("q", [(5.0, 5.0), (5.1, 5.0)])
        result = self.engine.threshold_search(q, 0.01)
        assert result.answers == {}


class TestConfigValidation:
    def test_bad_shards(self):
        with pytest.raises(QueryError):
            TraSSConfig(shards=0)
        with pytest.raises(QueryError):
            TraSSConfig(shards=500)

    def test_bad_dp_tolerance(self):
        with pytest.raises(QueryError):
            TraSSConfig(dp_tolerance=-1)

    def test_bad_measure(self):
        with pytest.raises(QueryError):
            TraSSConfig(measure_name="nope").make_measure()
