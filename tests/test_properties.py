"""Property-based tests (hypothesis) on the core invariants.

Targets the properties the paper's correctness rests on: the encoding
bijection and its order preservation, SEE coverage, DP-feature
soundness, measure lower bounds, and the KV substrate's dict semantics.
"""

import math

from hypothesis import assume, given, settings, strategies as st

from repro.features.dp_features import extract_dp_features
from repro.geometry.mbr import MBR
from repro.geometry.trajectory import Trajectory
from repro.index.bounds import SpaceBounds
from repro.index.position_code import position_code_of
from repro.index.quadrant import Element, smallest_enlarged_element
from repro.index.ranges import IndexRange, merge_ranges, merge_values_to_ranges
from repro.index.xz2 import XZ2Index
from repro.index.xzstar import XZStarIndex
from repro.kvstore.lsm import LSMStore
from repro.kvstore.rowkey import decode_rowkey, encode_rowkey
from repro.measures import discrete_frechet, dtw, hausdorff

UNIT = SpaceBounds(0, 0, 1, 1)

coords = st.floats(min_value=0.0, max_value=1.0, allow_nan=False, width=64)
unit_points = st.tuples(coords, coords)
point_lists = st.lists(unit_points, min_size=1, max_size=25)
multi_point_lists = st.lists(unit_points, min_size=2, max_size=25)


# ----------------------------------------------------------------------
# XZ* encoding
# ----------------------------------------------------------------------
@given(st.integers(min_value=2, max_value=6), st.data())
@settings(max_examples=150, deadline=None)
def test_xzstar_value_decode_roundtrip(max_res, data):
    index = XZStarIndex(max_res, UNIT)
    value = data.draw(st.integers(min_value=0, max_value=index.total_index_spaces - 1))
    element, code = index.decode(value)
    assert index.value(element, code) == value


@given(st.integers(min_value=2, max_value=5), st.data())
@settings(max_examples=100, deadline=None)
def test_xzstar_values_distinct(max_res, data):
    index = XZStarIndex(max_res, UNIT)
    v1 = data.draw(st.integers(min_value=0, max_value=index.root_block_start - 1))
    v2 = data.draw(st.integers(min_value=0, max_value=index.root_block_start - 1))
    assume(v1 != v2)
    assert index.decode(v1) != index.decode(v2)


@given(point_lists)
@settings(max_examples=200, deadline=None)
def test_trajectory_placement_total(points):
    """Every in-bounds trajectory gets a legal (element, code, value)."""
    index = XZStarIndex(8, UNIT)
    t = Trajectory("h", points)
    placed = index.index(t)
    assert 0 <= placed.value < index.total_index_spaces
    element, code = index.decode(placed.value)
    assert element == placed.element
    assert code == placed.position_code
    # The enlarged element covers the trajectory's MBR.
    norm = MBR.of_points([UNIT.normalize(x, y) for x, y in points])
    assert placed.element.enlarged_mbr().expanded(1e-12).contains(norm)


@given(point_lists)
@settings(max_examples=150, deadline=None)
def test_xz2_and_xzstar_share_elements(points):
    xz2 = XZ2Index(8, UNIT)
    xzs = XZStarIndex(8, UNIT)
    t = Trajectory("h", points)
    assert xz2.place(t) == xzs.place(t)[0]


# ----------------------------------------------------------------------
# SEE
# ----------------------------------------------------------------------
@given(multi_point_lists)
@settings(max_examples=200, deadline=None)
def test_see_covers_and_anchors(points):
    mbr = MBR.of_points(points)
    element = smallest_enlarged_element(mbr, 12)
    assert element.enlarged_mbr().expanded(1e-12).contains(mbr)
    cell = element.cell_mbr().expanded(1e-12)
    assert cell.contains_point(mbr.min_x, mbr.min_y)


# ----------------------------------------------------------------------
# Ranges
# ----------------------------------------------------------------------
@given(st.lists(st.integers(min_value=0, max_value=500), max_size=80))
@settings(max_examples=200, deadline=None)
def test_merge_values_covers_exactly(values):
    ranges = merge_values_to_ranges(values)
    covered = set()
    for r in ranges:
        covered.update(range(r.start, r.stop))
    assert covered == set(values)
    # Normalised: sorted and non-touching.
    for a, b in zip(ranges, ranges[1:]):
        assert a.stop < b.start


@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=200),
            st.integers(min_value=1, max_value=20),
        ),
        max_size=30,
    )
)
@settings(max_examples=200, deadline=None)
def test_merge_ranges_preserves_coverage(pairs):
    ranges = [IndexRange(a, a + w) for a, w in pairs]
    merged = merge_ranges(ranges)
    covered = set()
    for r in ranges:
        covered.update(range(r.start, r.stop))
    merged_covered = set()
    for r in merged:
        merged_covered.update(range(r.start, r.stop))
    assert merged_covered == covered


# ----------------------------------------------------------------------
# DP features
# ----------------------------------------------------------------------
@given(point_lists, st.floats(min_value=0.0, max_value=0.2))
@settings(max_examples=150, deadline=None)
def test_dp_boxes_cover_all_points(points, theta):
    features = extract_dp_features(points, theta)
    for x, y in points:
        assert features.point_to_boxes_distance(x, y) <= 1e-9


@given(multi_point_lists, multi_point_lists)
@settings(max_examples=100, deadline=None)
def test_dp_bounds_below_frechet(a, b):
    """Lemmas 13-14 bounds never exceed the exact distance."""
    fa = extract_dp_features(a, 0.05)
    fb = extract_dp_features(b, 0.05)
    exact = discrete_frechet(a, b)
    for px, py in fa.rep_points:
        assert fb.point_to_boxes_distance(px, py) <= exact + 1e-9
    assert fa.box_lower_bound_against(fb) <= exact + 1e-9


# ----------------------------------------------------------------------
# Measures
# ----------------------------------------------------------------------
@given(multi_point_lists, multi_point_lists)
@settings(max_examples=100, deadline=None)
def test_measure_relations(a, b):
    df = discrete_frechet(a, b)
    dh = hausdorff(a, b)
    dd = dtw(a, b)
    assert df >= dh - 1e-9  # Fréchet dominates Hausdorff
    assert dd >= df - 1e-9  # DTW (sum) dominates Fréchet (max)
    assert df >= math.dist(a[0], b[0]) - 1e-9  # Lemma 12
    assert df >= math.dist(a[-1], b[-1]) - 1e-9


@given(point_lists)
@settings(max_examples=100, deadline=None)
def test_measures_identity(points):
    assert discrete_frechet(points, points) == 0.0
    assert hausdorff(points, points) == 0.0
    assert dtw(points, points) == 0.0


# ----------------------------------------------------------------------
# Row keys
# ----------------------------------------------------------------------
@given(
    st.integers(min_value=0, max_value=255),
    st.integers(min_value=0, max_value=2**62),
    st.text(
        alphabet=st.characters(blacklist_categories=("Cs",)), max_size=20
    ),
)
@settings(max_examples=200, deadline=None)
def test_rowkey_roundtrip(shard, value, tid):
    assert decode_rowkey(encode_rowkey(shard, value, tid)) == (shard, value, tid)


@given(
    st.integers(min_value=0, max_value=2**62),
    st.integers(min_value=0, max_value=2**62),
)
@settings(max_examples=200, deadline=None)
def test_rowkey_order_isomorphic(v1, v2):
    k1 = encode_rowkey(0, v1, "")
    k2 = encode_rowkey(0, v2, "")
    assert (k1 < k2) == (v1 < v2)


# ----------------------------------------------------------------------
# LSM store model check
# ----------------------------------------------------------------------
ops = st.lists(
    st.tuples(
        st.sampled_from(["put", "delete", "flush", "compact"]),
        st.integers(min_value=0, max_value=15),
        st.binary(min_size=0, max_size=6),
    ),
    max_size=60,
)


@given(ops)
@settings(max_examples=150, deadline=None)
def test_lsm_matches_dict_model(operations):
    store = LSMStore(flush_threshold=10**9)
    model = {}
    for op, key_id, value in operations:
        key = f"k{key_id:02d}".encode()
        if op == "put":
            store.put(key, value)
            model[key] = value
        elif op == "delete":
            store.delete(key)
            model.pop(key, None)
        elif op == "flush":
            store.flush()
        else:
            store.compact()
    assert dict(store.scan()) == model


# ----------------------------------------------------------------------
# Position codes under hypothesis-generated trajectories
# ----------------------------------------------------------------------
@given(point_lists, st.integers(min_value=2, max_value=10))
@settings(max_examples=200, deadline=None)
def test_position_code_always_legal(points, max_res):
    mbr = MBR.of_points(points)
    element = smallest_enlarged_element(mbr, max_res)
    code = position_code_of(points, element, max_res)
    assert 1 <= code <= 10
    if element.level < max_res:
        assert code != 10
