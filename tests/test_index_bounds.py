"""Unit tests for SpaceBounds normalisation."""

import pytest

from repro.exceptions import GeometryError
from repro.geometry.mbr import MBR
from repro.index.bounds import SpaceBounds


class TestSpaceBounds:
    def test_whole_earth_default(self):
        earth = SpaceBounds.whole_earth()
        assert earth.min_x == -180.0
        assert earth.max_y == 90.0
        assert earth.width == 360.0
        assert earth.height == 180.0

    def test_degenerate_rejected(self):
        with pytest.raises(GeometryError):
            SpaceBounds(0, 0, 0, 1)
        with pytest.raises(GeometryError):
            SpaceBounds(0, 5, 1, 5)

    def test_normalize_corners(self):
        b = SpaceBounds(10, 20, 30, 40)
        assert b.normalize(10, 20) == (0.0, 0.0)
        assert b.normalize(30, 40) == (1.0, 1.0)
        assert b.normalize(20, 30) == (0.5, 0.5)

    def test_normalize_clamps(self):
        b = SpaceBounds(0, 0, 1, 1)
        assert b.normalize(-5, 2) == (0.0, 1.0)

    def test_denormalize_roundtrip(self):
        b = SpaceBounds(-180, -90, 180, 90)
        for x, y in [(0, 0), (116.4, 39.9), (-73.9, 40.7)]:
            nx, ny = b.normalize(x, y)
            rx, ry = b.denormalize(nx, ny)
            assert rx == pytest.approx(x)
            assert ry == pytest.approx(y)

    def test_normalize_mbr(self):
        b = SpaceBounds(0, 0, 10, 10)
        assert b.normalize_mbr(MBR(0, 0, 5, 10)) == MBR(0, 0, 0.5, 1.0)

    def test_normalize_length_conservative(self):
        """Length conversion uses the smaller extent so normalised
        thresholds can only grow — pruning windows widen, never shrink."""
        b = SpaceBounds(0, 0, 10, 2)
        assert b.normalize_length(1.0) == pytest.approx(0.5)

    def test_contains(self):
        b = SpaceBounds(0, 0, 1, 1)
        assert b.contains(0.5, 0.5)
        assert b.contains(1.0, 1.0)
        assert not b.contains(1.1, 0.5)
