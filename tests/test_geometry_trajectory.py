"""Unit tests for repro.geometry.trajectory."""

import pytest

from repro.exceptions import GeometryError
from repro.geometry.mbr import MBR
from repro.geometry.point import Point
from repro.geometry.trajectory import Trajectory


class TestTrajectory:
    def test_basic(self):
        t = Trajectory("a", [(0, 0), (1, 1)])
        assert t.tid == "a"
        assert len(t) == 2
        assert t[0] == (0.0, 0.0)
        assert list(t) == [(0.0, 0.0), (1.0, 1.0)]

    def test_empty_raises(self):
        with pytest.raises(GeometryError):
            Trajectory("a", [])

    def test_single_point_is_legal(self):
        t = Trajectory("ping", [(116.4, 39.9)])
        assert len(t) == 1
        assert t.segments() == []

    def test_mbr_memoised(self):
        t = Trajectory("a", [(0, 1), (2, 0), (1, 3)])
        assert t.mbr == MBR(0, 0, 2, 3)
        assert t.mbr is t.mbr  # cached object identity

    def test_start_end(self):
        t = Trajectory("a", [(0, 0), (1, 1), (2, 0)])
        assert t.start == Point(0, 0)
        assert t.end == Point(2, 0)

    def test_prefix_matches_paper_definition(self):
        # T^3 = (t1, t2, t3) for 1-based prefix indexing.
        t = Trajectory("a", [(i, i) for i in range(10)])
        p = t.prefix(3)
        assert len(p) == 3
        assert p.points == ((0, 0), (1, 1), (2, 2))

    def test_prefix_bounds(self):
        t = Trajectory("a", [(0, 0), (1, 1)])
        with pytest.raises(GeometryError):
            t.prefix(0)
        with pytest.raises(GeometryError):
            t.prefix(3)

    def test_segments(self):
        t = Trajectory("a", [(0, 0), (1, 0), (1, 1)])
        assert t.segments() == [((0, 0), (1, 0)), ((1, 0), (1, 1))]

    def test_is_stationary(self):
        assert Trajectory("s", [(1, 1)] * 5).is_stationary()
        assert not Trajectory("m", [(1, 1), (1.1, 1)]).is_stationary()
        assert Trajectory("j", [(1, 1), (1.0001, 1)]).is_stationary(tol=0.001)

    def test_translated(self):
        t = Trajectory("a", [(0, 0), (1, 1)]).translated(1, 2, tid="b")
        assert t.tid == "b"
        assert t.points == ((1, 2), (2, 3))

    def test_equality_and_hash(self):
        a = Trajectory("x", [(0, 0)])
        b = Trajectory("x", [(0, 0)])
        c = Trajectory("y", [(0, 0)])
        assert a == b
        assert a != c
        assert len({a, b, c}) == 2

    def test_points_are_immutable_tuple(self):
        source = [(0, 0), (1, 1)]
        t = Trajectory("a", source)
        source.append((2, 2))
        assert len(t) == 2
        assert isinstance(t.points, tuple)
