"""Unit tests for index-value range merging."""

import pytest

from repro.index.ranges import (
    IndexRange,
    merge_ranges,
    merge_values_to_ranges,
    total_span,
)


class TestIndexRange:
    def test_basic(self):
        r = IndexRange(3, 7)
        assert len(r) == 4
        assert r.contains(3)
        assert r.contains(6)
        assert not r.contains(7)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            IndexRange(3, 3)
        with pytest.raises(ValueError):
            IndexRange(5, 2)

    def test_overlaps_and_touches(self):
        assert IndexRange(0, 5).overlaps(IndexRange(4, 8))
        assert not IndexRange(0, 5).overlaps(IndexRange(5, 8))
        assert IndexRange(0, 5).touches(IndexRange(5, 8))
        assert not IndexRange(0, 5).touches(IndexRange(6, 8))


class TestMergeValues:
    def test_empty(self):
        assert merge_values_to_ranges([]) == []

    def test_single_run(self):
        assert merge_values_to_ranges([1, 2, 3]) == [IndexRange(1, 4)]

    def test_unsorted_with_duplicates(self):
        got = merge_values_to_ranges([5, 1, 2, 5, 2])
        assert got == [IndexRange(1, 3), IndexRange(5, 6)]

    def test_two_runs(self):
        got = merge_values_to_ranges([1, 2, 10, 11])
        assert got == [IndexRange(1, 3), IndexRange(10, 12)]

    def test_gap_bridging(self):
        # A gap of one value is bridged when gap=1.
        got = merge_values_to_ranges([1, 3], gap=1)
        assert got == [IndexRange(1, 4)]
        got = merge_values_to_ranges([1, 4], gap=1)
        assert got == [IndexRange(1, 2), IndexRange(4, 5)]


class TestMergeRanges:
    def test_disjoint_stay_separate(self):
        rs = [IndexRange(10, 12), IndexRange(0, 2)]
        assert merge_ranges(rs) == [IndexRange(0, 2), IndexRange(10, 12)]

    def test_overlapping_merge(self):
        rs = [IndexRange(0, 5), IndexRange(3, 9), IndexRange(9, 10)]
        assert merge_ranges(rs) == [IndexRange(0, 10)]

    def test_contained_absorbed(self):
        rs = [IndexRange(0, 10), IndexRange(2, 3)]
        assert merge_ranges(rs) == [IndexRange(0, 10)]

    def test_empty(self):
        assert merge_ranges([]) == []

    def test_total_span(self):
        rs = [IndexRange(0, 5), IndexRange(3, 8), IndexRange(20, 21)]
        assert total_span(rs) == 9
