"""Edge-case tests for the best-first top-k search."""

import random

import pytest

from repro import TraSS, TraSSConfig, Trajectory, SpaceBounds
from repro.measures import discrete_frechet, get_measure

BOUNDS = SpaceBounds(0, 0, 1, 1)


def build(data, **kw):
    defaults = dict(bounds=BOUNDS, max_resolution=10, shards=2)
    defaults.update(kw)
    return TraSS.build(data, TraSSConfig(**defaults))


class TestTies:
    def test_tied_distances_still_return_k(self):
        pts = [(0.4, 0.4), (0.42, 0.41)]
        data = [Trajectory(f"same{i}", pts) for i in range(6)]
        data.append(Trajectory("far", [(0.9, 0.9), (0.92, 0.9)]))
        engine = build(data)
        result = engine.topk_search(data[0], 4)
        assert len(result.answers) == 4
        assert all(d == pytest.approx(0.0) for d, _ in result.answers)

    def test_k_straddles_tie_boundary(self):
        """When the k-th and (k+1)-th distances tie, any valid subset is
        acceptable but distances must match brute force exactly."""
        near = [(0.5, 0.5), (0.51, 0.5)]
        data = [Trajectory("q", near)]
        data += [
            Trajectory(f"tie{i}", [(0.6, 0.5), (0.61, 0.5)]) for i in range(3)
        ]
        engine = build(data)
        result = engine.topk_search(data[0], 2)
        want = sorted(
            discrete_frechet(data[0].points, t.points) for t in data
        )[:2]
        assert [round(d, 9) for d, _ in result.answers] == [
            round(d, 9) for d in want
        ]


class TestDegenerateStores:
    def test_single_trajectory_store(self):
        data = [Trajectory("only", [(0.3, 0.3), (0.31, 0.3)])]
        engine = build(data)
        result = engine.topk_search(data[0], 3)
        assert [tid for _, tid in result.answers] == ["only"]

    def test_all_stationary_store(self):
        data = [
            Trajectory(f"s{i}", [(0.2 + 0.01 * i, 0.2)] * 3) for i in range(10)
        ]
        engine = build(data, max_resolution=8)
        q = data[4]
        result = engine.topk_search(q, 3)
        want = sorted(
            (discrete_frechet(q.points, t.points), t.tid) for t in data
        )[:3]
        assert [round(d, 9) for d, _ in result.answers] == [
            round(d, 9) for d, _ in want
        ]

    def test_query_not_in_store(self):
        rng = random.Random(1)
        data = [
            Trajectory(
                f"t{i}",
                [(0.5 + rng.uniform(-0.05, 0.05), 0.5 + rng.uniform(-0.05, 0.05))
                 for _ in range(4)],
            )
            for i in range(30)
        ]
        engine = build(data)
        q = Trajectory("external", [(0.52, 0.5), (0.54, 0.51)])
        result = engine.topk_search(q, 5)
        want = sorted(
            (discrete_frechet(q.points, t.points), t.tid) for t in data
        )[:5]
        assert [round(d, 9) for d, _ in result.answers] == [
            round(d, 9) for d, _ in want
        ]


class TestMeasuresInTopK:
    def test_hausdorff_finds_reversed_twin(self):
        """Under Hausdorff the reversed twin is at distance 0 and must
        rank first; under Fréchet it is far."""
        forward = [(0.1 * i + 0.1, 0.3) for i in range(5)]
        data = [
            Trajectory("fwd", forward),
            Trajectory("rev", list(reversed(forward))),
            Trajectory("far", [(0.9, 0.9), (0.92, 0.9)]),
        ]
        engine = build(data)
        q = Trajectory("q", forward)
        hausdorff_top = engine.topk_search(q, 2, measure="hausdorff")
        assert {tid for _, tid in hausdorff_top.answers} == {"fwd", "rev"}
        frechet_top = engine.topk_search(q, 1, measure="frechet")
        assert frechet_top.answers[0][1] == "fwd"

    def test_dtw_ranking_matches_brute(self):
        rng = random.Random(2)
        data = [
            Trajectory(
                f"t{i}",
                [(0.4 + rng.uniform(-0.03, 0.03), 0.4 + rng.uniform(-0.03, 0.03))
                 for _ in range(6)],
            )
            for i in range(25)
        ]
        engine = build(data)
        m = get_measure("dtw")
        q = data[3]
        got = engine.topk_search(q, 5, measure="dtw")
        want = sorted((m.distance(q.points, t.points), t.tid) for t in data)[:5]
        assert [round(d, 9) for d, _ in got.answers] == [
            round(d, 9) for d, _ in want
        ]


class TestAccountingInvariants:
    def test_retrieved_at_least_candidates(self):
        rng = random.Random(3)
        data = [
            Trajectory(
                f"t{i}",
                [(rng.random() * 0.9, rng.random() * 0.9)] * 2,
            )
            for i in range(50)
        ]
        engine = build(data)
        result = engine.topk_search(data[0], 5)
        assert result.retrieved_rows >= result.candidates
        assert result.candidates >= len(result.answers)
        assert result.units_scanned >= 1
        assert result.total_seconds >= 0

    def test_worst_distance_of_empty_store(self):
        engine = build([Trajectory("x", [(0.1, 0.1)])])
        result = engine.topk_search(Trajectory("q", [(0.9, 0.9)]), 1)
        assert result.worst_distance == result.answers[-1][0]
