"""End-to-end integration tests across modules.

Bigger datasets, realistic generators, both key encodings, flushes and
compactions mid-stream — the paths a real deployment would exercise.
"""

import random

import pytest

from repro import TraSS, TraSSConfig, Trajectory
from repro.core.storage import STRING_KEYS
from repro.data.generators import TDRIVE_BOUNDS, tdrive_like
from repro.data.workload import sample_queries
from repro.measures import discrete_frechet, get_measure


@pytest.fixture(scope="module")
def tdrive_engine():
    data = tdrive_like(250, seed=19)
    cfg = TraSSConfig(
        bounds=TDRIVE_BOUNDS, max_resolution=14, dp_tolerance=0.005, shards=4
    )
    return TraSS.build(data, cfg), list(data)


class TestTDriveEndToEnd:
    def test_threshold_matches_brute_force(self, tdrive_engine):
        engine, data = tdrive_engine
        rng = random.Random(71)
        queries = sample_queries(data, 6, seed=3)
        for q in queries:
            eps = rng.choice([0.01, 0.03])
            got = set(engine.threshold_search(q, eps).answers)
            want = {
                t.tid
                for t in data
                if discrete_frechet(q.points, t.points) <= eps
            }
            assert got == want, q.tid

    def test_topk_matches_brute_force(self, tdrive_engine):
        engine, data = tdrive_engine
        queries = sample_queries(data, 3, seed=4)
        for q in queries:
            got = engine.topk_search(q, 8)
            want = sorted(
                (discrete_frechet(q.points, t.points), t.tid) for t in data
            )[:8]
            assert [round(d, 9) for d, _ in got.answers] == [
                round(d, 9) for d, _ in want
            ]

    def test_stationary_taxis_are_searchable(self, tdrive_engine):
        engine, data = tdrive_engine
        stationary = [t for t in data if t.is_stationary()]
        assert stationary, "generator must produce waiting taxis"
        q = stationary[0]
        result = engine.threshold_search(q, 0.001)
        assert q.tid in result.answers

    def test_pruning_beats_full_scan(self, tdrive_engine):
        """Global pruning must touch far fewer rows than the table
        holds — the headline I/O claim in miniature."""
        engine, data = tdrive_engine
        q = sample_queries(data, 1, seed=5)[0]
        result = engine.threshold_search(q, 0.01)
        assert result.retrieved_rows < len(data) * 0.5


class TestStringKeyEngine:
    def test_string_engine_matches_integer_engine(self):
        data = tdrive_like(120, seed=20)
        cfg = TraSSConfig(
            bounds=TDRIVE_BOUNDS, max_resolution=12, dp_tolerance=0.005, shards=2
        )
        int_engine = TraSS.build(data, cfg)
        str_engine = TraSS.build(data, cfg, key_encoding=STRING_KEYS)
        for q in sample_queries(data, 4, seed=6):
            a = set(int_engine.threshold_search(q, 0.02).answers)
            b = set(str_engine.threshold_search(q, 0.02).answers)
            assert a == b


class TestStoreMaintenance:
    def test_search_correct_after_flush_and_compaction(self):
        data = tdrive_like(100, seed=21)
        cfg = TraSSConfig(
            bounds=TDRIVE_BOUNDS, max_resolution=12, dp_tolerance=0.005, shards=2
        )
        engine = TraSS.build(data, cfg)
        engine.store.table.flush_all()
        engine.store.table.compact_all()
        q = data[10]
        got = set(engine.threshold_search(q, 0.02).answers)
        want = {
            t.tid for t in data if discrete_frechet(q.points, t.points) <= 0.02
        }
        assert got == want

    def test_incremental_ingest(self):
        cfg = TraSSConfig(
            bounds=TDRIVE_BOUNDS, max_resolution=12, dp_tolerance=0.005, shards=2
        )
        engine = TraSS(cfg)
        batches = [tdrive_like(40, seed=s) for s in (22, 23)]
        # Rename to avoid tid collisions across batches.
        all_data = []
        for bi, batch in enumerate(batches):
            for t in batch:
                renamed = Trajectory(f"b{bi}_{t.tid}", t.points)
                all_data.append(renamed)
                engine.add(renamed)
        assert len(engine) == 80
        q = all_data[5]
        got = set(engine.threshold_search(q, 0.02).answers)
        want = {
            t.tid
            for t in all_data
            if discrete_frechet(q.points, t.points) <= 0.02
        }
        assert got == want

    def test_region_splits_during_ingest(self):
        cfg = TraSSConfig(
            bounds=TDRIVE_BOUNDS,
            max_resolution=12,
            dp_tolerance=0.005,
            shards=2,
            max_region_rows=40,
        )
        data = tdrive_like(200, seed=24)
        engine = TraSS.build(data, cfg)
        assert engine.store.table.num_regions > 1
        q = data[0]
        got = set(engine.threshold_search(q, 0.01).answers)
        want = {
            t.tid for t in data if discrete_frechet(q.points, t.points) <= 0.01
        }
        assert got == want


class TestOtherMeasuresEndToEnd:
    @pytest.mark.parametrize("measure", ["hausdorff", "dtw"])
    def test_section_vii_measures(self, tdrive_engine, measure):
        engine, data = tdrive_engine
        m = get_measure(measure)
        q = sample_queries(data, 1, seed=7)[0]
        eps = 0.03
        got = set(engine.threshold_search(q, eps, measure=measure).answers)
        want = {t.tid for t in data if m.distance(q.points, t.points) <= eps}
        assert got == want
