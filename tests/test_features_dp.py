"""Unit tests for Douglas-Peucker and DP features (Section IV-D)."""

import math
import random

import pytest

from repro.exceptions import GeometryError
from repro.features.douglas_peucker import douglas_peucker, douglas_peucker_mask
from repro.features.dp_features import extract_dp_features
from repro.geometry.distance import point_segment_distance


def walk(rng, n, step=0.05):
    x = y = 0.0
    pts = [(x, y)]
    for _ in range(n - 1):
        x += rng.uniform(-step, step)
        y += rng.uniform(-step, step)
        pts.append((x, y))
    return pts


class TestDouglasPeucker:
    def test_endpoints_always_kept(self):
        pts = [(0, 0), (1, 5), (2, 0)]
        kept = douglas_peucker(pts, theta=100.0)
        assert kept[0] == 0
        assert kept[-1] == 2

    def test_straight_line_collapses(self):
        pts = [(i, 0) for i in range(10)]
        assert douglas_peucker(pts, theta=0.01) == [0, 9]

    def test_zigzag_keeps_extremes(self):
        pts = [(0, 0), (1, 1), (2, 0), (3, -1), (4, 0)]
        kept = douglas_peucker(pts, theta=0.5)
        assert 1 in kept and 3 in kept

    def test_tolerance_monotone(self):
        rng = random.Random(1)
        pts = walk(rng, 60)
        sizes = [len(douglas_peucker(pts, theta)) for theta in (0.001, 0.01, 0.1)]
        assert sizes == sorted(sizes, reverse=True)

    def test_error_bound_holds(self):
        """Every dropped point is within theta of its covering chord."""
        rng = random.Random(2)
        for _ in range(20):
            pts = walk(rng, 40)
            theta = 0.02
            kept = douglas_peucker(pts, theta)
            for a, b in zip(kept, kept[1:]):
                for i in range(a + 1, b):
                    d = point_segment_distance(pts[i], pts[a], pts[b])
                    assert d <= theta + 1e-12

    def test_single_point(self):
        assert douglas_peucker([(1, 1)], 0.1) == [0]

    def test_two_points(self):
        assert douglas_peucker([(0, 0), (1, 1)], 0.1) == [0, 1]

    def test_negative_tolerance_raises(self):
        with pytest.raises(ValueError):
            douglas_peucker([(0, 0)], -1.0)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            douglas_peucker_mask([], 0.1)


class TestDPFeatures:
    def test_counts(self):
        rng = random.Random(3)
        pts = walk(rng, 50)
        features = extract_dp_features(pts, theta=0.02)
        assert features.num_boxes == features.num_rep_points - 1
        assert features.rep_points[0] == pts[0]
        assert features.rep_points[-1] == pts[-1]

    def test_boxes_cover_every_raw_point(self):
        """Soundness contract of Lemma 13: the box union covers T."""
        rng = random.Random(4)
        for _ in range(30):
            pts = walk(rng, rng.randint(2, 80))
            features = extract_dp_features(pts, theta=0.03)
            for x, y in pts:
                assert features.point_to_boxes_distance(x, y) == pytest.approx(
                    0.0, abs=1e-9
                )

    def test_single_point_trajectory(self):
        features = extract_dp_features([(1.0, 2.0)], theta=0.01)
        assert features.num_rep_points == 1
        assert features.num_boxes == 1
        assert features.point_to_boxes_distance(1.0, 2.0) == 0.0

    def test_stationary_trajectory(self):
        features = extract_dp_features([(1.0, 2.0)] * 8, theta=0.01)
        assert features.point_to_boxes_distance(1.0, 2.0) == 0.0
        assert features.point_to_boxes_distance(1.0, 3.0) == pytest.approx(1.0)

    def test_far_point_distance_positive(self):
        pts = [(0, 0), (1, 0), (2, 0)]
        features = extract_dp_features(pts, theta=0.01)
        assert features.point_to_boxes_distance(1.0, 5.0) == pytest.approx(
            5.0, rel=1e-6
        )

    def test_lemma13_lower_bound_vs_frechet(self):
        """max over p in T1.P of d(p, T2.B) never exceeds D_F(T1, T2)."""
        from repro.measures import discrete_frechet

        rng = random.Random(5)
        for _ in range(30):
            a = walk(rng, rng.randint(2, 30))
            b = [(x + rng.uniform(0, 0.4), y) for x, y in walk(rng, 25)]
            fa = extract_dp_features(a, theta=0.02)
            fb = extract_dp_features(b, theta=0.02)
            exact = discrete_frechet(a, b)
            for px, py in fa.rep_points:
                assert fb.point_to_boxes_distance(px, py) <= exact + 1e-9
            for px, py in fb.rep_points:
                assert fa.point_to_boxes_distance(px, py) <= exact + 1e-9

    def test_lemma14_lower_bound_vs_frechet(self):
        """The box-edge bound never exceeds the exact distance."""
        from repro.measures import discrete_frechet

        rng = random.Random(6)
        for _ in range(30):
            a = walk(rng, rng.randint(3, 25))
            b = [(x + rng.uniform(0, 0.5), y) for x, y in walk(rng, 20)]
            fa = extract_dp_features(a, theta=0.02)
            fb = extract_dp_features(b, theta=0.02)
            exact = discrete_frechet(a, b)
            assert fa.box_lower_bound_against(fb) <= exact + 1e-9
            assert fb.box_lower_bound_against(fa) <= exact + 1e-9
            # exceeds_box_bound must agree with the bound value.
            assert fa.exceeds_box_bound(fb, exact + 1e-9) is False

    def test_empty_raises(self):
        with pytest.raises(GeometryError):
            extract_dp_features([], 0.1)
