"""Property test: the circuit breaker's half-open window admits
exactly one probe, no matter how many threads race the cooldown expiry.

The parallel scan executor and the serving coordinator share one
breaker across worker threads; if two racers both saw the circuit as
half-open, both would hit a region that just proved unhealthy — the
whole point of half-open is a single canary.  ``is_open`` takes an
explicit ``now``, so the race is driven with a frozen clock and a
barrier instead of sleeps: every thread asks at the same instant.
"""

import threading

from hypothesis import given, settings, strategies as st

from repro.core.executor import CircuitBreaker


def _race_is_open(breaker, span, now, threads):
    """All ``threads`` call ``is_open(span, now)`` at once; returns the
    number that were admitted (saw the circuit as closed/half-open)."""
    barrier = threading.Barrier(threads)
    admitted = []

    def racer():
        barrier.wait()
        if not breaker.is_open(span, now):
            admitted.append(1)

    workers = [threading.Thread(target=racer) for _ in range(threads)]
    for w in workers:
        w.start()
    for w in workers:
        w.join()
    return len(admitted)


@given(
    threads=st.integers(min_value=2, max_value=8),
    failure_threshold=st.integers(min_value=1, max_value=5),
    windows=st.integers(min_value=1, max_value=4),
    probe_fails=st.booleans(),
)
@settings(max_examples=40, deadline=None)
def test_exactly_one_probe_per_halfopen_window(
    threads, failure_threshold, windows, probe_fails
):
    cooldown = 10.0
    breaker = CircuitBreaker(
        failure_threshold=failure_threshold, cooldown_seconds=cooldown
    )
    span = (b"a", b"b")
    now = 0.0
    for _ in range(failure_threshold):
        breaker.record_failure(span, now)
    assert breaker.is_open(span, now + cooldown / 2)

    for window in range(1, windows + 1):
        now += cooldown  # cooldown expiry: the half-open window opens
        assert _race_is_open(breaker, span, now, threads) == 1
        assert breaker.probes_admitted == window
        # While the probe is in flight, everyone else keeps waiting.
        assert _race_is_open(breaker, span, now + cooldown / 2, threads) == 0
        if probe_fails and window < windows:
            # One strike re-opens immediately; the loop's next cooldown
            # expiry opens the next half-open window.
            assert breaker.record_failure(span, now)
        elif window < windows:
            # An unresolved probe stops blocking after a further
            # cooldown: the next window admits a fresh probe.
            pass
    assert breaker.probes_admitted == windows


@given(threads=st.integers(min_value=2, max_value=8))
@settings(max_examples=25, deadline=None)
def test_probe_success_closes_for_everyone(threads):
    breaker = CircuitBreaker(failure_threshold=2, cooldown_seconds=5.0)
    span = (None, b"m")
    breaker.record_failure(span, 0.0)
    breaker.record_failure(span, 0.0)
    assert _race_is_open(breaker, span, 5.0, threads) == 1
    breaker.record_success(span)
    # Closed circuit: every concurrent caller is admitted.
    assert _race_is_open(breaker, span, 6.0, threads) == threads
    assert breaker.probes_admitted == 1


@given(threads=st.integers(min_value=2, max_value=6))
@settings(max_examples=25, deadline=None)
def test_clear_probe_resolves_without_touching_other_spans(threads):
    breaker = CircuitBreaker(failure_threshold=2, cooldown_seconds=5.0)
    probed = (b"a", b"b")
    bystander = (b"b", b"c")
    breaker.record_failure(probed, 0.0)
    breaker.record_failure(probed, 0.0)
    breaker.record_failure(bystander, 0.0)  # one strike of history
    assert _race_is_open(breaker, probed, 5.0, threads) == 1
    assert breaker.any_probing
    breaker.clear_probe(probed)
    breaker.clear_probe(bystander)  # no pending probe: must be a no-op
    assert not breaker.any_probing
    assert _race_is_open(breaker, probed, 5.5, threads) == threads
    # The bystander's failure streak survived the probe bookkeeping.
    breaker.record_failure(bystander, 6.0)
    assert breaker.is_open(bystander, 6.5)
