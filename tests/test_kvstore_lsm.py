"""Unit tests for the LSM store (flush, shadowing, compaction)."""

import random

import pytest

from repro.kvstore.lsm import LSMStore


class TestBasics:
    def test_put_get(self):
        s = LSMStore()
        s.put(b"a", b"1")
        assert s.get(b"a") == b"1"
        assert s.get(b"x") is None

    def test_delete(self):
        s = LSMStore()
        s.put(b"a", b"1")
        s.delete(b"a")
        assert s.get(b"a") is None

    def test_scan_sorted_and_half_open(self):
        s = LSMStore()
        for key in [b"d", b"a", b"c", b"b"]:
            s.put(key, key)
        assert [k for k, _ in s.scan(b"b", b"d")] == [b"b", b"c"]


class TestFlushAndShadowing:
    def test_flush_preserves_reads(self):
        s = LSMStore()
        s.put(b"a", b"1")
        s.flush()
        assert s.get(b"a") == b"1"
        assert len(s.sstables) == 1

    def test_newer_version_shadows_flushed(self):
        s = LSMStore()
        s.put(b"a", b"old")
        s.flush()
        s.put(b"a", b"new")
        assert s.get(b"a") == b"new"
        assert [v for _, v in s.scan()] == [b"new"]

    def test_tombstone_shadows_flushed_value(self):
        s = LSMStore()
        s.put(b"a", b"1")
        s.flush()
        s.delete(b"a")
        assert s.get(b"a") is None
        assert list(s.scan()) == []

    def test_tombstone_survives_its_own_flush(self):
        s = LSMStore()
        s.put(b"a", b"1")
        s.flush()
        s.delete(b"a")
        s.flush()  # tombstone now in a newer SSTable
        assert s.get(b"a") is None
        assert list(s.scan()) == []

    def test_automatic_flush_on_threshold(self):
        s = LSMStore(flush_threshold=64)
        for i in range(50):
            s.put(f"key{i:04d}".encode(), b"x" * 16)
        assert s.flush_count > 0
        assert all(
            s.get(f"key{i:04d}".encode()) == b"x" * 16 for i in range(50)
        )


class TestCompaction:
    def test_compaction_merges_runs(self):
        s = LSMStore(compaction_trigger=100)
        for batch in range(5):
            for i in range(10):
                s.put(f"k{batch}_{i}".encode(), b"v")
            s.flush()
        assert len(s.sstables) == 5
        s.compact()
        assert len(s.sstables) == 1
        assert len(list(s.scan())) == 50

    def test_compaction_drops_tombstones(self):
        s = LSMStore()
        s.put(b"a", b"1")
        s.put(b"b", b"2")
        s.flush()
        s.delete(b"a")
        s.flush()
        s.compact()
        assert len(s.sstables) == 1
        assert [k for k, _ in s.scan()] == [b"b"]
        # The tombstone is physically gone, not just hidden.
        assert len(s.sstables[0]) == 1

    def test_automatic_compaction_trigger(self):
        s = LSMStore(flush_threshold=32, compaction_trigger=3)
        for i in range(100):
            s.put(f"key{i:04d}".encode(), b"y" * 8)
        assert s.compaction_count > 0
        assert len(list(s.scan())) == 100

    def test_compaction_keeps_newest_version(self):
        s = LSMStore()
        for round_ in range(4):
            s.put(b"a", f"v{round_}".encode())
            s.flush()
        s.compact()
        assert s.get(b"a") == b"v3"


class TestModelComparison:
    def test_random_ops_match_dict_model(self):
        """Model-based: the LSM store must behave like a plain dict
        under random puts/deletes/flushes/compactions."""
        rng = random.Random(7)
        s = LSMStore(flush_threshold=256, compaction_trigger=4)
        model = {}
        keyspace = [f"k{i:02d}".encode() for i in range(30)]
        for _ in range(2000):
            op = rng.random()
            key = rng.choice(keyspace)
            if op < 0.6:
                value = str(rng.randrange(1000)).encode()
                s.put(key, value)
                model[key] = value
            elif op < 0.8:
                s.delete(key)
                model.pop(key, None)
            elif op < 0.9:
                s.flush()
            else:
                s.compact()
        assert dict(s.scan()) == model
        for key in keyspace:
            assert s.get(key) == model.get(key)
