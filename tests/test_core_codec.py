"""Unit tests for row-value serialisation."""

import random

import pytest

from repro.core.codec import decode_row, encode_row
from repro.exceptions import KVStoreError
from repro.features.dp_features import extract_dp_features


def roundtrip(points, theta=0.01, tid="t"):
    features = extract_dp_features(points, theta)
    blob = encode_row(tid, points, features)
    return blob, decode_row(blob)


class TestCodec:
    def test_roundtrip_simple(self):
        points = [(0.0, 0.0), (1.0, 0.5), (2.0, 0.25)]
        blob, (tid, got_points, features) = roundtrip(points, tid="abc")
        assert tid == "abc"
        assert got_points == points

    def test_roundtrip_preserves_features(self):
        rng = random.Random(1)
        points = [(rng.random(), rng.random()) for _ in range(40)]
        original = extract_dp_features(points, 0.05)
        blob = encode_row("x", points, original)
        _, _, restored = decode_row(blob)
        assert restored.rep_indexes == original.rep_indexes
        assert restored.rep_points == original.rep_points
        assert len(restored.boxes) == len(original.boxes)
        for a, b in zip(restored.boxes, original.boxes):
            assert a.anchor == b.anchor
            assert a.axis == pytest.approx(b.axis)
            assert a.length == pytest.approx(b.length)

    def test_roundtrip_single_point(self):
        points = [(116.5, 39.9)]
        _, (tid, got, features) = roundtrip(points)
        assert got == points
        assert features.num_boxes == 1

    def test_unicode_tid(self):
        points = [(0.0, 0.0), (1.0, 1.0)]
        features = extract_dp_features(points, 0.01)
        blob = encode_row("货车-42", points, features)
        tid, _, _ = decode_row(blob)
        assert tid == "货车-42"

    def test_empty_points_rejected(self):
        features = extract_dp_features([(0, 0)], 0.01)
        with pytest.raises(KVStoreError):
            encode_row("t", [], features)

    def test_truncated_blob_rejected(self):
        blob, _ = roundtrip([(0.0, 0.0), (1.0, 1.0)])
        with pytest.raises(KVStoreError):
            decode_row(blob[: len(blob) - 3])

    def test_trailing_garbage_rejected(self):
        blob, _ = roundtrip([(0.0, 0.0), (1.0, 1.0)])
        with pytest.raises(KVStoreError):
            decode_row(blob + b"junk")

    def test_garbage_rejected(self):
        with pytest.raises(KVStoreError):
            decode_row(b"\xff" * 7)
