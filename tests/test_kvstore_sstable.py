"""Unit tests for SSTables, including the file round trip."""

import pytest

from repro.exceptions import CorruptSSTableError, KVStoreError
from repro.kvstore.memtable import TOMBSTONE, MemTable
from repro.kvstore.sstable import SSTable


def build_table(n=20):
    m = MemTable()
    for i in range(n):
        m.put(f"key{i:03d}".encode(), f"value{i}".encode())
    return SSTable.from_entries(m.items())


class TestSSTable:
    def test_get(self):
        t = build_table()
        assert t.get(b"key005") == b"value5"
        assert t.get(b"missing") is None

    def test_get_tombstone(self):
        m = MemTable()
        m.put(b"a", b"1")
        m.delete(b"b")
        t = SSTable.from_entries(m.items())
        assert t.get(b"b") is TOMBSTONE

    def test_out_of_order_rejected(self):
        with pytest.raises(KVStoreError):
            SSTable([b"b", b"a"], [b"1", b"2"])

    def test_duplicate_keys_rejected(self):
        with pytest.raises(KVStoreError):
            SSTable([b"a", b"a"], [b"1", b"2"])

    def test_scan_range(self):
        t = build_table(10)
        keys = [k for k, _ in t.scan(b"key003", b"key007")]
        assert keys == [b"key003", b"key004", b"key005", b"key006"]

    def test_scan_all(self):
        t = build_table(5)
        assert len(list(t.scan())) == 5

    def test_min_max_keys(self):
        t = build_table(5)
        assert t.min_key == b"key000"
        assert t.max_key == b"key004"

    def test_empty_table(self):
        t = SSTable.from_entries([])
        assert len(t) == 0
        assert t.min_key is None
        assert list(t.scan()) == []

    def test_overlaps_range(self):
        t = build_table(5)
        assert t.overlaps_range(b"key002", b"key003")
        assert not t.overlaps_range(b"key900", None)
        assert not t.overlaps_range(None, b"key000")


class TestFileRoundTrip:
    def test_roundtrip(self, tmp_path):
        t = build_table(30)
        path = str(tmp_path / "run.sst")
        t.write_to(path)
        loaded = SSTable.load(path)
        assert list(loaded.scan()) == list(t.scan())
        assert loaded.get(b"key010") == b"value10"

    def test_roundtrip_with_tombstones(self, tmp_path):
        m = MemTable()
        m.put(b"keep", b"v")
        m.delete(b"gone")
        t = SSTable.from_entries(m.items())
        path = str(tmp_path / "run.sst")
        t.write_to(path)
        loaded = SSTable.load(path)
        assert loaded.get(b"gone") is TOMBSTONE
        assert loaded.get(b"keep") == b"v"

    def test_corrupt_checksum_detected(self, tmp_path):
        t = build_table(10)
        data = bytearray(t.to_bytes())
        data[len(data) // 2] ^= 0xFF  # flip a body byte
        with pytest.raises(CorruptSSTableError):
            SSTable.from_bytes(bytes(data))

    def test_truncated_file_detected(self):
        t = build_table(10)
        data = t.to_bytes()
        with pytest.raises(CorruptSSTableError):
            SSTable.from_bytes(data[: len(data) // 2])

    def test_bad_magic_detected(self):
        t = build_table(3)
        data = bytearray(t.to_bytes())
        data[0:4] = b"XXXX"
        # CRC covers the magic, so either error type is acceptable; the
        # point is that it refuses to load.
        with pytest.raises(CorruptSSTableError):
            SSTable.from_bytes(bytes(data))

    def test_empty_roundtrip(self):
        t = SSTable.from_entries([])
        assert len(SSTable.from_bytes(t.to_bytes())) == 0
