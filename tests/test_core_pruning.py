"""Unit tests for global pruning (Algorithm 1, Lemmas 6-11)."""

import random

import pytest

from repro import TraSSConfig, Trajectory, SpaceBounds
from repro.core.pruning import GlobalPruner
from repro.exceptions import QueryError
from repro.index.xzstar import XZStarIndex
from repro.measures import discrete_frechet

UNIT = SpaceBounds(0, 0, 1, 1)


def pruner(max_resolution=8, bounds=UNIT, budget=8192):
    return GlobalPruner(XZStarIndex(max_resolution, bounds), budget)


def walk(rng, start, n, step=0.01):
    x, y = start
    pts = [(x, y)]
    for _ in range(n - 1):
        x = min(0.999, max(0.0, x + rng.uniform(-step, step)))
        y = min(0.999, max(0.0, y + rng.uniform(-step, step)))
        pts.append((x, y))
    return pts


class TestResolutionBand:
    def test_band_ordering(self):
        p = pruner()
        q = Trajectory("q", [(0.4, 0.4), (0.45, 0.44)])
        min_r, max_r = p.resolution_band(q, eps=0.01)
        assert 0 <= min_r <= max_r <= 8

    def test_small_eps_narrow_band(self):
        p = pruner(max_resolution=16)
        q = Trajectory("q", [(0.4, 0.4), (0.45, 0.44)])
        narrow = p.resolution_band(q, eps=0.001)
        wide = p.resolution_band(q, eps=0.1)
        assert narrow[0] >= wide[0]  # MinR grows as eps shrinks

    def test_tiny_query_maxr_is_max(self):
        p = pruner(max_resolution=10)
        q = Trajectory("q", [(0.5, 0.5), (0.5005, 0.5)])
        _, max_r = p.resolution_band(q, eps=0.01)
        assert max_r == 10

    def test_big_query_caps_maxr(self):
        p = pruner(max_resolution=10)
        q = Trajectory("q", [(0.1, 0.1), (0.6, 0.6)])
        _, max_r = p.resolution_band(q, eps=0.01)
        assert max_r < 10  # elements much smaller than Q are useless


class TestPruneSoundness:
    def test_no_similar_trajectory_escapes(self):
        """Any trajectory within eps of the query must land in the
        pruner's surviving index spaces — the global soundness
        property everything else rests on."""
        rng = random.Random(11)
        index = XZStarIndex(8, UNIT)
        p = GlobalPruner(index)
        for trial in range(30):
            q = Trajectory("q", walk(rng, (rng.random() * 0.8, rng.random() * 0.8), 10))
            eps = rng.choice([0.005, 0.02, 0.05])
            result = p.prune(q, eps)
            covered = lambda v: any(r.contains(v) for r in result.ranges)
            for i in range(40):
                t = Trajectory(
                    f"t{i}",
                    walk(rng, (rng.random() * 0.8, rng.random() * 0.8), 8),
                )
                if discrete_frechet(q.points, t.points) <= eps:
                    assert covered(index.index(t).value), (trial, i)

    def test_far_trajectories_usually_pruned(self):
        """Effectiveness: a trajectory far from the query should not be
        covered by the plan (this is the 66.4% I/O claim's mechanism)."""
        index = XZStarIndex(8, UNIT)
        p = GlobalPruner(index)
        q = Trajectory("q", [(0.1, 0.1), (0.12, 0.11), (0.14, 0.12)])
        result = p.prune(q, eps=0.01)
        far = Trajectory("far", [(0.8, 0.8), (0.82, 0.81), (0.84, 0.82)])
        far_value = index.index(far).value
        assert not any(r.contains(far_value) for r in result.ranges)

    def test_eps_zero_allowed(self):
        p = pruner()
        q = Trajectory("q", [(0.3, 0.3), (0.32, 0.31)])
        result = p.prune(q, eps=0.0)
        # The query's own index space must always survive at eps 0.
        own = p.index.index(q).value
        assert any(r.contains(own) for r in result.ranges)

    def test_negative_eps_rejected(self):
        with pytest.raises(QueryError):
            pruner().prune(Trajectory("q", [(0.1, 0.1)]), -0.5)


class TestPruneEffectiveness:
    def test_plan_grows_with_eps(self):
        p = pruner(max_resolution=10)
        q = Trajectory("q", [(0.4, 0.4), (0.42, 0.41)])
        small = p.prune(q, eps=0.005).num_index_spaces
        large = p.prune(q, eps=0.05).num_index_spaces
        assert small <= large

    def test_position_codes_reduce_plan_vs_all_codes(self):
        """The plan must be smaller than accepting all 9/10 codes of
        every candidate element (the XZ* vs XZ2 advantage)."""
        index = XZStarIndex(8, UNIT)
        p = GlobalPruner(index)
        # An L-shaped query hugging two quads leaves far quads prunable.
        q = Trajectory("q", [(0.30, 0.30), (0.30, 0.42), (0.42, 0.42)])
        result = p.prune(q, eps=0.004)
        assert result.codes_pruned_far_quad > 0

    def test_truncation_safety_valve(self):
        """With a tiny planner budget the plan must still cover every
        similar trajectory (via subtree ranges)."""
        rng = random.Random(13)
        index = XZStarIndex(10, UNIT)
        tight = GlobalPruner(index, max_planned_elements=32)
        q = Trajectory("q", walk(rng, (0.4, 0.4), 12))
        result = tight.prune(q, eps=0.05)
        assert result.truncated
        covered = lambda v: any(r.contains(v) for r in result.ranges)
        for i in range(30):
            t = Trajectory(
                f"t{i}", walk(rng, (rng.random() * 0.8, rng.random() * 0.8), 6)
            )
            if discrete_frechet(q.points, t.points) <= 0.05:
                assert covered(index.index(t).value)

    def test_position_codes_ablation_is_superset(self):
        """With Lemmas 10-11 disabled the plan must cover at least the
        full plan's index spaces (ablation correctness)."""
        rng = random.Random(14)
        index = XZStarIndex(8, UNIT)
        full = GlobalPruner(index, use_position_codes=True)
        ablated = GlobalPruner(index, use_position_codes=False)
        for _ in range(10):
            q = Trajectory(
                "q", walk(rng, (rng.random() * 0.8, rng.random() * 0.8), 8)
            )
            plan_full = full.prune(q, 0.02)
            plan_ablated = ablated.prune(q, 0.02)
            in_ablated = lambda v: any(
                r.contains(v) for r in plan_ablated.ranges
            )
            for r in plan_full.ranges:
                for v in range(r.start, min(r.stop, r.start + 50)):
                    assert in_ablated(v)
            assert (
                plan_ablated.num_index_spaces >= plan_full.num_index_spaces
            )

    def test_visit_counts_reported(self):
        p = pruner()
        q = Trajectory("q", [(0.2, 0.2), (0.25, 0.22)])
        result = p.prune(q, eps=0.01)
        assert result.elements_visited > 0
        assert result.min_resolution <= result.max_resolution
