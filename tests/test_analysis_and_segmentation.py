"""Tests for plan analysis and GPS stream segmentation."""

import math
import random

import pytest

from repro import TraSS, TraSSConfig, Trajectory, SpaceBounds
from repro.data.segmentation import segment_stream, split_by_dwell, split_by_gap
from repro.exceptions import ReproError
from repro.index.analysis import analyse_plans, fragmentation_vs_merge_gap


@pytest.fixture(scope="module")
def engine_and_queries():
    rng = random.Random(81)
    data = []
    for i in range(100):
        x, y = rng.random() * 0.9, rng.random() * 0.9
        pts = [(x, y)]
        for _ in range(rng.randint(3, 12)):
            x = min(0.99, max(0, x + rng.uniform(-0.01, 0.01)))
            y = min(0.99, max(0, y + rng.uniform(-0.01, 0.01)))
            pts.append((x, y))
        data.append(Trajectory(f"t{i}", pts))
    cfg = TraSSConfig(bounds=SpaceBounds(0, 0, 1, 1), max_resolution=10, shards=2)
    return TraSS.build(data, cfg), data[:10]


class TestPlanAnalysis:
    def test_report_fields(self, engine_and_queries):
        engine, queries = engine_and_queries
        report = analyse_plans(engine, queries, eps=0.02)
        assert report.queries == 10
        assert report.mean_ranges >= 1
        assert report.max_ranges >= report.mean_ranges
        assert report.mean_index_spaces >= 1
        assert 0.0 <= report.truncated_fraction <= 1.0
        assert sum(report.band_histogram.values()) == 10

    def test_summary_renders(self, engine_and_queries):
        engine, queries = engine_and_queries
        text = analyse_plans(engine, queries, eps=0.02).summary()
        assert "ranges/query" in text
        assert "resolution bands:" in text

    def test_rows_covered_bounds_retrieved(self, engine_and_queries):
        """Rows covered by the plan equals what a scan would touch."""
        engine, queries = engine_and_queries
        report = analyse_plans(engine, queries, eps=0.02)
        total_retrieved = 0
        for q in queries:
            total_retrieved += engine.threshold_search(q, 0.02).retrieved_rows
        assert report.mean_rows_covered == pytest.approx(
            total_retrieved / len(queries)
        )

    def test_fragmentation_decreases_with_gap(self, engine_and_queries):
        engine, queries = engine_and_queries
        sweep = fragmentation_vs_merge_gap(
            engine, queries, eps=0.02, gaps=[0, 2, 8, 32]
        )
        values = [sweep[g] for g in (0, 2, 8, 32)]
        assert values == sorted(values, reverse=True)


class TestGapSplitting:
    def test_no_gaps_single_trip(self):
        pts = [(0.001 * i, 0.0) for i in range(10)]
        trips = split_by_gap("v", pts, max_gap=0.01)
        assert len(trips) == 1
        assert trips[0].tid == "v_t0"
        assert len(trips[0]) == 10

    def test_gap_splits(self):
        pts = [(0.0, 0.0), (0.001, 0.0), (5.0, 5.0), (5.001, 5.0)]
        trips = split_by_gap("v", pts, max_gap=0.01)
        assert len(trips) == 2
        assert trips[0].points == ((0.0, 0.0), (0.001, 0.0))
        assert trips[1].points == ((5.0, 5.0), (5.001, 5.0))

    def test_short_segments_dropped(self):
        pts = [(0.0, 0.0), (5.0, 5.0), (5.001, 5.0)]
        trips = split_by_gap("v", pts, max_gap=0.01, min_points=2)
        assert len(trips) == 1  # the lone first ping is dropped

    def test_empty_stream(self):
        assert split_by_gap("v", [], 0.01) == []

    def test_validation(self):
        with pytest.raises(ReproError):
            split_by_gap("v", [(0, 0)], max_gap=0.0)


class TestDwellSplitting:
    def test_detects_parked_vehicle(self):
        moving1 = [(0.01 * i, 0.0) for i in range(10)]
        parked = [(0.1 + 1e-5 * i, 1e-5 * i) for i in range(8)]
        moving2 = [(0.1 + 0.01 * i, 0.05) for i in range(1, 10)]
        trips, dwells = split_by_dwell(
            "v", moving1 + parked + moving2, dwell_radius=0.001,
            min_dwell_points=5,
        )
        assert len(dwells) == 1
        assert len(trips) == 2
        assert dwells[0].is_stationary(tol=0.002)

    def test_no_dwell_one_trip(self):
        pts = [(0.01 * i, 0.0) for i in range(20)]
        trips, dwells = split_by_dwell("v", pts, dwell_radius=0.001)
        assert dwells == []
        assert len(trips) == 1

    def test_validation(self):
        with pytest.raises(ReproError):
            split_by_dwell("v", [(0, 0)], dwell_radius=-1)
        with pytest.raises(ReproError):
            split_by_dwell("v", [(0, 0)], dwell_radius=1, min_dwell_points=1)


class TestFullPipeline:
    def test_segment_stream_recovers_structure(self):
        """A synthetic day: trip, park, trip, signal gap, trip."""
        rng = random.Random(9)
        trip1 = [(0.005 * i, 0.0) for i in range(20)]
        park = [(0.1 + rng.uniform(-2e-5, 2e-5), rng.uniform(-2e-5, 2e-5))
                for _ in range(10)]
        trip2 = [(0.1 + 0.005 * i, 0.02) for i in range(1, 20)]
        # teleport: signal gap
        trip3 = [(0.8 + 0.005 * i, 0.8) for i in range(20)]
        stream = trip1 + park + trip2 + trip3
        trips, dwells = segment_stream(
            "v", stream, max_gap=0.1, dwell_radius=0.001, min_dwell_points=5
        )
        assert len(dwells) == 1
        assert len(trips) == 3

    def test_segmented_trips_are_indexable(self):
        """End-to-end: segment a stream, index the trips, query them."""
        stream = [(0.3 + 0.002 * i, 0.3) for i in range(50)]
        stream += [(0.5, 0.5)] * 8  # dwell
        stream += [(0.5 + 0.002 * i, 0.5) for i in range(1, 40)]
        trips, dwells = segment_stream(
            "bus", stream, max_gap=0.05, dwell_radius=0.0001,
            min_dwell_points=5,
        )
        cfg = TraSSConfig(
            bounds=SpaceBounds(0, 0, 1, 1), max_resolution=10, shards=1
        )
        engine = TraSS.build(trips + dwells, cfg)
        assert len(engine) == len(trips) + len(dwells)
        hit = engine.threshold_search(trips[0], 0.001)
        assert trips[0].tid in hit.answers
