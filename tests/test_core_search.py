"""Correctness tests for threshold and top-k search against brute force.

These are the library's acceptance tests: for random datasets and
queries, Algorithm 3 and Algorithm 4 must return exactly the brute-force
answer set under every measure.
"""

import math
import random

import pytest

from repro import TraSS, TraSSConfig, Trajectory, SpaceBounds
from repro.exceptions import QueryError
from repro.measures import get_measure

BOUNDS = SpaceBounds(0, 0, 1, 1)


def build_engine(rng, n=120, max_resolution=8, cluster=False):
    cfg = TraSSConfig(
        bounds=BOUNDS, max_resolution=max_resolution, dp_tolerance=0.005, shards=3
    )
    data = []
    for i in range(n):
        if cluster and i % 3 == 0:
            x, y = 0.45 + rng.uniform(-0.03, 0.03), 0.45 + rng.uniform(-0.03, 0.03)
        else:
            x, y = rng.random() * 0.9, rng.random() * 0.9
        pts = [(x, y)]
        for _ in range(rng.randint(2, 20)):
            x = min(0.999, max(0.0, x + rng.uniform(-0.01, 0.01)))
            y = min(0.999, max(0.0, y + rng.uniform(-0.01, 0.01)))
            pts.append((x, y))
        data.append(Trajectory(f"t{i}", pts))
    return TraSS.build(data, cfg), data


class TestThresholdCorrectness:
    @pytest.mark.parametrize("measure", ["frechet", "hausdorff", "dtw"])
    def test_matches_brute_force(self, measure):
        rng = random.Random(31)
        engine, data = build_engine(rng, cluster=True)
        m = get_measure(measure)
        for trial in range(8):
            q = data[rng.randrange(len(data))]
            eps = rng.choice([0.01, 0.05, 0.1])
            got = set(engine.threshold_search(q, eps, measure=measure).answers)
            want = {
                t.tid for t in data if m.distance(q.points, t.points) <= eps
            }
            assert got == want, (measure, trial, q.tid)

    def test_reported_distances_are_exact(self):
        rng = random.Random(32)
        engine, data = build_engine(rng, n=60, cluster=True)
        m = get_measure("frechet")
        q = data[0]
        result = engine.threshold_search(q, 0.08)
        for tid, dist in result.answers.items():
            t = next(t for t in data if t.tid == tid)
            assert dist == pytest.approx(m.distance(q.points, t.points))

    def test_query_always_finds_itself(self):
        rng = random.Random(33)
        engine, data = build_engine(rng, n=50)
        for q in data[:10]:
            assert q.tid in engine.threshold_search(q, 0.0).answers

    def test_eps_zero_exact_duplicates_only(self):
        rng = random.Random(34)
        engine, data = build_engine(rng, n=40)
        q = data[5]
        result = engine.threshold_search(q, 0.0)
        assert set(result.answers) == {
            t.tid for t in data if t.points == q.points
        }

    def test_result_accounting(self):
        rng = random.Random(35)
        engine, data = build_engine(rng, n=60, cluster=True)
        result = engine.threshold_search(data[0], 0.05)
        assert result.candidates >= len(result.answers)
        assert result.retrieved_rows >= result.candidates
        assert 0.0 <= result.precision <= 1.0
        assert result.total_seconds >= 0.0

    def test_negative_eps_rejected(self):
        rng = random.Random(36)
        engine, data = build_engine(rng, n=10)
        with pytest.raises(QueryError):
            engine.threshold_search(data[0], -0.1)


class TestTopKCorrectness:
    @pytest.mark.parametrize("measure", ["frechet", "hausdorff", "dtw"])
    def test_matches_brute_force(self, measure):
        rng = random.Random(41)
        engine, data = build_engine(rng, cluster=True)
        m = get_measure(measure)
        for trial in range(4):
            q = data[rng.randrange(len(data))]
            k = rng.choice([1, 5, 10])
            got = engine.topk_search(q, k, measure=measure)
            want = sorted(
                (m.distance(q.points, t.points), t.tid) for t in data
            )[:k]
            got_d = [round(d, 9) for d, _ in got.answers]
            want_d = [round(d, 9) for d, _ in want]
            assert got_d == want_d, (measure, trial)

    def test_k_one_is_self_for_member_query(self):
        rng = random.Random(42)
        engine, data = build_engine(rng, n=50)
        q = data[7]
        result = engine.topk_search(q, 1)
        assert result.answers[0][0] == pytest.approx(0.0)

    def test_k_larger_than_dataset(self):
        rng = random.Random(43)
        engine, data = build_engine(rng, n=20)
        result = engine.topk_search(data[0], 100)
        assert len(result.answers) == 20
        # Ascending distances.
        dists = [d for d, _ in result.answers]
        assert dists == sorted(dists)

    def test_invalid_k_rejected(self):
        rng = random.Random(44)
        engine, data = build_engine(rng, n=10)
        with pytest.raises(QueryError):
            engine.topk_search(data[0], 0)

    def test_accounting(self):
        rng = random.Random(45)
        engine, data = build_engine(rng, n=60, cluster=True)
        result = engine.topk_search(data[0], 5)
        assert result.candidates >= 5
        assert result.units_scanned > 0
        assert result.worst_distance == result.answers[-1][0]


class TestEngineSurface:
    def test_build_and_len(self):
        rng = random.Random(51)
        engine, data = build_engine(rng, n=25)
        assert len(engine) == 25

    def test_stats(self):
        rng = random.Random(52)
        engine, _ = build_engine(rng, n=25)
        stats = engine.stats()
        assert stats["trajectories"] == 25
        assert stats["distinct_index_values"] >= 1
        assert "io" in stats

    def test_plan_exposed(self):
        rng = random.Random(53)
        engine, data = build_engine(rng, n=25)
        plan = engine.plan(data[0], 0.02)
        assert plan.ranges

    def test_range_query(self):
        rng = random.Random(54)
        engine, data = build_engine(rng, n=80)
        from repro.geometry.mbr import MBR

        window = MBR(0.3, 0.3, 0.6, 0.6)
        got = set(engine.range_query(window))
        want = {
            t.tid
            for t in data
            if any(window.contains_point(x, y) for x, y in t.points)
        }
        assert got == want

    def test_unknown_measure_rejected(self):
        rng = random.Random(55)
        engine, data = build_engine(rng, n=10)
        with pytest.raises(QueryError):
            engine.threshold_search(data[0], 0.1, measure="cosine")
