"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.data.generators import tdrive_like
from repro.data.io import save_csv


@pytest.fixture(scope="module")
def built_store(tmp_path_factory):
    """A CSV and a store built from it via the CLI."""
    root = tmp_path_factory.mktemp("cli")
    csv_path = str(root / "data.csv")
    store_path = str(root / "store")
    data = tdrive_like(60, seed=41)
    save_csv(csv_path, data)
    code = main(
        [
            "build",
            "--csv",
            csv_path,
            "--store",
            store_path,
            "--bounds",
            "115.8",
            "39.4",
            "117.2",
            "40.6",
            "--resolution",
            "12",
            "--shards",
            "2",
        ]
    )
    assert code == 0
    return csv_path, store_path, data


class TestBuildAndInfo:
    def test_info(self, built_store, capsys):
        _, store_path, data = built_store
        assert main(["info", "--store", store_path]) == 0
        out = capsys.readouterr().out
        assert f"trajectories:     {len(data)}" in out
        assert "max resolution:   12" in out

    def test_build_empty_csv_fails(self, tmp_path, capsys):
        csv_path = tmp_path / "empty.csv"
        csv_path.write_text("tid,x,y\n")
        code = main(
            ["build", "--csv", str(csv_path), "--store", str(tmp_path / "s")]
        )
        assert code == 1


class TestQueries:
    def test_threshold_by_tid(self, built_store, capsys):
        _, store_path, data = built_store
        tid = data[0].tid
        code = main(
            [
                "threshold",
                "--store",
                store_path,
                "--query-tid",
                tid,
                "--eps",
                "0.01",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert tid in out  # the query always finds itself

    def test_topk_by_tid(self, built_store, capsys):
        _, store_path, data = built_store
        tid = data[1].tid
        code = main(
            ["topk", "--store", store_path, "--query-tid", tid, "--k", "3"]
        )
        assert code == 0
        lines = [l for l in capsys.readouterr().out.splitlines() if l]
        assert len(lines) == 3
        assert lines[0].startswith(tid)

    def test_query_by_csv(self, built_store, tmp_path, capsys):
        _, store_path, data = built_store
        query_csv = str(tmp_path / "q.csv")
        save_csv(query_csv, [data[2]])
        code = main(
            [
                "threshold",
                "--store",
                store_path,
                "--query-csv",
                query_csv,
                "--eps",
                "0.005",
            ]
        )
        assert code == 0
        assert data[2].tid in capsys.readouterr().out

    def test_range_query(self, built_store, capsys):
        _, store_path, data = built_store
        code = main(
            [
                "range",
                "--store",
                store_path,
                "--window",
                "115.8",
                "39.4",
                "117.2",
                "40.6",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        # The window is the whole extent: every trajectory matches.
        assert len(out.splitlines()) == len(data)

    def test_unknown_tid_errors(self, built_store, capsys):
        _, store_path, _ = built_store
        code = main(
            [
                "threshold",
                "--store",
                store_path,
                "--query-tid",
                "ghost",
                "--eps",
                "0.01",
            ]
        )
        assert code == 2
        assert "not found" in capsys.readouterr().err

    def test_missing_query_errors(self, built_store):
        _, store_path, _ = built_store
        assert (
            main(["topk", "--store", store_path, "--k", "3"]) == 2
        )

    def test_edr_measure_via_cli(self, built_store, capsys):
        _, store_path, data = built_store
        code = main(
            [
                "topk",
                "--store",
                store_path,
                "--query-tid",
                data[0].tid,
                "--k",
                "2",
                "--measure",
                "edr",
            ]
        )
        assert code == 0


class TestChaosCommand:
    def test_chaos_synthetic_masked_run(self, capsys):
        code = main(
            [
                "chaos",
                "--trajectories",
                "40",
                "--queries",
                "3",
                "--seed",
                "3",
                "--retry-attempts",
                "6",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "chaos report" in out
        assert "RESILIENT" in out
        assert "3/3 queries identical" in out

    def test_chaos_degraded_run(self, capsys):
        code = main(
            [
                "chaos",
                "--trajectories",
                "40",
                "--queries",
                "3",
                "--seed",
                "3",
                "--degraded",
                "--retry-attempts",
                "2",
                "--max-consecutive",
                "50",
                "--unavailable-prob",
                "0.9",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "degraded mode" in out

    def test_chaos_on_saved_store(self, built_store, capsys):
        _, store_path, _ = built_store
        code = main(
            [
                "chaos",
                "--store",
                store_path,
                "--queries",
                "2",
                "--seed",
                "1",
                "--retry-attempts",
                "6",
            ]
        )
        assert code == 0
        assert "chaos report" in capsys.readouterr().out


class TestExplainAndTrace:
    def test_explain_plan(self, built_store, capsys):
        _, store_path, data = built_store
        code = main(
            [
                "explain",
                "--store",
                store_path,
                "--query-tid",
                data[0].tid,
                "--eps",
                "0.01",
            ]
        )
        assert code == 0
        assert "threshold search" in capsys.readouterr().out

    def test_explain_without_eps_errors(self, built_store, capsys):
        _, store_path, data = built_store
        code = main(
            ["explain", "--store", store_path, "--query-tid", data[0].tid]
        )
        assert code == 2
        assert "requires --eps" in capsys.readouterr().err

    def test_explain_analyze_render(self, built_store, capsys):
        _, store_path, data = built_store
        code = main(
            [
                "explain",
                "--store",
                store_path,
                "--query-tid",
                data[0].tid,
                "--eps",
                "0.01",
                "--analyze",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "EXPLAIN ANALYZE threshold" in out
        assert "local filter funnel" in out
        assert "query.threshold" in out
        assert "scan.range" in out

    def test_explain_analyze_json(self, built_store, capsys):
        import json

        _, store_path, data = built_store
        code = main(
            [
                "explain",
                "--store",
                store_path,
                "--query-tid",
                data[0].tid,
                "--k",
                "3",
                "--analyze",
                "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["kind"] == "topk"
        assert payload["trace"]["name"] == "query.topk"
        assert payload["answers"] == 3

    def test_trace_prints_span_tree(self, built_store, capsys):
        _, store_path, data = built_store
        code = main(
            [
                "trace",
                "--store",
                store_path,
                "--query-tid",
                data[0].tid,
                "--eps",
                "0.01",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "query.threshold" in out
        assert "ms" in out

    def test_trace_requires_exactly_one_parameter(self, built_store, capsys):
        _, store_path, data = built_store
        base = ["trace", "--store", store_path, "--query-tid", data[0].tid]
        assert main(base) == 2
        assert (
            main(base + ["--eps", "0.01", "--k", "3"]) == 2
        )

    def test_stats_reports_resilience(self, built_store, capsys):
        _, store_path, _ = built_store
        code = main(["stats", "--store", store_path, "--probes", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "resilience:" in out
        assert "breaker" in out
        assert "fault counters" in out

    def test_chaos_reports_breaker_and_faults(self, capsys):
        code = main(
            [
                "chaos",
                "--trajectories",
                "40",
                "--queries",
                "2",
                "--seed",
                "3",
                "--retry-attempts",
                "6",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "breaker state:" in out
        assert "fault counters:" in out
