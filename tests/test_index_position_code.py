"""Unit tests for position codes (Section IV-B, Figure 3(d)(e))."""

import random

import pytest

from repro.exceptions import IndexingError
from repro.geometry.mbr import MBR
from repro.index.position_code import (
    ALL_CODES,
    CODE_QUADS,
    NON_MAX_CODES,
    QUADS_TO_CODE,
    codes_avoiding,
    codes_for_element,
    index_space_rects,
    position_code_of,
    quad_rects,
    touched_quads,
)
from repro.index.quadrant import Element, smallest_enlarged_element


class TestCodeTable:
    def test_ten_codes(self):
        assert len(CODE_QUADS) == 10
        assert set(CODE_QUADS) == set(range(1, 11))

    def test_code_10_is_single_quad_a(self):
        assert CODE_QUADS[10] == frozenset("a")

    def test_all_other_codes_have_two_or_more_quads(self):
        for code in NON_MAX_CODES:
            assert len(CODE_QUADS[code]) >= 2

    def test_inverse_mapping(self):
        for code, quads in CODE_QUADS.items():
            assert QUADS_TO_CODE[quads] == code

    def test_quad_membership_counts_match_paper(self):
        """Section IV-B discussion: quads a, b, c, d appear in 8, 6, 6,
        5 of the ten index spaces (I/O reductions 80/60/60/50%)."""
        counts = {q: 0 for q in "abcd"}
        for quads in CODE_QUADS.values():
            for q in quads:
                counts[q] += 1
        assert counts == {"a": 8, "b": 6, "c": 6, "d": 5}

    def test_far_quad_c_prunes_the_papers_codes(self):
        """'we do not need to extract trajectories indexed with position
        codes 2, 4, 5, 6, 8, 9' when quad-c is far."""
        e = Element.from_sequence_str("00")
        keep = codes_avoiding({"c"}, e, max_resolution=16)
        assert sorted(set(range(1, 10)) - set(keep)) == [2, 4, 5, 6, 8, 9]

    def test_far_quads_b_and_c_keep_only_3(self):
        """'except for position codes 10 and 3, we can discard other
        index spaces' (code 10 exists only at max resolution)."""
        e = Element.from_sequence_str("00")
        assert codes_avoiding({"b", "c"}, e, max_resolution=16) == [3]
        e_max = Element.from_sequence_str("00")
        assert codes_avoiding({"b", "c"}, e_max, max_resolution=2) == [3, 10]

    def test_pairwise_reductions_match_paper(self):
        """ab: 100%, ac: 100%, ad: 90%, bd: 80%, cd: 80% (Section IV-B)."""
        # The paper counts out of all ten index spaces, i.e. at the
        # maximum resolution where code 10 participates.
        e = Element.from_sequence_str("0")

        def reduction(far):
            kept = codes_avoiding(far, e, max_resolution=1)
            return (10 - len(kept)) / 10 * 100

        assert reduction({"a", "b"}) == 100  # only {a}=10 avoids, absent here
        assert reduction({"a", "c"}) == 100
        assert reduction({"a", "d"}) == 90  # {b,c} survives
        assert reduction({"b", "d"}) == 80
        assert reduction({"c", "d"}) == 80


class TestQuadGeometry:
    def test_quad_layout(self):
        e = Element.from_sequence_str("0")  # cell [0,.5]^2, enlarged [0,1]^2
        rects = quad_rects(e)
        assert rects["a"] == MBR(0, 0, 0.5, 0.5)
        assert rects["b"] == MBR(0, 0.5, 0.5, 1.0)
        assert rects["c"] == MBR(0.5, 0, 1.0, 0.5)
        assert rects["d"] == MBR(0.5, 0.5, 1.0, 1.0)

    def test_quads_tile_enlarged_element(self):
        e = Element.from_sequence_str("21")
        rects = quad_rects(e)
        union = MBR.union_all(rects.values())
        assert union == e.enlarged_mbr()
        total = sum(r.area for r in rects.values())
        assert total == pytest.approx(e.enlarged_mbr().area)

    def test_index_space_rects(self):
        e = Element.from_sequence_str("0")
        rects = index_space_rects(e, 3)  # {a, d}
        assert MBR(0, 0, 0.5, 0.5) in rects
        assert MBR(0.5, 0.5, 1.0, 1.0) in rects
        assert len(rects) == 2

    def test_index_space_rects_bad_code(self):
        with pytest.raises(IndexingError):
            index_space_rects(Element.from_sequence_str("0"), 11)


class TestPositionCodeOf:
    def test_horizontal_pair(self):
        e = Element.from_sequence_str("0")  # enlarged [0,1]^2
        pts = [(0.1, 0.1), (0.9, 0.2)]  # a and c
        assert touched_quads(pts, e) == frozenset("ac")

    def test_all_legal_combinations_reachable(self):
        e = Element.from_sequence_str("0")
        samples = {
            1: [(0.1, 0.1), (0.1, 0.9)],
            2: [(0.1, 0.1), (0.9, 0.1)],
            3: [(0.1, 0.1), (0.9, 0.9)],
            4: [(0.1, 0.1), (0.9, 0.1), (0.9, 0.9)],
            5: [(0.1, 0.1), (0.1, 0.9), (0.9, 0.1), (0.4, 0.4)],
            6: [(0.1, 0.1), (0.1, 0.9), (0.9, 0.1), (0.9, 0.9)],
            7: [(0.1, 0.1), (0.1, 0.9), (0.9, 0.9)],
            8: [(0.1, 0.9), (0.9, 0.1)],
            9: [(0.1, 0.9), (0.9, 0.1), (0.9, 0.9)],
        }
        for code, pts in samples.items():
            assert position_code_of(pts, e, max_resolution=16) == code, code

    def test_code_10_only_at_max_resolution(self):
        e = Element.from_sequence_str("00")
        pts = [(0.05, 0.05), (0.1, 0.1)]  # inside quad a of '00'
        assert position_code_of(pts, e, max_resolution=2) == 10
        with pytest.raises(IndexingError):
            position_code_of(pts, e, max_resolution=16)

    def test_codes_for_element(self):
        shallow = Element.from_sequence_str("0")
        deep = Element.from_sequence_str("00")
        assert codes_for_element(shallow, 2) == NON_MAX_CODES
        assert codes_for_element(deep, 2) == ALL_CODES

    def test_real_placements_always_legal(self):
        """Random trajectories indexed via their true SEE never produce
        an illegal combination (the Section IV-B invariant)."""
        rng = random.Random(4)
        for _ in range(500):
            n = rng.randint(1, 12)
            x, y = rng.random() * 0.8, rng.random() * 0.8
            pts = [(x, y)]
            for _ in range(n):
                x = min(0.999, max(0.0, x + rng.uniform(-0.05, 0.05)))
                y = min(0.999, max(0.0, y + rng.uniform(-0.05, 0.05)))
                pts.append((x, y))
            mbr = MBR.of_points(pts)
            for max_res in (4, 8, 16):
                e = smallest_enlarged_element(mbr, max_res)
                code = position_code_of(pts, e, max_res)
                assert 1 <= code <= 10
                if e.level < max_res:
                    assert code != 10
