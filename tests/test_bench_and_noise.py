"""Tests for the bench harness, ASCII figures, and noise utilities."""

import math
import random

import pytest

from repro import TraSS, TraSSConfig, Trajectory, SpaceBounds
from repro.bench.figures import bar_chart, series_chart, sparkline
from repro.bench.harness import QueryStats, run_threshold_workload, run_topk_workload
from repro.bench.reporting import format_table
from repro.data.noise import add_outliers, downsample, duplicate_pings, jitter
from repro.exceptions import ReproError
from repro.measures import discrete_frechet


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["name", "value"], [["a", 1.5], ["bb", 200]])
        lines = text.splitlines()
        assert len(lines) == 4  # header, rule, two rows
        assert "name" in lines[0]
        assert "1.5" in text

    def test_nan_rendered_as_dash(self):
        text = format_table(["v"], [[float("nan")]])
        assert "-" in text.splitlines()[-1]

    def test_bar_chart_scales(self):
        text = bar_chart([("big", 10.0), ("small", 5.0)], width=10)
        big_line, small_line = text.splitlines()
        assert big_line.count("█") == 10
        assert small_line.count("█") == 5

    def test_bar_chart_empty(self):
        assert bar_chart([], title="t") == "t"

    def test_sparkline_shape(self):
        assert sparkline([1, 2, 3]) == "▁▄█"
        assert sparkline([5, 5, 5]) == "▁▁▁"
        assert sparkline([]) == ""

    def test_series_chart_contains_names(self):
        text = series_chart(["a", "b"], {"TraSS": [1, 2], "JUST": [4, 8]})
        assert "TraSS" in text and "JUST" in text
        assert "1 -> 2" in text


class TestQueryStats:
    def test_percentiles(self):
        stats = QueryStats("sys", "lbl", times=[0.001 * i for i in range(1, 101)])
        assert stats.median_ms == pytest.approx(50.5)
        assert stats.p99_ms == pytest.approx(99.0)
        assert stats.p99_ms >= stats.median_ms

    def test_empty_stats_are_nan(self):
        stats = QueryStats("sys", "lbl")
        assert math.isnan(stats.median_ms)
        assert math.isnan(stats.p99_ms)

    def test_precision(self):
        stats = QueryStats(
            "sys", "lbl", candidates=[10, 10], answers=[5, 5]
        )
        assert stats.precision == pytest.approx(0.5)
        assert QueryStats("s", "l").precision == 1.0

    def test_workload_runners_fill_fields(self):
        rng = random.Random(1)
        data = [
            Trajectory(
                f"t{i}",
                [(0.5 + rng.uniform(-0.01, 0.01), 0.5 + rng.uniform(-0.01, 0.01))
                 for _ in range(4)],
            )
            for i in range(20)
        ]
        cfg = TraSSConfig(bounds=SpaceBounds(0, 0, 1, 1), max_resolution=8, shards=1)
        engine = TraSS.build(data, cfg)
        stats = run_threshold_workload(engine, data[:3], 0.05, "TraSS")
        assert len(stats.times) == 3
        assert stats.mean_answers >= 1
        topk = run_topk_workload(engine, data[:2], 3, "TraSS")
        assert len(topk.times) == 2


class TestNoise:
    @pytest.fixture
    def base(self):
        return Trajectory("base", [(0.1 * i, 0.05 * i) for i in range(20)])

    def test_jitter_moves_points(self, base):
        noisy = jitter(base, sigma=0.01, seed=1)
        assert len(noisy) == len(base)
        assert noisy.points != base.points
        assert noisy.tid == "base_jit"

    def test_jitter_zero_is_identity(self, base):
        assert jitter(base, 0.0).points == base.points

    def test_jitter_distance_tracks_sigma(self, base):
        near = jitter(base, 0.001, seed=2)
        far = jitter(base, 0.1, seed=2)
        assert discrete_frechet(base.points, near.points) < discrete_frechet(
            base.points, far.points
        )

    def test_downsample_keeps_endpoints(self, base):
        sparse = downsample(base, 0.3, seed=3)
        assert sparse.points[0] == base.points[0]
        assert sparse.points[-1] == base.points[-1]
        assert len(sparse) < len(base)

    def test_downsample_validation(self, base):
        with pytest.raises(ReproError):
            downsample(base, 0.0)

    def test_outliers_displace_interior(self, base):
        spiky = add_outliers(base, count=3, magnitude=1.0, seed=4)
        moved = sum(
            1 for a, b in zip(base.points, spiky.points) if a != b
        )
        assert moved == 3
        assert spiky.points[0] == base.points[0]
        assert spiky.points[-1] == base.points[-1]

    def test_duplicate_pings_lengthens(self, base):
        dup = duplicate_pings(base, 1.0, seed=5)
        assert len(dup) == 2 * len(base)
        # Duplicates do not change the Fréchet distance to the base.
        assert discrete_frechet(base.points, dup.points) == pytest.approx(0.0)


class TestRobustnessEndToEnd:
    def test_search_exact_on_corrupted_store(self):
        """Corrupted trajectories are just different trajectories: the
        engine must stay exact against brute force on them."""
        rng = random.Random(6)
        clean = [
            Trajectory(
                f"t{i}",
                [
                    (0.3 + 0.01 * j + rng.uniform(-0.002, 0.002),
                     0.3 + 0.008 * j)
                    for j in range(10)
                ],
            )
            for i in range(30)
        ]
        corrupted = []
        for i, t in enumerate(clean):
            if i % 3 == 0:
                corrupted.append(jitter(t, 0.002, seed=i, tid=t.tid))
            elif i % 3 == 1:
                corrupted.append(add_outliers(t, 2, 0.05, seed=i, tid=t.tid))
            else:
                corrupted.append(duplicate_pings(t, 0.3, seed=i, tid=t.tid))
        cfg = TraSSConfig(
            bounds=SpaceBounds(0, 0, 1, 1), max_resolution=10, shards=2
        )
        engine = TraSS.build(corrupted, cfg)
        q = corrupted[0]
        got = set(engine.threshold_search(q, 0.04).answers)
        want = {
            t.tid
            for t in corrupted
            if discrete_frechet(q.points, t.points) <= 0.04
        }
        assert got == want

    def test_noisy_query_degrades_gracefully(self):
        """A jittered query's answer set shrinks/shifts with noise but
        stays a subset of a widened search — no index blow-ups."""
        rng = random.Random(7)
        data = [
            Trajectory(
                f"t{i}",
                [(0.5 + 0.01 * j, 0.5 + rng.uniform(-0.001, 0.001))
                 for j in range(8)],
            )
            for i in range(20)
        ]
        cfg = TraSSConfig(
            bounds=SpaceBounds(0, 0, 1, 1), max_resolution=10, shards=2
        )
        engine = TraSS.build(data, cfg)
        q = data[0]
        noisy_q = jitter(q, 0.001, seed=8, tid="qn")
        sigma_bound = discrete_frechet(q.points, noisy_q.points)
        clean_hits = set(engine.threshold_search(q, 0.01).answers)
        widened_hits = set(
            engine.threshold_search(noisy_q, 0.01 + sigma_bound).answers
        )
        # Triangle inequality: everything within 0.01 of q is within
        # 0.01 + d(q, noisy_q) of the noisy query.
        assert clean_hits <= widened_hits
