"""Unit tests for repro.geometry.point."""

import math

import pytest

from repro.geometry.point import Point


class TestPoint:
    def test_named_fields(self):
        p = Point(1.5, -2.0)
        assert p.x == 1.5
        assert p.y == -2.0

    def test_tuple_compatibility(self):
        p = Point(3.0, 4.0)
        x, y = p
        assert (x, y) == (3.0, 4.0)
        assert p == (3.0, 4.0)
        assert p[0] == 3.0

    def test_distance(self):
        assert Point(0, 0).distance(Point(3, 4)) == pytest.approx(5.0)

    def test_distance_is_symmetric(self):
        a, b = Point(1.2, 3.4), Point(-0.7, 2.2)
        assert a.distance(b) == pytest.approx(b.distance(a))

    def test_distance_to_self_is_zero(self):
        p = Point(0.123, 0.456)
        assert p.distance(p) == 0.0

    def test_squared_distance(self):
        assert Point(0, 0).squared_distance(Point(3, 4)) == pytest.approx(25.0)

    def test_squared_distance_matches_distance(self):
        a, b = Point(1.0, 2.0), Point(4.5, -1.25)
        assert a.squared_distance(b) == pytest.approx(a.distance(b) ** 2)

    def test_translated(self):
        p = Point(1.0, 2.0).translated(0.5, -1.0)
        assert p == Point(1.5, 1.0)

    def test_translated_returns_new_point(self):
        p = Point(0.0, 0.0)
        q = p.translated(1.0, 1.0)
        assert p == Point(0.0, 0.0)
        assert q != p

    def test_hashable(self):
        assert len({Point(1, 2), Point(1, 2), Point(2, 1)}) == 2
