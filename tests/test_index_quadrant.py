"""Unit tests for quadrant sequences and enlarged elements (Lemmas 1-2)."""

import random

import pytest

from repro.exceptions import IndexingError
from repro.geometry.mbr import MBR
from repro.index.quadrant import (
    ROOT,
    Element,
    smallest_enlarged_element,
)


class TestElement:
    def test_root(self):
        assert ROOT.level == 0
        assert ROOT.sequence == ()
        assert ROOT.cell_mbr() == MBR(0, 0, 1, 1)
        assert ROOT.enlarged_mbr() == MBR(0, 0, 2, 2)

    def test_sequence_roundtrip(self):
        for s in ["0", "3", "03", "311", "2013", "00000"]:
            e = Element.from_sequence_str(s)
            assert e.sequence_str == s
            assert e.level == len(s)

    def test_digit_convention(self):
        # 0 = (left, bottom), 1 = (left, top), 2 = (right, bottom),
        # 3 = (right, top) — the reversed-Z of Figure 3(a).
        assert Element.from_sequence((0,)) == Element(1, 0, 0)
        assert Element.from_sequence((1,)) == Element(1, 0, 1)
        assert Element.from_sequence((2,)) == Element(1, 1, 0)
        assert Element.from_sequence((3,)) == Element(1, 1, 1)

    def test_invalid_digit(self):
        with pytest.raises(IndexingError):
            Element.from_sequence((4,))

    def test_out_of_range_cell(self):
        with pytest.raises(IndexingError):
            Element(1, 2, 0)

    def test_cell_mbr(self):
        e = Element.from_sequence_str("03")
        # '0' -> left-bottom half, '3' -> its right-top quarter.
        assert e.cell_mbr() == MBR(0.25, 0.25, 0.5, 0.5)

    def test_enlarged_doubles_toward_upper_right(self):
        e = Element.from_sequence_str("03")
        assert e.enlarged_mbr() == MBR(0.25, 0.25, 0.75, 0.75)

    def test_enlarged_may_overhang_unit_square(self):
        e = Element.from_sequence_str("3")
        assert e.enlarged_mbr() == MBR(0.5, 0.5, 1.5, 1.5)

    def test_children_digit_order(self):
        kids = Element.from_sequence_str("2").children()
        assert [k.sequence_str for k in kids] == ["20", "21", "22", "23"]

    def test_child_parent_roundtrip(self):
        e = Element.from_sequence_str("031")
        for q in range(4):
            assert e.child(q).parent() == e

    def test_root_has_no_parent(self):
        with pytest.raises(IndexingError):
            ROOT.parent()

    def test_ancestors(self):
        e = Element.from_sequence_str("031")
        chain = [a.sequence_str for a in e.ancestors()]
        assert chain == ["03", "0", ""]

    def test_is_ancestor_of(self):
        a = Element.from_sequence_str("0")
        b = Element.from_sequence_str("031")
        assert a.is_ancestor_of(b)
        assert ROOT.is_ancestor_of(b)
        assert not b.is_ancestor_of(a)
        assert not Element.from_sequence_str("1").is_ancestor_of(b)


class TestSmallestEnlargedElement:
    def test_covers_input(self):
        rng = random.Random(1)
        for _ in range(300):
            x1, y1 = rng.random() * 0.9, rng.random() * 0.9
            w = rng.random() * (1 - x1) * 0.5
            h = rng.random() * (1 - y1) * 0.5
            mbr = MBR(x1, y1, x1 + w, y1 + h)
            e = smallest_enlarged_element(mbr, 16)
            assert e.enlarged_mbr().contains(mbr), (mbr, e)

    def test_is_smallest(self):
        """No deeper element anchored at the lower-left corner's cell
        also covers the MBR (Lemma 1: only l and l+1 are candidates)."""
        rng = random.Random(2)
        for _ in range(300):
            x1, y1 = rng.random() * 0.9, rng.random() * 0.9
            w = rng.random() * (1 - x1) * 0.5
            h = rng.random() * (1 - y1) * 0.5
            mbr = MBR(x1, y1, x1 + w, y1 + h)
            e = smallest_enlarged_element(mbr, 16)
            if e.level < 16:
                side = 1 << (e.level + 1)
                cx = min(int(mbr.min_x * side), side - 1)
                cy = min(int(mbr.min_y * side), side - 1)
                deeper = Element(e.level + 1, cx, cy)
                assert not deeper.enlarged_mbr().contains(mbr)

    def test_anchored_at_lower_left_cell(self):
        mbr = MBR(0.3, 0.3, 0.45, 0.4)
        e = smallest_enlarged_element(mbr, 16)
        cell = e.cell_mbr()
        assert cell.contains_point(mbr.min_x, mbr.min_y)

    def test_degenerate_mbr_maps_to_max_resolution(self):
        mbr = MBR(0.5, 0.5, 0.5, 0.5)
        e = smallest_enlarged_element(mbr, 16)
        assert e.level == 16
        assert e.enlarged_mbr().contains(mbr)

    def test_full_space_fits_in_element_zero(self):
        # The enlarged element of '0' is exactly [0,1]^2, so even the
        # full-space MBR has a level-1 smallest enlarged element.
        e = smallest_enlarged_element(MBR(0, 0, 1, 1), 16)
        assert e == Element(1, 0, 0)
        assert e.enlarged_mbr().contains(MBR(0, 0, 1, 1))

    def test_level_one_always_suffices_in_bounds(self):
        # Level-1 enlarged elements cover [0,1]x[0,1] (left half) or
        # [0.5,1.5]x... (right half), so every in-bounds MBR fits at
        # level >= 1 — the reason the paper never needs length-0
        # sequences for real data.
        rng = random.Random(8)
        for _ in range(100):
            x1, y1 = rng.random(), rng.random()
            x2 = rng.uniform(x1, 1.0)
            y2 = rng.uniform(y1, 1.0)
            e = smallest_enlarged_element(MBR(x1, y1, x2, y2), 16)
            assert e.level >= 1

    def test_boundary_point_at_one(self):
        mbr = MBR(1.0, 1.0, 1.0, 1.0)
        e = smallest_enlarged_element(mbr, 8)
        assert e.enlarged_mbr().contains(mbr)

    def test_max_resolution_validated(self):
        with pytest.raises(IndexingError):
            smallest_enlarged_element(MBR(0, 0, 1, 1), 0)

    def test_paper_size_rule(self):
        """An MBR with max dimension in (2^-(l+1), 2^-l] lands at level
        l or l+1 (Lemma 1)."""
        rng = random.Random(3)
        for _ in range(200):
            level = rng.randint(1, 10)
            dim = rng.uniform(0.5 ** (level + 1) * 1.001, 0.5**level * 0.999)
            x1 = rng.random() * (1 - dim)
            y1 = rng.random() * (1 - dim)
            mbr = MBR(x1, y1, x1 + dim, y1 + dim)
            e = smallest_enlarged_element(mbr, 16)
            assert e.level in (level, level + 1), (dim, level, e.level)
