"""The compact mmap segment format: codec round-trip (hypothesis),
corrupt-file isolation, freeze tier, heterogeneous run stacks, and
compact save/load equivalence across scalar / parallel / chaos paths.
"""

import os
import zlib

import pytest
from hypothesis import given, settings, strategies as st

from repro import TraSS, TraSSConfig, Trajectory
from repro.data.generators import TDRIVE_BOUNDS, tdrive_like
from repro.exceptions import CorruptSegmentError, CorruptSSTableError
from repro.kvstore.compaction import CompactingLSMStore, FreezeTier, freeze_run
from repro.kvstore.lsm import LSMStore
from repro.kvstore.memtable import TOMBSTONE
from repro.kvstore.segment import (
    CODEC_TRAJ,
    Segment,
    build_segment_bytes,
    write_segment,
)
from repro.kvstore.sstable import SSTable

pytestmark = pytest.mark.segment


def _entries_from(pairs, tombstones=()):
    """Sorted unique (key, value|TOMBSTONE) list from raw pairs."""
    merged = {}
    for key, value in pairs:
        merged[key] = value
    for key in tombstones:
        merged[key] = TOMBSTONE
    return sorted(merged.items())


def _write(tmp_path, entries, name="t.seg", **kwargs):
    path = str(tmp_path / name)
    return write_segment(path, entries, **kwargs), path


# ----------------------------------------------------------------------
# Round-trip properties
# ----------------------------------------------------------------------
@given(
    st.lists(
        st.tuples(
            st.binary(min_size=1, max_size=24),
            st.binary(min_size=0, max_size=64),
        ),
        max_size=60,
    ),
    st.sets(st.binary(min_size=1, max_size=24), max_size=8),
)
@settings(max_examples=80, deadline=None)
def test_roundtrip_property(tmp_path_factory, pairs, tombstones):
    """encode -> mmap -> decode == original, tombstones included."""
    entries = _entries_from(pairs, tombstones)
    path = str(tmp_path_factory.mktemp("seg") / "t.seg")
    segment = write_segment(path, entries, block_logical_bytes=128)
    try:
        assert list(segment.scan()) == entries
        assert len(segment) == len(entries)
        for key, value in entries:
            got = segment.get(key)
            assert got is TOMBSTONE if value is TOMBSTONE else got == value
        assert segment.get(b"\xff" * 30) is None
    finally:
        segment.close()


@given(st.integers(min_value=0, max_value=2**32 - 1), st.integers(0, 5))
@settings(max_examples=40, deadline=None)
def test_roundtrip_trajectory_rows(tmp_path_factory, seed, decimals):
    """Real engine rows (varied precision) survive byte-for-byte."""
    trajs = tdrive_like(
        12, seed=seed, decimals=decimals if decimals else None
    )
    engine = TraSS.build(
        trajs,
        TraSSConfig(bounds=TDRIVE_BOUNDS, max_resolution=12, shards=2),
    )
    entries = sorted(
        (k, v)
        for region in engine.store.table.regions
        for k, v in region.store.scan()
    )
    path = str(tmp_path_factory.mktemp("seg") / "t.seg")
    segment = write_segment(path, entries)
    try:
        assert list(segment.scan()) == entries
    finally:
        segment.close()


def test_empty_segment(tmp_path):
    segment, _ = _write(tmp_path, [])
    assert len(segment) == 0
    assert list(segment.scan()) == []
    assert segment.get(b"x") is None
    assert segment.min_key is None and segment.max_key is None
    assert not segment.overlaps_range(None, None)
    segment.close()


def test_scan_ranges_and_blocks(tmp_path):
    entries = [(b"k%04d" % i, b"v%d" % i) for i in range(400)]
    segment, _ = _write(tmp_path, entries, block_logical_bytes=256)
    assert segment.num_blocks > 3
    assert list(segment.scan(b"k0100", b"k0200")) == entries[100:200]
    # A narrow scan must not materialise every block.
    assert segment.blocks_materialized < segment.num_blocks
    assert list(segment.scan(None, b"k0010")) == entries[:10]
    assert list(segment.scan(b"k0395", None)) == entries[395:]
    segment.close()


def test_out_of_order_entries_rejected(tmp_path):
    from repro.exceptions import KVStoreError

    with pytest.raises(KVStoreError):
        build_segment_bytes([(b"b", b"1"), (b"a", b"2")])
    with pytest.raises(KVStoreError):
        build_segment_bytes([(b"a", b"1"), (b"a", b"2")])


def test_lossless_quantisation_on_gps_data(tmp_path):
    """Decimal-precision trajectories hit the columnar codec and beat
    the 3x compression floor; answers stay byte-identical."""
    trajs = tdrive_like(100, seed=7, decimals=5)
    engine = TraSS.build(
        trajs,
        TraSSConfig(bounds=TDRIVE_BOUNDS, max_resolution=14, shards=4),
    )
    entries = sorted(
        (k, v)
        for region in engine.store.table.regions
        for k, v in region.store.scan()
    )
    segment, _ = _write(tmp_path, entries)
    try:
        assert list(segment.scan()) == entries
        assert any(m.codec == CODEC_TRAJ for m in segment._metas)
        assert segment.compression_ratio >= 3.0, segment.compression_ratio
    finally:
        segment.close()


# ----------------------------------------------------------------------
# Corruption: typed errors, block-level isolation
# ----------------------------------------------------------------------
def test_corrupt_index_raises_typed_error(tmp_path):
    entries = [(b"k%03d" % i, b"v%d" % i) for i in range(50)]
    data = build_segment_bytes(entries)
    path = str(tmp_path / "bad.seg")
    # Flip a byte inside the index section (near the end of the file).
    blob = bytearray(data)
    blob[-10] ^= 0xFF
    with open(path, "wb") as fh:
        fh.write(bytes(blob))
    with pytest.raises(CorruptSegmentError):
        Segment.open(path)
    # The typed error is a CorruptSSTableError (and fatal) by contract.
    assert issubclass(CorruptSegmentError, CorruptSSTableError)


def test_corrupt_header_and_truncation(tmp_path):
    entries = [(b"k%03d" % i, b"v%d" % i) for i in range(10)]
    data = build_segment_bytes(entries)
    bad_magic = b"XXXX" + data[4:]
    path = str(tmp_path / "bad.seg")
    with open(path, "wb") as fh:
        fh.write(bad_magic)
    with pytest.raises(CorruptSegmentError):
        Segment.open(path)
    with open(path, "wb") as fh:
        fh.write(data[:10])
    with pytest.raises(CorruptSegmentError):
        Segment.open(path)
    with open(path, "wb") as fh:
        fh.write(b"")
    with pytest.raises(CorruptSegmentError):
        Segment.open(path)


@given(st.data())
@settings(max_examples=60, deadline=None)
def test_corrupt_block_isolation_fuzz(tmp_path_factory, data):
    """A flipped byte in one block payload raises CorruptSegmentError
    when that block is touched — and only then; other blocks serve."""
    entries = [(b"k%04d" % i, b"v%d" % i * 3) for i in range(300)]
    blob = bytearray(build_segment_bytes(entries, block_logical_bytes=256))
    path = str(tmp_path_factory.mktemp("seg") / "t.seg")
    with open(path, "wb") as fh:
        fh.write(bytes(blob))
    clean = Segment.open(path)
    metas = list(clean._metas)
    clean.close()
    assert len(metas) >= 3
    target = data.draw(st.integers(0, len(metas) - 1), label="block")
    meta = metas[target]
    offset = meta.offset + data.draw(
        st.integers(0, meta.length - 1), label="byte"
    )
    flip = data.draw(st.integers(1, 255), label="mask")
    blob[offset] ^= flip
    with open(path, "wb") as fh:
        fh.write(bytes(blob))
    segment = Segment.open(path)  # index is intact: open succeeds
    try:
        for i, m in enumerate(metas):
            block_entries = [
                (k, v)
                for k, v in entries
                if m.first_key <= k <= m.last_key
            ]
            if i == target:
                with pytest.raises(CorruptSegmentError):
                    list(segment.scan(m.first_key, m.last_key + b"\x00"))
            else:
                got = list(segment.scan(m.first_key, m.last_key + b"\x00"))
                assert got == block_entries
    finally:
        segment.close()


def test_block_crc_detects_bitflip_via_get(tmp_path):
    entries = [(b"k%04d" % i, b"v%d" % i) for i in range(100)]
    blob = bytearray(build_segment_bytes(entries, block_logical_bytes=128))
    path = str(tmp_path / "t.seg")
    with open(path, "wb") as fh:
        fh.write(bytes(blob))
    clean = Segment.open(path)
    meta = clean._metas[0]
    clean.close()
    blob[meta.offset] ^= 0x01
    with open(path, "wb") as fh:
        fh.write(bytes(blob))
    segment = Segment.open(path)
    try:
        with pytest.raises(CorruptSegmentError):
            segment.get(entries[0][0])
    finally:
        segment.close()


# ----------------------------------------------------------------------
# SSTable satellites
# ----------------------------------------------------------------------
def test_sstable_size_bytes_is_serialized_size():
    entries = [(b"k%03d" % i, b"v" * i) for i in range(40)]
    entries[5] = (b"k005", TOMBSTONE)
    table = SSTable.from_entries(entries)
    assert table.size_bytes == len(table.to_bytes())


def test_sstable_load_uses_persisted_bloom(tmp_path):
    entries = [(b"k%03d" % i, b"v%d" % i) for i in range(200)]
    table = SSTable.from_entries(entries)
    path = str(tmp_path / "t.sst")
    table.write_to(path)
    loaded = SSTable.load(path)
    assert list(loaded.scan()) == entries
    assert loaded.size_bytes == os.path.getsize(path)
    # Same bits as the writer's filter — adopted, not rebuilt.
    assert loaded.bloom.to_bytes() == table.bloom.to_bytes()
    # Corrupting the persisted bloom is caught by the file CRC.
    blob = bytearray(open(path, "rb").read())
    blob[-20] ^= 0xFF
    with open(path, "wb") as fh:
        fh.write(bytes(blob))
    with pytest.raises(CorruptSSTableError):
        SSTable.load(path)


# ----------------------------------------------------------------------
# Freeze tier + heterogeneous run stacks
# ----------------------------------------------------------------------
def test_freeze_run_preserves_tombstones(tmp_path):
    run = SSTable.from_entries(
        [(b"a", b"1"), (b"b", TOMBSTONE), (b"c", b"3")]
    )
    segment = freeze_run(run, str(tmp_path / "f.seg"))
    assert list(segment.scan()) == list(run.scan())
    assert segment.get(b"b") is TOMBSTONE
    segment.close()


def test_heterogeneous_runs_merge_identically(tmp_path):
    """memtable + SSTable + segment behind one store iterator: scans
    and gets shadow exactly as an all-SSTable stack would."""
    store = LSMStore(flush_threshold=10**9, compaction_trigger=10**9)
    reference = {}
    # Oldest layer -> frozen segment.
    old = [(b"k%03d" % i, b"old%d" % i) for i in range(0, 90, 2)]
    store.sstables.insert(0, SSTable.from_entries(old))
    reference.update(old)
    store.sstables[0] = freeze_run(
        store.sstables[0], str(tmp_path / "old.seg")
    )
    # Middle layer -> plain SSTable shadowing some keys + a tombstone.
    mid = [(b"k%03d" % i, b"mid%d" % i) for i in range(0, 60, 3)]
    mid_entries = sorted(dict(mid).items()) + [(b"k999", TOMBSTONE)]
    mid_entries = sorted(mid_entries)
    store.sstables.insert(0, SSTable.from_entries(mid_entries))
    reference.update(mid)
    # Newest layer -> memtable: overwrite a frozen key, delete another.
    store.memtable.put(b"k000", b"new0")
    reference[b"k000"] = b"new0"
    store.memtable.delete(b"k002")
    reference.pop(b"k002", None)
    expected = sorted(reference.items())
    assert list(store.scan()) == expected
    for key, value in expected:
        assert store.get(key) == value
    assert store.get(b"k002") is None
    assert store.get(b"k999") is None


def test_freeze_tier_freezes_cold_runs(tmp_path):
    store = CompactingLSMStore(
        flush_threshold=10**9,
        freeze_dir=str(tmp_path / "frozen"),
        freeze_min_bytes=1,
    )
    for i in range(50):
        store.put(b"k%03d" % i, b"v%d" % i * 4)
    store.flush()
    assert store.frozen_count >= 1
    assert any(isinstance(run, Segment) for run in store.sstables)
    assert sorted(store.scan()) == [
        (b"k%03d" % i, b"v%d" % i * 4) for i in range(50)
    ]
    # A second flush freezes the next cold run without refreezing.
    for i in range(50, 80):
        store.put(b"k%03d" % i, b"v%d" % i * 4)
    store.flush()
    assert len(os.listdir(str(tmp_path / "frozen"))) == len(
        [r for r in store.sstables if isinstance(r, Segment)]
    )


def test_table_freeze_keeps_answers(tmp_path):
    trajs = tdrive_like(60, seed=11, decimals=5)
    config = TraSSConfig(bounds=TDRIVE_BOUNDS, max_resolution=13, shards=4)
    engine = TraSS.build(trajs, config)
    probes = tdrive_like(4, seed=99, decimals=5)
    base = [
        sorted(engine.threshold_search(q, 0.03).answers.items())
        for q in probes
    ]
    paths = engine.store.table.freeze(str(tmp_path / "frozen"))
    assert paths
    segs = [
        run
        for region in engine.store.table.regions
        for run in region.store.sstables
    ]
    assert segs and all(isinstance(run, Segment) for run in segs)
    got = [
        sorted(engine.threshold_search(q, 0.03).answers.items())
        for q in probes
    ]
    assert got == base


# ----------------------------------------------------------------------
# Compact save/load through the engine
# ----------------------------------------------------------------------
def _answers(engine, probes, eps=0.03):
    return [
        sorted(engine.threshold_search(q, eps).answers.items())
        for q in probes
    ]


def test_compact_save_load_equivalence(tmp_path):
    trajs = tdrive_like(80, seed=3, decimals=5)
    config = TraSSConfig(bounds=TDRIVE_BOUNDS, max_resolution=14, shards=4)
    engine = TraSS.build(trajs, config)
    probes = tdrive_like(5, seed=77, decimals=5)
    base = _answers(engine, probes)

    plain_dir = str(tmp_path / "plain")
    compact_dir = str(tmp_path / "compact")
    engine.save(plain_dir)
    engine.save(compact_dir, compact=True)

    def data_bytes(d, suffix):
        return sum(
            os.path.getsize(os.path.join(d, f))
            for f in os.listdir(d)
            if f.endswith(suffix)
        )

    assert data_bytes(compact_dir, ".seg") * 3 <= data_bytes(
        plain_dir, ".sst"
    )

    loaded = TraSS.load(compact_dir)
    # Statistics restored without materialising a single block.
    assert loaded.store.trajectory_count == engine.store.trajectory_count
    assert loaded.store.value_histogram == engine.store.value_histogram
    segs = [
        run
        for region in loaded.store.table.regions
        for run in region.store.sstables
    ]
    assert segs and all(isinstance(run, Segment) for run in segs)
    assert sum(s.blocks_materialized for s in segs) == 0
    assert _answers(loaded, probes) == base
    # Queries materialised blocks and the IOMetrics counters saw them.
    snap = loaded.store.table.metrics.snapshot()
    assert snap["segment_blocks_materialized"] > 0
    assert snap["segment_bytes_logical"] > snap["segment_bytes_compressed"]


def test_compact_save_load_parallel_and_vectorized(tmp_path):
    trajs = tdrive_like(80, seed=5, decimals=5)
    probes = tdrive_like(5, seed=88, decimals=5)
    base_engine = TraSS.build(
        trajs,
        TraSSConfig(bounds=TDRIVE_BOUNDS, max_resolution=14, shards=4),
    )
    base = _answers(base_engine, probes)
    compact_dir = str(tmp_path / "compact")
    base_engine.save(compact_dir, compact=True)

    loaded = TraSS.load(compact_dir)
    loaded.configure_execution(scan_workers=2)
    assert _answers(loaded, probes) == base
    loaded.configure_execution(scan_workers=1, vectorized_filter=True)
    assert _answers(loaded, probes) == base


@pytest.mark.chaos
def test_compact_store_under_chaos(tmp_path):
    """Fault injection over a segment-backed store: same retries, same
    exact answers."""
    from repro.kvstore.faults import FaultInjector, FaultSchedule

    trajs = tdrive_like(60, seed=9, decimals=5)
    probes = tdrive_like(4, seed=66, decimals=5)
    config = TraSSConfig(
        bounds=TDRIVE_BOUNDS, max_resolution=13, shards=4,
        retry_backoff_base=0.0, retry_backoff_max=0.0,
    )
    engine = TraSS.build(trajs, config)
    base = _answers(engine, probes)
    compact_dir = str(tmp_path / "compact")
    engine.save(compact_dir, compact=True)
    loaded = TraSS.load(compact_dir)
    loaded.install_fault_injector(
        FaultInjector(FaultSchedule(seed=17, region_unavailable_prob=0.2))
    )
    assert _answers(loaded, probes) == base
    assert loaded.metrics.snapshot()["retries"] > 0


def test_wal_tail_forces_stats_rescan(tmp_path):
    """A WAL beside the snapshot means the persisted statistics are
    stale: load must fall back to the scan rebuild."""
    from repro.kvstore.wal import WriteAheadLog

    trajs = tdrive_like(20, seed=13, decimals=5)
    engine = TraSS.build(
        trajs,
        TraSSConfig(bounds=TDRIVE_BOUNDS, max_resolution=12, shards=2),
    )
    compact_dir = str(tmp_path / "compact")
    engine.save(compact_dir, compact=True)
    # Plant a WAL tail (contents irrelevant — presence is the signal).
    with WriteAheadLog(os.path.join(compact_dir, "wal.log")):
        pass
    loaded = TraSS.load(compact_dir)
    assert loaded.store.trajectory_count == engine.store.trajectory_count


def test_segment_stats_and_registry(tmp_path):
    trajs = tdrive_like(60, seed=21, decimals=5)
    engine = TraSS.build(
        trajs,
        TraSSConfig(bounds=TDRIVE_BOUNDS, max_resolution=13, shards=4),
    )
    compact_dir = str(tmp_path / "compact")
    engine.save(compact_dir, compact=True)
    loaded = TraSS.load(compact_dir)
    for q in tdrive_like(3, seed=44, decimals=5):
        loaded.threshold_search(q, 0.03)
    storage = loaded.stats()["storage"]
    segments = storage["segments"]
    assert segments["count"] >= 1
    assert segments["compression_ratio"] >= 3.0
    assert 0 < segments["blocks_materialized"] <= segments["blocks"]

    from repro.obs.registry import parse_prometheus

    samples = parse_prometheus(loaded.export_metrics("prometheus"))
    assert "trass_storage_segment_compression_ratio" in samples
    assert "trass_storage_segment_blocks_materialized" in samples

    from repro.obs.advisor import diagnose

    kinds = {r.kind for r in diagnose(loaded)}
    assert "segment-compression" in kinds


def test_advisor_recommends_freeze():
    from repro.obs.advisor import FREEZE_MIN_ROWS, diagnose

    trajs = tdrive_like(FREEZE_MIN_ROWS + 50, seed=2, decimals=4)
    engine = TraSS.build(
        trajs,
        TraSSConfig(bounds=TDRIVE_BOUNDS, max_resolution=12, shards=2),
    )
    assert engine.store.table.row_count >= FREEZE_MIN_ROWS
    kinds = {r.kind for r in diagnose(engine)}
    assert "freeze-cold-data" in kinds
    # Small stores stay quiet.
    small = TraSS.build(
        tdrive_like(10, seed=3),
        TraSSConfig(bounds=TDRIVE_BOUNDS, max_resolution=12, shards=2),
    )
    assert "freeze-cold-data" not in {r.kind for r in diagnose(small)}
