"""Tests for convex hulls and minimum-area oriented rectangles."""

import math
import random

import pytest

from repro.exceptions import GeometryError
from repro.features.dp_features import MIN_AREA_BOXES, extract_dp_features
from repro.geometry.hull import (
    convex_hull,
    min_area_oriented_box,
    min_area_rect,
)
from repro.geometry.segment import OrientedBox


def random_points(rng, n):
    return [(rng.random(), rng.random()) for _ in range(n)]


class TestConvexHull:
    def test_triangle(self):
        pts = [(0, 0), (1, 0), (0.5, 1), (0.5, 0.3)]  # last is interior
        hull = convex_hull(pts)
        assert set(hull) == {(0, 0), (1, 0), (0.5, 1)}

    def test_counter_clockwise(self):
        hull = convex_hull([(0, 0), (1, 0), (1, 1), (0, 1)])
        # Shoelace area must be positive for CCW order.
        area = sum(
            hull[i][0] * hull[(i + 1) % len(hull)][1]
            - hull[(i + 1) % len(hull)][0] * hull[i][1]
            for i in range(len(hull))
        )
        assert area > 0

    def test_single_point(self):
        assert convex_hull([(2, 3), (2, 3)]) == [(2.0, 3.0)]

    def test_collinear(self):
        hull = convex_hull([(0, 0), (1, 1), (2, 2), (3, 3)])
        assert hull == [(0.0, 0.0), (3.0, 3.0)]

    def test_empty_raises(self):
        with pytest.raises(GeometryError):
            convex_hull([])

    def test_hull_contains_all_points(self):
        rng = random.Random(1)
        for _ in range(30):
            pts = random_points(rng, rng.randint(3, 40))
            hull = convex_hull(pts)
            # Every point inside or on the hull: all cross products of
            # consecutive hull edges vs point stay non-negative.
            for p in pts:
                for i in range(len(hull)):
                    a, b = hull[i], hull[(i + 1) % len(hull)]
                    cross = (b[0] - a[0]) * (p[1] - a[1]) - (b[1] - a[1]) * (
                        p[0] - a[0]
                    )
                    assert cross >= -1e-9


class TestMinAreaRect:
    def test_axis_aligned_square(self):
        pts = [(0, 0), (2, 0), (2, 1), (0, 1)]
        _, _, length, width = min_area_rect(pts)
        assert sorted([length, width]) == pytest.approx([1.0, 2.0])

    def test_rotated_rectangle_recovered(self):
        # A thin rectangle at 45 degrees.
        pts = []
        for s in (0.0, 0.5, 1.0):
            for t in (0.0, 0.05):
                pts.append(
                    (
                        s * math.cos(math.pi / 4) - t * math.sin(math.pi / 4),
                        s * math.sin(math.pi / 4) + t * math.cos(math.pi / 4),
                    )
                )
        _, axis, length, width = min_area_rect(pts)
        assert min(length, width) == pytest.approx(0.05, abs=1e-9)
        assert abs(abs(axis[0]) - math.cos(math.pi / 4)) < 1e-9

    def test_covers_and_is_no_larger_than_chord_box(self):
        rng = random.Random(2)
        for _ in range(40):
            pts = random_points(rng, rng.randint(2, 25))
            box = min_area_oriented_box(pts)
            for x, y in pts:
                assert box.distance_to_point(x, y) == pytest.approx(
                    0.0, abs=1e-9
                )
            chord = OrientedBox.cover(pts)
            min_area = (box.length - box.lo_along) * (
                box.hi_perp - box.lo_perp
            )
            chord_area = (chord.length - chord.lo_along) * (
                chord.hi_perp - chord.lo_perp
            )
            assert min_area <= chord_area + 1e-9

    def test_single_point(self):
        anchor, _, length, width = min_area_rect([(3, 4)])
        assert anchor == (3.0, 4.0)
        assert length == 0.0 and width == 0.0


class TestMinAreaFeatures:
    def test_mode_validation(self):
        with pytest.raises(GeometryError):
            extract_dp_features([(0, 0)], 0.1, box_mode="spherical")

    def test_min_area_features_cover_points(self):
        rng = random.Random(3)
        pts = random_points(rng, 40)
        features = extract_dp_features(pts, 0.05, box_mode=MIN_AREA_BOXES)
        for x, y in pts:
            assert features.point_to_boxes_distance(x, y) <= 1e-9

    def test_min_area_bound_still_sound(self):
        """Lemma 13/14 bounds under min-area boxes never exceed the
        exact distance."""
        from repro.measures import discrete_frechet

        rng = random.Random(4)
        for _ in range(20):
            a = random_points(rng, rng.randint(3, 20))
            b = [(x + 0.3, y) for x, y in random_points(rng, 15)]
            fa = extract_dp_features(a, 0.05, box_mode=MIN_AREA_BOXES)
            fb = extract_dp_features(b, 0.05, box_mode=MIN_AREA_BOXES)
            exact = discrete_frechet(a, b)
            for px, py in fa.rep_points:
                assert fb.point_to_boxes_distance(px, py) <= exact + 1e-9
            assert fa.box_lower_bound_against(fb) <= exact + 1e-9

    def test_min_area_filter_at_least_as_tight(self):
        """Minimum-area boxes give bounds at least as strong as chord
        boxes (they are subsets of any same-run covering box? not
        exactly — but never larger in area; compare bound quality on
        average)."""
        from repro.measures import discrete_frechet

        rng = random.Random(5)
        chord_bounds = []
        min_bounds = []
        for _ in range(20):
            a = random_points(rng, 15)
            b = [(x + 0.5, y) for x, y in random_points(rng, 15)]
            fa_c = extract_dp_features(a, 0.03)
            fb_c = extract_dp_features(b, 0.03)
            fa_m = extract_dp_features(a, 0.03, box_mode=MIN_AREA_BOXES)
            fb_m = extract_dp_features(b, 0.03, box_mode=MIN_AREA_BOXES)
            chord_bounds.append(fa_c.box_lower_bound_against(fb_c))
            min_bounds.append(fa_m.box_lower_bound_against(fb_m))
        assert sum(min_bounds) >= sum(chord_bounds) - 1e-6
