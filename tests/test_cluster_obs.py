"""Cluster-wide observability: cross-process trace stitching, worker
metrics aggregation, latency SLOs and the serving doctor.

The standing invariant pinned throughout: observability is a pure
read-model.  A cluster built with ``observability=True`` (and/or a
recording tracer) returns byte-identical answers, candidate counts and
resilience accounting to one built without — including under stalls,
hedging and failover — and the aggregated worker IO matches the
single-process engine field-for-field (planning excepted: the
coordinator plans once, so workers never touch the plan cache).
"""

import random

import pytest

from repro import SpaceBounds, TraSS, TraSSConfig, Trajectory
from repro.obs import Tracer, parse_prometheus
from repro.obs.advisor import diagnose_cluster
from repro.obs.heatmap import KeySpaceHeatmap
from repro.obs.tracing import NULL_TRACER
from repro.serve import ClusterObservability, ServingCluster

pytestmark = pytest.mark.serving

BEIJING = SpaceBounds(116.0, 39.5, 117.0, 40.5)
EPS = 0.01


def _walks(n, seed=11):
    rng = random.Random(seed)
    out = []
    for i in range(n):
        x = rng.uniform(116.1, 116.9)
        y = rng.uniform(39.6, 40.4)
        points = [(x, y)]
        for _ in range(rng.randint(5, 30)):
            x += rng.uniform(-0.005, 0.005)
            y += rng.uniform(-0.005, 0.005)
            points.append((x, y))
        out.append(Trajectory(f"t{i}", points))
    return out


@pytest.fixture(scope="module")
def dataset():
    return _walks(60)


@pytest.fixture(scope="module")
def engine(dataset):
    config = TraSSConfig(
        bounds=BEIJING,
        max_resolution=12,
        dp_tolerance=0.002,
        shards=4,
        storage_telemetry=True,
        slow_query_threshold_seconds=0.0,
    )
    return TraSS.build(dataset, config)


@pytest.fixture(scope="module")
def obs_cluster(engine):
    # A generous objective so every test query counts as SLO-good on
    # any machine; budget-burn arithmetic is unit-tested separately.
    with ServingCluster.from_engine(
        engine,
        partitions=2,
        observability=True,
        slo_objective_seconds=60.0,
    ) as c:
        yield c


@pytest.fixture(scope="module")
def plain_cluster(engine):
    with ServingCluster.from_engine(engine, partitions=2) as c:
        yield c


# ----------------------------------------------------------------------
# Trace propagation: one stitched tree across the process boundary
# ----------------------------------------------------------------------
class TestStitchedTrace:
    def test_single_query_stitches_worker_spans(self, obs_cluster, dataset):
        tracer = Tracer()
        obs_cluster.tracer = tracer
        try:
            obs_cluster.threshold_search(dataset[0], EPS)
        finally:
            obs_cluster.tracer = NULL_TRACER
        root = tracer.traces()[-1]
        assert root.name == "serve.query"
        partitions = root.find("serve.partition")
        assert len(partitions) == obs_cluster.partitions
        for span in partitions:
            assert span.attrs["replica"] == 0  # healthy: primary served
            handles = span.find("worker.handle")
            # The grafted subtree is the worker's own recording, shipped
            # back on the Reply and re-rooted under the partition span.
            assert len(handles) >= 1
            assert handles[0].duration >= 0.0

    def test_batch_query_stitches_per_partition(self, obs_cluster, dataset):
        tracer = Tracer()
        obs_cluster.tracer = tracer
        try:
            obs_cluster.threshold_search_many(dataset[:3], EPS)
        finally:
            obs_cluster.tracer = NULL_TRACER
        root = tracer.traces()[-1]
        assert root.name == "serve.query_batch"
        partitions = root.find("serve.partition")
        assert len(partitions) == obs_cluster.partitions
        for span in partitions:
            assert span.attrs["requests"] == 3
            assert len(span.find("worker.handle")) == 3


# ----------------------------------------------------------------------
# The invariant: observability never changes answers
# ----------------------------------------------------------------------
class TestByteIdentity:
    def _assert_same(self, a, b):
        assert a.answers == b.answers
        assert a.candidates == b.candidates
        assert a.retrieved_rows == b.retrieved_rows
        assert a.skipped_ranges == b.skipped_ranges
        assert a.completeness == b.completeness
        assert a.resilience.ranges_total == b.resilience.ranges_total

    def test_threshold_and_topk_identical(
        self, engine, dataset, obs_cluster, plain_cluster
    ):
        tracer = Tracer()
        obs_cluster.tracer = tracer
        try:
            for q in dataset[:3]:
                observed = obs_cluster.threshold_search(q, EPS)
                plain = plain_cluster.threshold_search(q, EPS)
                local = engine.threshold_search(q, EPS)
                self._assert_same(observed, plain)
                assert observed.answers == local.answers
            obs_topk = obs_cluster.topk_search(dataset[0], 5)
            plain_topk = plain_cluster.topk_search(dataset[0], 5)
            assert obs_topk.answers == plain_topk.answers
        finally:
            obs_cluster.tracer = NULL_TRACER

    def test_batch_identical(self, dataset, obs_cluster, plain_cluster):
        queries = dataset[:6]
        observed = obs_cluster.threshold_search_many(queries, EPS)
        plain = plain_cluster.threshold_search_many(queries, EPS)
        assert [r.answers for r in observed] == [r.answers for r in plain]
        assert [r.candidates for r in observed] == [
            r.candidates for r in plain
        ]

    def test_identical_under_stall_and_hedge(self, engine, dataset):
        # Stall the primary so the hedge path fires; the observed and
        # unobserved clusters must still agree with the local engine.
        query = dataset[0]
        local = engine.threshold_search(query, EPS)
        for observability in (False, True):
            with ServingCluster.from_engine(
                engine,
                partitions=2,
                replication=2,
                hedge_delay_seconds=0.05,
                observability=observability,
            ) as c:
                c.stall_replica(0, 0, seconds=1.0)
                served = c.threshold_search(query, EPS)
                assert served.answers == local.answers
                assert served.completeness == 1.0
                if observability:
                    snapshot = c.stats()["observability"]
                    assert snapshot["slo"]["summaries"]["query"]["count"] == 1


# ----------------------------------------------------------------------
# Worker metrics aggregation
# ----------------------------------------------------------------------
class TestClusterAccounting:
    def test_io_totals_match_single_process(self, dataset):
        config = TraSSConfig(
            bounds=BEIJING, max_resolution=12, dp_tolerance=0.002, shards=4
        )
        queries = dataset[:4]
        local_engine = TraSS.build(dataset, config)
        before = local_engine.metrics.snapshot()
        for q in queries:
            local_engine.threshold_search(q, EPS)
        after = local_engine.metrics.snapshot()
        local_delta = {k: after[k] - before[k] for k in after}

        cluster_engine = TraSS.build(dataset, config)
        with ServingCluster.from_engine(
            cluster_engine, partitions=2, observability=True
        ) as c:
            for q in queries:
                c.threshold_search(q, EPS)
            totals = c.io_totals()
        assert totals["rows_scanned"] > 0
        for field, value in local_delta.items():
            if field.startswith("plan_cache"):
                continue  # the coordinator plans; workers receive ranges
            assert totals.get(field, 0) == value, field

    def test_worker_breakdown_and_heartbeats(self, obs_cluster, dataset):
        for q in dataset[:2]:
            obs_cluster.threshold_search(q, EPS)
        assert obs_cluster.heartbeat() == 2  # one live replica per partition
        snapshot = obs_cluster.stats()["observability"]
        workers = snapshot["workers"]
        assert {(w["partition"], w["replica"]) for w in workers} == {
            (0, 0),
            (1, 0),
        }
        for worker in workers:
            assert worker["queries"] > 0
            assert worker["io"]["rows_scanned"] >= 0
            beat = worker["heartbeat"]
            assert beat is not None
            assert beat["trajectories"] > 0
            assert beat["io"]["rows_scanned"] >= worker["io"]["rows_scanned"]

    def test_heatmap_heat_conservation(self, engine, dataset, obs_cluster):
        queries = dataset[:3]
        telemetry = engine.storage_telemetry
        base_rows = telemetry.heatmap.total_rows
        for q in queries:
            engine.threshold_search(q, EPS)
        local_rows = telemetry.heatmap.total_rows - base_rows
        assert local_rows > 0

        cluster_base = (
            obs_cluster.cluster_heatmap().total_rows
            if obs_cluster.heartbeat() and obs_cluster.cluster_heatmap()
            else 0
        )
        for q in queries:
            obs_cluster.threshold_search(q, EPS)
        obs_cluster.heartbeat()
        merged = obs_cluster.cluster_heatmap()
        # The merged per-partition grids account for exactly the rows a
        # single-process scan of the same workload would have recorded.
        assert merged.total_rows - cluster_base == local_rows

    def test_prometheus_export_covers_the_cluster(self, engine, obs_cluster):
        engine.set_remote_executor(obs_cluster)
        try:
            text = engine.export_metrics("prometheus")
        finally:
            engine.set_remote_executor(None)
        samples = parse_prometheus(text)
        names = set(samples)
        assert any(n.startswith("trass_serve_worker_0_0_") for n in names)
        assert any(n.startswith("trass_serve_worker_1_0_") for n in names)
        assert any(n.startswith("trass_serve_cluster_io_") for n in names)
        assert "trass_serve_slo_query_seconds_count" in samples
        # SLO histograms export spec-correct cumulative le buckets.
        assert (
            samples['trass_serve_slo_query_seconds_bucket{le="+Inf"}']
            == samples["trass_serve_slo_query_seconds_count"]
        )

    def test_heatmap_merge_dedupes_replicas(self):
        obs = ClusterObservability()
        grid = KeySpaceHeatmap([b"m"])
        grid.record(b"a", weight=2.0)
        grid.record(b"z", weight=1.0)
        payload = grid.to_json()
        # Two replicas of partition 0 report the same grid (they scan
        # the same rows): only one contributes.  Partition 1's distinct
        # grid still adds.
        obs.absorb_heartbeat(0, 0, {"heatmap": payload})
        obs.absorb_heartbeat(0, 1, {"heatmap": payload})
        obs.absorb_heartbeat(1, 0, {"heatmap": payload})
        merged = obs.cluster_heatmap()
        assert merged.total_rows == 2 * grid.total_rows
        assert merged.total_heat == pytest.approx(2 * grid.total_heat)


# ----------------------------------------------------------------------
# Slow-query log: cluster attribution and persistence
# ----------------------------------------------------------------------
class TestSlowLogCluster:
    def test_cluster_queries_attributed_and_persisted(
        self, engine, dataset, obs_cluster, tmp_path
    ):
        engine.slow_query_log.clear()
        engine.set_remote_executor(obs_cluster)
        try:
            engine.threshold_search(dataset[0], EPS)
        finally:
            engine.set_remote_executor(None)
        entries = engine.slow_query_log.entries()
        assert entries, "threshold 0.0 must log every query"
        entry = entries[-1]
        assert entry.origin == "cluster"
        assert entry.query_tid == dataset[0].tid
        assert entry.fanout is not None
        assert {f["partition"] for f in entry.fanout} == {0, 1}
        for leg in entry.fanout:
            assert leg["replica"] == 0
            assert leg["reached"] is True
            assert leg["attempts"] >= 1

        target = str(tmp_path / "store")
        engine.save(target)
        loaded = TraSS.load(target)
        restored = loaded.slow_query_log.entries()
        assert [e.query_tid for e in restored] == [
            e.query_tid for e in entries
        ]
        assert restored[-1].origin == "cluster"
        assert restored[-1].fanout == entry.fanout


# ----------------------------------------------------------------------
# Latency SLOs and the error budget
# ----------------------------------------------------------------------
class TestLatencySLOs:
    def test_slo_histograms_cover_every_stage(self, engine, dataset):
        queries = dataset[:4]
        with ServingCluster.from_engine(
            engine,
            partitions=2,
            observability=True,
            slo_objective_seconds=60.0,
        ) as c:
            for q in queries:
                c.threshold_search(q, EPS)
            snapshot = c.stats()["observability"]
        summaries = snapshot["slo"]["summaries"]
        n = len(queries)
        assert summaries["query"]["count"] == n
        assert summaries["admission_wait"]["count"] == n
        assert summaries["fanout"]["count"] == n
        assert summaries["merge"]["count"] == n
        assert summaries["partition_service"]["count"] == n * 2
        assert summaries["hedge_wait"]["count"] == 0  # nothing stalled
        for key in ("query", "fanout", "partition_service"):
            s = summaries[key]
            assert s["sum"] > 0
            assert 0 < s["p50"] <= s["p95"] <= s["p99"]
        budget = snapshot["slo"]["error_budget"]
        assert budget["good_events"] == n
        assert budget["bad_events"] == 0
        assert budget["burn_rate"] == 0.0
        service = snapshot["partition_service"]
        assert set(service) == {"0", "1"}
        for entry in service.values():
            assert entry["replies"] == n
            assert entry["mean_seconds"] > 0

    def test_error_budget_burn_arithmetic(self):
        obs = ClusterObservability(
            slo_objective_seconds=0.5, slo_target=0.99
        )
        for _ in range(9):
            obs.observe_query(0.01)
        obs.observe_query(2.0)  # over objective: bad
        budget = obs.error_budget()
        assert budget["good_events"] == 9
        assert budget["bad_events"] == 1
        # bad_rate 0.1 over an allowance of 0.01 burns at 10x.
        assert budget["burn_rate"] == pytest.approx(10.0)

    def test_skipped_queries_count_against_the_budget(self):
        obs = ClusterObservability(slo_objective_seconds=60.0)
        obs.observe_query(0.01, ok=False)  # degraded: fast but partial
        assert obs.error_budget()["bad_events"] == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            ClusterObservability(slo_objective_seconds=0.0)
        with pytest.raises(ValueError):
            ClusterObservability(slo_target=1.0)

    def test_absorb_reply_accumulates_io(self):
        class _Payload:
            def __init__(self, delta):
                self.io_delta = delta

        obs = ClusterObservability()
        obs.absorb_reply(0, 0, _Payload({"rows_scanned": 5}))
        obs.absorb_reply(0, 0, _Payload({"rows_scanned": 3, "gets": 1}))
        obs.absorb_reply(1, 0, _Payload({"rows_scanned": 2}))
        assert obs.workers[(0, 0)]["queries"] == 2
        assert obs.workers[(0, 0)]["io"]["rows_scanned"] == 8
        assert obs.io_totals() == {"rows_scanned": 10, "gets": 1}


# ----------------------------------------------------------------------
# The serving doctor
# ----------------------------------------------------------------------
class _FakeCluster:
    def __init__(self, stats):
        self._stats = stats

    def stats(self):
        return self._stats


def _healthy_stats(**overrides):
    stats = {
        "partitions": 2,
        "replication": 2,
        "started": True,
        "counters": {
            "queries": 40,
            "failovers": 0,
            "hedges": 0,
            "hedge_wins": 0,
            "degraded_queries": 0,
        },
        "worker_restarts": 0,
        "breaker": {
            "trips": 0,
            "open_regions": 0,
            "tracked_regions": 4,
            "probes_admitted": 0,
            "any_open": False,
        },
        "admission": {
            "in_flight": 0,
            "admitted": 40,
            "rejected_quota": 0,
            "rejected_queue_depth": 0,
            "tenants": {},
        },
        "observability": {
            "workers": [
                {"partition": 0, "replica": 0, "queries": 20, "io": {}},
                {"partition": 1, "replica": 0, "queries": 20, "io": {}},
            ],
            "partition_service": {
                "0": {"seconds": 0.2, "replies": 20, "mean_seconds": 0.01},
                "1": {"seconds": 0.24, "replies": 20, "mean_seconds": 0.012},
            },
        },
    }
    stats.update(overrides)
    return stats


class TestServingDoctor:
    def test_healthy_cluster_has_no_findings(self):
        assert diagnose_cluster(_FakeCluster(_healthy_stats())) == []

    def test_live_cluster_doctor_is_quiet(self, obs_cluster, dataset):
        obs_cluster.threshold_search(dataset[0], EPS)
        assert [r.kind for r in obs_cluster.doctor()] == []

    def test_replica_imbalance(self):
        stats = _healthy_stats()
        stats["observability"]["workers"] = [
            {"partition": 0, "replica": 0, "queries": 3, "io": {}},
            {"partition": 0, "replica": 1, "queries": 17, "io": {}},
            {"partition": 1, "replica": 0, "queries": 20, "io": {}},
        ]
        recs = diagnose_cluster(_FakeCluster(stats))
        assert [r.kind for r in recs] == ["replica-load-imbalance"]
        assert recs[0].severity == "warning"
        assert recs[0].evidence["partition"] == 0
        assert recs[0].evidence["backup_share"] == pytest.approx(0.85)

    def test_replica_imbalance_needs_replication(self):
        # A single-replica cluster routes everything to slot 0 — the
        # rule must not fire on the healthy primary-first pattern.
        stats = _healthy_stats(replication=1)
        assert diagnose_cluster(_FakeCluster(stats)) == []

    def test_breaker_flapping(self):
        stats = _healthy_stats()
        stats["breaker"]["trips"] = 5
        stats["worker_restarts"] = 2
        recs = diagnose_cluster(_FakeCluster(stats))
        assert [r.kind for r in recs] == ["breaker-flapping"]
        assert recs[0].evidence["trips"] == 5
        assert recs[0].evidence["worker_restarts"] == 2

    def test_hedge_waste_and_chronic_straggler(self):
        waste = _healthy_stats()
        waste["counters"].update(hedges=10, hedge_wins=1)
        recs = diagnose_cluster(_FakeCluster(waste))
        assert [r.kind for r in recs] == ["hedge-efficacy"]
        assert recs[0].severity == "info"

        chronic = _healthy_stats()
        chronic["counters"].update(hedges=10, hedge_wins=9)
        recs = diagnose_cluster(_FakeCluster(chronic))
        assert recs[0].severity == "warning"
        assert "straggle" in recs[0].title

        healthy_rate = _healthy_stats()
        healthy_rate["counters"].update(hedges=10, hedge_wins=4)
        assert diagnose_cluster(_FakeCluster(healthy_rate)) == []

    def test_shed_rate_escalates_to_critical(self):
        mild = _healthy_stats()
        mild["admission"].update(admitted=90, rejected_quota=10)
        recs = diagnose_cluster(_FakeCluster(mild))
        assert [r.kind for r in recs] == ["shed-rate"]
        assert recs[0].severity == "warning"

        severe = _healthy_stats()
        severe["admission"].update(
            admitted=60, rejected_quota=20, rejected_queue_depth=20
        )
        recs = diagnose_cluster(_FakeCluster(severe))
        assert recs[0].severity == "critical"

    def test_slow_partition_skew(self):
        # max/mean needs >= 3 partitions to reach the 2x ratio: with
        # two, the slowest can never exceed twice the mean.
        stats = _healthy_stats(partitions=3)
        stats["observability"]["partition_service"] = {
            "0": {"seconds": 0.1, "replies": 20, "mean_seconds": 0.005},
            "1": {"seconds": 0.1, "replies": 20, "mean_seconds": 0.005},
            "2": {"seconds": 1.0, "replies": 20, "mean_seconds": 0.05},
        }
        recs = diagnose_cluster(_FakeCluster(stats))
        assert [r.kind for r in recs] == ["slow-partition-skew"]
        assert recs[0].evidence["slowest_partition"] == 2

    def test_findings_rank_by_severity(self):
        stats = _healthy_stats()
        stats["breaker"]["trips"] = 5  # warning
        stats["admission"].update(
            admitted=60, rejected_quota=20, rejected_queue_depth=20
        )  # critical
        recs = diagnose_cluster(_FakeCluster(stats))
        assert [r.severity for r in recs] == ["critical", "warning"]
