"""Correctness tests for every baseline against brute force.

The benches only make sense if all systems return the same answers;
these tests pin that down on random clustered data.
"""

import random

import pytest

from repro.baselines import (
    BruteForceBaseline,
    DFTBaseline,
    DITABaseline,
    JustXZ2Baseline,
    REPOSEBaseline,
)
from repro.exceptions import QueryError
from repro.geometry.trajectory import Trajectory
from repro.index.bounds import SpaceBounds
from repro.measures import get_measure

BOUNDS = SpaceBounds(0, 0, 1, 1)


def dataset(rng, n=100):
    data = []
    for i in range(n):
        if i % 3 == 0:  # cluster so queries have true neighbours
            x, y = 0.5 + rng.uniform(-0.04, 0.04), 0.5 + rng.uniform(-0.04, 0.04)
        else:
            x, y = rng.random() * 0.9, rng.random() * 0.9
        pts = [(x, y)]
        for _ in range(rng.randint(2, 15)):
            x = min(0.999, max(0.0, x + rng.uniform(-0.01, 0.01)))
            y = min(0.999, max(0.0, y + rng.uniform(-0.01, 0.01)))
            pts.append((x, y))
        data.append(Trajectory(f"t{i}", pts))
    return data


def make_baselines(measure="frechet"):
    return [
        BruteForceBaseline(measure),
        JustXZ2Baseline(measure, max_resolution=8, bounds=BOUNDS, shards=2),
        DFTBaseline(measure),
        DITABaseline(measure, cell_size=0.02),
    ]


class TestThresholdAgreement:
    def test_all_match_brute_force(self):
        rng = random.Random(61)
        data = dataset(rng)
        m = get_measure("frechet")
        systems = make_baselines()
        for system in systems:
            system.build(data)
        for trial in range(5):
            q = data[rng.randrange(len(data))]
            eps = rng.choice([0.02, 0.05])
            want = {
                t.tid for t in data if m.distance(q.points, t.points) <= eps
            }
            for system in systems:
                got = set(system.threshold_search(q, eps).answers)
                assert got == want, (system.name, trial)


class TestTopKAgreement:
    def test_all_match_brute_force(self):
        rng = random.Random(62)
        data = dataset(rng)
        m = get_measure("frechet")
        systems = make_baselines() + [REPOSEBaseline("frechet")]
        for system in systems:
            system.build(data)
        want_all = None
        for trial in range(3):
            q = data[rng.randrange(len(data))]
            k = rng.choice([3, 8])
            want = sorted(
                (round(m.distance(q.points, t.points), 9), t.tid) for t in data
            )[:k]
            want_d = [d for d, _ in want]
            for system in systems:
                result = system.topk_search(q, k)
                got_d = [round(d, 9) for d, _ in result.ranked]
                assert got_d == want_d, (system.name, trial)


class TestSystemSpecifics:
    def test_repose_threshold_unsupported(self):
        r = REPOSEBaseline()
        r.build(dataset(random.Random(63), 10))
        with pytest.raises(QueryError):
            r.threshold_search(Trajectory("q", [(0.5, 0.5)]), 0.1)

    def test_dita_hausdorff_unsupported(self):
        with pytest.raises(QueryError):
            DITABaseline(measure="hausdorff")

    def test_repose_dtw_degrades_to_full_verification(self):
        """DTW is not a metric, so the reference lower bound must not be
        used — REPOSE verifies everything but stays correct."""
        rng = random.Random(64)
        data = dataset(rng, 40)
        r = REPOSEBaseline("dtw", num_references=3)
        r.build(data)
        m = get_measure("dtw")
        q = data[0]
        result = r.topk_search(q, 5)
        want = sorted((m.distance(q.points, t.points), t.tid) for t in data)[:5]
        assert [round(d, 9) for d, _ in result.ranked] == [
            round(d, 9) for d, _ in want
        ]
        assert result.candidates == len(data)  # honest degradation

    def test_dft_dynamic_build_counts_splits(self):
        rng = random.Random(65)
        data = dataset(rng, 80)
        dyn = DFTBaseline()
        dyn.build(data)
        assert dyn.tree.split_count > 0
        bulk = DFTBaseline(bulk=True)
        bulk.build(data)
        assert bulk.tree.split_count == 0

    def test_just_metrics_account_io(self):
        rng = random.Random(66)
        data = dataset(rng, 60)
        just = JustXZ2Baseline(max_resolution=8, bounds=BOUNDS, shards=2)
        just.build(data)
        q = data[0]
        result = just.threshold_search(q, 0.05)
        assert result.retrieved >= result.candidates >= len(result.answers)

    def test_brute_force_counts_everything(self):
        rng = random.Random(67)
        data = dataset(rng, 30)
        brute = BruteForceBaseline()
        brute.build(data)
        result = brute.threshold_search(data[0], 0.01)
        assert result.candidates == 30
