"""Tests for dataset generators, workloads and CSV I/O."""

import pytest

from repro.data import (
    LORRY_BOUNDS,
    TDRIVE_BOUNDS,
    dataset_names,
    load_csv,
    load_dataset,
    lorry_like,
    random_walks,
    sample_queries,
    save_csv,
    scaled,
    tdrive_like,
)
from repro.exceptions import ReproError
from repro.geometry.trajectory import Trajectory


class TestGenerators:
    def test_tdrive_deterministic(self):
        a = tdrive_like(50, seed=3)
        b = tdrive_like(50, seed=3)
        assert [t.points for t in a] == [t.points for t in b]
        assert tdrive_like(50, seed=4)[0].points != a[0].points

    def test_tdrive_within_bounds(self):
        for t in tdrive_like(100, seed=1):
            for x, y in t.points:
                assert TDRIVE_BOUNDS.contains(x, y)

    def test_tdrive_has_stationary_taxis(self):
        """The Figure 12(a) peak depends on waiting taxis existing."""
        data = tdrive_like(300, seed=2, stationary_fraction=0.1)
        stationary = [t for t in data if t.is_stationary()]
        assert len(stationary) > 10

    def test_tdrive_stationary_fraction_zero(self):
        data = tdrive_like(100, seed=2, stationary_fraction=0.0)
        assert not any(t.is_stationary() for t in data)

    def test_lorry_spans_more_than_tdrive(self):
        """The paper's point: Lorry covers a country, T-Drive a city."""
        taxis = tdrive_like(100, seed=5)
        lorries = lorry_like(100, seed=5)
        taxi_span = max(max(t.mbr.width, t.mbr.height) for t in taxis)
        lorry_span = max(max(t.mbr.width, t.mbr.height) for t in lorries)
        assert lorry_span > 3 * taxi_span

    def test_lorry_within_bounds(self):
        for t in lorry_like(50, seed=6):
            for x, y in t.points:
                assert LORRY_BOUNDS.contains(x, y)

    def test_random_walks_count_and_ids(self):
        walks = random_walks(20, TDRIVE_BOUNDS, seed=7, tid_prefix="z")
        assert len(walks) == 20
        assert walks[0].tid == "z0"
        assert len({t.tid for t in walks}) == 20

    def test_negative_count_rejected(self):
        with pytest.raises(ReproError):
            random_walks(-1, TDRIVE_BOUNDS)


class TestScaled:
    def test_scaling_counts(self):
        base = tdrive_like(30, seed=8)
        assert len(scaled(base, 1)) == 30
        assert len(scaled(base, 4)) == 120

    def test_copies_get_fresh_ids(self):
        base = tdrive_like(10, seed=9)
        out = scaled(base, 3)
        assert len({t.tid for t in out}) == 30

    def test_copies_are_jittered(self):
        base = tdrive_like(5, seed=10)
        out = scaled(base, 2, jitter=0.05)
        copy = out[len(base)]
        assert copy.points != base[0].points
        # Same shape: jitter is a pure translation.
        dx = copy.points[0][0] - base[0].points[0][0]
        assert copy.points[-1][0] - base[0].points[-1][0] == pytest.approx(dx)

    def test_invalid_times(self):
        with pytest.raises(ReproError):
            scaled(tdrive_like(3, seed=1), 0)


class TestDatasets:
    def test_names(self):
        assert dataset_names() == ("lorry", "tdrive")

    def test_load(self):
        ds = load_dataset("tdrive", size=40, seed=1)
        assert len(ds) == 40
        assert ds.bounds == TDRIVE_BOUNDS

    def test_unknown(self):
        with pytest.raises(ReproError):
            load_dataset("geolife")


class TestWorkload:
    def test_sample_size(self):
        data = tdrive_like(100, seed=11)
        queries = sample_queries(data, 10, seed=1)
        assert len(queries) == 10

    def test_deterministic(self):
        data = tdrive_like(100, seed=11)
        a = sample_queries(data, 10, seed=1)
        b = sample_queries(data, 10, seed=1)
        assert [q.tid for q in a] == [q.tid for q in b]

    def test_min_points_respected(self):
        data = [Trajectory("single", [(0, 0)])] + tdrive_like(20, seed=12)
        queries = sample_queries(data, 25, min_points=2)
        assert all(len(q) >= 2 for q in queries)

    def test_count_larger_than_population(self):
        data = tdrive_like(5, seed=13)
        assert len(sample_queries(data, 50)) <= 5

    def test_invalid_count(self):
        with pytest.raises(ReproError):
            sample_queries(tdrive_like(5, seed=1), 0)


class TestCSV:
    def test_roundtrip(self, tmp_path):
        data = tdrive_like(15, seed=14)
        path = str(tmp_path / "out.csv")
        rows = save_csv(path, data)
        assert rows == sum(len(t) for t in data)
        loaded = load_csv(path)
        assert len(loaded) == len(data)
        for a, b in zip(loaded, data):
            assert a.tid == b.tid
            assert a.points == b.points

    def test_bad_header(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("x,y,z\n1,2,3\n")
        with pytest.raises(ReproError):
            load_csv(str(path))

    def test_bad_row(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("tid,x,y\nt1,notanumber,2\n")
        with pytest.raises(ReproError):
            load_csv(str(path))
