"""Vectorised local filtering and multi-query batch execution.

The contracts under test:

* the numpy batch filter makes the same accept/reject decisions — and
  produces the same per-lemma :class:`LocalFilterStats` — as the scalar
  reference, pinned by a hypothesis property over random trajectories,
  thresholds and measures;
* the columnar decoder reads the same blob into bit-identical geometry;
* a batch of threshold queries answers bit-identically to sequential
  execution while scanning strictly fewer rows (the scan-sharing
  tentpole), in every mode: scalar, vectorised, parallel workers, and
  under masked fault injection;
* ``range_merge_gap`` coalesces near-adjacent ranges without changing
  answers.
"""

from __future__ import annotations

import dataclasses
import math
import random

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import TraSS, TraSSConfig, Trajectory
from repro.core.codec import decode_row, encode_row
from repro.core.columnar import CandidateBatch, decode_row_columnar
from repro.core.local_filter import LocalFilter, LocalFilterStats
from repro.core.storage import TrajectoryRecord
from repro.exceptions import KVStoreError, QueryError
from repro.features.dp_features import extract_dp_features
from repro.measures import get_measure

from .conftest import BEIJING, make_walk

coords = st.floats(min_value=0.0, max_value=1.0, allow_nan=False, width=64)
unit_points = st.lists(
    st.tuples(coords, coords), min_size=1, max_size=20
)
eps_values = st.floats(
    min_value=0.0, max_value=1.5, allow_nan=False, width=64
)


def _record_pair(tid, points, theta=0.05):
    """The same stored row decoded both ways."""
    blob = encode_row(tid, points, extract_dp_features(points, theta))
    dec_tid, dec_points, features = decode_row(blob)
    scalar = TrajectoryRecord(dec_tid, tuple(dec_points), features, -1)
    return scalar, decode_row_columnar(blob)


# ----------------------------------------------------------------------
# Columnar decode parity
# ----------------------------------------------------------------------
class TestColumnarDecode:
    def test_matches_scalar_decode(self):
        rng = random.Random(5)
        points = [(rng.random(), rng.random()) for _ in range(50)]
        scalar, columnar = _record_pair("abc", points)
        assert columnar.tid == "abc"
        assert columnar.points.shape == (50, 2)
        assert [tuple(p) for p in columnar.points] == list(scalar.points)
        feats = scalar.features
        assert tuple(columnar.rep_indexes) == feats.rep_indexes
        assert [tuple(p) for p in columnar.rep_points] == list(feats.rep_points)
        assert len(columnar.box_params) == len(feats.boxes)
        for row, box, env in zip(
            columnar.box_params, feats.boxes, columnar.box_envelopes
        ):
            assert (row[0], row[1]) == (box.anchor.x, box.anchor.y)
            assert (row[2], row[3]) == box.axis
            assert row[4] == box.length
            assert (row[5], row[6], row[7]) == (
                box.lo_along,
                box.lo_perp,
                box.hi_perp,
            )
            mbr = box.mbr()
            assert tuple(env) == (mbr.min_x, mbr.min_y, mbr.max_x, mbr.max_y)
        m = feats.mbr
        assert tuple(columnar.mbr_arr) == (m.min_x, m.min_y, m.max_x, m.max_y)

    def test_lazy_scalar_views_bit_identical(self):
        rng = random.Random(6)
        points = [(rng.random(), rng.random()) for _ in range(30)]
        scalar, columnar = _record_pair("t", points)
        feats = columnar.features
        ref = scalar.features
        assert feats.rep_indexes == ref.rep_indexes
        assert feats.rep_points == ref.rep_points
        assert feats.mbr == ref.mbr
        for a, b in zip(feats.boxes, ref.boxes):
            assert (a.anchor, a.axis, a.length) == (b.anchor, b.axis, b.length)
            assert (a.lo_along, a.lo_perp, a.hi_perp) == (
                b.lo_along,
                b.lo_perp,
                b.hi_perp,
            )
        assert feats.envelopes == ref.envelopes
        record = columnar.as_record()
        assert record.tid == "t"
        assert record.features is feats
        # the record's points stay the columnar array (no re-decode)
        assert record.points is columnar.points
        assert columnar.as_record() is record

    def test_corrupt_rows_raise(self):
        points = [(0.1, 0.2), (0.3, 0.4)]
        blob = encode_row("x", points, extract_dp_features(points, 0.05))
        with pytest.raises(KVStoreError):
            decode_row_columnar(blob + b"\x00")
        with pytest.raises(KVStoreError):
            decode_row_columnar(blob[:-1])
        with pytest.raises(KVStoreError):
            decode_row_columnar(b"\x00\x00")

    def test_empty_batch(self):
        batch = CandidateBatch([])
        assert batch.size == 0
        assert batch.mbrs.shape == (0, 4)
        assert batch.rep_points.shape == (0, 2)


# ----------------------------------------------------------------------
# Vectorised filter == scalar filter (property)
# ----------------------------------------------------------------------
@given(
    query_points=unit_points,
    candidate_sets=st.lists(unit_points, min_size=1, max_size=6),
    eps=eps_values,
    measure_name=st.sampled_from(["frechet", "hausdorff", "dtw"]),
)
@settings(max_examples=120, deadline=None)
def test_vectorized_filter_matches_scalar(
    query_points, candidate_sets, eps, measure_name
):
    """Decisions AND per-lemma stats agree on arbitrary inputs."""
    query = Trajectory("q", query_points)
    measure = get_measure(measure_name)
    pairs = [
        _record_pair(f"c{i}", pts) for i, pts in enumerate(candidate_sets)
    ]

    scalar_filter = LocalFilter(query, measure, eps, 0.05)
    scalar_decisions = [scalar_filter.passes(rec) for rec, _ in pairs]

    batch_filter = LocalFilter(query, measure, eps, 0.05)
    mask = batch_filter.passes_batch(CandidateBatch([c for _, c in pairs]))

    assert list(mask) == scalar_decisions
    assert batch_filter.stats == scalar_filter.stats


@given(
    query_points=unit_points,
    candidate_sets=st.lists(unit_points, min_size=1, max_size=4),
    eps=eps_values,
)
@settings(max_examples=60, deadline=None)
def test_vectorized_filter_infinite_threshold(query_points, candidate_sets, eps):
    """eps = inf passes everything in both modes (the top-k start state)."""
    query = Trajectory("q", query_points)
    measure = get_measure("frechet")
    pairs = [_record_pair(f"c{i}", p) for i, p in enumerate(candidate_sets)]
    batch_filter = LocalFilter(query, measure, math.inf, 0.05)
    mask = batch_filter.passes_batch(CandidateBatch([c for _, c in pairs]))
    assert mask.all()
    assert batch_filter.stats.passed == len(pairs)


def test_batch_filter_stats_accumulate_across_chunks():
    rng = random.Random(9)
    query = Trajectory("q", [(rng.random(), rng.random()) for _ in range(10)])
    measure = get_measure("frechet")
    filt = LocalFilter(query, measure, 0.2, 0.05)
    chunks = [
        [
            _record_pair(f"c{i}-{j}", [(rng.random(), rng.random()) for _ in range(8)])[1]
            for j in range(4)
        ]
        for i in range(3)
    ]
    for chunk in chunks:
        filt.passes_batch(CandidateBatch(chunk))
    assert filt.stats.evaluated == 12
    total = (
        filt.stats.passed
        + filt.stats.rejected_mbr
        + filt.stats.rejected_start_end
        + filt.stats.rejected_rep_points
        + filt.stats.rejected_boxes
    )
    assert total == 12


# ----------------------------------------------------------------------
# End-to-end equivalence on an engine
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def batch_engine():
    rng = random.Random(21)
    # Clustered walks so the 32-query workload genuinely overlaps.
    trajectories = [make_walk(f"t{i}", rng) for i in range(200)]
    config = TraSSConfig(
        bounds=BEIJING, max_resolution=12, dp_tolerance=0.002, shards=4
    )
    return TraSS.build(trajectories, config)


@pytest.fixture(scope="module")
def batch_queries():
    rng = random.Random(77)
    return [make_walk(f"q{i}", rng, n_range=(8, 20)) for i in range(32)]


@pytest.fixture(scope="module")
def sequential_results(batch_engine, batch_queries):
    return [batch_engine.threshold_search(q, 0.02) for q in batch_queries]


def _assert_same(seq_results, got_results, check_stats=True):
    assert len(got_results) == len(seq_results)
    for a, b in zip(seq_results, got_results):
        assert b.answers == a.answers
        assert b.candidates == a.candidates
        if check_stats:
            assert b.filter_stats == a.filter_stats


class TestVectorizedSearch:
    def test_threshold_equivalence(self, batch_engine, batch_queries,
                                   sequential_results):
        batch_engine.configure_execution(vectorized_filter=True)
        try:
            got = [batch_engine.threshold_search(q, 0.02) for q in batch_queries]
        finally:
            batch_engine.configure_execution(vectorized_filter=False)
        _assert_same(sequential_results, got)

    def test_topk_equivalence(self, batch_engine, batch_queries):
        expected = [batch_engine.topk_search(q, 5) for q in batch_queries[:6]]
        batch_engine.configure_execution(vectorized_filter=True)
        try:
            got = [batch_engine.topk_search(q, 5) for q in batch_queries[:6]]
        finally:
            batch_engine.configure_execution(vectorized_filter=False)
        for a, b in zip(expected, got):
            assert b.answers == a.answers
            assert b.candidates == a.candidates
            assert b.filter_stats == a.filter_stats

    def test_columnar_cache_reused_when_warm(self, batch_engine, batch_queries):
        batch_engine.configure_execution(vectorized_filter=True)
        try:
            batch_engine.threshold_search(batch_queries[0], 0.02)
            before = batch_engine.metrics.snapshot()
            batch_engine.threshold_search(batch_queries[0], 0.02)
            delta = batch_engine.metrics.diff(before)
            assert delta["columnar_cache_misses"] == 0
        finally:
            batch_engine.configure_execution(vectorized_filter=False)


class TestBatchExecution:
    @pytest.mark.parametrize("vectorized", [False, True])
    def test_bit_identical_and_fewer_rows(
        self, batch_engine, batch_queries, sequential_results, vectorized
    ):
        batch_engine.configure_execution(vectorized_filter=vectorized)
        try:
            metrics = batch_engine.metrics
            metrics.reset()
            for q in batch_queries:
                batch_engine.threshold_search(q, 0.02)
            sequential_rows = metrics.rows_scanned
            metrics.reset()
            results = batch_engine.threshold_search_many(batch_queries, 0.02)
            batch_rows = metrics.rows_scanned
        finally:
            batch_engine.configure_execution(vectorized_filter=False)
        _assert_same(sequential_results, results)
        assert metrics.batch_rows_shared > 0
        assert metrics.batch_ranges_merged > 0
        assert batch_rows < sequential_rows
        # per-query accounting still reflects the query's own plan
        for a, b in zip(sequential_results, results):
            assert b.retrieved_rows == a.retrieved_rows

    def test_parallel_workers(self, batch_engine, batch_queries,
                              sequential_results):
        batch_engine.configure_execution(scan_workers=3, vectorized_filter=True)
        try:
            results = batch_engine.threshold_search_many(batch_queries, 0.02)
        finally:
            batch_engine.configure_execution(
                scan_workers=1, vectorized_filter=False
            )
        _assert_same(sequential_results, results)

    @pytest.mark.parametrize("vectorized", [False, True])
    def test_under_masked_faults(self, batch_engine, batch_queries,
                                 sequential_results, vectorized):
        from repro.kvstore.faults import FaultInjector, FaultSchedule

        injector = FaultInjector(
            FaultSchedule(seed=11, region_unavailable_prob=0.3)
        )
        batch_engine.configure_execution(vectorized_filter=vectorized)
        batch_engine.install_fault_injector(injector)
        try:
            results = batch_engine.threshold_search_many(batch_queries, 0.02)
        finally:
            batch_engine.install_fault_injector(None)
            batch_engine.configure_execution(vectorized_filter=False)
        assert all(r.completeness == 1.0 for r in results)
        assert results[0].resilience.faults_encountered > 0
        _assert_same(sequential_results, results)

    def test_per_query_eps_list(self, batch_engine, batch_queries):
        eps_list = [0.01 + 0.001 * i for i in range(len(batch_queries))]
        expected = [
            batch_engine.threshold_search(q, e)
            for q, e in zip(batch_queries, eps_list)
        ]
        results = batch_engine.threshold_search_many(batch_queries, eps_list)
        _assert_same(expected, results)

    def test_other_measures(self, batch_engine, batch_queries):
        for name in ("hausdorff", "dtw"):
            expected = [
                batch_engine.threshold_search(q, 0.02, measure=name)
                for q in batch_queries[:8]
            ]
            results = batch_engine.threshold_search_many(
                batch_queries[:8], 0.02, measure=name
            )
            _assert_same(expected, results)

    def test_non_prunable_measure_falls_back(self, batch_engine, batch_queries):
        expected = [
            batch_engine.threshold_search(q, 3.0, measure="edr")
            for q in batch_queries[:3]
        ]
        results = batch_engine.threshold_search_many(
            batch_queries[:3], 3.0, measure="edr"
        )
        for a, b in zip(expected, results):
            assert b.answers == a.answers

    def test_topk_many_matches_single(self, batch_engine, batch_queries):
        expected = [batch_engine.topk_search(q, 4) for q in batch_queries[:4]]
        results = batch_engine.topk_search_many(batch_queries[:4], 4)
        for a, b in zip(expected, results):
            assert b.answers == a.answers

    def test_validation(self, batch_engine, batch_queries):
        assert batch_engine.threshold_search_many([], 0.02) == []
        with pytest.raises(QueryError):
            batch_engine.threshold_search_many(batch_queries[:2], [0.01])
        with pytest.raises(QueryError):
            batch_engine.threshold_search_many(batch_queries[:1], -1.0)


# ----------------------------------------------------------------------
# Range-gap coalescing (planner satellite)
# ----------------------------------------------------------------------
class TestRangeMergeGap:
    def test_answers_unchanged_and_seeks_drop(self, small_dataset):
        config = TraSSConfig(
            bounds=BEIJING, max_resolution=12, dp_tolerance=0.002, shards=4
        )
        rng = random.Random(13)
        queries = [make_walk(f"g{i}", rng) for i in range(12)]
        base = TraSS.build(small_dataset, config)
        expected = [base.threshold_search(q, 0.02) for q in queries]
        base_seeks = base.metrics.range_seeks

        gapped = TraSS.build(
            small_dataset, dataclasses.replace(config, range_merge_gap=4)
        )
        got = [gapped.threshold_search(q, 0.02) for q in queries]
        for a, b in zip(expected, got):
            assert b.answers == a.answers
        assert gapped.metrics.ranges_merged > 0
        assert gapped.metrics.range_seeks < base_seeks

    def test_negative_gap_rejected(self):
        with pytest.raises(QueryError):
            TraSSConfig(range_merge_gap=-1)


# ----------------------------------------------------------------------
# Persistence of the new knobs
# ----------------------------------------------------------------------
def test_save_load_roundtrip(tmp_path, small_dataset):
    config = TraSSConfig(
        bounds=BEIJING,
        max_resolution=12,
        dp_tolerance=0.002,
        shards=4,
        vectorized_filter=True,
        range_merge_gap=3,
    )
    engine = TraSS.build(small_dataset[:60], config)
    query = small_dataset[0]
    expected = engine.threshold_search(query, 0.02)
    engine.save(str(tmp_path / "store"))
    loaded = TraSS.load(str(tmp_path / "store"))
    assert loaded.config.vectorized_filter is True
    assert loaded.config.range_merge_gap == 3
    assert loaded.pruner.range_merge_gap == 3
    got = loaded.threshold_search(query, 0.02)
    assert got.answers == expected.answers
