"""Parallel scan + multi-tier cache equivalence and soundness.

Pins the acceptance properties of the execution performance layer:

(a) the parallel scan path is observationally identical to the
    sequential one — same answers (exact distances included), same
    candidate/row counters, same completeness — at any worker count,
    caches on or off;
(b) the same holds under fault injection: with an injector installed
    the parallel executor defers to the sequential path (the seeded
    schedule is consulted in region-visit order, so thread interleaving
    would change which faults fire), and seeded runs stay deterministic;
(c) a cache can never serve a stale row: cache keys embed the table's
    mutation ``generation``, which every put/delete/split/flush/
    compaction bumps, so any mutation makes all prior entries
    unreachable — checked as a property over random op sequences;
(d) LRU accounting stays consistent: ``clear()`` resets statistics
    with the entries, invalidations are counted, and the hit rate is
    ``hits / (hits + misses)``.
"""

from __future__ import annotations

import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import TraSS, TraSSConfig
from repro.data.generators import TDRIVE_BOUNDS, tdrive_like
from repro.kvstore.cache import CachedKVTable, LRUCache, ObjectLRUCache
from repro.kvstore.faults import FaultInjector, FaultSchedule
from repro.kvstore.table import KVTable


def build_engine(scan_workers=1, cache_mb=0.0, n=120, seed=11, **overrides):
    data = tdrive_like(n, seed=seed)
    config = TraSSConfig(
        bounds=TDRIVE_BOUNDS,
        max_resolution=12,
        dp_tolerance=0.005,
        shards=4,
        scan_workers=scan_workers,
        cache_mb=cache_mb,
        **overrides,
    )
    return TraSS.build(data, config), data


def run_workload(engine, data, eps=0.02, k=5, n_queries=6, passes=1):
    """A fixed query mix; returns every observable a caller could see."""
    out = []
    for _ in range(passes):
        for query in data[:n_queries]:
            t = engine.threshold_search(query, eps)
            top = engine.topk_search(query, k)
            out.append(
                (
                    dict(t.answers),  # exact distances, not just ids
                    t.candidates,
                    t.retrieved_rows,
                    t.completeness,
                    t.resilience.ranges_total,
                    t.resilience.ranges_completed,
                    top.answers,
                    top.candidates,
                    top.retrieved_rows,
                    top.completeness,
                )
            )
    return out


class TestParallelSequentialEquivalence:
    def test_identical_answers_and_counters(self):
        seq, data = build_engine(scan_workers=1)
        par, _ = build_engine(scan_workers=4)
        assert par.store.executor.workers == 4
        seq.metrics.reset()
        par.metrics.reset()
        assert run_workload(seq, data) == run_workload(par, data)
        assert seq.metrics.snapshot() == par.metrics.snapshot()

    def test_identical_with_warm_caches(self):
        """Caches on: two passes (cold then warm) still agree exactly,
        I/O counters included — the cache sits below the accounting."""
        seq, data = build_engine(scan_workers=1, cache_mb=16.0)
        par, _ = build_engine(scan_workers=4, cache_mb=16.0)
        seq.metrics.reset()
        par.metrics.reset()
        assert run_workload(seq, data, passes=2) == run_workload(
            par, data, passes=2
        )
        snap = par.metrics.snapshot()
        assert snap == seq.metrics.snapshot()
        assert snap["block_cache_hits"] > 0
        assert snap["record_cache_hits"] > 0

    def test_cached_equals_uncached_answers(self):
        cold, data = build_engine(scan_workers=1, cache_mb=0.0)
        warm, _ = build_engine(scan_workers=2, cache_mb=16.0)
        assert run_workload(cold, data) == run_workload(warm, data)

    @pytest.mark.chaos
    def test_identical_under_fault_injection(self):
        """Same seeded schedule, worker counts 1 vs 4: answers, retry
        accounting and completeness all match (the parallel executor
        runs injector epochs sequentially to keep the schedule
        deterministic)."""
        seq, data = build_engine(scan_workers=1)
        par, _ = build_engine(scan_workers=4)
        for engine in (seq, par):
            engine.install_fault_injector(
                FaultInjector(
                    FaultSchedule(
                        seed=13,
                        region_unavailable_prob=0.3,
                        max_consecutive_failures=2,
                        split_prob=0.05,
                        compact_prob=0.05,
                    )
                )
            )
            engine.metrics.reset()
        try:
            assert run_workload(seq, data) == run_workload(par, data)
            assert seq.metrics.snapshot() == par.metrics.snapshot()
            assert seq.metrics.snapshot()["faults_injected"] > 0
        finally:
            seq.install_fault_injector(None)
            par.install_fault_injector(None)

    @pytest.mark.chaos
    def test_identical_degraded_completeness(self):
        """Unmaskable faults in degraded mode: both worker counts skip
        exactly the same ranges and report the same completeness."""
        kwargs = dict(retry_max_attempts=1, degraded_mode=True)
        seq, data = build_engine(scan_workers=1, **kwargs)
        par, _ = build_engine(scan_workers=4, **kwargs)
        results = []
        for engine in (seq, par):
            engine.install_fault_injector(
                FaultInjector(
                    FaultSchedule(
                        seed=29,
                        region_unavailable_prob=0.5,
                        max_consecutive_failures=3,
                    )
                )
            )
            try:
                runs = []
                for query in data[:6]:
                    t = engine.threshold_search(query, 0.02)
                    runs.append(
                        (
                            dict(t.answers),
                            t.completeness,
                            [
                                (r.start, r.stop)
                                for r in t.skipped_ranges
                            ],
                        )
                    )
                results.append(runs)
            finally:
                engine.install_fault_injector(None)
        assert results[0] == results[1]
        assert any(c < 1.0 for _, c, _ in results[0])


@pytest.mark.slow
class TestPerfSmoke:
    def test_warm_cached_throughput_speedup(self):
        """The acceptance floor: the tuned configuration (4 workers,
        warm multi-tier caches) sustains >= 1.5x the seed sequential
        throughput on the same store and workload."""
        engine, data = build_engine(n=400, seed=17, plan_cache_size=0)
        queries = data[:10]

        def one_pass():
            started = time.perf_counter()
            for query in queries:
                for eps in (0.005, 0.02):
                    engine.threshold_search(query, eps)
            return time.perf_counter() - started

        seed_seconds = min(one_pass() for _ in range(2))
        engine.configure_execution(
            scan_workers=4, cache_mb=64.0, plan_cache_size=128
        )
        one_pass()  # warm every tier
        warm_seconds = min(one_pass() for _ in range(2))
        speedup = seed_seconds / warm_seconds
        assert speedup >= 1.5, f"expected >= 1.5x, got {speedup:.2f}x"


# ----------------------------------------------------------------------
# Cache staleness: property over random mutate/read interleavings
# ----------------------------------------------------------------------

_KEYS = st.integers(0, 15)
_OPS = st.lists(
    st.one_of(
        st.tuples(st.just("put"), _KEYS, st.integers(0, 5)),
        st.tuples(st.just("delete"), _KEYS),
        st.tuples(st.just("flush")),
        st.tuples(st.just("compact")),
        st.tuples(st.just("scan"), _KEYS, _KEYS),
        st.tuples(st.just("get"), _KEYS),
    ),
    max_size=40,
)


class TestCacheStaleness:
    @given(ops=_OPS)
    @settings(max_examples=60, deadline=None)
    def test_caches_never_serve_stale_rows(self, ops):
        """Random interleavings of writes, flushes, compactions and
        region splits against cached reads always match a dict model —
        a stale cached row after any mutation is impossible."""
        table = KVTable(name="t", max_region_rows=8)  # small: force splits
        table.enable_scan_cache(1 << 16)
        cached = CachedKVTable(table, 1 << 16)
        model = {}

        def k(i):
            return b"k%02d" % i

        for op in ops:
            if op[0] == "put":
                value = b"v%d-%d" % (op[1], op[2])
                cached.put(k(op[1]), value)
                model[k(op[1])] = value
            elif op[0] == "delete":
                cached.delete(k(op[1]))
                model.pop(k(op[1]), None)
            elif op[0] == "flush":
                table.flush_all()
            elif op[0] == "compact":
                table.compact_all()
            elif op[0] == "scan":
                lo, hi = sorted((op[1], op[2]))
                got = list(table.scan(k(lo), k(hi)))
                want = sorted(
                    (key, val)
                    for key, val in model.items()
                    if k(lo) <= key < k(hi)
                )
                assert got == want
            else:
                assert cached.get(k(op[1])) == model.get(k(op[1]))

    def test_compaction_invalidates_scan_cache(self):
        table = KVTable(name="t")
        table.enable_scan_cache(1 << 16)
        table.put(b"a", b"1")
        assert list(table.scan()) == [(b"a", b"1")]
        assert list(table.scan()) == [(b"a", b"1")]  # warm hit
        assert table.metrics.block_cache_hits == 1
        table.compact_all()
        table.put(b"b", b"2")
        # Post-mutation scans rebuild from the store, never the cache.
        assert list(table.scan()) == [(b"a", b"1"), (b"b", b"2")]


# ----------------------------------------------------------------------
# LRU accounting
# ----------------------------------------------------------------------


class TestLRUAccounting:
    def test_clear_resets_entries_and_stats(self):
        cache = LRUCache(1024)
        cache.put(b"a", b"1")
        cache.get(b"a")
        cache.get(b"missing")
        cache.invalidate(b"a")
        assert (cache.hits, cache.misses, cache.invalidations) == (1, 1, 1)
        cache.clear()
        assert len(cache) == 0
        assert cache.current_bytes == 0
        assert (
            cache.hits,
            cache.misses,
            cache.evictions,
            cache.invalidations,
        ) == (0, 0, 0, 0)
        assert cache.hit_rate == 0.0

    def test_invalidate_missing_key_not_counted(self):
        cache = LRUCache(1024)
        cache.invalidate(b"nope")
        assert cache.invalidations == 0

    def test_hit_rate(self):
        cache = LRUCache(1024)
        assert cache.hit_rate == 0.0
        cache.put(b"a", b"1")
        cache.get(b"a")
        cache.get(b"a")
        cache.get(b"b")
        assert cache.hit_rate == pytest.approx(2 / 3)

    def test_object_cache_eviction_and_stats(self):
        cache = ObjectLRUCache(10)
        cache.put("a", "A", cost=6)
        cache.put("b", "B", cost=6)  # evicts "a"
        assert cache.get("a") is None
        assert cache.get("b") == "B"
        stats = cache.stats()
        assert stats["evictions"] == 1
        assert stats["entries"] == 1
        assert stats["cost"] == 6
        assert stats["hit_rate"] == pytest.approx(0.5)
        cache.put("huge", "H", cost=11)  # over capacity: not cached
        assert cache.get("huge") is None
        cache.clear()
        assert cache.stats()["hits"] == 0
        assert cache.current_cost == 0

    def test_object_cache_reput_updates_cost(self):
        cache = ObjectLRUCache(10)
        cache.put("a", "A", cost=4)
        cache.put("a", "A2", cost=7)
        assert cache.current_cost == 7
        assert cache.get("a") == "A2"
        cache.invalidate("a")
        assert cache.invalidations == 1
        assert cache.current_cost == 0
