"""Unit tests for the trajectory store (schema of Table I)."""

import pytest

from repro import TraSSConfig, Trajectory, SpaceBounds
from repro.core.storage import (
    INTEGER_KEYS,
    STRING_KEYS,
    TrajectoryStore,
)
from repro.exceptions import KVStoreError, QueryError
from repro.index.ranges import IndexRange

BOUNDS = SpaceBounds(0, 0, 1, 1)


def config(**kw):
    defaults = dict(bounds=BOUNDS, max_resolution=8, dp_tolerance=0.01, shards=4)
    defaults.update(kw)
    return TraSSConfig(**defaults)


class TestWritePath:
    def test_put_and_scan_back(self):
        store = TrajectoryStore(config())
        t = Trajectory("a", [(0.1, 0.1), (0.2, 0.15)])
        value = store.put(t)
        records = list(store.all_records())
        assert len(records) == 1
        assert records[0].tid == "a"
        assert records[0].points == t.points
        assert records[0].index_value == value

    def test_value_histogram(self):
        store = TrajectoryStore(config())
        t = Trajectory("a", [(0.1, 0.1), (0.2, 0.15)])
        v1 = store.put(t)
        v2 = store.put(Trajectory("b", [(0.1, 0.1), (0.2, 0.15)]))
        assert v1 == v2
        assert store.value_histogram[v1] == 2
        assert store.trajectory_count == 2

    def test_same_shape_same_value_different_tids_coexist(self):
        store = TrajectoryStore(config())
        pts = [(0.3, 0.3), (0.35, 0.32)]
        store.put(Trajectory("x", pts))
        store.put(Trajectory("y", pts))
        assert {r.tid for r in store.all_records()} == {"x", "y"}

    def test_bad_encoding_name(self):
        with pytest.raises(QueryError):
            TrajectoryStore(config(), key_encoding="base64")


class TestScanRanges:
    def test_integer_ranges_cover_all_shards(self):
        store = TrajectoryStore(config(shards=4))
        ranges = store.scan_ranges_for([IndexRange(10, 20)])
        assert len(ranges) == 4  # one per shard

    def test_scan_ranges_find_stored_rows(self):
        store = TrajectoryStore(config())
        t = Trajectory("a", [(0.5, 0.5), (0.52, 0.51)])
        value = store.put(t)
        ranges = store.scan_ranges_for([IndexRange(value, value + 1)])
        rows = store.table.scan_ranges(ranges)
        assert len(rows) == 1
        record = store.decode_record(*rows[0])
        assert record.tid == "a"


class TestStringEncoding:
    def test_string_store_roundtrip(self):
        store = TrajectoryStore(config(), key_encoding=STRING_KEYS)
        t = Trajectory("a", [(0.1, 0.1), (0.2, 0.15)])
        value = store.put(t)
        records = list(store.all_records())
        assert records[0].tid == "a"
        assert records[0].index_value == value

    def test_string_scan_ranges_find_rows(self):
        store = TrajectoryStore(config(), key_encoding=STRING_KEYS)
        t = Trajectory("a", [(0.5, 0.5), (0.52, 0.51)])
        value = store.put(t)
        ranges = store.scan_ranges_for([IndexRange(value, value + 1)])
        rows = store.table.scan_ranges(ranges)
        assert len(rows) == 1

    def test_string_contiguous_range_equivalent(self):
        """A contiguous value range scans the same rows under both
        encodings (order isomorphism)."""
        import random

        rng = random.Random(3)
        cfg = config()
        int_store = TrajectoryStore(cfg, key_encoding=INTEGER_KEYS)
        str_store = TrajectoryStore(cfg, key_encoding=STRING_KEYS)
        values = []
        for i in range(80):
            x, y = rng.random() * 0.8, rng.random() * 0.8
            pts = [
                (x + rng.uniform(0, 0.1), y + rng.uniform(0, 0.1))
                for _ in range(4)
            ]
            t = Trajectory(f"t{i}", pts)
            values.append(int_store.put(t))
            str_store.put(t)
        lo, hi = min(values), max(values) // 2 + 1
        int_rows = int_store.table.scan_ranges(
            int_store.scan_ranges_for([IndexRange(lo, hi)])
        )
        str_rows = str_store.table.scan_ranges(
            str_store.scan_ranges_for([IndexRange(lo, hi)])
        )
        int_tids = {int_store.decode_record(k, v).tid for k, v in int_rows}
        str_tids = {str_store.decode_record(k, v).tid for k, v in str_rows}
        assert int_tids == str_tids

    def test_string_keys_are_longer(self):
        """Figure 13(c): average row-key bytes larger for TraSS-S."""
        cfg = config(max_resolution=16)
        int_store = TrajectoryStore(cfg, key_encoding=INTEGER_KEYS)
        str_store = TrajectoryStore(cfg, key_encoding=STRING_KEYS)
        for i in range(30):
            t = Trajectory(
                f"taxi{i}", [(0.1 + i * 0.001, 0.2), (0.11 + i * 0.001, 0.21)]
            )
            int_store.put(t)
            str_store.put(t)
        assert str_store.average_rowkey_bytes() > int_store.average_rowkey_bytes()


class TestStatistics:
    def test_histograms(self):
        store = TrajectoryStore(config())
        store.put(Trajectory("small", [(0.5, 0.5), (0.501, 0.5)]))
        store.put(Trajectory("big", [(0.1, 0.1), (0.6, 0.7)]))
        res_hist = store.resolution_histogram()
        assert sum(res_hist.values()) == 2
        assert len(res_hist) == 2  # two very different sizes
        code_hist = store.position_code_histogram()
        assert sum(code_hist.values()) == 2

    def test_selectivity(self):
        store = TrajectoryStore(config())
        pts = [(0.3, 0.3), (0.35, 0.32)]
        store.put(Trajectory("x", pts))
        store.put(Trajectory("y", pts))
        store.put(Trajectory("z", [(0.7, 0.7), (0.72, 0.75)]))
        assert store.selectivity() == pytest.approx(2 / 3)

    def test_empty_store_statistics_raise(self):
        store = TrajectoryStore(config())
        with pytest.raises(KVStoreError):
            store.selectivity()
        with pytest.raises(KVStoreError):
            store.average_rowkey_bytes()
