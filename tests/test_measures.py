"""Unit tests for the similarity measures (Definitions 2, 12, 13)."""

import math
import random

import pytest

from repro.measures import (
    DTW,
    DiscreteFrechet,
    Hausdorff,
    available_measures,
    discrete_frechet,
    dtw,
    get_measure,
    hausdorff,
)
from repro.measures.dtw import dtw_within
from repro.measures.frechet import discrete_frechet_within
from repro.measures.hausdorff import hausdorff_within
from repro.exceptions import QueryError


def walk(rng, n, start=(0.0, 0.0), step=0.1):
    x, y = start
    pts = [(x, y)]
    for _ in range(n - 1):
        x += rng.uniform(-step, step)
        y += rng.uniform(-step, step)
        pts.append((x, y))
    return pts


class TestRegistry:
    def test_available(self):
        assert available_measures() == (
            "dtw", "edr", "erp", "frechet", "hausdorff", "lcss"
        )

    def test_get_measure(self):
        assert isinstance(get_measure("frechet"), DiscreteFrechet)
        assert isinstance(get_measure("HAUSDORFF"), Hausdorff)
        assert isinstance(get_measure("dtw"), DTW)

    def test_unknown_raises(self):
        with pytest.raises(QueryError):
            get_measure("euclid")

    def test_lemma_flags(self):
        assert get_measure("frechet").supports_start_end_filter
        assert get_measure("dtw").supports_start_end_filter
        assert not get_measure("hausdorff").supports_start_end_filter


class TestDiscreteFrechet:
    def test_identical(self):
        pts = [(0, 0), (1, 0), (2, 1)]
        assert discrete_frechet(pts, pts) == 0.0

    def test_single_point_cases(self):
        # n == 1: max over the other sequence (Definition 2, case 1).
        assert discrete_frechet([(0, 0)], [(1, 0), (3, 0)]) == pytest.approx(3.0)
        assert discrete_frechet([(1, 0), (3, 0)], [(0, 0)]) == pytest.approx(3.0)

    def test_parallel_lines(self):
        a = [(0, 0), (1, 0), (2, 0)]
        b = [(0, 1), (1, 1), (2, 1)]
        assert discrete_frechet(a, b) == pytest.approx(1.0)

    def test_symmetric(self):
        rng = random.Random(1)
        a, b = walk(rng, 15), walk(rng, 22)
        assert discrete_frechet(a, b) == pytest.approx(discrete_frechet(b, a))

    def test_dominates_endpoint_distances(self):
        """Lemma 12 for Fréchet: D_F >= d(a1,b1) and >= d(an,bm)."""
        rng = random.Random(2)
        for _ in range(30):
            a, b = walk(rng, 8), walk(rng, 11, start=(0.5, 0.5))
            d = discrete_frechet(a, b)
            assert d >= math.dist(a[0], b[0]) - 1e-12
            assert d >= math.dist(a[-1], b[-1]) - 1e-12

    def test_dominates_hausdorff(self):
        """D_F >= D_H always (classical relation)."""
        rng = random.Random(3)
        for _ in range(30):
            a, b = walk(rng, 10), walk(rng, 10, start=(0.3, 0.1))
            assert discrete_frechet(a, b) >= hausdorff(a, b) - 1e-12

    def test_triangle_inequality(self):
        rng = random.Random(4)
        for _ in range(20):
            a, b, c = walk(rng, 6), walk(rng, 7), walk(rng, 8)
            assert discrete_frechet(a, c) <= (
                discrete_frechet(a, b) + discrete_frechet(b, c) + 1e-9
            )

    def test_known_value_reordering(self):
        # Zigzag against straight line.
        a = [(0, 0), (1, 1), (2, 0)]
        b = [(0, 0), (2, 0)]
        assert discrete_frechet(a, b) == pytest.approx(math.hypot(1, 1))

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            discrete_frechet([], [(0, 0)])

    def test_within_agrees_with_exact(self):
        rng = random.Random(5)
        for _ in range(60):
            a, b = walk(rng, 10), walk(rng, 12, start=(0.2, -0.1))
            d = discrete_frechet(a, b)
            for eps in (d * 0.5, d, d * 1.5):
                assert discrete_frechet_within(a, b, eps) == (d <= eps + 1e-15)


class TestHausdorff:
    def test_identical(self):
        pts = [(0, 0), (1, 1)]
        assert hausdorff(pts, pts) == 0.0

    def test_subset_asymmetry_resolved_by_max(self):
        a = [(0, 0), (1, 0)]
        b = [(0, 0), (1, 0), (1, 5)]
        # Directed a->b is 0, directed b->a is 5; symmetric is 5.
        assert hausdorff(a, b) == pytest.approx(5.0)

    def test_symmetric(self):
        rng = random.Random(6)
        a, b = walk(rng, 9), walk(rng, 14)
        assert hausdorff(a, b) == pytest.approx(hausdorff(b, a))

    def test_order_invariant(self):
        """Hausdorff ignores sequence order — the reason Lemma 12 does
        not apply to it."""
        a = [(0, 0), (1, 0), (2, 0)]
        assert hausdorff(a, list(reversed(a))) == 0.0

    def test_within_agrees_with_exact(self):
        rng = random.Random(7)
        for _ in range(60):
            a, b = walk(rng, 10), walk(rng, 8, start=(0.4, 0.4))
            d = hausdorff(a, b)
            for eps in (d * 0.5, d, d * 2):
                assert hausdorff_within(a, b, eps) == (d <= eps + 1e-15)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            hausdorff([(0, 0)], [])


class TestDTW:
    def test_identical(self):
        pts = [(0, 0), (1, 0), (2, 0)]
        assert dtw(pts, pts) == 0.0

    def test_single_point_sums(self):
        # Definition 13 case n == 1: sum of distances.
        assert dtw([(0, 0)], [(1, 0), (2, 0)]) == pytest.approx(3.0)
        assert dtw([(1, 0), (2, 0)], [(0, 0)]) == pytest.approx(3.0)

    def test_known_alignment(self):
        a = [(0, 0), (1, 0)]
        b = [(0, 1), (1, 1)]
        assert dtw(a, b) == pytest.approx(2.0)

    def test_symmetric(self):
        rng = random.Random(8)
        a, b = walk(rng, 10), walk(rng, 13)
        assert dtw(a, b) == pytest.approx(dtw(b, a))

    def test_dominates_endpoint_distances(self):
        """Lemma 12 for DTW (Section VII-B)."""
        rng = random.Random(9)
        for _ in range(30):
            a, b = walk(rng, 7), walk(rng, 9, start=(0.2, 0.6))
            d = dtw(a, b)
            assert d >= math.dist(a[0], b[0]) - 1e-12
            assert d >= math.dist(a[-1], b[-1]) - 1e-12

    def test_dominates_frechet(self):
        """DTW sums >= max over the same optimal coupling, so DTW >= D_F."""
        rng = random.Random(10)
        for _ in range(30):
            a, b = walk(rng, 8), walk(rng, 8, start=(0.1, 0.1))
            assert dtw(a, b) >= discrete_frechet(a, b) - 1e-12

    def test_within_agrees_with_exact(self):
        rng = random.Random(11)
        for _ in range(60):
            a, b = walk(rng, 9), walk(rng, 10, start=(0.3, -0.2))
            d = dtw(a, b)
            for eps in (d * 0.5, d, d * 1.5):
                assert dtw_within(a, b, eps) == (d <= eps + 1e-12)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            dtw([], [(0, 0)])


class TestLemma5:
    """Every measure must dominate each point's nearest-neighbour
    distance (Lemma 5 / Section VII proofs)."""

    @pytest.mark.parametrize("name", ["frechet", "hausdorff", "dtw"])
    def test_point_lower_bound(self, name):
        measure = get_measure(name)
        rng = random.Random(12)
        for _ in range(30):
            a, b = walk(rng, 8), walk(rng, 9, start=(0.5, 0.2))
            d = measure.distance(a, b)
            for t in a:
                nearest = min(math.dist(t, q) for q in b)
                assert d >= nearest - 1e-12
            for t in b:
                nearest = min(math.dist(t, q) for q in a)
                assert d >= nearest - 1e-12
