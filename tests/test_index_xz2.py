"""Unit tests for the XZ-Ordering (XZ2) baseline index."""

import random

import pytest

from repro.exceptions import EncodingError, IndexingError
from repro.geometry.mbr import MBR
from repro.geometry.trajectory import Trajectory
from repro.index.bounds import SpaceBounds
from repro.index.quadrant import ROOT, Element
from repro.index.xz2 import XZ2Index

UNIT = SpaceBounds(0, 0, 1, 1)


class TestEncoding:
    def test_depth_first_layout_r2(self):
        ix = XZ2Index(max_resolution=2, bounds=UNIT)
        # '0'=0, '00'=1, '01'=2, '02'=3, '03'=4, '1'=5, ...
        assert ix.value(Element.from_sequence_str("0")) == 0
        assert ix.value(Element.from_sequence_str("00")) == 1
        assert ix.value(Element.from_sequence_str("03")) == 4
        assert ix.value(Element.from_sequence_str("1")) == 5
        assert ix.value(Element.from_sequence_str("33")) == 19

    def test_bijection_exhaustive(self):
        ix = XZ2Index(max_resolution=4, bounds=UNIT)
        for v in range(ix.total_elements):
            element = ix.decode(v)
            assert ix.value(element) == v

    def test_root_tail_value(self):
        ix = XZ2Index(max_resolution=3, bounds=UNIT)
        assert ix.value(ROOT) == ix.root_block_start
        assert ix.decode(ix.root_block_start) == ROOT

    def test_decode_out_of_range(self):
        ix = XZ2Index(max_resolution=2, bounds=UNIT)
        with pytest.raises(EncodingError):
            ix.decode(ix.total_elements)

    def test_subtree_span(self):
        ix = XZ2Index(max_resolution=4, bounds=UNIT)
        e = Element.from_sequence_str("2")
        lo, hi = ix.subtree_span(e)
        assert lo <= ix.value(Element.from_sequence_str("2313")) < hi
        assert not lo <= ix.value(Element.from_sequence_str("3")) < hi

    def test_sampled_roundtrip_r16(self):
        ix = XZ2Index(max_resolution=16, bounds=UNIT)
        rng = random.Random(2)
        for _ in range(1000):
            v = rng.randrange(ix.total_elements)
            assert ix.value(ix.decode(v)) == v


class TestIndexingAndWindow:
    def test_place_matches_xzstar_element(self):
        """XZ2 and XZ* agree on the enlarged element (same Lemmas 1-2)."""
        from repro.index.xzstar import XZStarIndex

        xz2 = XZ2Index(max_resolution=10, bounds=UNIT)
        xzs = XZStarIndex(max_resolution=10, bounds=UNIT)
        rng = random.Random(3)
        for i in range(100):
            x, y = rng.random() * 0.8, rng.random() * 0.8
            pts = [
                (x + rng.uniform(0, 0.1), y + rng.uniform(0, 0.1))
                for _ in range(4)
            ]
            t = Trajectory(f"t{i}", pts)
            assert xz2.place(t) == xzs.place(t)[0]

    def test_window_ranges_cover_intersecting_elements(self):
        ix = XZ2Index(max_resolution=8, bounds=UNIT)
        rng = random.Random(4)
        window = MBR(0.4, 0.4, 0.5, 0.5)
        ranges = ix.window_ranges(window)
        covered = lambda v: any(r.contains(v) for r in ranges)
        for i in range(200):
            x, y = rng.random() * 0.9, rng.random() * 0.9
            pts = [
                (x + rng.uniform(0, 0.08), y + rng.uniform(0, 0.08))
                for _ in range(4)
            ]
            t = Trajectory(f"t{i}", pts)
            if t.mbr.intersects(window):
                # A trajectory intersecting the window lives in an
                # element whose enlarged element intersects it too.
                assert covered(ix.index(t).value), t.tid

    def test_window_ranges_smaller_for_smaller_window(self):
        ix = XZ2Index(max_resolution=8, bounds=UNIT)
        small = ix.window_ranges(MBR(0.4, 0.4, 0.41, 0.41))
        big = ix.window_ranges(MBR(0.1, 0.1, 0.9, 0.9))
        assert sum(len(r) for r in small) < sum(len(r) for r in big)

    def test_resolution_validation(self):
        with pytest.raises(IndexingError):
            XZ2Index(max_resolution=0)
