"""Crash-point recovery: a kill at any injected site on the durable
write path recovers exactly the acknowledged writes.

The harness drives a ``DurableKVTable`` with ``sync=True`` (a mutation
is *acknowledged* once its WAL record is fsynced and the call returns),
kills the process at a scheduled crash site via ``SimulatedCrash``,
then recovers from the on-disk state alone — no flush, no close, just
what a ``kill -9`` would have left behind.

Acknowledged-write semantics per site:

* ``wal.append.pre`` / ``wal.append.torn`` — the in-flight record never
  became durable (or only half of it did): recovery yields exactly the
  acked writes.
* ``wal.append.post`` and the memtable-flush sites — the in-flight
  record was fsynced before the death: recovery yields the acked writes
  plus that one in-flight mutation (legitimate WAL semantics: durable
  but unacknowledged).
* every checkpoint site — all writes were acked before ``checkpoint()``
  started: recovery must yield exactly the acked writes, whichever of
  the old/new snapshot + WAL combinations the crash left behind.
"""

import os

import pytest

from repro.kvstore import DurableKVTable, KVTable, ScanRange, load_table
from repro.kvstore.faults import (
    ALL_CRASH_SITES,
    CRASH_CHECKPOINT_MANIFEST_POST,
    CRASH_CHECKPOINT_MANIFEST_PRE,
    CRASH_CHECKPOINT_MANIFEST_TORN,
    CRASH_CHECKPOINT_REGION_PRE,
    CRASH_CHECKPOINT_REGION_TORN,
    CRASH_CHECKPOINT_WAL_TRUNCATE_PRE,
    CRASH_MEMTABLE_FLUSH_POST,
    CRASH_MEMTABLE_FLUSH_PRE,
    CRASH_WAL_APPEND_POST,
    CRASH_WAL_APPEND_PRE,
    CRASH_WAL_APPEND_TORN,
    FaultInjector,
    FaultSchedule,
    SimulatedCrash,
)

pytestmark = pytest.mark.chaos

WAL_SITES = (
    CRASH_WAL_APPEND_PRE,
    CRASH_WAL_APPEND_TORN,
    CRASH_WAL_APPEND_POST,
)
FLUSH_SITES = (CRASH_MEMTABLE_FLUSH_PRE, CRASH_MEMTABLE_FLUSH_POST)
CHECKPOINT_SITES = (
    CRASH_CHECKPOINT_REGION_PRE,
    CRASH_CHECKPOINT_REGION_TORN,
    CRASH_CHECKPOINT_MANIFEST_PRE,
    CRASH_CHECKPOINT_MANIFEST_TORN,
    CRASH_CHECKPOINT_MANIFEST_POST,
    CRASH_CHECKPOINT_WAL_TRUNCATE_PRE,
)


def make_ops(n=40):
    """A deterministic mixed workload: puts, overwrites, deletes."""
    ops = []
    for i in range(n):
        key = f"key{i % 25:03d}".encode()
        if i % 7 == 3:
            ops.append(("delete", key, b""))
        else:
            ops.append(("put", key, f"value{i}".encode()))
    return ops


def apply_op(state, op):
    kind, key, value = op
    if kind == "put":
        state[key] = value
    else:
        state.pop(key, None)


def table_state(table):
    return dict(table.scan_ranges([ScanRange(None, None)]))


def run_until_crash(durable, ops):
    """Apply ops until the scheduled crash fires.

    Returns ``(acked, inflight)``: the state built from mutations whose
    call returned, and the single mutation that was in flight when the
    process died (or None if the workload completed).
    """
    acked = {}
    for op in ops:
        try:
            if op[0] == "put":
                durable.put(op[1], op[2])
            else:
                durable.delete(op[1])
        except SimulatedCrash:
            return acked, op
        apply_op(acked, op)
    return acked, None


def test_every_crash_site_is_exercised():
    assert set(WAL_SITES + FLUSH_SITES + CHECKPOINT_SITES) == set(
        ALL_CRASH_SITES
    )


@pytest.mark.parametrize("hit", [1, 7, 23])
@pytest.mark.parametrize("site", WAL_SITES)
def test_wal_append_crash_recovers_acked_writes(tmp_path, site, hit):
    directory = str(tmp_path / "tbl")
    injector = FaultInjector(FaultSchedule(crash_sites={site: hit}))
    durable = DurableKVTable(
        KVTable(flush_threshold=8, max_region_rows=30),
        directory,
        sync=True,
        fault_injector=injector,
    )
    acked, inflight = run_until_crash(durable, make_ops())
    assert inflight is not None, "crash never fired"
    assert injector.crashes == [site]

    # kill -9: recover from disk alone, no flush/close on the victim.
    recovered = table_state(load_table(directory))
    if site == CRASH_WAL_APPEND_POST:
        # The in-flight record was fsynced before the death: durable
        # but unacknowledged, so recovery legitimately includes it.
        apply_op(acked, inflight)
    assert recovered == acked


@pytest.mark.parametrize("hit", [1, 3])
@pytest.mark.parametrize("site", FLUSH_SITES)
def test_memtable_flush_crash_recovers_from_wal(tmp_path, site, hit):
    directory = str(tmp_path / "tbl")
    injector = FaultInjector(FaultSchedule(crash_sites={site: hit}))
    table = KVTable(flush_threshold=5, max_region_rows=10_000)
    durable = DurableKVTable(
        table, directory, sync=True, fault_injector=injector
    )
    for region in table.regions:
        region.store.fault_injector = injector

    acked, inflight = run_until_crash(durable, make_ops())
    assert inflight is not None, "crash never fired"
    # The flush dies *after* the WAL append fsynced the in-flight
    # record: everything acked — plus that record — replays.
    apply_op(acked, inflight)
    assert table_state(load_table(directory)) == acked


@pytest.mark.parametrize("site", CHECKPOINT_SITES)
def test_checkpoint_crash_preserves_acked_writes(tmp_path, site):
    directory = str(tmp_path / "tbl")
    # Several regions so the checkpoint writes multiple region files.
    table = KVTable(flush_threshold=6, max_region_rows=12)
    durable = DurableKVTable(table, directory, sync=True)
    ops = make_ops(36)

    acked = {}
    for op in ops[:18]:
        if op[0] == "put":
            durable.put(op[1], op[2])
        else:
            durable.delete(op[1])
        apply_op(acked, op)
    durable.checkpoint()  # clean generation-1 snapshot
    for op in ops[18:]:
        if op[0] == "put":
            durable.put(op[1], op[2])
        else:
            durable.delete(op[1])
        apply_op(acked, op)

    injector = FaultInjector(FaultSchedule(crash_sites={site: 1}))
    durable.fault_injector = injector
    with pytest.raises(SimulatedCrash) as excinfo:
        durable.checkpoint()
    assert excinfo.value.site == site

    # Every write was acked before the checkpoint started, so whatever
    # snapshot/WAL combination the crash left must recover all of them.
    assert table_state(load_table(directory)) == acked


def test_recovered_store_resumes_and_checkpoints_cleanly(tmp_path):
    """Full round trip: crash mid-checkpoint, recover, keep writing,
    checkpoint again — and the next checkpoint sweeps the debris."""
    directory = str(tmp_path / "tbl")
    durable = DurableKVTable(
        KVTable(flush_threshold=6, max_region_rows=12),
        directory,
        sync=True,
    )
    expected = {}
    for op in make_ops(20):
        if op[0] == "put":
            durable.put(op[1], op[2])
        else:
            durable.delete(op[1])
        apply_op(expected, op)
    durable.checkpoint()

    durable.fault_injector = FaultInjector(
        FaultSchedule(crash_sites={CRASH_CHECKPOINT_REGION_TORN: 1})
    )
    durable.put(b"zz-post-snapshot", b"v")
    expected[b"zz-post-snapshot"] = b"v"
    with pytest.raises(SimulatedCrash):
        durable.checkpoint()
    # The aborted generation left a torn .sst behind.
    debris = [
        name
        for name in os.listdir(directory)
        if name.endswith(".sst") and name.startswith("region-00002-")
    ]
    assert debris

    # Restart: recover, mutate, checkpoint cleanly.
    recovered_table = load_table(directory)
    assert table_state(recovered_table) == expected
    with DurableKVTable(recovered_table, directory, sync=True) as survivor:
        survivor.put(b"zz-after-recovery", b"w")
        expected[b"zz-after-recovery"] = b"w"
        survivor.checkpoint()

    final = load_table(directory)
    assert table_state(final) == expected
    # The successful checkpoint swept every stale generation: only
    # files of the manifest's live generation remain.
    import json

    with open(os.path.join(directory, "MANIFEST.json")) as fh:
        manifest_gen = json.load(fh)["generation"]
    for name in os.listdir(directory):
        if name.endswith(".sst"):
            assert name.startswith(f"region-{manifest_gen:05d}-")


def test_crash_schedule_is_deterministic(tmp_path):
    """Same seed + workload + site => identical acked set and artefacts."""
    results = []
    for run in ("a", "b"):
        directory = str(tmp_path / run)
        injector = FaultInjector(
            FaultSchedule(crash_sites={CRASH_WAL_APPEND_TORN: 9})
        )
        durable = DurableKVTable(
            KVTable(flush_threshold=8, max_region_rows=30),
            directory,
            sync=True,
            fault_injector=injector,
        )
        acked, inflight = run_until_crash(durable, make_ops())
        results.append((acked, inflight, table_state(load_table(directory))))
    assert results[0] == results[1]
