"""Sorted bulk ingest equivalence and concurrent read safety."""

import random
import threading

import pytest

from repro import TraSS, TraSSConfig, Trajectory, SpaceBounds
from repro.measures import discrete_frechet

BOUNDS = SpaceBounds(0, 0, 1, 1)


def dataset(seed, n=120):
    rng = random.Random(seed)
    data = []
    for i in range(n):
        x, y = rng.random() * 0.9, rng.random() * 0.9
        pts = [(x, y)]
        for _ in range(rng.randint(2, 15)):
            x = min(0.99, max(0, x + rng.uniform(-0.01, 0.01)))
            y = min(0.99, max(0, y + rng.uniform(-0.01, 0.01)))
            pts.append((x, y))
        data.append(Trajectory(f"t{i}", pts))
    return data


class TestSortedIngest:
    def test_sorted_ingest_equivalent(self):
        data = dataset(101)
        cfg = TraSSConfig(bounds=BOUNDS, max_resolution=10, shards=3)
        plain = TraSS.build(data, cfg)
        sorted_engine = TraSS(cfg)
        sorted_engine.add_all(data, sorted_ingest=True)

        assert len(plain) == len(sorted_engine)
        assert plain.store.value_histogram == sorted_engine.store.value_histogram
        q = data[7]
        a = set(plain.threshold_search(q, 0.03).answers)
        b = set(sorted_engine.threshold_search(q, 0.03).answers)
        assert a == b

    def test_sorted_ingest_scan_order_identical(self):
        data = dataset(102, 60)
        cfg = TraSSConfig(bounds=BOUNDS, max_resolution=10, shards=2)
        plain = TraSS.build(data, cfg)
        sorted_engine = TraSS(cfg)
        sorted_engine.add_all(data, sorted_ingest=True)
        a = [k for k, _ in plain.store.table.full_scan()]
        b = [k for k, _ in sorted_engine.store.table.full_scan()]
        assert a == b


class TestConcurrentReads:
    def test_parallel_queries_are_correct(self):
        """Read-only queries from many threads must all be exact.

        The store is immutable during reads, so this checks there is no
        hidden shared mutable state in the query path (e.g. the pruner
        or filters leaking between queries).
        """
        data = dataset(103)
        cfg = TraSSConfig(bounds=BOUNDS, max_resolution=10, shards=2)
        engine = TraSS.build(data, cfg)
        eps = 0.04
        queries = data[:12]
        expected = {
            q.tid: {
                t.tid
                for t in data
                if discrete_frechet(q.points, t.points) <= eps
            }
            for q in queries
        }

        failures = []

        def worker(query):
            try:
                got = set(engine.threshold_search(query, eps).answers)
                if got != expected[query.tid]:
                    failures.append((query.tid, got))
            except Exception as exc:  # pragma: no cover - diagnostic
                failures.append((query.tid, repr(exc)))

        threads = [
            threading.Thread(target=worker, args=(q,)) for q in queries
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not failures, failures

    def test_parallel_topk(self):
        data = dataset(104, 80)
        cfg = TraSSConfig(bounds=BOUNDS, max_resolution=10, shards=2)
        engine = TraSS.build(data, cfg)
        results = {}

        def worker(idx):
            results[idx] = engine.topk_search(data[idx], 5).answers

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        for idx, answers in results.items():
            want = sorted(
                (discrete_frechet(data[idx].points, t.points), t.tid)
                for t in data
            )[:5]
            assert [round(d, 9) for d, _ in answers] == [
                round(d, 9) for d, _ in want
            ]
