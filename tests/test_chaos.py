"""Seeded chaos suite: end-to-end resilience of the query pipeline.

Pins the three acceptance properties of the fault-injection layer at
the engine level:

(a) transient faults are fully masked by retries — query answers equal
    the fault-free answers while the retry counters prove faults
    actually fired;
(b) in degraded mode a persistently failing store still answers, and
    the result reports the exact skipped key ranges and a completeness
    below 1.0;
(c) with no injector installed (or a no-op schedule) the pipeline is
    byte-identical to the fault-free run, I/O counters included.

Everything is seeded: same schedule, same workload, same faults.
"""

import pytest

from repro import TraSS, TraSSConfig
from repro.core.executor import RetryPolicy
from repro.data.generators import TDRIVE_BOUNDS, tdrive_like
from repro.kvstore.faults import FaultInjector, FaultSchedule

pytestmark = pytest.mark.chaos


def build_engine(trajectories=100, seed=21, **config_overrides):
    data = tdrive_like(trajectories, seed=seed)
    config = TraSSConfig(
        bounds=TDRIVE_BOUNDS,
        max_resolution=12,
        dp_tolerance=0.005,
        shards=4,
        **config_overrides,
    )
    return TraSS.build(data, config), data


def run_queries(engine, data, eps=0.02, k=5, n_queries=6):
    """Fixed query mix; returns comparable answer structures."""
    threshold = []
    topk = []
    for query in data[:n_queries]:
        threshold.append(set(engine.threshold_search(query, eps).answers))
        topk.append([tid for _, tid in engine.topk_search(query, k).answers])
    return threshold, topk


class TestFaultFreeParity:
    def test_noop_schedule_changes_nothing(self):
        engine, data = build_engine()
        baseline = run_queries(engine, data)
        engine.store.table.metrics.reset()
        run_queries(engine, data)
        clean_io = engine.store.table.metrics.snapshot()

        engine.install_fault_injector(FaultInjector(FaultSchedule(seed=5)))
        try:
            engine.store.table.metrics.reset()
            assert run_queries(engine, data) == baseline
            assert engine.store.table.metrics.snapshot() == clean_io
        finally:
            engine.install_fault_injector(None)

    def test_detached_injector_restores_clean_runs(self):
        engine, data = build_engine()
        baseline = run_queries(engine, data)
        engine.install_fault_injector(
            FaultInjector(
                FaultSchedule(seed=9, region_unavailable_prob=0.5)
            )
        )
        run_queries(engine, data)
        engine.install_fault_injector(None)
        engine.store.table.metrics.reset()
        assert run_queries(engine, data) == baseline
        assert engine.store.table.metrics.faults_injected == 0

    def test_detach_resets_open_circuit_breaker(self):
        """An open circuit earned under chaos must not survive into
        fault-free runs: detaching the injector starts a fresh epoch."""
        engine, data = build_engine(
            degraded_mode=True, retry_max_attempts=2
        )
        baseline = run_queries(engine, data, n_queries=3)
        engine.install_fault_injector(
            FaultInjector(
                FaultSchedule(
                    seed=2,
                    region_unavailable_prob=1.0,
                    max_consecutive_failures=10_000_000,
                )
            )
        )
        run_queries(engine, data, n_queries=3)
        assert engine.store.table.metrics.breaker_trips > 0
        assert engine.store.executor.breaker.any_open
        engine.install_fault_injector(None)
        assert not engine.store.executor.breaker.any_open
        assert run_queries(engine, data, n_queries=3) == baseline


class TestMasking:
    """Criterion (a): transient faults never change answers."""

    def test_outages_masked_by_retries(self):
        engine, data = build_engine(retry_max_attempts=6)
        baseline = run_queries(engine, data)

        injector = FaultInjector(
            FaultSchedule(
                seed=3,
                region_unavailable_prob=0.4,
                max_consecutive_failures=2,
            )
        )
        engine.install_fault_injector(injector)
        try:
            chaotic = run_queries(engine, data)
        finally:
            engine.install_fault_injector(None)

        assert chaotic == baseline
        assert injector.unavailable_injected > 0
        assert engine.store.table.metrics.retries > 0
        assert engine.store.table.metrics.ranges_skipped == 0

    def test_stragglers_and_disruptions_masked(self):
        engine, data = build_engine(retry_max_attempts=8)
        baseline = run_queries(engine, data)
        injector = FaultInjector(
            FaultSchedule(
                seed=17,
                region_unavailable_prob=0.2,
                max_consecutive_failures=1,
                slow_region_prob=0.3,
                slow_region_seconds=0.05,
                split_prob=0.01,
                compact_prob=0.01,
            )
        )
        engine.install_fault_injector(injector)
        try:
            chaotic = run_queries(engine, data)
        finally:
            engine.install_fault_injector(None)
        assert chaotic == baseline
        assert injector.latency_injected > 0
        assert injector.virtual_seconds > 0

    def test_completeness_reported_on_results(self):
        engine, data = build_engine()
        result = engine.threshold_search(data[0], 0.02)
        assert result.completeness == 1.0
        assert result.skipped_ranges == []
        topk = engine.topk_search(data[0], 5)
        assert topk.completeness == 1.0
        assert topk.skipped_ranges == []


class TestDegradedMode:
    """Criterion (b): exact skipped ranges + completeness < 1.0."""

    def _persistent_failure_injector(self):
        return FaultInjector(
            FaultSchedule(
                seed=2,
                region_unavailable_prob=1.0,
                max_consecutive_failures=10_000_000,
            )
        )

    def test_threshold_reports_skipped_ranges(self):
        engine, data = build_engine(
            degraded_mode=True, retry_max_attempts=2
        )
        engine.install_fault_injector(self._persistent_failure_injector())
        try:
            result = engine.threshold_search(data[0], 0.02)
        finally:
            engine.install_fault_injector(None)
        report = result.resilience
        assert report is not None
        assert result.completeness == 0.0
        assert report.ranges_completed == 0
        assert len(result.skipped_ranges) == report.ranges_total > 0
        # The skipped ranges are exactly the ranges the planner asked
        # for: re-plan the same query fault-free and compare.
        planned = engine.store.scan_ranges_for(
            engine.pruner.prune(data[0], 0.02).ranges
        )
        assert result.skipped_ranges == planned
        assert not result.answers

    def test_topk_degrades_with_accounting(self):
        engine, data = build_engine(
            degraded_mode=True, retry_max_attempts=2
        )
        engine.install_fault_injector(self._persistent_failure_injector())
        try:
            result = engine.topk_search(data[0], 5)
        finally:
            engine.install_fault_injector(None)
        assert result.completeness < 1.0
        assert result.skipped_ranges
        assert result.resilience.ranges_total == len(result.skipped_ranges)

    def test_degraded_answers_are_subset_of_true_answers(self):
        engine, data = build_engine(
            degraded_mode=True, retry_max_attempts=2
        )
        baseline = set(engine.threshold_search(data[1], 0.02).answers)
        engine.install_fault_injector(
            FaultInjector(
                FaultSchedule(
                    seed=29,
                    region_unavailable_prob=0.6,
                    max_consecutive_failures=10_000_000,
                )
            )
        )
        try:
            degraded = engine.threshold_search(data[1], 0.02)
        finally:
            engine.install_fault_injector(None)
        assert set(degraded.answers) <= baseline
        if degraded.skipped_ranges:
            assert degraded.completeness < 1.0


class TestDeterminism:
    def test_same_seed_same_faults_same_answers(self):
        runs = []
        for _ in range(2):
            engine, data = build_engine(retry_max_attempts=6)
            injector = FaultInjector(
                FaultSchedule(
                    seed=43,
                    region_unavailable_prob=0.3,
                    max_consecutive_failures=2,
                    slow_region_prob=0.2,
                )
            )
            engine.install_fault_injector(injector)
            answers = run_queries(engine, data)
            summary = injector.summary()
            metrics = engine.store.table.metrics.snapshot()
            runs.append((answers, summary, metrics))
        assert runs[0] == runs[1]

    def test_different_seed_different_schedule(self):
        summaries = []
        for seed in (1, 2):
            engine, data = build_engine(retry_max_attempts=6)
            injector = FaultInjector(
                FaultSchedule(
                    seed=seed,
                    region_unavailable_prob=0.3,
                    max_consecutive_failures=2,
                )
            )
            engine.install_fault_injector(injector)
            run_queries(engine, data, n_queries=3)
            summaries.append(injector.summary()["region_outages"])
        assert summaries[0] != summaries[1]


class TestDeadlineBudget:
    def test_virtual_stragglers_trip_the_deadline(self):
        engine, data = build_engine(
            degraded_mode=True,
            scan_deadline_seconds=0.2,
            retry_max_attempts=2,
        )
        engine.install_fault_injector(
            FaultInjector(
                FaultSchedule(
                    seed=8, slow_region_prob=1.0, slow_region_seconds=0.5
                )
            )
        )
        try:
            result = engine.threshold_search(data[0], 0.02)
        finally:
            engine.install_fault_injector(None)
        report = result.resilience
        assert report is not None
        assert report.deadline_exceeded
        assert result.completeness < 1.0
