"""Tests for compaction policies and amplification accounting."""

import random

import pytest

from repro.kvstore.compaction import (
    CompactingLSMStore,
    FullCompactionPolicy,
    SizeTieredPolicy,
)
from repro.kvstore.lsm import LSMStore
from repro.kvstore.sstable import SSTable


def run_of(n, prefix="k", width=4):
    return SSTable.from_entries(
        (f"{prefix}{i:0{width}d}".encode(), b"v") for i in range(n)
    )


class TestPolicies:
    def test_full_policy_trigger(self):
        policy = FullCompactionPolicy(trigger=3)
        assert policy.select([run_of(5)] * 2) == []
        assert policy.select([run_of(5)] * 3) == [0, 1, 2]

    def test_size_tiered_merges_similar_sizes(self):
        policy = SizeTieredPolicy(min_merge=3, ratio=2.0)
        runs = [run_of(10), run_of(11), run_of(12), run_of(1000, width=6)]
        chosen = policy.select(runs)
        assert sorted(chosen) == [0, 1, 2]  # the big run is left alone

    def test_size_tiered_no_merge_when_dissimilar(self):
        policy = SizeTieredPolicy(min_merge=3, ratio=1.5)
        runs = [run_of(10), run_of(100, width=5), run_of(1000, width=6)]
        assert policy.select(runs) == []


class TestCompactingStore:
    def _fill(self, store, n=400, seed=1):
        rng = random.Random(seed)
        model = {}
        for _ in range(n):
            key = f"key{rng.randrange(120):04d}".encode()
            value = str(rng.random()).encode()
            store.put(key, value)
            model[key] = value
        return model

    def test_reads_correct_under_size_tiering(self):
        store = CompactingLSMStore(
            flush_threshold=512, policy=SizeTieredPolicy(min_merge=3)
        )
        model = self._fill(store)
        assert dict(store.scan()) == model
        for key, value in model.items():
            assert store.get(key) == value
        assert store.compaction_count > 0

    def test_deletes_respected_in_partial_merges(self):
        store = CompactingLSMStore(
            flush_threshold=10**9, policy=SizeTieredPolicy(min_merge=2)
        )
        store.put(b"a", b"1")
        store.put(b"b", b"2")
        store.flush()
        store.delete(b"a")
        store.flush()  # may trigger a partial merge; tombstone must win
        assert store.get(b"a") is None
        assert dict(store.scan()) == {b"b": b"2"}

    def test_amplification_counters(self):
        store = CompactingLSMStore(
            flush_threshold=256, policy=SizeTieredPolicy(min_merge=3)
        )
        self._fill(store, 300)
        assert store.bytes_ingested > 0
        assert store.bytes_written > 0
        assert store.write_amplification >= 1.0 or store.flush_count == 0
        assert store.read_amplification >= 1

    def test_size_tiering_writes_less_than_full(self):
        """Size tiering's point: fewer rewrite bytes than always-full
        compaction under the same workload."""

        def workload(store):
            rng = random.Random(3)
            for _ in range(800):
                store.put(
                    f"key{rng.randrange(500):04d}".encode(),
                    (str(rng.random()) * 2).encode(),
                )
            return store

        tiered = workload(
            CompactingLSMStore(
                flush_threshold=512, policy=SizeTieredPolicy(min_merge=4)
            )
        )
        full = workload(
            CompactingLSMStore(
                flush_threshold=512, policy=FullCompactionPolicy(trigger=2)
            )
        )
        assert dict(tiered.scan()) == dict(full.scan())
        assert tiered.bytes_written < full.bytes_written
        # The flip side: tiering leaves more runs for reads to consult.
        assert tiered.read_amplification >= full.read_amplification

    def test_model_comparison_random_ops(self):
        rng = random.Random(5)
        store = CompactingLSMStore(
            flush_threshold=128, policy=SizeTieredPolicy(min_merge=3)
        )
        model = {}
        for _ in range(1500):
            op = rng.random()
            key = f"k{rng.randrange(40):02d}".encode()
            if op < 0.7:
                value = str(rng.randrange(10**6)).encode()
                store.put(key, value)
                model[key] = value
            else:
                store.delete(key)
                model.pop(key, None)
        assert dict(store.scan()) == model
