"""Randomised end-to-end stress tests.

Heavier-weight checks run last: many random engines with random
configurations must all agree with brute force; a mixed-workload store
with flushes, compactions, deletions-by-overwrite and persistence must
stay consistent throughout.
"""

import random

import pytest

from repro import TraSS, TraSSConfig, Trajectory, SpaceBounds
from repro.measures import get_measure


def random_dataset(rng, n, cluster_fraction=0.4):
    data = []
    for i in range(n):
        if rng.random() < cluster_fraction:
            cx = 0.2 + 0.6 * (i % 3) / 3
            x, y = cx + rng.uniform(-0.02, 0.02), 0.5 + rng.uniform(-0.02, 0.02)
        else:
            x, y = rng.random() * 0.9, rng.random() * 0.9
        pts = [(x, y)]
        for _ in range(rng.randint(1, 25)):
            x = min(0.999, max(0.0, x + rng.uniform(-0.008, 0.008)))
            y = min(0.999, max(0.0, y + rng.uniform(-0.008, 0.008)))
            pts.append((x, y))
        data.append(Trajectory(f"t{i}", pts))
    return data


class TestRandomisedEngines:
    @pytest.mark.parametrize("trial", range(5))
    def test_random_config_threshold_exact(self, trial):
        rng = random.Random(1000 + trial)
        data = random_dataset(rng, rng.randint(40, 150))
        cfg = TraSSConfig(
            bounds=SpaceBounds(0, 0, 1, 1),
            max_resolution=rng.choice([6, 9, 12, 16]),
            dp_tolerance=rng.choice([0.001, 0.01, 0.05]),
            shards=rng.choice([1, 3, 8]),
            max_region_rows=rng.choice([25, 1000]),
        )
        engine = TraSS.build(data, cfg)
        measure = get_measure(rng.choice(["frechet", "hausdorff", "dtw"]))
        for _ in range(3):
            q = data[rng.randrange(len(data))]
            eps = rng.choice([0.005, 0.02, 0.08])
            got = set(
                engine.threshold_search(q, eps, measure=measure.name).answers
            )
            want = {
                t.tid
                for t in data
                if measure.distance(q.points, t.points) <= eps
            }
            assert got == want, (trial, cfg.max_resolution, measure.name)

    @pytest.mark.parametrize("trial", range(3))
    def test_random_config_topk_exact(self, trial):
        rng = random.Random(2000 + trial)
        data = random_dataset(rng, rng.randint(40, 120))
        cfg = TraSSConfig(
            bounds=SpaceBounds(0, 0, 1, 1),
            max_resolution=rng.choice([8, 12]),
            dp_tolerance=0.01,
            shards=rng.choice([1, 4]),
        )
        engine = TraSS.build(data, cfg)
        measure = get_measure("frechet")
        q = data[rng.randrange(len(data))]
        k = rng.choice([1, 7, 20])
        got = engine.topk_search(q, k)
        want = sorted(
            (measure.distance(q.points, t.points), t.tid) for t in data
        )[:k]
        assert [round(d, 9) for d, _ in got.answers] == [
            round(d, 9) for d, _ in want
        ]


class TestMixedWorkloadLifecycle:
    def test_ingest_query_persist_requery(self, tmp_path):
        """A full lifecycle: incremental ingest with maintenance events
        interleaved, then persistence, then identical answers."""
        rng = random.Random(3000)
        cfg = TraSSConfig(
            bounds=SpaceBounds(0, 0, 1, 1),
            max_resolution=10,
            shards=2,
            max_region_rows=30,
        )
        engine = TraSS(cfg)
        all_data = []
        for batch in range(4):
            batch_data = [
                Trajectory(f"b{batch}_{t.tid}", t.points)
                for t in random_dataset(rng, 40)
            ]
            engine.add_all(batch_data, sorted_ingest=(batch % 2 == 0))
            all_data.extend(batch_data)
            if batch % 2 == 1:
                engine.store.table.flush_all()
            if batch == 2:
                engine.store.table.compact_all()
        assert len(engine) == 160

        measure = get_measure("frechet")
        q = all_data[37]
        eps = 0.03
        want = {
            t.tid
            for t in all_data
            if measure.distance(q.points, t.points) <= eps
        }
        assert set(engine.threshold_search(q, eps).answers) == want

        engine.save(str(tmp_path / "store"))
        restored = TraSS.load(str(tmp_path / "store"))
        assert set(restored.threshold_search(q, eps).answers) == want
        assert restored.store.table.num_regions == engine.store.table.num_regions

    def test_many_regions_many_shards(self):
        """Splits + salting together must preserve global correctness."""
        rng = random.Random(4000)
        data = random_dataset(rng, 300)
        cfg = TraSSConfig(
            bounds=SpaceBounds(0, 0, 1, 1),
            max_resolution=12,
            shards=16,
            max_region_rows=20,
        )
        engine = TraSS.build(data, cfg)
        assert engine.store.table.num_regions >= 8
        measure = get_measure("frechet")
        for qi in (0, 150, 299):
            q = data[qi]
            got = set(engine.threshold_search(q, 0.02).answers)
            want = {
                t.tid
                for t in data
                if measure.distance(q.points, t.points) <= 0.02
            }
            assert got == want
