"""Unit tests for the XZ* index and its encoding (Section IV, Lemmas 3-4)."""

import random

import pytest

from repro.exceptions import EncodingError, IndexingError
from repro.geometry.mbr import MBR
from repro.geometry.trajectory import Trajectory
from repro.index.bounds import SpaceBounds
from repro.index.quadrant import ROOT, Element
from repro.index.xzstar import XZStarIndex

UNIT = SpaceBounds(0, 0, 1, 1)


class TestCounting:
    def test_lemma3_quadrant_sequences(self):
        ix = XZStarIndex(max_resolution=8, bounds=UNIT)
        # 4^(i-l) sequences at resolution i share an l-prefix.
        assert ix.n_quadrant_sequences(8, 8) == 1
        assert ix.n_quadrant_sequences(8, 6) == 16
        assert ix.n_quadrant_sequences(3, 0) == 64

    def test_lemma4_closed_form(self):
        ix = XZStarIndex(max_resolution=5, bounds=UNIT)
        for level in range(1, 6):
            assert ix.n_index_spaces(level) == 13 * 4 ** (5 - level) - 3

    def test_lemma4_recurrence(self):
        """N_is(l) = 9 + 4 * N_is(l+1) below the max; N_is(r) = 10."""
        ix = XZStarIndex(max_resolution=6, bounds=UNIT)
        assert ix.n_index_spaces(6) == 10
        for level in range(1, 6):
            assert ix.n_index_spaces(level) == 9 + 4 * ix.n_index_spaces(level + 1)

    def test_total(self):
        ix = XZStarIndex(max_resolution=3, bounds=UNIT)
        # Main block 13*4^3 - 12 plus the 9-code root tail block.
        assert ix.root_block_start == 13 * 64 - 12
        assert ix.total_index_spaces == 13 * 64 - 12 + 9

    def test_resolution_bounds(self):
        with pytest.raises(IndexingError):
            XZStarIndex(max_resolution=0)
        with pytest.raises(IndexingError):
            XZStarIndex(max_resolution=29)


class TestEncoding:
    def test_paper_worked_example(self):
        """Figure 3 / Definition 5: V('03', 2) = 40 and V('03', 7) = 45
        at maximum resolution 2."""
        ix = XZStarIndex(max_resolution=2, bounds=UNIT)
        e = Element.from_sequence_str("03")
        assert ix.value(e, 2) == 40
        assert ix.value(e, 7) == 45

    def test_figure4_block_layout(self):
        """Figure 4(a): '0' owns 0..8 and '00' owns 9..18 at r = 2."""
        ix = XZStarIndex(max_resolution=2, bounds=UNIT)
        assert ix.value(Element.from_sequence_str("0"), 1) == 0
        assert ix.value(Element.from_sequence_str("0"), 9) == 8
        assert ix.value(Element.from_sequence_str("00"), 1) == 9
        assert ix.value(Element.from_sequence_str("00"), 10) == 18

    def test_bijection_exhaustive_r2(self):
        ix = XZStarIndex(max_resolution=2, bounds=UNIT)
        seen = set()
        for v in range(ix.total_index_spaces):
            element, code = ix.decode(v)
            assert ix.value(element, code) == v
            seen.add((element, code))
        assert len(seen) == ix.total_index_spaces

    def test_bijection_exhaustive_r3(self):
        ix = XZStarIndex(max_resolution=3, bounds=UNIT)
        for v in range(ix.total_index_spaces):
            element, code = ix.decode(v)
            assert ix.value(element, code) == v

    def test_bijection_sampled_r16(self):
        ix = XZStarIndex(max_resolution=16, bounds=UNIT)
        rng = random.Random(5)
        for _ in range(2000):
            v = rng.randrange(ix.total_index_spaces)
            element, code = ix.decode(v)
            assert ix.value(element, code) == v

    def test_depth_first_prefix_locality(self):
        """Longer shared prefixes produce closer values (Section IV-C
        'the longer the same prefix of two quadrant sequences, the
        closer their converted numbers are')."""
        ix = XZStarIndex(max_resolution=4, bounds=UNIT)
        near = abs(
            ix.value(Element.from_sequence_str("0000"), 1)
            - ix.value(Element.from_sequence_str("0001"), 1)
        )
        far = abs(
            ix.value(Element.from_sequence_str("0000"), 1)
            - ix.value(Element.from_sequence_str("3000"), 1)
        )
        assert near < far

    def test_lexicographic_order_preserved(self):
        """(s, p) lexicographic order equals numeric value order."""
        ix = XZStarIndex(max_resolution=3, bounds=UNIT)
        items = []
        for v in range(ix.root_block_start):
            element, code = ix.decode(v)
            items.append((element.sequence, code, v))
        # Depth-first order: prefix sorts before extensions; compare by
        # (sequence, code) where a prefix precedes its children.
        for (s1, p1, v1), (s2, p2, v2) in zip(items, items[1:]):
            assert v2 == v1 + 1
            assert (s1, p1) != (s2, p2)

    def test_subtree_span_contains_descendants(self):
        ix = XZStarIndex(max_resolution=4, bounds=UNIT)
        e = Element.from_sequence_str("21")
        lo, hi = ix.subtree_span(e)
        assert hi - lo == ix.n_index_spaces(2)
        # Own codes and deep descendant codes inside the span.
        assert lo <= ix.value(e, 1) < hi
        assert lo <= ix.value(Element.from_sequence_str("2133"), 10) < hi
        # A sibling's codes outside.
        assert not lo <= ix.value(Element.from_sequence_str("22"), 1) < hi

    def test_root_tail_block(self):
        ix = XZStarIndex(max_resolution=2, bounds=UNIT)
        v = ix.value(ROOT, 1)
        assert v == ix.root_block_start
        assert ix.decode(v) == (ROOT, 1)
        assert ix.decode(ix.value(ROOT, 9)) == (ROOT, 9)

    def test_code_validation(self):
        ix = XZStarIndex(max_resolution=2, bounds=UNIT)
        with pytest.raises(EncodingError):
            ix.value(Element.from_sequence_str("0"), 10)  # below max res
        with pytest.raises(EncodingError):
            ix.value(Element.from_sequence_str("00"), 11)
        with pytest.raises(EncodingError):
            ix.value(ROOT, 10)

    def test_decode_out_of_range(self):
        ix = XZStarIndex(max_resolution=2, bounds=UNIT)
        with pytest.raises(EncodingError):
            ix.decode(-1)
        with pytest.raises(EncodingError):
            ix.decode(ix.total_index_spaces)

    def test_value_fits_in_64_bits_at_r28(self):
        ix = XZStarIndex(max_resolution=28, bounds=UNIT)
        assert ix.total_index_spaces < 2**63


class TestIndexing:
    def test_place_and_value(self):
        ix = XZStarIndex(max_resolution=2, bounds=UNIT)
        # T1 of Figure 3: spans quads a and c of element '03'.
        t = Trajectory("T1", [(0.27, 0.3), (0.6, 0.35)])
        element, code = ix.place(t)
        assert element.sequence_str == "03"
        assert code == 2
        assert ix.index(t).value == 40

    def test_stationary_trajectory_at_max_resolution(self):
        ix = XZStarIndex(max_resolution=16, bounds=UNIT)
        t = Trajectory("s", [(0.5, 0.5)] * 4)
        placed = ix.index(t)
        assert placed.element.level == 16
        assert placed.position_code == 10

    def test_world_bounds_normalisation(self):
        ix = XZStarIndex(max_resolution=8)  # whole earth
        t = Trajectory("bj", [(116.3, 39.9), (116.5, 40.0)])
        placed = ix.index(t)
        world = ix.element_world_mbr(placed.element)
        assert world.contains(t.mbr)

    def test_same_trajectory_same_value(self):
        ix = XZStarIndex(max_resolution=12, bounds=UNIT)
        t = Trajectory("a", [(0.1, 0.1), (0.15, 0.12)])
        assert ix.index(t).value == ix.index(t).value


class TestRangeQuery:
    def test_ranges_cover_matching_trajectories(self):
        ix = XZStarIndex(max_resolution=8, bounds=UNIT)
        rng = random.Random(9)
        trajectories = []
        for i in range(150):
            x, y = rng.random() * 0.9, rng.random() * 0.9
            pts = [
                (
                    min(1.0, x + rng.uniform(0, 0.05)),
                    min(1.0, y + rng.uniform(0, 0.05)),
                )
                for _ in range(5)
            ]
            trajectories.append(Trajectory(f"t{i}", pts))
        window = MBR(0.3, 0.3, 0.6, 0.6)
        ranges = ix.range_query_ranges(window)
        covered = lambda v: any(r.contains(v) for r in ranges)
        for t in trajectories:
            if any(window.contains_point(x, y) for x, y in t.points):
                assert covered(ix.index(t).value), t.tid

    def test_window_outside_space(self):
        ix = XZStarIndex(max_resolution=6, bounds=UNIT)
        # Window clamps to the boundary: still valid, small result.
        ranges = ix.range_query_ranges(MBR(0.99, 0.99, 1.0, 1.0))
        assert isinstance(ranges, list)
