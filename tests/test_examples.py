"""Smoke tests: every shipped example must run to completion.

Each example ends with internal assertions about its own results, so
"runs without raising" is a real functional check, not just an import
check.
"""

import pathlib
import runpy

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(path, capsys):
    runpy.run_path(str(path), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{path.stem} produced no output"


def test_all_examples_discovered():
    names = {p.stem for p in EXAMPLES}
    assert {
        "quickstart",
        "contact_tracing",
        "carpool_clustering",
        "range_query",
        "dedup_join",
        "custom_experiment",
    } <= names
