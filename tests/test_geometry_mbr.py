"""Unit tests for repro.geometry.mbr."""

import math

import pytest

from repro.exceptions import GeometryError
from repro.geometry.mbr import MBR
from repro.geometry.point import Point


class TestConstruction:
    def test_valid(self):
        box = MBR(0, 0, 2, 3)
        assert box.width == 2
        assert box.height == 3
        assert box.area == 6

    def test_degenerate_point_mbr_is_legal(self):
        box = MBR(1, 1, 1, 1)
        assert box.width == 0
        assert box.area == 0

    def test_inverted_raises(self):
        with pytest.raises(GeometryError):
            MBR(2, 0, 1, 1)
        with pytest.raises(GeometryError):
            MBR(0, 2, 1, 1)

    def test_of_points(self):
        box = MBR.of_points([(1, 5), (3, 2), (2, 4)])
        assert box == MBR(1, 2, 3, 5)

    def test_of_points_empty_raises(self):
        with pytest.raises(GeometryError):
            MBR.of_points([])

    def test_union_all(self):
        box = MBR.union_all([MBR(0, 0, 1, 1), MBR(2, 2, 3, 3)])
        assert box == MBR(0, 0, 3, 3)

    def test_union_all_empty_raises(self):
        with pytest.raises(GeometryError):
            MBR.union_all([])


class TestGeometry:
    def test_center(self):
        assert MBR(0, 0, 2, 4).center == Point(1, 2)

    def test_corners_order(self):
        ll, lr, ur, ul = MBR(0, 0, 1, 2).corners()
        assert ll == Point(0, 0)
        assert lr == Point(1, 0)
        assert ur == Point(1, 2)
        assert ul == Point(0, 2)

    def test_edges_cover_perimeter(self):
        box = MBR(0, 0, 2, 2)
        edges = box.edges()
        assert len(edges) == 4
        total = sum(a.distance(b) for a, b in edges)
        assert total == pytest.approx(8.0)


class TestPredicates:
    def test_contains_point_boundary_inclusive(self):
        box = MBR(0, 0, 1, 1)
        assert box.contains_point(0, 0)
        assert box.contains_point(1, 1)
        assert box.contains_point(0.5, 0.5)
        assert not box.contains_point(1.0001, 0.5)

    def test_contains_rect(self):
        assert MBR(0, 0, 4, 4).contains(MBR(1, 1, 2, 2))
        assert MBR(0, 0, 4, 4).contains(MBR(0, 0, 4, 4))
        assert not MBR(0, 0, 4, 4).contains(MBR(3, 3, 5, 5))

    def test_intersects(self):
        assert MBR(0, 0, 2, 2).intersects(MBR(1, 1, 3, 3))
        assert MBR(0, 0, 2, 2).intersects(MBR(2, 2, 3, 3))  # touching
        assert not MBR(0, 0, 1, 1).intersects(MBR(2, 2, 3, 3))

    def test_intersects_symmetric(self):
        a, b = MBR(0, 0, 2, 2), MBR(1.5, -1, 5, 0.5)
        assert a.intersects(b) == b.intersects(a) is True


class TestDerived:
    def test_expanded(self):
        assert MBR(1, 1, 2, 2).expanded(0.5) == MBR(0.5, 0.5, 2.5, 2.5)

    def test_expanded_zero_is_identity(self):
        box = MBR(1, 2, 3, 4)
        assert box.expanded(0.0) == box

    def test_expanded_negative_raises(self):
        with pytest.raises(GeometryError):
            MBR(0, 0, 1, 1).expanded(-0.1)

    def test_intersection(self):
        got = MBR(0, 0, 2, 2).intersection(MBR(1, 1, 3, 3))
        assert got == MBR(1, 1, 2, 2)

    def test_intersection_disjoint_raises(self):
        with pytest.raises(GeometryError):
            MBR(0, 0, 1, 1).intersection(MBR(2, 2, 3, 3))

    def test_union(self):
        assert MBR(0, 0, 1, 1).union(MBR(2, 2, 3, 3)) == MBR(0, 0, 3, 3)


class TestDistances:
    def test_distance_to_point_inside_is_zero(self):
        assert MBR(0, 0, 2, 2).distance_to_point(1, 1) == 0.0

    def test_distance_to_point_axis(self):
        assert MBR(0, 0, 1, 1).distance_to_point(3, 0.5) == pytest.approx(2.0)

    def test_distance_to_point_corner(self):
        assert MBR(0, 0, 1, 1).distance_to_point(4, 5) == pytest.approx(5.0)

    def test_distance_to_rect_overlap_is_zero(self):
        assert MBR(0, 0, 2, 2).distance_to_rect(MBR(1, 1, 3, 3)) == 0.0

    def test_distance_to_rect_diagonal(self):
        d = MBR(0, 0, 1, 1).distance_to_rect(MBR(4, 5, 6, 7))
        assert d == pytest.approx(5.0)

    def test_max_distance_to_point(self):
        d = MBR(0, 0, 1, 1).max_distance_to_point(0, 0)
        assert d == pytest.approx(math.sqrt(2))
