"""Shared fixtures: small deterministic datasets and engines."""

from __future__ import annotations

import random

import pytest

from repro import TraSS, TraSSConfig, Trajectory, SpaceBounds
from repro.data.generators import tdrive_like


BEIJING = SpaceBounds(116.0, 39.5, 117.0, 40.5)


def make_walk(tid: str, rng: random.Random, n_range=(5, 40)) -> Trajectory:
    """A bounded random walk inside the Beijing test box."""
    x = rng.uniform(116.1, 116.9)
    y = rng.uniform(39.6, 40.4)
    points = [(x, y)]
    for _ in range(rng.randint(*n_range)):
        x += rng.uniform(-0.005, 0.005)
        y += rng.uniform(-0.005, 0.005)
        points.append((x, y))
    return Trajectory(tid, points)


@pytest.fixture(scope="session")
def small_dataset():
    """200 random walks, session-scoped for reuse."""
    rng = random.Random(42)
    return [make_walk(f"t{i}", rng) for i in range(200)]


@pytest.fixture(scope="session")
def small_config():
    return TraSSConfig(
        bounds=BEIJING, max_resolution=12, dp_tolerance=0.002, shards=4
    )


@pytest.fixture(scope="session")
def small_engine(small_dataset, small_config):
    """A TraSS engine loaded with the small dataset (read-only use)."""
    return TraSS.build(small_dataset, small_config)


@pytest.fixture(scope="session")
def tdrive_small():
    """A small T-Drive-like dataset with stationary taxis included."""
    return tdrive_like(150, seed=7)
