"""Line segments and an oriented bounding box used by DP features.

The paper's local filtering covers the raw points between two
consecutive Douglas-Peucker representative points with a bounding box
that "is not necessarily parallel to the coordinate axis"
(Section IV-D).  :class:`OrientedBox` implements that: a rectangle
aligned with the chord between the two representative points.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.exceptions import GeometryError
from repro.geometry.mbr import MBR
from repro.geometry.point import Point


@dataclass(frozen=True)
class Segment:
    """A directed line segment from ``start`` to ``end``."""

    start: Point
    end: Point

    @property
    def length(self) -> float:
        return self.start.distance(self.end)

    def mbr(self) -> MBR:
        return MBR.of_points([self.start, self.end])

    def distance_to_point(self, p: Point) -> float:
        """Minimum distance from ``p`` to the segment."""
        from repro.geometry.distance import point_segment_distance

        return point_segment_distance(p, self.start, self.end)


@dataclass(frozen=True)
class OrientedBox:
    """A rectangle aligned with a chord, covering a run of points.

    The box is described by the chord (``anchor`` -> ``anchor + axis``)
    plus signed perpendicular extents and signed extensions along the
    chord.  Distances are computed in the box's local frame, which keeps
    the pruning lemmas (Lemmas 13-14) exact for rotated boxes.
    """

    anchor: Point
    axis: Tuple[float, float]  # unit vector along the chord
    length: float  # extent along the axis from the anchor
    lo_along: float  # signed extension behind the anchor (<= 0)
    lo_perp: float  # signed extent below the chord (<= 0)
    hi_perp: float  # signed extent above the chord (>= 0)

    @staticmethod
    def cover(points: Sequence[Tuple[float, float]]) -> "OrientedBox":
        """Smallest chord-aligned box covering ``points``.

        The chord is the line from the first to the last point; when the
        two coincide the box degenerates gracefully to an axis-aligned
        frame anchored at that point.
        """
        if not points:
            raise GeometryError("cannot cover zero points")
        first = Point(*points[0])
        last = Point(*points[-1])
        vx, vy = last.x - first.x, last.y - first.y
        norm = math.hypot(vx, vy)
        if norm == 0.0:
            ux, uy = 1.0, 0.0
            chord = 0.0
        else:
            ux, uy = vx / norm, vy / norm
            chord = norm
        lo_a = hi_a = lo_p = hi_p = 0.0
        for px, py in points:
            rx, ry = px - first.x, py - first.y
            along = rx * ux + ry * uy
            perp = -rx * uy + ry * ux
            lo_a = min(lo_a, along)
            hi_a = max(hi_a, along)
            lo_p = min(lo_p, perp)
            hi_p = max(hi_p, perp)
        hi_a = max(hi_a, chord)
        return OrientedBox(first, (ux, uy), hi_a, lo_a, lo_p, hi_p)

    # ------------------------------------------------------------------
    def _local(self, x: float, y: float) -> Tuple[float, float]:
        """Coordinates of ``(x, y)`` in the box frame (along, perp)."""
        ux, uy = self.axis
        rx, ry = x - self.anchor.x, y - self.anchor.y
        return rx * ux + ry * uy, -rx * uy + ry * ux

    def distance_to_point(self, x: float, y: float) -> float:
        """Minimum distance from ``(x, y)`` to the box (0 if inside)."""
        along, perp = self._local(x, y)
        da = max(self.lo_along - along, 0.0, along - self.length)
        dp = max(self.lo_perp - perp, 0.0, perp - self.hi_perp)
        return math.hypot(da, dp)

    def contains_point(self, x: float, y: float, tol: float = 1e-12) -> bool:
        along, perp = self._local(x, y)
        return (
            self.lo_along - tol <= along <= self.length + tol
            and self.lo_perp - tol <= perp <= self.hi_perp + tol
        )

    def corners(self) -> List[Point]:
        """The four corners of the box in world coordinates."""
        ux, uy = self.axis
        out = []
        for along, perp in (
            (self.lo_along, self.lo_perp),
            (self.length, self.lo_perp),
            (self.length, self.hi_perp),
            (self.lo_along, self.hi_perp),
        ):
            out.append(
                Point(
                    self.anchor.x + along * ux - perp * uy,
                    self.anchor.y + along * uy + perp * ux,
                )
            )
        return out

    def mbr(self) -> MBR:
        """Axis-aligned envelope of the oriented box."""
        return MBR.of_points(self.corners())

    def edges(self) -> List[Tuple[Point, Point]]:
        """The four edges of the box as point pairs."""
        cs = self.corners()
        return [(cs[i], cs[(i + 1) % 4]) for i in range(4)]

    def distance_to_segment(self, a: Point, b: Point) -> float:
        """Exact minimum distance from segment ``a-b`` to the box.

        Zero when the segment touches or crosses the box; otherwise the
        minimum over the four box edges of the segment-segment distance.
        This exactness matters: Lemma 14 prunes whenever the bound
        exceeds ``eps``, so an over-estimate would drop true answers.
        """
        from repro.geometry.distance import segment_distance

        if self.contains_point(a.x, a.y) or self.contains_point(b.x, b.y):
            return 0.0
        return min(segment_distance(a, b, e0, e1) for e0, e1 in self.edges())
