"""Convex hulls and minimum-area oriented bounding rectangles.

The paper covers each Douglas-Peucker run with a chord-aligned box;
the classical alternative is the *minimum-area* oriented rectangle,
computed with rotating calipers over the convex hull.  Both satisfy
the Lemma 14 tightness contract (every side of a minimum-area
rectangle touches the hull, hence a raw point), so either can back
the local filter; the minimum-area variant is never looser.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

from repro.exceptions import GeometryError

PointTuple = Tuple[float, float]


def _cross(o: PointTuple, a: PointTuple, b: PointTuple) -> float:
    return (a[0] - o[0]) * (b[1] - o[1]) - (a[1] - o[1]) * (b[0] - o[0])


def convex_hull(points: Sequence[PointTuple]) -> List[PointTuple]:
    """Convex hull in counter-clockwise order (Andrew monotone chain).

    Collinear points on the boundary are dropped.  Degenerate inputs
    return what they can: one point for a single-point set, two for a
    collinear set's extremes.
    """
    if not points:
        raise GeometryError("convex hull of zero points")
    unique = sorted(set((float(x), float(y)) for x, y in points))
    if len(unique) <= 2:
        return unique
    lower: List[PointTuple] = []
    for p in unique:
        while len(lower) >= 2 and _cross(lower[-2], lower[-1], p) <= 0:
            lower.pop()
        lower.append(p)
    upper: List[PointTuple] = []
    for p in reversed(unique):
        while len(upper) >= 2 and _cross(upper[-2], upper[-1], p) <= 0:
            upper.pop()
        upper.append(p)
    hull = lower[:-1] + upper[:-1]
    if len(hull) < 2:  # all points collinear
        return [unique[0], unique[-1]]
    return hull


def min_area_rect(
    points: Sequence[PointTuple],
) -> Tuple[PointTuple, Tuple[float, float], float, float]:
    """Minimum-area oriented rectangle covering ``points``.

    Returns ``(anchor, axis_unit_vector, length, width)``: the rectangle
    spans ``anchor + s*axis + t*perp`` for ``s in [0, length]``,
    ``t in [0, width]`` where ``perp`` is ``axis`` rotated +90 degrees.

    Rotating calipers over the hull: the optimal rectangle has one side
    collinear with a hull edge, so trying every hull edge's direction is
    exhaustive.
    """
    hull = convex_hull(points)
    if len(hull) == 1:
        return hull[0], (1.0, 0.0), 0.0, 0.0
    if len(hull) == 2:
        (x1, y1), (x2, y2) = hull
        dx, dy = x2 - x1, y2 - y1
        norm = math.hypot(dx, dy)
        return (x1, y1), (dx / norm, dy / norm), norm, 0.0

    best_area = math.inf
    best = None
    for i in range(len(hull)):
        x1, y1 = hull[i]
        x2, y2 = hull[(i + 1) % len(hull)]
        dx, dy = x2 - x1, y2 - y1
        norm = math.hypot(dx, dy)
        if norm == 0:
            continue
        ux, uy = dx / norm, dy / norm
        lo_s = hi_s = lo_t = hi_t = 0.0
        first = True
        for px, py in hull:
            rx, ry = px - x1, py - y1
            s = rx * ux + ry * uy
            t = -rx * uy + ry * ux
            if first:
                lo_s = hi_s = s
                lo_t = hi_t = t
                first = False
            else:
                lo_s = min(lo_s, s)
                hi_s = max(hi_s, s)
                lo_t = min(lo_t, t)
                hi_t = max(hi_t, t)
        area = (hi_s - lo_s) * (hi_t - lo_t)
        if area < best_area:
            anchor = (
                x1 + lo_s * ux - lo_t * uy,
                y1 + lo_s * uy + lo_t * ux,
            )
            best_area = area
            best = (anchor, (ux, uy), hi_s - lo_s, hi_t - lo_t)
    if best is None:  # pragma: no cover - hull always has a valid edge
        raise GeometryError("degenerate hull")
    return best


def min_area_oriented_box(points: Sequence[PointTuple]):
    """The minimum-area rectangle as an :class:`OrientedBox`.

    The box frame places the anchor at the rectangle's corner with
    ``lo_along = lo_perp = 0``, matching the OrientedBox conventions.
    """
    from repro.geometry.point import Point
    from repro.geometry.segment import OrientedBox

    anchor, axis, length, width = min_area_rect(points)
    return OrientedBox(
        anchor=Point(*anchor),
        axis=axis,
        length=length,
        lo_along=0.0,
        lo_perp=0.0,
        hi_perp=width,
    )
