"""2-D point type.

Points are a :class:`typing.NamedTuple` so they behave like the plain
``(x, y)`` tuples used in hot loops while still offering named access
and a couple of convenience methods.
"""

from __future__ import annotations

import math
from typing import NamedTuple


class Point(NamedTuple):
    """A point in the plane.

    The library normalises longitude/latitude into the unit square before
    indexing, so ``x`` and ``y`` are usually in ``[0, 1]``; nothing in this
    class assumes that.
    """

    x: float
    y: float

    def distance(self, other: "Point") -> float:
        """Euclidean distance to ``other``."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def squared_distance(self, other: "Point") -> float:
        """Squared Euclidean distance (avoids the sqrt in comparisons)."""
        dx = self.x - other.x
        dy = self.y - other.y
        return dx * dx + dy * dy

    def translated(self, dx: float, dy: float) -> "Point":
        """A new point shifted by ``(dx, dy)``."""
        return Point(self.x + dx, self.y + dy)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Point({self.x:.6g}, {self.y:.6g})"
