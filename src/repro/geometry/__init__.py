"""Planar geometry primitives shared by the index, measures, and filters.

The unit of work throughout the package is a :class:`Trajectory` — an
ordered sequence of 2-D points — together with its minimum bounding
rectangle (:class:`MBR`).  :mod:`repro.geometry.distance` collects the
point/segment/rectangle distance kernels every pruning lemma relies on.
"""

from repro.geometry.point import Point
from repro.geometry.mbr import MBR
from repro.geometry.segment import Segment
from repro.geometry.trajectory import Trajectory
from repro.geometry.distance import (
    point_distance,
    point_segment_distance,
    segment_distance,
    point_rect_distance,
    segment_rect_distance,
    rect_rect_distance,
    point_polyline_distance,
    rect_polyline_distance,
)

__all__ = [
    "Point",
    "MBR",
    "Segment",
    "Trajectory",
    "point_distance",
    "point_segment_distance",
    "segment_distance",
    "point_rect_distance",
    "segment_rect_distance",
    "rect_rect_distance",
    "point_polyline_distance",
    "rect_polyline_distance",
]
