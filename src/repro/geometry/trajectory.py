"""Trajectory type — an identified, ordered sequence of 2-D points.

The library treats points as raw ``(x, y)`` tuples in hot loops; this
class keeps the identifier, memoises the MBR, and provides the handful
of derived views (prefixes, segments) the paper's definitions use.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Tuple

from repro.exceptions import GeometryError
from repro.geometry.mbr import MBR
from repro.geometry.point import Point

PointTuple = Tuple[float, float]


class Trajectory:
    """A trajectory ``T = (t_1, ..., t_n)`` with identifier ``tid``.

    Instances are immutable after construction; the point list is copied
    and the MBR computed lazily.
    """

    __slots__ = ("tid", "_points", "_mbr")

    def __init__(self, tid: str, points: Sequence[PointTuple]):
        if not points:
            raise GeometryError(f"trajectory {tid!r} has no points")
        self.tid = str(tid)
        self._points: Tuple[PointTuple, ...] = tuple(
            (float(p[0]), float(p[1])) for p in points
        )
        self._mbr: Optional[MBR] = None

    # ------------------------------------------------------------------
    @property
    def points(self) -> Tuple[PointTuple, ...]:
        return self._points

    @property
    def mbr(self) -> MBR:
        if self._mbr is None:
            self._mbr = MBR.of_points(self._points)
        return self._mbr

    @property
    def start(self) -> Point:
        return Point(*self._points[0])

    @property
    def end(self) -> Point:
        return Point(*self._points[-1])

    def __len__(self) -> int:
        return len(self._points)

    def __iter__(self) -> Iterator[PointTuple]:
        return iter(self._points)

    def __getitem__(self, index: int) -> PointTuple:
        return self._points[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Trajectory):
            return NotImplemented
        return self.tid == other.tid and self._points == other._points

    def __hash__(self) -> int:
        return hash((self.tid, self._points))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Trajectory({self.tid!r}, n={len(self._points)})"

    # ------------------------------------------------------------------
    def prefix(self, j: int) -> "Trajectory":
        """``T^j`` — the prefix up to (and including) the ``j``-th point.

        ``j`` is 1-based, as in the paper's Definition 1.
        """
        if not 1 <= j <= len(self._points):
            raise GeometryError(f"prefix length {j} out of range 1..{len(self)}")
        return Trajectory(self.tid, self._points[:j])

    def segments(self) -> List[Tuple[PointTuple, PointTuple]]:
        """Consecutive point pairs; empty for single-point trajectories."""
        return [
            (self._points[i], self._points[i + 1])
            for i in range(len(self._points) - 1)
        ]

    def is_stationary(self, tol: float = 0.0) -> bool:
        """True if every point lies within ``tol`` of the first point.

        Stationary taxi trajectories are what produces the paper's peak
        at the maximum resolution in Figure 12(a).
        """
        box = self.mbr
        return box.width <= tol and box.height <= tol

    def translated(self, dx: float, dy: float, tid: Optional[str] = None) -> "Trajectory":
        """A copy shifted by ``(dx, dy)`` (used by dataset scaling)."""
        return Trajectory(
            tid if tid is not None else self.tid,
            [(x + dx, y + dy) for x, y in self._points],
        )
