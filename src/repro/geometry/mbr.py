"""Axis-aligned minimum bounding rectangles.

``MBR`` is the workhorse of both the XZ* index (Lemmas 1-2 locate the
smallest enlarged element covering a trajectory's MBR) and the pruning
lemmas (``Ext(MBR, eps)`` from Definition 7 is :meth:`MBR.expanded`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

from repro.exceptions import GeometryError
from repro.geometry.point import Point


@dataclass(frozen=True)
class MBR:
    """An axis-aligned rectangle ``[min_x, max_x] x [min_y, max_y]``.

    Degenerate rectangles (zero width and/or height) are legal: a
    stationary trajectory collapses to a point-sized MBR, and the paper
    relies on that (the resolution-19 peak in Figure 12).
    """

    min_x: float
    min_y: float
    max_x: float
    max_y: float

    def __post_init__(self) -> None:
        if self.min_x > self.max_x or self.min_y > self.max_y:
            raise GeometryError(
                f"inverted MBR: ({self.min_x}, {self.min_y}) .. "
                f"({self.max_x}, {self.max_y})"
            )

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @staticmethod
    def of_points(points: Sequence[Tuple[float, float]]) -> "MBR":
        """The tightest MBR of a non-empty point sequence."""
        if not points:
            raise GeometryError("cannot take the MBR of zero points")
        xs = [p[0] for p in points]
        ys = [p[1] for p in points]
        return MBR(min(xs), min(ys), max(xs), max(ys))

    @staticmethod
    def union_all(rects: Iterable["MBR"]) -> "MBR":
        """The tightest MBR covering every rectangle in ``rects``."""
        rects = list(rects)
        if not rects:
            raise GeometryError("cannot take the union of zero MBRs")
        return MBR(
            min(r.min_x for r in rects),
            min(r.min_y for r in rects),
            max(r.max_x for r in rects),
            max(r.max_y for r in rects),
        )

    # ------------------------------------------------------------------
    # Basic measures
    # ------------------------------------------------------------------
    @property
    def width(self) -> float:
        return self.max_x - self.min_x

    @property
    def height(self) -> float:
        return self.max_y - self.min_y

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def center(self) -> Point:
        return Point((self.min_x + self.max_x) / 2.0, (self.min_y + self.max_y) / 2.0)

    @property
    def lower_left(self) -> Point:
        return Point(self.min_x, self.min_y)

    @property
    def upper_right(self) -> Point:
        return Point(self.max_x, self.max_y)

    def corners(self) -> List[Point]:
        """The four corners, counter-clockwise from the lower-left."""
        return [
            Point(self.min_x, self.min_y),
            Point(self.max_x, self.min_y),
            Point(self.max_x, self.max_y),
            Point(self.min_x, self.max_y),
        ]

    def edges(self) -> List[Tuple[Point, Point]]:
        """The four edges as point pairs (bottom, right, top, left)."""
        ll, lr, ur, ul = self.corners()
        return [(ll, lr), (lr, ur), (ur, ul), (ul, ll)]

    # ------------------------------------------------------------------
    # Predicates
    # ------------------------------------------------------------------
    def contains_point(self, x: float, y: float) -> bool:
        return self.min_x <= x <= self.max_x and self.min_y <= y <= self.max_y

    def contains(self, other: "MBR") -> bool:
        """True if ``other`` lies entirely inside this rectangle."""
        return (
            self.min_x <= other.min_x
            and self.min_y <= other.min_y
            and other.max_x <= self.max_x
            and other.max_y <= self.max_y
        )

    def intersects(self, other: "MBR") -> bool:
        """True if the closed rectangles share at least one point."""
        return not (
            other.min_x > self.max_x
            or other.max_x < self.min_x
            or other.min_y > self.max_y
            or other.max_y < self.min_y
        )

    # ------------------------------------------------------------------
    # Derived rectangles
    # ------------------------------------------------------------------
    def expanded(self, eps: float) -> "MBR":
        """``Ext(MBR, eps)`` — Definition 7: grow every side by ``eps``."""
        if eps < 0:
            raise GeometryError(f"expansion must be non-negative, got {eps}")
        return MBR(
            self.min_x - eps, self.min_y - eps, self.max_x + eps, self.max_y + eps
        )

    def intersection(self, other: "MBR") -> "MBR":
        """The overlapping rectangle; raises if the two are disjoint."""
        if not self.intersects(other):
            raise GeometryError("intersection of disjoint MBRs")
        return MBR(
            max(self.min_x, other.min_x),
            max(self.min_y, other.min_y),
            min(self.max_x, other.max_x),
            min(self.max_y, other.max_y),
        )

    def union(self, other: "MBR") -> "MBR":
        return MBR(
            min(self.min_x, other.min_x),
            min(self.min_y, other.min_y),
            max(self.max_x, other.max_x),
            max(self.max_y, other.max_y),
        )

    # ------------------------------------------------------------------
    # Distances
    # ------------------------------------------------------------------
    def distance_to_point(self, x: float, y: float) -> float:
        """Minimum distance from ``(x, y)`` to this rectangle (0 if inside)."""
        dx = max(self.min_x - x, 0.0, x - self.max_x)
        dy = max(self.min_y - y, 0.0, y - self.max_y)
        return math.hypot(dx, dy)

    def distance_to_rect(self, other: "MBR") -> float:
        """Minimum distance between two rectangles (0 if they intersect)."""
        dx = max(other.min_x - self.max_x, 0.0, self.min_x - other.max_x)
        dy = max(other.min_y - self.max_y, 0.0, self.min_y - other.max_y)
        return math.hypot(dx, dy)

    def max_distance_to_point(self, x: float, y: float) -> float:
        """Maximum distance from ``(x, y)`` to any point of the rectangle."""
        dx = max(abs(x - self.min_x), abs(x - self.max_x))
        dy = max(abs(y - self.min_y), abs(y - self.max_y))
        return math.hypot(dx, dy)
