"""Distance kernels used by the pruning lemmas.

All functions return exact Euclidean minimum distances.  Exactness is a
correctness requirement, not a nicety: every lemma in the paper prunes a
candidate when some *lower bound* on the similarity distance exceeds the
threshold, so a kernel that over-estimated a minimum distance would turn
pruning into answer loss.
"""

from __future__ import annotations

import math
from typing import Sequence, Tuple

from repro.geometry.mbr import MBR
from repro.geometry.point import Point

_PointLike = Tuple[float, float]


def point_distance(a: _PointLike, b: _PointLike) -> float:
    """Euclidean distance between two points."""
    return math.hypot(a[0] - b[0], a[1] - b[1])


def point_segment_distance(p: _PointLike, a: _PointLike, b: _PointLike) -> float:
    """Minimum distance from point ``p`` to segment ``a-b``."""
    ax, ay = a[0], a[1]
    bx, by = b[0], b[1]
    px, py = p[0], p[1]
    dx, dy = bx - ax, by - ay
    seg_sq = dx * dx + dy * dy
    if seg_sq == 0.0:
        return math.hypot(px - ax, py - ay)
    t = ((px - ax) * dx + (py - ay) * dy) / seg_sq
    t = max(0.0, min(1.0, t))
    return math.hypot(px - (ax + t * dx), py - (ay + t * dy))


def _orient(a: _PointLike, b: _PointLike, c: _PointLike) -> float:
    return (b[0] - a[0]) * (c[1] - a[1]) - (b[1] - a[1]) * (c[0] - a[0])


def _on_segment(a: _PointLike, b: _PointLike, c: _PointLike) -> bool:
    """True if collinear point ``c`` lies on segment ``a-b``."""
    return (
        min(a[0], b[0]) <= c[0] <= max(a[0], b[0])
        and min(a[1], b[1]) <= c[1] <= max(a[1], b[1])
    )


def segments_intersect(
    a: _PointLike, b: _PointLike, c: _PointLike, d: _PointLike
) -> bool:
    """True if closed segments ``a-b`` and ``c-d`` share a point."""
    d1 = _orient(c, d, a)
    d2 = _orient(c, d, b)
    d3 = _orient(a, b, c)
    d4 = _orient(a, b, d)
    if ((d1 > 0) != (d2 > 0)) and ((d3 > 0) != (d4 > 0)) and d1 != 0 and d2 != 0:
        return True
    if d1 == 0 and _on_segment(c, d, a):
        return True
    if d2 == 0 and _on_segment(c, d, b):
        return True
    if d3 == 0 and _on_segment(a, b, c):
        return True
    if d4 == 0 and _on_segment(a, b, d):
        return True
    return False


def segment_distance(
    a: _PointLike, b: _PointLike, c: _PointLike, d: _PointLike
) -> float:
    """Exact minimum distance between segments ``a-b`` and ``c-d``.

    Zero when they intersect; otherwise the minimum endpoint-to-segment
    distance (the minimum of two disjoint segments is always attained at
    an endpoint of one of them).
    """
    if segments_intersect(a, b, c, d):
        return 0.0
    return min(
        point_segment_distance(a, c, d),
        point_segment_distance(b, c, d),
        point_segment_distance(c, a, b),
        point_segment_distance(d, a, b),
    )


def point_rect_distance(p: _PointLike, rect: MBR) -> float:
    """Minimum distance from ``p`` to an axis-aligned rectangle."""
    return rect.distance_to_point(p[0], p[1])


def segment_rect_distance(a: _PointLike, b: _PointLike, rect: MBR) -> float:
    """Exact minimum distance from segment ``a-b`` to rectangle ``rect``.

    Zero when the segment touches the (solid) rectangle; otherwise the
    minimum over the rectangle's four edges.
    """
    if rect.contains_point(a[0], a[1]) or rect.contains_point(b[0], b[1]):
        return 0.0
    best = math.inf
    for e0, e1 in rect.edges():
        best = min(best, segment_distance(a, b, e0, e1))
        if best == 0.0:
            return 0.0
    return best


def rect_rect_distance(r1: MBR, r2: MBR) -> float:
    """Minimum distance between two axis-aligned rectangles."""
    return r1.distance_to_rect(r2)


def point_polyline_distance(
    p: _PointLike, polyline: Sequence[_PointLike], vertices_only: bool = True
) -> float:
    """Minimum distance from ``p`` to a polyline.

    With ``vertices_only`` (the default) only the vertices are
    considered, matching the discrete similarity measures — in Lemma 5,
    ``d(t, T)`` is the minimum over *points* of ``T``.  Pass ``False``
    to measure against the continuous polyline instead.
    """
    if not polyline:
        raise ValueError("empty polyline")
    if vertices_only or len(polyline) == 1:
        return min(point_distance(p, q) for q in polyline)
    best = math.inf
    for i in range(len(polyline) - 1):
        best = min(best, point_segment_distance(p, polyline[i], polyline[i + 1]))
        if best == 0.0:
            return 0.0
    return best


def rect_polyline_distance(
    rect: MBR, polyline: Sequence[_PointLike], vertices_only: bool = True
) -> float:
    """Minimum distance from a rectangle to a polyline.

    Used by Lemma 10: ``d(sq, Q)`` is the smallest distance any point of
    the sub-quad ``sq`` can have to the query's point set.
    """
    if not polyline:
        raise ValueError("empty polyline")
    if vertices_only or len(polyline) == 1:
        return min(rect.distance_to_point(q[0], q[1]) for q in polyline)
    best = math.inf
    for i in range(len(polyline) - 1):
        best = min(best, segment_rect_distance(polyline[i], polyline[i + 1], rect))
        if best == 0.0:
            return 0.0
    return best


def edge_min_rect_distance(edge: Tuple[Point, Point], rect: MBR) -> float:
    """``min_{p in edge} d(p, rect)`` — building block of minDistEE.

    Definition 10 takes, for each edge of the query MBR (each of which is
    guaranteed to contain at least one trajectory point), the smallest
    distance a point on that edge can have to the enlarged element, and
    then the maximum over the four edges.
    """
    return segment_rect_distance(edge[0], edge[1], rect)


def _interval_gap(lo1: float, hi1: float, lo2: float, hi2: float) -> float:
    """Gap between two closed intervals (0 when they overlap)."""
    return max(0.0, lo2 - hi1, lo1 - hi2)


def _axis_edge_rect_distance(
    x_lo: float, x_hi: float, y_lo: float, y_hi: float, rect: MBR
) -> float:
    """Exact min distance from an axis-aligned segment (a degenerate
    rectangle) to ``rect`` — O(1) interval arithmetic."""
    dx = _interval_gap(x_lo, x_hi, rect.min_x, rect.max_x)
    dy = _interval_gap(y_lo, y_hi, rect.min_y, rect.max_y)
    if dx == 0.0:
        return dy
    if dy == 0.0:
        return dx
    return math.hypot(dx, dy)


def mbr_edge_rect_distances(mbr: MBR, rect: MBR) -> Tuple[float, float, float, float]:
    """Min distance from each MBR edge (bottom, right, top, left) to
    ``rect``.  Everything is axis-aligned, so each edge is O(1)."""
    return (
        _axis_edge_rect_distance(mbr.min_x, mbr.max_x, mbr.min_y, mbr.min_y, rect),
        _axis_edge_rect_distance(mbr.max_x, mbr.max_x, mbr.min_y, mbr.max_y, rect),
        _axis_edge_rect_distance(mbr.min_x, mbr.max_x, mbr.max_y, mbr.max_y, rect),
        _axis_edge_rect_distance(mbr.min_x, mbr.min_x, mbr.min_y, mbr.max_y, rect),
    )


def min_dist_edges_to_rect(mbr: MBR, rect: MBR) -> float:
    """``minDistEE`` (Definition 10): max over MBR edges of the edge min.

    This is a *sound* lower bound on ``f(Q, T)`` for every ``T`` inside
    ``rect``: each edge of ``Q``'s MBR holds at least one point of ``Q``,
    and that point is at least ``min_{p in edge} d(p, rect)`` away from
    everything inside ``rect``.
    """
    return max(mbr_edge_rect_distances(mbr, rect))


def min_dist_edges_to_rects(mbr: MBR, rects: Sequence[MBR]) -> float:
    """``minDistIS`` (Definition 11) against a union of rectangles.

    An XZ* index space is a union of sub-quads; the distance from an edge
    to the union is the minimum over members, and the bound is again the
    maximum over the four MBR edges.
    """
    if not rects:
        return math.inf
    per_edge = [math.inf, math.inf, math.inf, math.inf]
    for rect in rects:
        for i, dist in enumerate(mbr_edge_rect_distances(mbr, rect)):
            if dist < per_edge[i]:
                per_edge[i] = dist
    return max(per_edge)
