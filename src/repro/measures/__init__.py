"""Trajectory similarity measures.

The paper adopts classic measures rather than inventing one: discrete
Fréchet distance (the default), Hausdorff distance, and DTW
(Section II-A and Section VII).  Each measure ships a plain evaluator
and a threshold-aware evaluator that abandons early once the result is
provably above the threshold — the refinement step of query processing
depends on the latter.
"""

from repro.measures.base import Measure, get_measure, available_measures
from repro.measures.frechet import DiscreteFrechet, discrete_frechet
from repro.measures.hausdorff import Hausdorff, hausdorff
from repro.measures.dtw import DTW, dtw
from repro.measures.edr import EDR, edr
from repro.measures.erp import ERP, erp
from repro.measures.lcss import LCSS, lcss_distance

__all__ = [
    "Measure",
    "get_measure",
    "available_measures",
    "DiscreteFrechet",
    "discrete_frechet",
    "Hausdorff",
    "hausdorff",
    "DTW",
    "dtw",
    "EDR",
    "edr",
    "ERP",
    "erp",
    "LCSS",
    "lcss_distance",
]
