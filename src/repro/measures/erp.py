"""ERP — Edit distance with Real Penalty (Chen & Ng, VLDB 2004).

ERP aligns two sequences with insert/delete gaps priced by the distance
to a fixed *gap point* ``g``, and substitutions priced by the point
distance; unlike DTW it is a true metric.

Lemma 5 does not hold in the form global pruning needs (a point of
``T`` may be deleted at a price unrelated to its distance to ``Q``), so
— like EDR — ERP is flagged un-prunable and the engine answers it with
a verified full scan.
"""

from __future__ import annotations

import math
from typing import Tuple

from repro.measures.base import Measure, PointSeq, register_measure

#: default gap point: the origin of the space
DEFAULT_GAP: Tuple[float, float] = (0.0, 0.0)


def _dist(a: Tuple[float, float], b: Tuple[float, float]) -> float:
    return math.hypot(a[0] - b[0], a[1] - b[1])


def erp(
    a: PointSeq, b: PointSeq, gap: Tuple[float, float] = DEFAULT_GAP
) -> float:
    """Exact ERP distance between two point sequences."""
    n, m = len(a), len(b)
    if n == 0 or m == 0:
        raise ValueError("ERP distance of an empty sequence")
    gap_a = [_dist(p, gap) for p in a]
    gap_b = [_dist(p, gap) for p in b]
    prev = [0.0] * (m + 1)
    for j in range(1, m + 1):
        prev[j] = prev[j - 1] + gap_b[j - 1]
    for i in range(1, n + 1):
        cur = [prev[0] + gap_a[i - 1]] + [0.0] * m
        ai = a[i - 1]
        for j in range(1, m + 1):
            cur[j] = min(
                prev[j - 1] + _dist(ai, b[j - 1]),  # substitute
                prev[j] + gap_a[i - 1],  # delete from a
                cur[j - 1] + gap_b[j - 1],  # delete from b
            )
        prev = cur
    return prev[m]


def erp_within(
    a: PointSeq,
    b: PointSeq,
    eps: float,
    gap: Tuple[float, float] = DEFAULT_GAP,
) -> bool:
    """Early-abandoning decision ``ERP(a, b) <= eps`` via row minima."""
    n, m = len(a), len(b)
    if n == 0 or m == 0:
        raise ValueError("ERP distance of an empty sequence")
    gap_a = [_dist(p, gap) for p in a]
    gap_b = [_dist(p, gap) for p in b]
    prev = [0.0] * (m + 1)
    for j in range(1, m + 1):
        prev[j] = prev[j - 1] + gap_b[j - 1]
    for i in range(1, n + 1):
        cur = [prev[0] + gap_a[i - 1]] + [0.0] * m
        ai = a[i - 1]
        row_min = cur[0]
        for j in range(1, m + 1):
            value = min(
                prev[j - 1] + _dist(ai, b[j - 1]),
                prev[j] + gap_a[i - 1],
                cur[j - 1] + gap_b[j - 1],
            )
            cur[j] = value
            if value < row_min:
                row_min = value
        if row_min > eps:
            return False
        prev = cur
    return prev[m] <= eps


@register_measure
class ERP(Measure):
    """Edit distance with Real Penalty; metric, but not Lemma-5 prunable."""

    name = "erp"
    supports_point_lower_bound = False
    supports_start_end_filter = False

    def __init__(self, gap: Tuple[float, float] = DEFAULT_GAP):
        self.gap = gap

    def distance(self, a: PointSeq, b: PointSeq) -> float:
        return erp(a, b, self.gap)

    def within(self, a: PointSeq, b: PointSeq, eps: float) -> bool:
        return erp_within(a, b, eps, self.gap)
