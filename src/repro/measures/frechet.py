"""Discrete Fréchet distance (Definition 2) — the paper's default measure.

Implemented with the standard O(n*m) dynamic program over the coupling
lattice, rolled to two rows.  The threshold variant abandons a row as
soon as every cell in it exceeds the threshold: once that happens no
coupling through the row can come back under it, because values along
any monotone path are combined with ``max``.

The DP runs in the *squared-distance* domain: pairwise squared
distances are precomputed as one vectorised matrix, and because both
``max`` and ``min`` commute with the monotone map ``x -> x*x`` the
lattice recurrence is unchanged — the single ``sqrt`` happens once at
the end instead of once per cell.  Threshold decisions clamp at a
marginally relaxed squared bound and make the final comparison in the
sqrt domain, so ``within`` stays bit-consistent with ``distance``.
"""

from __future__ import annotations

import math
from typing import List, Optional

import numpy as np

from repro.measures.base import Measure, PointSeq, register_measure

_INF = math.inf


def _sq_dist_rows(a: PointSeq, b: PointSeq) -> List[List[float]]:
    """The n x m matrix of squared pairwise distances, as row lists.

    Vectorised once up front; the DP then reads plain Python floats,
    which is far cheaper than per-cell ``hypot`` calls.
    """
    n, m = len(a), len(b)
    ax = np.fromiter((p[0] for p in a), dtype=float, count=n)
    ay = np.fromiter((p[1] for p in a), dtype=float, count=n)
    bx = np.fromiter((p[0] for p in b), dtype=float, count=m)
    by = np.fromiter((p[1] for p in b), dtype=float, count=m)
    dx = ax[:, None] - bx[None, :]
    dy = ay[:, None] - by[None, :]
    return (dx * dx + dy * dy).tolist()


def _relaxed_sq(eps: float) -> float:
    """A clamping bound slightly above ``eps**2``.

    The relaxation only admits extra lattice paths; the final decision
    is made in the sqrt domain, keeping ``within`` consistent with
    ``distance`` even when ``eps`` equals the exact value.
    """
    return (eps * (1.0 + 1e-12)) ** 2 if eps > 0 else 0.0


def discrete_frechet(a: PointSeq, b: PointSeq) -> float:
    """Exact discrete Fréchet distance between point sequences."""
    n, m = len(a), len(b)
    if n == 0 or m == 0:
        raise ValueError("discrete Fréchet distance of an empty sequence")
    d2 = _sq_dist_rows(a, b)
    # Degenerate rows of Definition 2.
    if n == 1:
        return math.sqrt(max(d2[0]))
    if m == 1:
        return math.sqrt(max(row[0] for row in d2))

    prev = [0.0] * m
    row = d2[0]
    acc = row[0]
    prev[0] = acc
    for j in range(1, m):
        d = row[j]
        if d > acc:
            acc = d
        prev[j] = acc
    cur = [0.0] * m
    for i in range(1, n):
        row = d2[i]
        d = row[0]
        cur[0] = prev[0] if prev[0] > d else d
        for j in range(1, m):
            reach = min(prev[j], prev[j - 1], cur[j - 1])
            d = row[j]
            cur[j] = reach if reach > d else d
        prev, cur = cur, prev
    return math.sqrt(prev[m - 1])


def _frechet_within_value(
    a: PointSeq, b: PointSeq, eps: float
) -> Optional[float]:
    """Squared final DP value when some coupling stays within the
    relaxed bound, else ``None`` (the shared early-abandoning kernel).
    """
    n, m = len(a), len(b)
    if n == 0 or m == 0:
        raise ValueError("discrete Fréchet distance of an empty sequence")
    d2 = _sq_dist_rows(a, b)
    limit = _relaxed_sq(eps)
    if n == 1:
        worst = max(d2[0])
        return worst if worst <= limit else None
    if m == 1:
        worst = max(row[0] for row in d2)
        return worst if worst <= limit else None

    prev = [_INF] * m
    row = d2[0]
    acc = row[0]
    prev[0] = acc if acc <= limit else _INF
    for j in range(1, m):
        if acc > limit:
            break
        d = row[j]
        if d > acc:
            acc = d
        prev[j] = acc if acc <= limit else _INF
    cur = [_INF] * m
    for i in range(1, n):
        row = d2[i]
        d = row[0]
        v = prev[0] if prev[0] > d else d
        cur[0] = v if v <= limit else _INF
        alive = cur[0] < _INF
        for j in range(1, m):
            reach = min(prev[j], prev[j - 1], cur[j - 1])
            if reach == _INF:
                cur[j] = _INF
                continue
            d = row[j]
            v = reach if reach > d else d
            if v <= limit:
                cur[j] = v
                alive = True
            else:
                cur[j] = _INF
        if not alive:
            return None
        prev, cur = cur, prev
    final = prev[m - 1]
    return final if final < _INF else None


def discrete_frechet_within(a: PointSeq, b: PointSeq, eps: float) -> bool:
    """Early-abandoning decision ``D_F(a, b) <= eps``.

    Cells whose squared value already exceeds the (relaxed) squared
    threshold are clamped to ``inf`` so they can never seed a path;
    when a whole row is ``inf`` the answer is ``False`` without
    finishing the table.
    """
    final = _frechet_within_value(a, b, eps)
    return final is not None and math.sqrt(final) <= eps


@register_measure
class DiscreteFrechet(Measure):
    """Discrete Fréchet distance; supports Lemmas 5 and 12."""

    name = "frechet"
    supports_point_lower_bound = True
    supports_start_end_filter = True

    def distance(self, a: PointSeq, b: PointSeq) -> float:
        return discrete_frechet(a, b)

    def within(self, a: PointSeq, b: PointSeq, eps: float) -> bool:
        return discrete_frechet_within(a, b, eps)

    def distance_within(
        self, a: PointSeq, b: PointSeq, eps: float
    ) -> Optional[float]:
        """One fused DP: the decision and the exact answer value.

        Sound because the optimal coupling's prefix maxima never exceed
        its final value, so when the true distance is within the bound
        the optimal path survives clamping and the final cell holds the
        exact squared distance.
        """
        if eps == _INF:
            return discrete_frechet(a, b)
        final = _frechet_within_value(a, b, eps)
        if final is None:
            return None
        value = math.sqrt(final)
        return value if value <= eps else None
