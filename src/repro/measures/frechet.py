"""Discrete Fréchet distance (Definition 2) — the paper's default measure.

Implemented with the standard O(n*m) dynamic program over the coupling
lattice, rolled to two rows.  The threshold variant abandons a row as
soon as every cell in it exceeds the threshold: once that happens no
coupling through the row can come back under it, because values along
any monotone path are combined with ``max``.
"""

from __future__ import annotations

import math
from typing import Sequence, Tuple

from repro.measures.base import Measure, PointSeq, register_measure


def _dist(a: Tuple[float, float], b: Tuple[float, float]) -> float:
    return math.hypot(a[0] - b[0], a[1] - b[1])


def discrete_frechet(a: PointSeq, b: PointSeq) -> float:
    """Exact discrete Fréchet distance between point sequences."""
    n, m = len(a), len(b)
    if n == 0 or m == 0:
        raise ValueError("discrete Fréchet distance of an empty sequence")
    # Degenerate rows of Definition 2.
    if n == 1:
        return max(_dist(a[0], q) for q in b)
    if m == 1:
        return max(_dist(p, b[0]) for p in a)

    prev = [0.0] * m
    prev[0] = _dist(a[0], b[0])
    for j in range(1, m):
        prev[j] = max(prev[j - 1], _dist(a[0], b[j]))
    cur = [0.0] * m
    for i in range(1, n):
        ai = a[i]
        cur[0] = max(prev[0], _dist(ai, b[0]))
        for j in range(1, m):
            reach = min(prev[j], prev[j - 1], cur[j - 1])
            d = _dist(ai, b[j])
            cur[j] = reach if reach > d else d
        prev, cur = cur, prev
    return prev[m - 1]


def discrete_frechet_within(a: PointSeq, b: PointSeq, eps: float) -> bool:
    """Early-abandoning decision ``D_F(a, b) <= eps``.

    Cells whose value already exceeds ``eps`` are clamped to ``inf`` so
    they can never seed a path; when a whole row is ``inf`` the answer
    is ``False`` without finishing the table.
    """
    n, m = len(a), len(b)
    if n == 0 or m == 0:
        raise ValueError("discrete Fréchet distance of an empty sequence")
    if n == 1:
        return all(_dist(a[0], q) <= eps for q in b)
    if m == 1:
        return all(_dist(p, b[0]) <= eps for p in a)

    inf = math.inf
    prev = [inf] * m
    d0 = _dist(a[0], b[0])
    prev[0] = d0 if d0 <= eps else inf
    for j in range(1, m):
        if prev[j - 1] is inf or prev[j - 1] == inf:
            break
        d = _dist(a[0], b[j])
        v = prev[j - 1] if prev[j - 1] > d else d
        prev[j] = v if v <= eps else inf
    cur = [inf] * m
    for i in range(1, n):
        ai = a[i]
        alive = False
        d = _dist(ai, b[0])
        v = prev[0] if prev[0] > d else d
        cur[0] = v if v <= eps else inf
        alive = cur[0] < inf
        for j in range(1, m):
            reach = min(prev[j], prev[j - 1], cur[j - 1])
            if reach == inf:
                cur[j] = inf
                continue
            d = _dist(ai, b[j])
            v = reach if reach > d else d
            if v <= eps:
                cur[j] = v
                alive = True
            else:
                cur[j] = inf
        if not alive:
            return False
        prev, cur = cur, prev
    return prev[m - 1] < inf


@register_measure
class DiscreteFrechet(Measure):
    """Discrete Fréchet distance; supports Lemmas 5 and 12."""

    name = "frechet"
    supports_point_lower_bound = True
    supports_start_end_filter = True

    def distance(self, a: PointSeq, b: PointSeq) -> float:
        return discrete_frechet(a, b)

    def within(self, a: PointSeq, b: PointSeq, eps: float) -> bool:
        return discrete_frechet_within(a, b, eps)
