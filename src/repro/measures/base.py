"""Measure protocol and registry.

A measure maps two point sequences to a non-negative number.  Pruning
correctness requires two properties the paper states as Lemma 5 and
Lemma 12:

* ``supports_point_lower_bound`` — Lemma 5: for every point ``t`` of one
  trajectory, ``f(T1, T2) >= d(t, T2)``.  All three shipped measures
  have it, which is why the global pruning and DP-feature filters apply
  to all of them (Section VII).
* ``supports_start_end_filter`` — Lemma 12: ``f >= d(q_1, t_1)`` and
  ``f >= d(q_n, t_m)``.  True for Fréchet and DTW, *false* for
  Hausdorff (its matching is unordered), so the start/end filter must be
  skipped there (Section VII-A).
"""

from __future__ import annotations

import abc
from typing import Dict, Sequence, Tuple, Type

from repro.exceptions import QueryError

PointSeq = Sequence[Tuple[float, float]]


class Measure(abc.ABC):
    """A trajectory similarity distance ``f(Q, T)``."""

    #: registry key, e.g. ``"frechet"``
    name: str = ""
    #: Lemma 5 holds (point-to-trajectory distance lower-bounds f).
    supports_point_lower_bound: bool = True
    #: Lemma 12 holds (start/end point distances lower-bound f).
    supports_start_end_filter: bool = True

    @abc.abstractmethod
    def distance(self, a: PointSeq, b: PointSeq) -> float:
        """Exact distance between point sequences ``a`` and ``b``."""

    def within(self, a: PointSeq, b: PointSeq, eps: float) -> bool:
        """True iff ``distance(a, b) <= eps``.

        Subclasses override with early-abandoning implementations; the
        default just computes the exact distance.
        """
        return self.distance(a, b) <= eps

    def distance_within(self, a: PointSeq, b: PointSeq, eps: float):
        """The exact distance when it is ``<= eps``, else ``None``.

        The fused refinement kernel: a threshold refinement needs both
        the decision and, for answers, the exact value — computing them
        in one early-abandoning pass halves the refinement cost.  The
        default runs the two-pass equivalent; optimised measures
        override with a single DP.  With ``eps == inf`` this is exactly
        :meth:`distance`.
        """
        if eps == float("inf"):
            return self.distance(a, b)
        if not self.within(a, b, eps):
            return None
        return self.distance(a, b)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


_REGISTRY: Dict[str, Type[Measure]] = {}


def register_measure(cls: Type[Measure]) -> Type[Measure]:
    """Class decorator adding a measure to the registry."""
    if not cls.name:
        raise ValueError(f"{cls.__name__} has no registry name")
    _REGISTRY[cls.name] = cls
    return cls


def get_measure(name: str) -> Measure:
    """Instantiate a measure by registry name (``frechet``/``hausdorff``/``dtw``)."""
    try:
        return _REGISTRY[name.lower()]()
    except KeyError:
        raise QueryError(
            f"unknown measure {name!r}; available: {sorted(_REGISTRY)}"
        ) from None


def available_measures() -> Tuple[str, ...]:
    """Registry keys of all shipped measures."""
    return tuple(sorted(_REGISTRY))
