"""Hausdorff distance between point sets (Definition 12).

``D_H(Q, T) = max( max_i min_j d(q_i, t_j), max_j min_i d(t_j, q_i) )``.

Hausdorff satisfies Lemma 5 (every point's nearest-neighbour distance
lower-bounds it) but **not** Lemma 12: the matching is unordered, so the
start point of ``Q`` may legitimately match an interior point of ``T``.
Query processing must therefore skip the start/end filter under this
measure (Section VII-A), which ``supports_start_end_filter = False``
encodes.
"""

from __future__ import annotations

import math
from typing import Sequence, Tuple

from repro.measures.base import Measure, PointSeq, register_measure


def _dist_sq(a: Tuple[float, float], b: Tuple[float, float]) -> float:
    dx = a[0] - b[0]
    dy = a[1] - b[1]
    return dx * dx + dy * dy


def _directed_sq(a: PointSeq, b: PointSeq, abandon_sq: float = math.inf) -> float:
    """``max_{p in a} min_{q in b} d(p, q)^2`` with early abandon.

    Returns a value ``> abandon_sq`` as soon as the directed distance is
    known to exceed it.
    """
    worst = 0.0
    for p in a:
        best = math.inf
        for q in b:
            d = _dist_sq(p, q)
            if d < best:
                best = d
                if best <= worst:
                    break  # cannot raise the running max
        if best > worst:
            worst = best
            if worst > abandon_sq:
                return worst
    return worst


def hausdorff(a: PointSeq, b: PointSeq) -> float:
    """Exact symmetric Hausdorff distance."""
    if not a or not b:
        raise ValueError("Hausdorff distance of an empty sequence")
    forward = _directed_sq(a, b)
    backward = _directed_sq(b, a)
    return math.sqrt(max(forward, backward))


def hausdorff_within(a: PointSeq, b: PointSeq, eps: float) -> bool:
    """Early-abandoning decision ``D_H(a, b) <= eps``.

    The abandon threshold is slightly relaxed so the final comparison
    can be made in the sqrt domain, keeping the decision bit-consistent
    with :func:`hausdorff` even when ``eps`` equals the exact distance.
    """
    if not a or not b:
        raise ValueError("Hausdorff distance of an empty sequence")
    abandon_sq = (eps * (1.0 + 1e-12)) ** 2 if eps > 0 else 0.0
    forward = _directed_sq(a, b, abandon_sq)
    if forward > abandon_sq:
        return False
    backward = _directed_sq(b, a, abandon_sq)
    if backward > abandon_sq:
        return False
    return math.sqrt(max(forward, backward)) <= eps


@register_measure
class Hausdorff(Measure):
    """Symmetric Hausdorff distance; Lemma 5 yes, Lemma 12 no."""

    name = "hausdorff"
    supports_point_lower_bound = True
    supports_start_end_filter = False

    def distance(self, a: PointSeq, b: PointSeq) -> float:
        return hausdorff(a, b)

    def within(self, a: PointSeq, b: PointSeq, eps: float) -> bool:
        return hausdorff_within(a, b, eps)
