"""Hausdorff distance between point sets (Definition 12).

``D_H(Q, T) = max( max_i min_j d(q_i, t_j), max_j min_i d(t_j, q_i) )``.

Hausdorff satisfies Lemma 5 (every point's nearest-neighbour distance
lower-bounds it) but **not** Lemma 12: the matching is unordered, so the
start point of ``Q`` may legitimately match an interior point of ``T``.
Query processing must therefore skip the start/end filter under this
measure (Section VII-A), which ``supports_start_end_filter = False``
encodes.

The directed kernel works entirely on squared distances (one ``sqrt``
at the very end) and vectorises the inner nearest-neighbour minimum
over pre-extracted coordinate arrays; the outer loop keeps the
early-abandon exit.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

import numpy as np

from repro.measures.base import Measure, PointSeq, register_measure

#: below this many candidate points the vectorisation overhead beats
#: the plain loop; both branches compute identical floats
_VECTOR_MIN_POINTS = 12


def _coords(points: PointSeq) -> Tuple["np.ndarray", "np.ndarray"]:
    n = len(points)
    xs = np.fromiter((p[0] for p in points), dtype=float, count=n)
    ys = np.fromiter((p[1] for p in points), dtype=float, count=n)
    return xs, ys


def _directed_sq(a: PointSeq, b: PointSeq, abandon_sq: float = math.inf) -> float:
    """``max_{p in a} min_{q in b} d(p, q)^2`` with early abandon.

    Returns a value ``> abandon_sq`` as soon as the directed distance is
    known to exceed it.
    """
    worst = 0.0
    if len(b) >= _VECTOR_MIN_POINTS:
        bx, by = _coords(b)
        for px, py in a:
            dx = bx - px
            dy = by - py
            best = float(np.min(dx * dx + dy * dy))
            if best > worst:
                worst = best
                if worst > abandon_sq:
                    return worst
        return worst
    for p in a:
        px, py = p
        best = math.inf
        for q in b:
            dx = px - q[0]
            dy = py - q[1]
            d = dx * dx + dy * dy
            if d < best:
                best = d
                if best <= worst:
                    break  # cannot raise the running max
        if best > worst:
            worst = best
            if worst > abandon_sq:
                return worst
    return worst


def hausdorff(a: PointSeq, b: PointSeq) -> float:
    """Exact symmetric Hausdorff distance."""
    if len(a) == 0 or len(b) == 0:
        raise ValueError("Hausdorff distance of an empty sequence")
    forward = _directed_sq(a, b)
    backward = _directed_sq(b, a)
    return math.sqrt(max(forward, backward))


def _hausdorff_within_value(
    a: PointSeq, b: PointSeq, eps: float
) -> Optional[float]:
    """Squared symmetric distance when within the relaxed bound, else
    ``None`` (the shared early-abandoning kernel)."""
    if len(a) == 0 or len(b) == 0:
        raise ValueError("Hausdorff distance of an empty sequence")
    abandon_sq = (eps * (1.0 + 1e-12)) ** 2 if eps > 0 else 0.0
    forward = _directed_sq(a, b, abandon_sq)
    if forward > abandon_sq:
        return None
    backward = _directed_sq(b, a, abandon_sq)
    if backward > abandon_sq:
        return None
    return max(forward, backward)


def hausdorff_within(a: PointSeq, b: PointSeq, eps: float) -> bool:
    """Early-abandoning decision ``D_H(a, b) <= eps``.

    The abandon threshold is slightly relaxed so the final comparison
    can be made in the sqrt domain, keeping the decision bit-consistent
    with :func:`hausdorff` even when ``eps`` equals the exact distance.
    """
    worst = _hausdorff_within_value(a, b, eps)
    return worst is not None and math.sqrt(worst) <= eps


@register_measure
class Hausdorff(Measure):
    """Symmetric Hausdorff distance; Lemma 5 yes, Lemma 12 no."""

    name = "hausdorff"
    supports_point_lower_bound = True
    supports_start_end_filter = False

    def distance(self, a: PointSeq, b: PointSeq) -> float:
        return hausdorff(a, b)

    def within(self, a: PointSeq, b: PointSeq, eps: float) -> bool:
        return hausdorff_within(a, b, eps)

    def distance_within(
        self, a: PointSeq, b: PointSeq, eps: float
    ) -> Optional[float]:
        """One fused pass: the decision and the exact answer value.

        When neither directed pass abandons, both squared maxima are
        exact and the symmetric distance comes out of the same pass.
        """
        if eps == math.inf:
            return hausdorff(a, b)
        worst = _hausdorff_within_value(a, b, eps)
        if worst is None:
            return None
        value = math.sqrt(worst)
        return value if value <= eps else None
