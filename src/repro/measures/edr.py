"""EDR — Edit Distance on Real sequences (Chen et al., SIGMOD 2005).

The paper's conclusion lists "how to support other metrics" as future
work; EDR is the canonical next metric.  ``EDR(Q, T)`` counts the
minimum number of insert / delete / substitute edits to align the two
sequences, where two points *match* (cost 0) when both coordinates are
within the matching tolerance ``delta``.

EDR does **not** satisfy Lemma 5: a single far-away point costs one
edit no matter how far it is, so no point-distance lower-bounds the
value and neither global pruning nor the DP-feature filters apply.  The
measure is flagged accordingly and the engine falls back to a full scan
with exact (early-abandoning) evaluation — correct, just unindexed.
"""

from __future__ import annotations

import math
from typing import Tuple

from repro.measures.base import Measure, PointSeq, register_measure

#: default matching tolerance, in the same units as the coordinates
DEFAULT_DELTA = 0.005


def _match(a: Tuple[float, float], b: Tuple[float, float], delta: float) -> bool:
    return abs(a[0] - b[0]) <= delta and abs(a[1] - b[1]) <= delta


def edr(a: PointSeq, b: PointSeq, delta: float = DEFAULT_DELTA) -> float:
    """Exact EDR edit count between two point sequences."""
    n, m = len(a), len(b)
    if n == 0 or m == 0:
        raise ValueError("EDR distance of an empty sequence")
    prev = list(range(m + 1))
    for i in range(1, n + 1):
        cur = [i] + [0] * m
        ai = a[i - 1]
        for j in range(1, m + 1):
            subst = prev[j - 1] + (0 if _match(ai, b[j - 1], delta) else 1)
            cur[j] = min(subst, prev[j] + 1, cur[j - 1] + 1)
        prev = cur
    return float(prev[m])


def edr_within(
    a: PointSeq, b: PointSeq, eps: float, delta: float = DEFAULT_DELTA
) -> bool:
    """Early-abandoning decision ``EDR(a, b) <= eps``.

    Classic banded trick: every cell value is at least the row minimum,
    and row minima never decrease, so once a row's minimum exceeds
    ``eps`` the answer is ``False``.
    """
    n, m = len(a), len(b)
    if n == 0 or m == 0:
        raise ValueError("EDR distance of an empty sequence")
    if abs(n - m) > eps:
        return False  # length difference forces that many edits
    prev = list(range(m + 1))
    for i in range(1, n + 1):
        cur = [i] + [0] * m
        ai = a[i - 1]
        row_min = float(i)
        for j in range(1, m + 1):
            subst = prev[j - 1] + (0 if _match(ai, b[j - 1], delta) else 1)
            value = min(subst, prev[j] + 1, cur[j - 1] + 1)
            cur[j] = value
            if value < row_min:
                row_min = value
        if row_min > eps:
            return False
        prev = cur
    return prev[m] <= eps


@register_measure
class EDR(Measure):
    """Edit Distance on Real sequences.

    Neither Lemma 5 nor Lemma 12 holds (edits have unit cost regardless
    of geometric distance), so the engine must not index-prune under
    this measure.
    """

    name = "edr"
    supports_point_lower_bound = False
    supports_start_end_filter = False

    def __init__(self, delta: float = DEFAULT_DELTA):
        if delta < 0:
            raise ValueError(f"match tolerance must be non-negative, got {delta}")
        self.delta = delta

    def distance(self, a: PointSeq, b: PointSeq) -> float:
        return edr(a, b, self.delta)

    def within(self, a: PointSeq, b: PointSeq, eps: float) -> bool:
        return edr_within(a, b, eps, self.delta)
