"""Dynamic Time Warping distance (Definition 13).

DTW sums matched-pair distances along the optimal monotone alignment.
Because every matched pair contributes non-negatively, DTW dominates
each individual pair distance, so both Lemma 5 and Lemma 12 hold
(Section VII-B) and the full pruning pipeline applies unchanged.

The threshold variant abandons once every cell of a row exceeds the
threshold — path costs only grow, so no alignment through such a row
can finish at or under it.

DTW sums *linear* distances, so the square root cannot be removed from
the recurrence — but it can be hoisted: all n*m pairwise distances are
computed as one vectorised matrix (a single ``np.sqrt``), and the DP
loop reads plain floats instead of calling ``hypot`` per cell.
"""

from __future__ import annotations

import math
from typing import List, Optional

import numpy as np

from repro.measures.base import Measure, PointSeq, register_measure

_INF = math.inf


def _dist_rows(a: PointSeq, b: PointSeq) -> List[List[float]]:
    """The n x m pairwise distance matrix, as row lists."""
    n, m = len(a), len(b)
    ax = np.fromiter((p[0] for p in a), dtype=float, count=n)
    ay = np.fromiter((p[1] for p in a), dtype=float, count=n)
    bx = np.fromiter((p[0] for p in b), dtype=float, count=m)
    by = np.fromiter((p[1] for p in b), dtype=float, count=m)
    dx = ax[:, None] - bx[None, :]
    dy = ay[:, None] - by[None, :]
    return np.sqrt(dx * dx + dy * dy).tolist()


def dtw(a: PointSeq, b: PointSeq) -> float:
    """Exact DTW distance between point sequences."""
    n, m = len(a), len(b)
    if n == 0 or m == 0:
        raise ValueError("DTW distance of an empty sequence")
    dist = _dist_rows(a, b)
    # Boundary row: only the (0, 0) entry point is free.
    prev = [0.0] + [_INF] * m
    for i in range(n):
        row = dist[i]
        cur = [_INF] * (m + 1)
        for j in range(1, m + 1):
            best = min(prev[j], prev[j - 1], cur[j - 1])
            if best == _INF:
                continue
            cur[j] = best + row[j - 1]
        prev = cur
    return prev[m]


def _dtw_within_value(
    a: PointSeq, b: PointSeq, eps: float
) -> Optional[float]:
    """Final DP value when some alignment stays within ``eps``, else
    ``None`` (the shared early-abandoning kernel)."""
    n, m = len(a), len(b)
    if n == 0 or m == 0:
        raise ValueError("DTW distance of an empty sequence")
    dist = _dist_rows(a, b)
    prev = [_INF] * (m + 1)
    prev[0] = 0.0
    for i in range(n):
        row = dist[i]
        cur = [_INF] * (m + 1)
        alive = False
        for j in range(1, m + 1):
            best = min(prev[j], prev[j - 1], cur[j - 1])
            if best == _INF:
                continue
            v = best + row[j - 1]
            if v <= eps:
                cur[j] = v
                alive = True
        if not alive:
            return None
        prev = cur
        prev[0] = _INF  # only the very first row may start at (0,0)
    return prev[m] if prev[m] <= eps else None


def dtw_within(a: PointSeq, b: PointSeq, eps: float) -> bool:
    """Early-abandoning decision ``DTW(a, b) <= eps``."""
    return _dtw_within_value(a, b, eps) is not None


@register_measure
class DTW(Measure):
    """Dynamic Time Warping; supports Lemmas 5 and 12."""

    name = "dtw"
    supports_point_lower_bound = True
    supports_start_end_filter = True

    def distance(self, a: PointSeq, b: PointSeq) -> float:
        return dtw(a, b)

    def within(self, a: PointSeq, b: PointSeq, eps: float) -> bool:
        return dtw_within(a, b, eps)

    def distance_within(
        self, a: PointSeq, b: PointSeq, eps: float
    ) -> Optional[float]:
        """One fused DP: the decision and the exact answer value.

        Sound because path costs grow monotonically, so every prefix of
        the optimal alignment stays at or below its final cost — when
        that cost is within ``eps`` the optimal path survives clamping
        and the final cell holds it exactly.
        """
        if eps == _INF:
            return dtw(a, b)
        return _dtw_within_value(a, b, eps)
