"""Dynamic Time Warping distance (Definition 13).

DTW sums matched-pair distances along the optimal monotone alignment.
Because every matched pair contributes non-negatively, DTW dominates
each individual pair distance, so both Lemma 5 and Lemma 12 hold
(Section VII-B) and the full pruning pipeline applies unchanged.

The threshold variant abandons once every cell of a row exceeds the
threshold — path costs only grow, so no alignment through such a row
can finish at or under it.
"""

from __future__ import annotations

import math
from typing import Tuple

from repro.measures.base import Measure, PointSeq, register_measure


def _dist(a: Tuple[float, float], b: Tuple[float, float]) -> float:
    return math.hypot(a[0] - b[0], a[1] - b[1])


def dtw(a: PointSeq, b: PointSeq) -> float:
    """Exact DTW distance between point sequences."""
    n, m = len(a), len(b)
    if n == 0 or m == 0:
        raise ValueError("DTW distance of an empty sequence")
    inf = math.inf
    # Boundary row: only the (0, 0) entry point is free.
    prev = [0.0] + [inf] * m
    for i in range(n):
        ai = a[i]
        cur = [inf] * (m + 1)
        for j in range(1, m + 1):
            best = min(prev[j], prev[j - 1], cur[j - 1])
            if best == inf:
                continue
            cur[j] = best + _dist(ai, b[j - 1])
        prev = cur
    return prev[m]


def dtw_within(a: PointSeq, b: PointSeq, eps: float) -> bool:
    """Early-abandoning decision ``DTW(a, b) <= eps``."""
    n, m = len(a), len(b)
    if n == 0 or m == 0:
        raise ValueError("DTW distance of an empty sequence")
    inf = math.inf
    prev = [inf] * (m + 1)
    prev[0] = 0.0
    for i in range(n):
        ai = a[i]
        cur = [inf] * (m + 1)
        alive = False
        for j in range(1, m + 1):
            best = min(prev[j], prev[j - 1], cur[j - 1])
            if best == inf:
                continue
            v = best + _dist(ai, b[j - 1])
            if v <= eps:
                cur[j] = v
                alive = True
        if not alive:
            return False
        prev = cur
        prev[0] = inf  # only the very first row may start at (0,0)
    return prev[m] <= eps


@register_measure
class DTW(Measure):
    """Dynamic Time Warping; supports Lemmas 5 and 12."""

    name = "dtw"
    supports_point_lower_bound = True
    supports_start_end_filter = True

    def distance(self, a: PointSeq, b: PointSeq) -> float:
        return dtw(a, b)

    def within(self, a: PointSeq, b: PointSeq, eps: float) -> bool:
        return dtw_within(a, b, eps)
