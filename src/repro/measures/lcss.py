"""LCSS distance — Longest Common SubSequence similarity.

Classic robust measure (Vlachos et al., ICDE 2002): two points match
when both coordinates are within ``delta``; the LCSS length is the
longest monotone chain of matches, and the distance is

    D_L(Q, T) = 1 - LCSS(Q, T) / min(|Q|, |T|)      in [0, 1].

Like EDR it tolerates outliers by *skipping* points, which is exactly
why Lemma 5 cannot hold: a far-away point simply doesn't participate.
Flagged non-prunable; the engine answers LCSS queries with the verified
full-scan fallback.
"""

from __future__ import annotations

from typing import Tuple

from repro.measures.base import Measure, PointSeq, register_measure

DEFAULT_DELTA = 0.005


def _match(a: Tuple[float, float], b: Tuple[float, float], delta: float) -> bool:
    return abs(a[0] - b[0]) <= delta and abs(a[1] - b[1]) <= delta


def lcss_length(a: PointSeq, b: PointSeq, delta: float = DEFAULT_DELTA) -> int:
    """Length of the longest common subsequence under tolerance delta."""
    n, m = len(a), len(b)
    if n == 0 or m == 0:
        raise ValueError("LCSS of an empty sequence")
    prev = [0] * (m + 1)
    for i in range(1, n + 1):
        cur = [0] * (m + 1)
        ai = a[i - 1]
        for j in range(1, m + 1):
            if _match(ai, b[j - 1], delta):
                cur[j] = prev[j - 1] + 1
            else:
                cur[j] = max(prev[j], cur[j - 1])
        prev = cur
    return prev[m]


def lcss_distance(
    a: PointSeq, b: PointSeq, delta: float = DEFAULT_DELTA
) -> float:
    """``1 - LCSS / min(|a|, |b|)`` — 0 when one sequence matches into
    the other completely, 1 when nothing matches."""
    return 1.0 - lcss_length(a, b, delta) / min(len(a), len(b))


@register_measure
class LCSS(Measure):
    """LCSS distance; robust to outliers, not index-prunable."""

    name = "lcss"
    supports_point_lower_bound = False
    supports_start_end_filter = False

    def __init__(self, delta: float = DEFAULT_DELTA):
        if delta < 0:
            raise ValueError(f"match tolerance must be non-negative, got {delta}")
        self.delta = delta

    def distance(self, a: PointSeq, b: PointSeq) -> float:
        return lcss_distance(a, b, self.delta)

    def within(self, a: PointSeq, b: PointSeq, eps: float) -> bool:
        # eps in [0, 1]: require LCSS >= (1 - eps) * min length; the DP
        # has no cheap sound abandon (matches can cluster late), so the
        # exact table is computed.
        return self.distance(a, b) <= eps
