"""ASCII chart rendering for bench output.

The paper communicates through line charts; a terminal bench can get
most of the way there with horizontal bar charts and per-series
sparklines, which is what these helpers produce.  They are pure
formatting — all numbers come from the harness.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

_BLOCKS = " ▏▎▍▌▋▊▉█"
_SPARKS = "▁▂▃▄▅▆▇█"


def _bar(value: float, max_value: float, width: int) -> str:
    """A horizontal bar scaled to ``width`` characters."""
    if max_value <= 0 or value <= 0:
        return ""
    filled = value / max_value * width
    whole = int(filled)
    frac = filled - whole
    bar = "█" * whole
    partial_index = int(frac * (len(_BLOCKS) - 1))
    if partial_index > 0 and whole < width:
        bar += _BLOCKS[partial_index]
    return bar


def bar_chart(
    items: Sequence[Tuple[str, float]],
    title: str = "",
    width: int = 40,
    unit: str = "",
) -> str:
    """Render labelled values as horizontal bars, longest label aligned.

    >>> print(bar_chart([("a", 2.0), ("b", 1.0)], width=4))
    a  2 ████
    b  1 ██
    """
    if not items:
        return title
    label_width = max(len(label) for label, _ in items)
    max_value = max(value for _, value in items)
    value_strs = [f"{value:.4g}{unit}" for _, value in items]
    value_width = max(len(s) for s in value_strs)
    lines = [title] if title else []
    for (label, value), value_str in zip(items, value_strs):
        lines.append(
            f"{label.ljust(label_width)}  {value_str.rjust(value_width)} "
            f"{_bar(value, max_value, width)}"
        )
    return "\n".join(lines)


def sparkline(values: Sequence[float]) -> str:
    """A one-line trend of ``values`` using block characters.

    >>> sparkline([1, 2, 3])
    '▁▄█'
    """
    cleaned = [v for v in values if not math.isnan(v)]
    if not cleaned:
        return ""
    lo, hi = min(cleaned), max(cleaned)
    span = hi - lo
    out = []
    for v in values:
        if math.isnan(v):
            out.append(" ")
        elif span == 0:
            out.append(_SPARKS[0])
        else:
            idx = int((v - lo) / span * (len(_SPARKS) - 1))
            out.append(_SPARKS[idx])
    return "".join(out)


def series_chart(
    x_labels: Sequence[str],
    series: Dict[str, Sequence[float]],
    title: str = "",
) -> str:
    """Multiple named series as aligned sparklines with endpoints.

    Approximates a multi-line figure: each row shows the series name,
    its sparkline over the shared x axis, and first/last values.
    """
    lines = [title] if title else []
    lines.append(f"x: {' -> '.join(map(str, x_labels))}")
    name_width = max((len(name) for name in series), default=0)
    for name, values in series.items():
        first = values[0] if values else float("nan")
        last = values[-1] if values else float("nan")
        lines.append(
            f"{name.ljust(name_width)}  {sparkline(values)}  "
            f"{first:.4g} -> {last:.4g}"
        )
    return "\n".join(lines)
