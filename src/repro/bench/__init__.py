"""Benchmark support: query-set runners and table reporting.

The benches under ``benchmarks/`` regenerate the paper's tables and
figures; this package holds the shared machinery — run a query workload
against a system, aggregate median / p99 / candidate counts, and print
aligned rows that mirror the paper's plots.
"""

from repro.bench.harness import QueryStats, run_threshold_workload, run_topk_workload
from repro.bench.reporting import format_table, print_table

__all__ = [
    "QueryStats",
    "run_threshold_workload",
    "run_topk_workload",
    "format_table",
    "print_table",
]
