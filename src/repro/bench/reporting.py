"""Aligned ASCII tables for bench output.

Each bench prints the same rows/series the paper's figure reports, so a
reader can compare shapes (who wins, by what factor, where crossovers
sit) directly against the paper.
"""

from __future__ import annotations

from typing import List, Sequence, Union

Cell = Union[str, int, float]


def _render(cell: Cell) -> str:
    if isinstance(cell, float):
        if cell != cell:  # NaN
            return "-"
        if abs(cell) >= 1000 or (cell != 0 and abs(cell) < 0.001):
            return f"{cell:.3g}"
        return f"{cell:.3f}".rstrip("0").rstrip(".")
    return str(cell)


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[Cell]], title: str = ""
) -> str:
    """Render an aligned table; numbers are right-aligned."""
    rendered = [[_render(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    )
    lines.append("  ".join("-" * w for w in widths))
    for raw, row in zip(rows, rendered):
        cells = []
        for i, cell in enumerate(row):
            if isinstance(raw[i], (int, float)):
                cells.append(cell.rjust(widths[i]))
            else:
                cells.append(cell.ljust(widths[i]))
        lines.append("  ".join(cells))
    return "\n".join(lines)


def print_table(
    headers: Sequence[str], rows: Sequence[Sequence[Cell]], title: str = ""
) -> None:
    print()
    print(format_table(headers, rows, title))
    print()
