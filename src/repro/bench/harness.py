"""Workload runners with the paper's aggregation protocol.

Section VI: run a set of query trajectories and report the *median*
processing time; Figure 18 additionally reports the 99th percentile
(tail latency).  The runners work against both the TraSS engine and any
:class:`~repro.baselines.base.SimilaritySearchBaseline` by duck-typing
on ``threshold_search`` / ``topk_search``.
"""

from __future__ import annotations

import math
import statistics
import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from repro.geometry.trajectory import Trajectory


@dataclass
class QueryStats:
    """Aggregated outcome of one workload run."""

    system: str
    label: str
    times: List[float] = field(default_factory=list)
    candidates: List[int] = field(default_factory=list)
    retrieved: List[int] = field(default_factory=list)
    answers: List[int] = field(default_factory=list)

    @property
    def median_ms(self) -> float:
        return 1000.0 * statistics.median(self.times) if self.times else math.nan

    @property
    def p99_ms(self) -> float:
        if not self.times:
            return math.nan
        ordered = sorted(self.times)
        rank = min(len(ordered) - 1, math.ceil(0.99 * len(ordered)) - 1)
        return 1000.0 * ordered[max(0, rank)]

    @property
    def mean_candidates(self) -> float:
        return statistics.fmean(self.candidates) if self.candidates else math.nan

    @property
    def mean_retrieved(self) -> float:
        return statistics.fmean(self.retrieved) if self.retrieved else math.nan

    @property
    def mean_answers(self) -> float:
        return statistics.fmean(self.answers) if self.answers else math.nan

    @property
    def precision(self) -> float:
        """Answers over candidates across the workload (Figure 11(c))."""
        total_candidates = sum(self.candidates)
        if total_candidates == 0:
            return 1.0
        return sum(self.answers) / total_candidates


def run_threshold_workload(
    system,
    queries: Sequence[Trajectory],
    eps: float,
    system_name: str = "",
    label: str = "",
) -> QueryStats:
    """Run every query through ``system.threshold_search``."""
    stats = QueryStats(
        system=system_name or type(system).__name__, label=label or f"eps={eps}"
    )
    for query in queries:
        started = time.perf_counter()
        result = system.threshold_search(query, eps)
        stats.times.append(time.perf_counter() - started)
        stats.candidates.append(result.candidates)
        stats.retrieved.append(
            getattr(result, "retrieved_rows", getattr(result, "retrieved", 0))
        )
        stats.answers.append(len(result.answers))
    return stats


def run_topk_workload(
    system,
    queries: Sequence[Trajectory],
    k: int,
    system_name: str = "",
    label: str = "",
) -> QueryStats:
    """Run every query through ``system.topk_search``."""
    stats = QueryStats(
        system=system_name or type(system).__name__, label=label or f"k={k}"
    )
    for query in queries:
        started = time.perf_counter()
        result = system.topk_search(query, k)
        stats.times.append(time.perf_counter() - started)
        stats.candidates.append(result.candidates)
        stats.retrieved.append(
            getattr(result, "retrieved_rows", getattr(result, "retrieved", 0))
        )
        stats.answers.append(len(result.answers))
    return stats
