"""Experiment specifications.

An :class:`ExperimentSpec` bundles a dataset, the systems to compare,
the query type, and one sweep axis — the structure every figure in the
paper shares (e.g. Figure 9: T-Drive x {TraSS, JUST, DFT, DITA} x
threshold x eps-sweep).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.exceptions import QueryError, ReproError

THRESHOLD = "threshold"
TOPK = "topk"


@dataclass(frozen=True)
class DatasetSpec:
    """A named, seeded dataset configuration."""

    name: str  # registry name, e.g. "tdrive" or "lorry"
    size: int = 1000
    seed: int = 0
    num_queries: int = 10
    query_seed: int = 1

    def __post_init__(self) -> None:
        if self.size < 1:
            raise ReproError(f"dataset size must be >= 1, got {self.size}")
        if self.num_queries < 1:
            raise ReproError(
                f"query count must be >= 1, got {self.num_queries}"
            )


@dataclass(frozen=True)
class SystemSpec:
    """A system under test: a label plus a zero-argument factory.

    The factory builds a *fresh, unloaded* system; the runner ingests
    the dataset (timing it) and issues the queries.  Factories keep the
    spec serialisable apart from the callable itself.
    """

    label: str
    factory: Callable[[], object]

    def __post_init__(self) -> None:
        if not self.label:
            raise ReproError("system label must be non-empty")


@dataclass(frozen=True)
class SweepAxis:
    """The swept parameter: ``eps`` for threshold, ``k`` for top-k."""

    parameter: str  # "eps" or "k"
    values: Tuple[float, ...]

    def __post_init__(self) -> None:
        if self.parameter not in ("eps", "k"):
            raise QueryError(
                f"sweep parameter must be 'eps' or 'k', got {self.parameter!r}"
            )
        if not self.values:
            raise QueryError("sweep must have at least one value")


@dataclass(frozen=True)
class ExperimentSpec:
    """One figure-shaped experiment."""

    name: str
    dataset: DatasetSpec
    systems: Tuple[SystemSpec, ...]
    query_type: str  # THRESHOLD or TOPK
    sweep: SweepAxis

    def __post_init__(self) -> None:
        if self.query_type not in (THRESHOLD, TOPK):
            raise QueryError(
                f"query_type must be '{THRESHOLD}' or '{TOPK}', "
                f"got {self.query_type!r}"
            )
        if not self.systems:
            raise ReproError("an experiment needs at least one system")
        expected = "eps" if self.query_type == THRESHOLD else "k"
        if self.sweep.parameter != expected:
            raise QueryError(
                f"{self.query_type} experiments sweep {expected!r}, "
                f"got {self.sweep.parameter!r}"
            )
