"""Experiment execution.

``run_experiment`` builds each system fresh, ingests the dataset
(timed — the Figure 13 metric), samples the query workload, sweeps the
axis, and aggregates per point with the paper's protocol (median time,
p99, mean candidates).  Results are plain data (:class:`RunRecord`),
ready for JSON.
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.bench.harness import run_threshold_workload, run_topk_workload
from repro.data.datasets import load_dataset
from repro.data.workload import sample_queries
from repro.eval.spec import THRESHOLD, ExperimentSpec
from repro.exceptions import ReproError


@dataclass
class RunRecord:
    """One (system, sweep value) measurement."""

    system: str
    parameter: str
    value: float
    median_ms: float
    p99_ms: float
    mean_candidates: float
    mean_retrieved: float
    mean_answers: float
    precision: float


@dataclass
class ExperimentResult:
    """Everything one experiment produced."""

    name: str
    query_type: str
    dataset_name: str
    dataset_size: int
    num_queries: int
    build_seconds: Dict[str, float] = field(default_factory=dict)
    records: List[RunRecord] = field(default_factory=list)

    def by_system(self, system: str) -> List[RunRecord]:
        return [r for r in self.records if r.system == system]

    def systems(self) -> List[str]:
        seen: List[str] = []
        for record in self.records:
            if record.system not in seen:
                seen.append(record.system)
        return seen

    def sweep_values(self) -> List[float]:
        seen: List[float] = []
        for record in self.records:
            if record.value not in seen:
                seen.append(record.value)
        return seen


def run_experiment(
    spec: ExperimentSpec, progress: Optional[callable] = None
) -> ExperimentResult:
    """Execute ``spec`` and return structured results.

    ``progress`` (optional) receives one human-readable line per step —
    pass ``print`` for live output.
    """
    note = progress if progress is not None else (lambda msg: None)
    dataset = load_dataset(spec.dataset.name, spec.dataset.size, spec.dataset.seed)
    queries = sample_queries(
        dataset.trajectories,
        spec.dataset.num_queries,
        seed=spec.dataset.query_seed,
    )
    result = ExperimentResult(
        name=spec.name,
        query_type=spec.query_type,
        dataset_name=spec.dataset.name,
        dataset_size=len(dataset),
        num_queries=len(queries),
    )

    for system_spec in spec.systems:
        note(f"building {system_spec.label} on {len(dataset)} trajectories")
        system = system_spec.factory()
        started = time.perf_counter()
        if hasattr(system, "add_all"):
            system.add_all(dataset.trajectories)
        elif hasattr(system, "build"):
            system.build(dataset.trajectories)
        else:
            raise ReproError(
                f"{system_spec.label}: no add_all/build ingestion method"
            )
        result.build_seconds[system_spec.label] = time.perf_counter() - started

        for value in spec.sweep.values:
            note(f"  {system_spec.label}: {spec.sweep.parameter}={value}")
            if spec.query_type == THRESHOLD:
                stats = run_threshold_workload(
                    system, queries, float(value), system_spec.label
                )
            else:
                stats = run_topk_workload(
                    system, queries, int(value), system_spec.label
                )
            result.records.append(
                RunRecord(
                    system=system_spec.label,
                    parameter=spec.sweep.parameter,
                    value=float(value),
                    median_ms=stats.median_ms,
                    p99_ms=stats.p99_ms,
                    mean_candidates=stats.mean_candidates,
                    mean_retrieved=stats.mean_retrieved,
                    mean_answers=stats.mean_answers,
                    precision=stats.precision,
                )
            )
    return result
