"""Result rendering and persistence.

``render_result`` turns an :class:`ExperimentResult` into the same kind
of aligned table plus sparkline trends the benches print;
``save_result``/``load_result`` round-trip results through JSON so runs
can be archived and diffed.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from typing import Dict, List

from repro.bench.figures import series_chart
from repro.bench.reporting import format_table
from repro.eval.runner import ExperimentResult, RunRecord
from repro.exceptions import ReproError

FORMAT_VERSION = 1


def render_result(result: ExperimentResult, metric: str = "median_ms") -> str:
    """A table (systems x sweep values) plus a sparkline per system."""
    legal = {f.name for f in RunRecord.__dataclass_fields__.values()}  # type: ignore[attr-defined]
    if metric not in legal:
        raise ReproError(f"unknown metric {metric!r}; one of {sorted(legal)}")
    values = result.sweep_values()
    parameter = result.records[0].parameter if result.records else "value"
    headers = ["system"] + [f"{parameter}={v:g}" for v in values]
    rows = []
    series: Dict[str, List[float]] = {}
    for system in result.systems():
        records = {r.value: r for r in result.by_system(system)}
        row = [system] + [
            getattr(records[v], metric) if v in records else float("nan")
            for v in values
        ]
        rows.append(row)
        series[system] = [
            getattr(records[v], metric) for v in values if v in records
        ]
    table = format_table(
        headers,
        rows,
        f"{result.name}: {metric} ({result.dataset_name}, "
        f"n={result.dataset_size}, {result.num_queries} queries)",
    )
    trends = series_chart([f"{v:g}" for v in values], series, "trend:")
    builds = format_table(
        ["system", "build (s)"],
        [[name, secs] for name, secs in result.build_seconds.items()],
        "ingestion:",
    )
    return f"{table}\n\n{trends}\n\n{builds}"


def save_result(result: ExperimentResult, path: str) -> None:
    """Serialise a result to JSON."""
    payload = {
        "format_version": FORMAT_VERSION,
        "name": result.name,
        "query_type": result.query_type,
        "dataset_name": result.dataset_name,
        "dataset_size": result.dataset_size,
        "num_queries": result.num_queries,
        "build_seconds": result.build_seconds,
        "records": [asdict(r) for r in result.records],
    }
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2)


def load_result(path: str) -> ExperimentResult:
    """Inverse of :func:`save_result`."""
    try:
        with open(path) as fh:
            payload = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        raise ReproError(f"cannot load result from {path}: {exc}") from exc
    if payload.get("format_version") != FORMAT_VERSION:
        raise ReproError(
            f"unsupported result format {payload.get('format_version')!r}"
        )
    result = ExperimentResult(
        name=payload["name"],
        query_type=payload["query_type"],
        dataset_name=payload["dataset_name"],
        dataset_size=payload["dataset_size"],
        num_queries=payload["num_queries"],
        build_seconds=dict(payload["build_seconds"]),
    )
    for raw in payload["records"]:
        result.records.append(RunRecord(**raw))
    return result
