"""Declarative experiment runner.

The ``benchmarks/`` directory regenerates the paper's figures through
pytest; this package is the programmatic face of the same machinery:
describe an experiment as data (:mod:`spec`), run it (:mod:`runner`),
and get structured results you can serialise, diff across runs, or
render (:mod:`report`).  It is how a downstream user scripts their own
sweeps without copying bench code.
"""

from repro.eval.spec import (
    DatasetSpec,
    ExperimentSpec,
    SweepAxis,
    SystemSpec,
)
from repro.eval.runner import ExperimentResult, RunRecord, run_experiment
from repro.eval.report import render_result, save_result, load_result

__all__ = [
    "DatasetSpec",
    "ExperimentSpec",
    "SweepAxis",
    "SystemSpec",
    "ExperimentResult",
    "RunRecord",
    "run_experiment",
    "render_result",
    "save_result",
    "load_result",
]
