"""XZ-Ordering (XZ2) — the state-of-the-art baseline index.

This is the index GeoMesa provides and JUST / TrajMesa build on
(Section VIII): a trajectory is represented by its smallest enlarged
element alone, with **no** position code.  Keeping the same depth-first
numbering style as :mod:`repro.index.xzstar` makes the two indexes
directly comparable on identical substrate, which is how the paper's
I/O-reduction numbers (66.4% in Section VI, 83.6% in theory) are
measured.

Subtree sizes: a sequence of length ``l`` owns one value plus four child
subtrees, so ``C(l) = (4^(r - l + 1) - 1) / 3`` and

    V_xz2(s) = sum_i q_i * C(i) + (l - 1).

The root element (length-0 sequence) again gets a tail-block value.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.exceptions import EncodingError, IndexingError
from repro.geometry.mbr import MBR
from repro.geometry.trajectory import Trajectory
from repro.index.bounds import SpaceBounds
from repro.index.quadrant import ROOT, Element, smallest_enlarged_element
from repro.index.ranges import IndexRange, merge_ranges, merge_values_to_ranges

MAX_SUPPORTED_RESOLUTION = 30


@dataclass(frozen=True)
class XZ2IndexedTrajectory:
    """The XZ2 placement of one trajectory."""

    tid: str
    element: Element
    value: int


class XZ2Index:
    """Plain XZ-Ordering over a world extent at fixed maximum resolution."""

    def __init__(
        self,
        max_resolution: int = 16,
        bounds: Optional[SpaceBounds] = None,
    ):
        if not 1 <= max_resolution <= MAX_SUPPORTED_RESOLUTION:
            raise IndexingError(
                f"max resolution must be in 1..{MAX_SUPPORTED_RESOLUTION}, "
                f"got {max_resolution}"
            )
        self.max_resolution = max_resolution
        self.bounds = bounds if bounds is not None else SpaceBounds.whole_earth()
        # _subtree[l] = number of sequences in the subtree of a length-l
        # sequence, itself included: (4^(r-l+1) - 1) / 3.
        self._subtree: Dict[int, int] = {
            level: (4 ** (max_resolution - level + 1) - 1) // 3
            for level in range(1, max_resolution + 1)
        }
        self.root_block_start = 4 * self._subtree[1]

    @property
    def total_elements(self) -> int:
        return self.root_block_start + 1

    # ------------------------------------------------------------------
    def value(self, element: Element) -> int:
        """The integer key of an element's sequence."""
        if element.level > self.max_resolution:
            raise EncodingError(
                f"element level {element.level} exceeds max resolution "
                f"{self.max_resolution}"
            )
        if element.level == 0:
            return self.root_block_start
        total = 0
        for depth, digit in enumerate(element.sequence, start=1):
            total += digit * self._subtree[depth]
        return total + (element.level - 1)

    def subtree_span(self, element: Element) -> Tuple[int, int]:
        """Half-open value range of the element's whole subtree."""
        if element.level == 0:
            return 0, self.root_block_start
        start = self.value(element)
        return start, start + self._subtree[element.level]

    def decode(self, value: int) -> Element:
        """Inverse of :meth:`value`."""
        if not 0 <= value <= self.root_block_start:
            raise EncodingError(
                f"index value {value} out of range 0..{self.root_block_start}"
            )
        if value == self.root_block_start:
            return ROOT
        digits: List[int] = []
        v = value
        level = 0
        while True:
            level += 1
            n = self._subtree[level]
            q = min(3, v // n)
            v -= q * n
            digits.append(q)
            if v == 0:
                break
            v -= 1  # skip the element's own value before descending
        return Element.from_sequence(tuple(digits))

    # ------------------------------------------------------------------
    def place(self, trajectory: Trajectory) -> Element:
        """The smallest enlarged element of a trajectory (Lemmas 1-2)."""
        norm_points = [self.bounds.normalize(x, y) for x, y in trajectory.points]
        mbr = MBR.of_points(norm_points)
        return smallest_enlarged_element(mbr, self.max_resolution)

    def index(self, trajectory: Trajectory) -> XZ2IndexedTrajectory:
        element = self.place(trajectory)
        return XZ2IndexedTrajectory(trajectory.tid, element, self.value(element))

    def element_world_mbr(self, element: Element) -> MBR:
        """The enlarged element's rectangle in world coordinates."""
        lo = self.bounds.denormalize(*element.enlarged_mbr().lower_left)
        hi = self.bounds.denormalize(*element.enlarged_mbr().upper_right)
        return MBR(lo[0], lo[1], hi[0], hi[1])

    # ------------------------------------------------------------------
    def window_ranges(
        self, window: MBR, max_visits: int = 4096
    ) -> List[IndexRange]:
        """Scan ranges of every element whose enlarged element intersects
        the world-space ``window``.

        This is the entire pruning power XZ-Ordering offers: it cannot
        reason about resolution bands or trajectory shape, which is what
        the paper's global-pruning comparison exploits.

        ``max_visits`` caps planner work the way GeoMesa's bounded
        recursion does: past the budget, remaining frontier elements
        collapse into whole-subtree ranges (a superset — extra rows are
        discarded by the client-side filters).
        """
        norm = self.bounds.normalize_mbr(window)
        values: List[int] = [self.root_block_start]  # root EE covers all
        ranges: List[IndexRange] = []
        stack = [e for e in ROOT.children()]
        visits = 0
        while stack:
            element = stack.pop()
            visits += 1
            enlarged = element.enlarged_mbr()
            if not enlarged.intersects(norm):
                continue
            if norm.contains(enlarged) or visits > max_visits:
                ranges.append(IndexRange(*self.subtree_span(element)))
                continue
            values.append(self.value(element))
            if element.level < self.max_resolution:
                stack.extend(element.children())
        return merge_ranges(merge_values_to_ranges(values) + ranges)
