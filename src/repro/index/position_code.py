"""Position codes — the fine-grained half of the XZ* index (Section IV-B).

An enlarged element is divided evenly into four sub-quads::

        +-------+-------+
        |   b   |   d   |
        +-------+-------+
        |   a   |   c   |        a = the base quad-tree cell
        +-------+-------+

A trajectory whose MBR is covered by the element touches one of exactly
ten sub-quad combinations (the MBR's lower-left corner always lies in
quad ``a``, see the proof sketch under Figure 3(d)), and each
combination is a *position code*:

    1 = {a,b}    2 = {a,c}     3 = {a,d}      4 = {a,c,d}   5 = {a,b,c}
    6 = {a,b,c,d}  7 = {a,b,d}  8 = {b,c}     9 = {b,c,d}   10 = {a}

Code 10 only occurs at the maximum resolution: at any coarser
resolution a trajectory contained in a single sub-quad would have been
assigned a deeper enlarged element (Lemma 6's precondition).

This exact code assignment reproduces the paper's worked pruning
arithmetic: pruning every code touching quad ``c`` removes codes
``{2, 4, 5, 6, 8, 9}`` (60% of ten), pruning ``b`` and ``c`` keeps only
``{3, 10}``, and so on.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Sequence, Tuple

from repro.exceptions import IndexingError
from repro.geometry.mbr import MBR
from repro.index.quadrant import Element

Quad = str  # 'a' | 'b' | 'c' | 'd'

#: position code -> the sub-quads its index space consists of
CODE_QUADS: Dict[int, FrozenSet[Quad]] = {
    1: frozenset("ab"),
    2: frozenset("ac"),
    3: frozenset("ad"),
    4: frozenset("acd"),
    5: frozenset("abc"),
    6: frozenset("abcd"),
    7: frozenset("abd"),
    8: frozenset("bc"),
    9: frozenset("bcd"),
    10: frozenset("a"),
}

#: inverse mapping, sub-quad combination -> position code
QUADS_TO_CODE: Dict[FrozenSet[Quad], int] = {v: k for k, v in CODE_QUADS.items()}

#: codes legal below the maximum resolution (all but {a})
NON_MAX_CODES: Tuple[int, ...] = tuple(sorted(set(CODE_QUADS) - {10}))
ALL_CODES: Tuple[int, ...] = tuple(sorted(CODE_QUADS))

#: number of index spaces per element: 9 below max resolution, 10 at it
CODES_PER_ELEMENT = len(NON_MAX_CODES)
CODES_PER_MAX_ELEMENT = len(ALL_CODES)


def quad_rects(element: Element) -> Dict[Quad, MBR]:
    """Unit-space rectangles of the four sub-quads of an element.

    Quads ``b``/``c``/``d`` of elements on the top/right border overhang
    the unit square, exactly like the enlarged element itself.
    """
    w = element.cell_width
    x0, y0 = element.ix * w, element.iy * w
    return {
        "a": MBR(x0, y0, x0 + w, y0 + w),
        "b": MBR(x0, y0 + w, x0 + w, y0 + 2 * w),
        "c": MBR(x0 + w, y0, x0 + 2 * w, y0 + w),
        "d": MBR(x0 + w, y0 + w, x0 + 2 * w, y0 + 2 * w),
    }


def _classify_point(x: float, y: float, x0: float, y0: float, w: float) -> Quad:
    """The sub-quad containing a point of the enlarged element.

    Points exactly on the internal boundary belong to the lower/left
    quad.  That convention matches the *closed* fit test of Lemma 2
    (``smallest_enlarged_element``), which is what guarantees that a
    trajectory confined to quad ``a`` below the maximum resolution is
    impossible — including for points clamped onto the space boundary
    (e.g. a stationary ping at latitude exactly +90).
    """
    right = x > x0 + w
    top = y > y0 + w
    if right:
        return "d" if top else "c"
    return "b" if top else "a"


def touched_quads(
    points: Sequence[Tuple[float, float]], element: Element
) -> FrozenSet[Quad]:
    """The set of sub-quads containing at least one trajectory point."""
    w = element.cell_width
    x0, y0 = element.ix * w, element.iy * w
    return frozenset(_classify_point(x, y, x0, y0, w) for x, y in points)


def position_code_of(
    points: Sequence[Tuple[float, float]],
    element: Element,
    max_resolution: int,
) -> int:
    """The position code of a trajectory inside its enlarged element.

    ``points`` must be normalised to unit space and ``element`` must be
    the trajectory's smallest enlarged element — under those conditions
    the touched combination is always one of the ten legal codes.
    """
    quads = touched_quads(points, element)
    try:
        code = QUADS_TO_CODE[quads]
    except KeyError:
        raise IndexingError(
            f"trajectory touches illegal sub-quad combination "
            f"{sorted(quads)} of element {element.sequence_str!r}; "
            "was the element computed with smallest_enlarged_element?"
        ) from None
    if code == 10 and element.level < max_resolution:
        raise IndexingError(
            "single-quad combination {a} below the maximum resolution; "
            "the enlarged element is not the smallest one"
        )
    return code


def codes_for_element(element: Element, max_resolution: int) -> Tuple[int, ...]:
    """Legal position codes for an element: 9 normally, 10 at max depth."""
    if element.level >= max_resolution:
        return ALL_CODES
    return NON_MAX_CODES


def codes_avoiding(
    far_quads: Iterable[Quad], element: Element, max_resolution: int
) -> List[int]:
    """Codes whose index space avoids every quad in ``far_quads``.

    This is Lemma 10: if a sub-quad is provably farther than ``eps``
    from the query, no trajectory stored under a code containing it can
    be an answer, so only the avoiding codes survive.
    """
    far = frozenset(far_quads)
    return [
        code
        for code in codes_for_element(element, max_resolution)
        if not (CODE_QUADS[code] & far)
    ]


def index_space_rects(element: Element, code: int) -> List[MBR]:
    """The rectangles making up the index space ``(element, code)``."""
    try:
        quads = CODE_QUADS[code]
    except KeyError:
        raise IndexingError(f"position code {code} out of range 1..10") from None
    rects = quad_rects(element)
    return [rects[q] for q in sorted(quads)]
