"""Spatial indexes: the paper's XZ* and the XZ-Ordering (XZ2) baseline.

The XZ* index (Section IV) represents a trajectory by the pair
``(quadrant sequence, position code)`` — the smallest *enlarged element*
covering the trajectory's MBR plus the combination of the element's four
sub-quads the trajectory actually touches — and maps every such index
space to a unique 64-bit integer with the bijection of Definition 5.

``xz2`` implements plain XZ-Ordering (as used by GeoMesa / JUST /
TrajMesa) over the same machinery so the paper's index-level comparisons
can run on identical substrate.
"""

from repro.index.bounds import SpaceBounds
from repro.index.quadrant import Element, smallest_enlarged_element
from repro.index.position_code import (
    CODE_QUADS,
    QUADS_TO_CODE,
    position_code_of,
    quad_rects,
    codes_avoiding,
)
from repro.index.xzstar import XZStarIndex, IndexedTrajectory
from repro.index.xz2 import XZ2Index
from repro.index.ranges import IndexRange, merge_values_to_ranges, merge_ranges
from repro.index.analysis import PlanQualityReport, analyse_plans, fragmentation_vs_merge_gap

__all__ = [
    "SpaceBounds",
    "Element",
    "smallest_enlarged_element",
    "CODE_QUADS",
    "QUADS_TO_CODE",
    "position_code_of",
    "quad_rects",
    "codes_avoiding",
    "XZStarIndex",
    "IndexedTrajectory",
    "XZ2Index",
    "IndexRange",
    "merge_values_to_ranges",
    "merge_ranges",
    "PlanQualityReport",
    "analyse_plans",
    "fragmentation_vs_merge_gap",
]
