"""Contiguous index-value ranges.

Global pruning emits individual index values; the scanner wants as few
key-range scans as possible ("using the simple concatenation will make
the encoding discontinuous, which will increase the number of key range
searches", Section IV-C).  Because the XZ* encoding numbers index spaces
depth-first, values accepted together are frequently adjacent, and
merging them recovers long contiguous scans.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence


@dataclass(frozen=True, order=True)
class IndexRange:
    """A half-open range ``[start, stop)`` of index values."""

    start: int
    stop: int

    def __post_init__(self) -> None:
        if self.start >= self.stop:
            raise ValueError(f"empty index range [{self.start}, {self.stop})")

    def __len__(self) -> int:
        return self.stop - self.start

    def contains(self, value: int) -> bool:
        return self.start <= value < self.stop

    def overlaps(self, other: "IndexRange") -> bool:
        return self.start < other.stop and other.start < self.stop

    def touches(self, other: "IndexRange") -> bool:
        """Overlapping or exactly adjacent (mergeable)."""
        return self.start <= other.stop and other.start <= self.stop


def merge_values_to_ranges(values: Iterable[int], gap: int = 0) -> List[IndexRange]:
    """Merge sorted-or-not index values into maximal half-open ranges.

    ``gap`` allows bridging small holes: two runs separated by at most
    ``gap`` values are merged into one scan.  Bridging trades a few
    false-positive rows (filtered later anyway) for fewer range seeks —
    the same trade HBase scan planning makes.
    """
    ordered = sorted(set(values))
    if not ordered:
        return []
    out: List[IndexRange] = []
    run_start = prev = ordered[0]
    for v in ordered[1:]:
        if v <= prev + 1 + gap:
            prev = v
            continue
        out.append(IndexRange(run_start, prev + 1))
        run_start = prev = v
    out.append(IndexRange(run_start, prev + 1))
    return out


def merge_ranges(ranges: Sequence[IndexRange]) -> List[IndexRange]:
    """Normalise a range list: sort and merge everything that touches."""
    if not ranges:
        return []
    ordered = sorted(ranges)
    out = [ordered[0]]
    for r in ordered[1:]:
        last = out[-1]
        if r.touches(last):
            if r.stop > last.stop:
                out[-1] = IndexRange(last.start, r.stop)
        else:
            out.append(r)
    return out


def total_span(ranges: Sequence[IndexRange]) -> int:
    """Total number of index values covered by a normalised range list."""
    return sum(len(r) for r in merge_ranges(list(ranges)))
