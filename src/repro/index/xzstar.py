"""The XZ* index: indexing plus the bijective integer encoding.

Encoding (Section IV-C).  Index spaces are numbered depth-first so that
sequences sharing a longer prefix get closer numbers, and an element's
own nine (ten, at the maximum resolution ``r``) position codes come
before its children's subtrees.  With

    N_is(l) = 13 * 4^(r - l) - 3        (Lemma 4)

the subtree of a sequence ``s = q_1 .. q_l`` starts at
``sum_i q_i * N_is(i) + 9 * (l - 1)`` and the index value is

    V(s, p) = sum_i q_i * N_is(i) + 9 * (l - 1) + (p - 1)   (Definition 5)

which reproduces the paper's worked example ``V('03', 2) = 40`` and
``V('03', 7) = 45`` for ``r = 2``.

The paper leaves length-0 sequences (trajectories spanning more than
half the space) unencoded; we place the root element's nine codes in a
tail block starting at ``13 * 4^r - 12`` so the function stays a
bijection over *every* index space.

The total number of index spaces is ``13 * 4^r - 12`` (+ 9 for the root
block); ``r <= 28`` keeps every value within a signed 64-bit integer,
matching the paper's 8-byte row-key claim.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.exceptions import EncodingError, IndexingError
from repro.geometry.mbr import MBR
from repro.geometry.trajectory import Trajectory
from repro.index.bounds import SpaceBounds
from repro.index.position_code import (
    ALL_CODES,
    CODES_PER_ELEMENT,
    CODES_PER_MAX_ELEMENT,
    NON_MAX_CODES,
    position_code_of,
    quad_rects,
    index_space_rects,
)
from repro.index.quadrant import ROOT, Element, smallest_enlarged_element

MAX_SUPPORTED_RESOLUTION = 28


@dataclass(frozen=True)
class IndexedTrajectory:
    """The XZ* placement of one trajectory."""

    tid: str
    element: Element
    position_code: int
    value: int


class XZStarIndex:
    """XZ* index over a world extent at a fixed maximum resolution.

    The instance is stateless apart from its parameters — the paper's
    point about static indexes (Figure 13) is precisely that placement
    is a pure function of the trajectory, so there is no structure to
    rebalance while ingesting.
    """

    def __init__(
        self,
        max_resolution: int = 16,
        bounds: Optional[SpaceBounds] = None,
    ):
        if not 1 <= max_resolution <= MAX_SUPPORTED_RESOLUTION:
            raise IndexingError(
                f"max resolution must be in 1..{MAX_SUPPORTED_RESOLUTION}, "
                f"got {max_resolution}"
            )
        self.max_resolution = max_resolution
        self.bounds = bounds if bounds is not None else SpaceBounds.whole_earth()
        # N_is per level, 1-based: _n_is[l] = 13 * 4^(r-l) - 3.
        self._n_is: Dict[int, int] = {
            level: 13 * 4 ** (max_resolution - level) - 3
            for level in range(1, max_resolution + 1)
        }
        #: first value of the root element's tail block
        self.root_block_start = 13 * 4**max_resolution - 12

    # ------------------------------------------------------------------
    # Counting (Lemmas 3-4)
    # ------------------------------------------------------------------
    def n_quadrant_sequences(self, at_level: int, prefix_level: int) -> int:
        """Lemma 3: sequences at ``at_level`` sharing a given prefix."""
        if not 0 <= prefix_level <= at_level <= self.max_resolution:
            raise IndexingError(
                f"levels out of range: prefix {prefix_level}, at {at_level}"
            )
        return 4 ** (at_level - prefix_level)

    def n_index_spaces(self, level: int) -> int:
        """Lemma 4: index spaces in the subtree of a level-``level`` sequence."""
        try:
            return self._n_is[level]
        except KeyError:
            raise IndexingError(
                f"level {level} out of range 1..{self.max_resolution}"
            ) from None

    @property
    def total_index_spaces(self) -> int:
        """All encodable index spaces, including the root tail block."""
        return self.root_block_start + CODES_PER_ELEMENT

    # ------------------------------------------------------------------
    # Encoding (Definition 5) and its inverse
    # ------------------------------------------------------------------
    def _check_code(self, element: Element, code: int) -> None:
        if element.level >= self.max_resolution:
            legal = ALL_CODES
        else:
            legal = NON_MAX_CODES
        if code not in legal:
            raise EncodingError(
                f"position code {code} illegal at level {element.level} "
                f"(max resolution {self.max_resolution})"
            )

    def value(self, element: Element, code: int) -> int:
        """``V(s, p)`` — the integer key of an index space."""
        if element.level > self.max_resolution:
            raise EncodingError(
                f"element level {element.level} exceeds max resolution "
                f"{self.max_resolution}"
            )
        self._check_code(element, code)
        if element.level == 0:
            return self.root_block_start + (code - 1)
        total = 0
        for depth, digit in enumerate(element.sequence, start=1):
            total += digit * self._n_is[depth]
        total += CODES_PER_ELEMENT * (element.level - 1)
        return total + (code - 1)

    def subtree_start(self, element: Element) -> int:
        """First value of the element's own code block (depth-first)."""
        if element.level == 0:
            return 0
        return self.value(element, 1)

    def subtree_span(self, element: Element) -> Tuple[int, int]:
        """Half-open value range covering the element's whole subtree.

        The root's span covers the main block only; its tail block is
        separate by construction.
        """
        if element.level == 0:
            return 0, self.root_block_start
        start = self.subtree_start(element)
        return start, start + self._n_is[element.level]

    def decode(self, value: int) -> Tuple[Element, int]:
        """Inverse of :meth:`value`: index value -> (element, code)."""
        if not 0 <= value < self.total_index_spaces:
            raise EncodingError(
                f"index value {value} out of range 0..{self.total_index_spaces - 1}"
            )
        if value >= self.root_block_start:
            return ROOT, value - self.root_block_start + 1
        digits: List[int] = []
        v = value
        level = 0
        while True:
            level += 1
            n = self._n_is[level]
            q = v // n
            if q > 3:  # can only happen at level 1 for the tail block,
                q = 3  # which was handled above; keep defensive clamp
            v -= q * n
            digits.append(q)
            if level == self.max_resolution:
                code = v + 1
                break
            if v < CODES_PER_ELEMENT:
                code = v + 1
                break
            v -= CODES_PER_ELEMENT
        element = Element.from_sequence(tuple(digits))
        self._check_code(element, code)
        return element, code

    # ------------------------------------------------------------------
    # Indexing a trajectory
    # ------------------------------------------------------------------
    def place(self, trajectory: Trajectory) -> Tuple[Element, int]:
        """The (element, position code) pair of a trajectory."""
        norm_points = [self.bounds.normalize(x, y) for x, y in trajectory.points]
        mbr = MBR.of_points(norm_points)
        element = smallest_enlarged_element(mbr, self.max_resolution)
        code = position_code_of(norm_points, element, self.max_resolution)
        return element, code

    def index(self, trajectory: Trajectory) -> IndexedTrajectory:
        """Index one trajectory: its element, position code and value."""
        element, code = self.place(trajectory)
        return IndexedTrajectory(
            trajectory.tid, element, code, self.value(element, code)
        )

    # ------------------------------------------------------------------
    # World-space geometry helpers (for pruning)
    # ------------------------------------------------------------------
    def element_world_mbr(self, element: Element) -> MBR:
        """The enlarged element's rectangle in world coordinates."""
        return self._denorm(element.enlarged_mbr())

    def quad_world_rects(self, element: Element) -> Dict[str, MBR]:
        """World rectangles of the element's four sub-quads."""
        return {q: self._denorm(r) for q, r in quad_rects(element).items()}

    def index_space_world_rects(self, element: Element, code: int) -> List[MBR]:
        """World rectangles of an index space (a union of sub-quads)."""
        return [self._denorm(r) for r in index_space_rects(element, code)]

    def _denorm(self, rect: MBR) -> MBR:
        lo = self.bounds.denormalize(rect.min_x, rect.min_y)
        hi = self.bounds.denormalize(rect.max_x, rect.max_y)
        return MBR(lo[0], lo[1], hi[0], hi[1])

    # ------------------------------------------------------------------
    # Spatial range query support (mentioned in the paper's conclusion)
    # ------------------------------------------------------------------
    def range_query_ranges(
        self, window: MBR, max_visits: int = 4096
    ) -> List["IndexRange"]:
        """Scan ranges covering every index space that may hold a
        trajectory intersecting the world-space ``window``.

        A trajectory intersecting the window has at least one point in
        it; that point lies in some sub-quad of the trajectory's index
        space, so any index space whose rectangles all miss the window
        can be skipped.  Elements whose cell lies entirely inside the
        window collapse to a single whole-subtree range (the GeoMesa
        trick), which keeps traversal proportional to the window's
        perimeter rather than its area.
        """
        from repro.index.position_code import CODE_QUADS
        from repro.index.ranges import IndexRange, merge_ranges

        norm = self.bounds.normalize_mbr(window)
        values: List[int] = []
        ranges: List[IndexRange] = []
        stack = [ROOT]
        visits = 0
        while stack:
            element = stack.pop()
            visits += 1
            enlarged = element.enlarged_mbr()
            if not enlarged.intersects(norm):
                continue
            if element.level > 0 and (
                norm.contains(enlarged) or visits > max_visits
            ):
                # Every index space in the subtree may intersect the
                # window: emit one contiguous scan for the whole block.
                ranges.append(IndexRange(*self.subtree_span(element)))
                continue
            rects = quad_rects(element)
            if element.level >= self.max_resolution:
                codes: Tuple[int, ...] = ALL_CODES
            else:
                codes = NON_MAX_CODES
            for code in codes:
                if any(rects[q].intersects(norm) for q in CODE_QUADS[code]):
                    values.append(self.value(element, code))
            if element.level < self.max_resolution:
                stack.extend(element.children())
        from repro.index.ranges import merge_values_to_ranges

        return merge_ranges(merge_values_to_ranges(values) + ranges)
