"""Plan-quality analysis.

Tools to quantify how well the XZ* planner serves a workload: how
fragmented the scan plans are (ranges per query — the property the
depth-first encoding exists to minimise), how much of the scanned data
is useful (rows covered vs. answers), and where queries land in the
resolution hierarchy.  Used for tuning ``max_resolution`` and
``range_merge_gap`` on a new dataset.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.geometry.trajectory import Trajectory


@dataclass
class PlanQualityReport:
    """Aggregate planner statistics over a workload."""

    queries: int
    #: scan ranges per query (fragmentation; fewer = fewer seeks)
    mean_ranges: float
    max_ranges: int
    #: index spaces covered per query
    mean_index_spaces: float
    #: stored rows inside the plan per query
    mean_rows_covered: float
    #: fraction of plans that hit the planner budget
    truncated_fraction: float
    #: resolution band histogram over queries: (min_r, max_r) pairs
    band_histogram: Dict[str, int] = field(default_factory=dict)

    def summary(self) -> str:
        lines = [
            f"queries analysed:      {self.queries}",
            f"ranges/query:          {self.mean_ranges:.1f} "
            f"(max {self.max_ranges})",
            f"index spaces/query:    {self.mean_index_spaces:.1f}",
            f"rows covered/query:    {self.mean_rows_covered:.1f}",
            f"truncated plans:       {self.truncated_fraction:.0%}",
            "resolution bands:",
        ]
        for band, count in sorted(self.band_histogram.items()):
            lines.append(f"  [{band}]: {count}")
        return "\n".join(lines)


def analyse_plans(
    engine, queries: Sequence[Trajectory], eps: float
) -> PlanQualityReport:
    """Plan every query (no scanning) and aggregate plan quality."""
    ranges_counts: List[int] = []
    space_counts: List[int] = []
    rows_covered: List[int] = []
    truncated = 0
    bands: Dict[str, int] = {}
    histogram = engine.store.value_histogram
    for query in queries:
        plan = engine.pruner.prune(query, eps)
        ranges_counts.append(len(plan.ranges))
        space_counts.append(plan.num_index_spaces)
        covered = sum(
            count
            for value, count in histogram.items()
            if any(r.contains(value) for r in plan.ranges)
        )
        rows_covered.append(covered)
        if plan.truncated:
            truncated += 1
        band = f"{plan.min_resolution}-{plan.max_resolution}"
        bands[band] = bands.get(band, 0) + 1
    n = len(queries)
    return PlanQualityReport(
        queries=n,
        mean_ranges=statistics.fmean(ranges_counts) if n else 0.0,
        max_ranges=max(ranges_counts, default=0),
        mean_index_spaces=statistics.fmean(space_counts) if n else 0.0,
        mean_rows_covered=statistics.fmean(rows_covered) if n else 0.0,
        truncated_fraction=truncated / n if n else 0.0,
        band_histogram=bands,
    )


def fragmentation_vs_merge_gap(
    engine, queries: Sequence[Trajectory], eps: float, gaps: Sequence[int]
) -> Dict[int, float]:
    """Mean ranges per query as a function of the range-merge gap.

    Bridging small holes trades a few junk rows for fewer range seeks
    (Section IV-C's continuity argument); this sweep quantifies that
    trade on real plans.
    """
    from repro.index.ranges import merge_values_to_ranges

    out: Dict[int, float] = {}
    plans = [engine.pruner.prune(q, eps) for q in queries]
    for gap in gaps:
        counts = []
        for plan in plans:
            counts.append(len(merge_values_to_ranges(plan.values, gap=gap)))
        out[gap] = statistics.fmean(counts) if counts else 0.0
    return out
