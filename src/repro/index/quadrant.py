"""Quadrant sequences and enlarged elements (Section IV-B).

An *element* is a node of the implicit quad tree, identified by its
resolution ``level`` and its cell coordinates ``(ix, iy)`` with
``0 <= ix, iy < 2^level``.  The equivalent *quadrant sequence* is the
digit string read root-to-leaf; digits follow the reversed-Z order

    0 = (left, bottom)   1 = (left, top)
    2 = (right, bottom)  3 = (right, top)

so digit ``q`` contributes bit ``q >> 1`` to ``ix`` and bit ``q & 1`` to
``iy``.  The *enlarged element* doubles the cell toward the upper-right
corner (Figure 3(c)).

``smallest_enlarged_element`` implements Lemmas 1-2: the smallest
enlarged element covering an MBR is anchored at the cell containing the
MBR's lower-left corner, at resolution ``l`` or ``l + 1`` where
``l = floor(log2(1 / max(width, height)))``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, List, Tuple

from repro.exceptions import IndexingError
from repro.geometry.mbr import MBR


@dataclass(frozen=True, order=True)
class Element:
    """A quad-tree cell identified by (level, ix, iy), all in unit space."""

    level: int
    ix: int
    iy: int

    def __post_init__(self) -> None:
        side = 1 << self.level
        if self.level < 0:
            raise IndexingError(f"negative level {self.level}")
        if not (0 <= self.ix < side and 0 <= self.iy < side):
            raise IndexingError(
                f"cell ({self.ix}, {self.iy}) out of range for level {self.level}"
            )

    # ------------------------------------------------------------------
    # Sequence <-> cell conversions
    # ------------------------------------------------------------------
    @staticmethod
    def from_sequence(digits: Tuple[int, ...]) -> "Element":
        """Build an element from its quadrant-sequence digits."""
        ix = iy = 0
        for q in digits:
            if not 0 <= q <= 3:
                raise IndexingError(f"quadrant digit {q} out of range 0..3")
            ix = (ix << 1) | (q >> 1)
            iy = (iy << 1) | (q & 1)
        return Element(len(digits), ix, iy)

    @property
    def sequence(self) -> Tuple[int, ...]:
        """The quadrant-sequence digits of this element (root-first)."""
        digits: List[int] = []
        for bit in range(self.level - 1, -1, -1):
            dx = (self.ix >> bit) & 1
            dy = (self.iy >> bit) & 1
            digits.append((dx << 1) | dy)
        return tuple(digits)

    @property
    def sequence_str(self) -> str:
        """The sequence as a digit string, e.g. ``'03'``."""
        return "".join(str(q) for q in self.sequence)

    @staticmethod
    def from_sequence_str(s: str) -> "Element":
        return Element.from_sequence(tuple(int(ch) for ch in s))

    # ------------------------------------------------------------------
    # Geometry (unit space)
    # ------------------------------------------------------------------
    @property
    def cell_width(self) -> float:
        return 0.5**self.level

    def cell_mbr(self) -> MBR:
        """The quad-tree cell itself."""
        w = self.cell_width
        return MBR(self.ix * w, self.iy * w, (self.ix + 1) * w, (self.iy + 1) * w)

    def enlarged_mbr(self) -> MBR:
        """The enlarged element: the cell doubled toward the upper-right.

        May extend past the unit square on the top/right — XZ-Ordering
        allows that; the overhang simply never contains data.
        """
        w = self.cell_width
        return MBR(self.ix * w, self.iy * w, (self.ix + 2) * w, (self.iy + 2) * w)

    # ------------------------------------------------------------------
    # Tree navigation
    # ------------------------------------------------------------------
    def children(self) -> List["Element"]:
        """The four children in quadrant-digit order (0, 1, 2, 3)."""
        lv, bx, by = self.level + 1, self.ix << 1, self.iy << 1
        return [
            Element(lv, bx, by),
            Element(lv, bx, by + 1),
            Element(lv, bx + 1, by),
            Element(lv, bx + 1, by + 1),
        ]

    def child(self, q: int) -> "Element":
        if not 0 <= q <= 3:
            raise IndexingError(f"quadrant digit {q} out of range 0..3")
        return Element(self.level + 1, (self.ix << 1) | (q >> 1), (self.iy << 1) | (q & 1))

    def parent(self) -> "Element":
        if self.level == 0:
            raise IndexingError("the root element has no parent")
        return Element(self.level - 1, self.ix >> 1, self.iy >> 1)

    def ancestors(self) -> Iterator["Element"]:
        """Proper ancestors, nearest first, ending at the root."""
        node = self
        while node.level > 0:
            node = node.parent()
            yield node

    def is_ancestor_of(self, other: "Element") -> bool:
        if other.level < self.level:
            return False
        shift = other.level - self.level
        return (other.ix >> shift) == self.ix and (other.iy >> shift) == self.iy


ROOT = Element(0, 0, 0)


def _cell_coordinate(value: float, level: int) -> int:
    """The cell index along one axis containing ``value`` at ``level``.

    Values exactly at the top/right boundary (1.0) clamp into the last
    cell so boundary points always belong to a real cell.
    """
    side = 1 << level
    idx = int(value * side)
    if idx >= side:
        idx = side - 1
    if idx < 0:
        idx = 0
    return idx


def _fits(mbr: MBR, level: int) -> bool:
    """True if the enlarged element at ``level`` anchored at the cell
    containing ``mbr``'s lower-left corner covers ``mbr`` (Lemma 2)."""
    w = 0.5**level
    cx = _cell_coordinate(mbr.min_x, level)
    cy = _cell_coordinate(mbr.min_y, level)
    return mbr.max_x <= (cx + 2) * w and mbr.max_y <= (cy + 2) * w


def smallest_enlarged_element(mbr: MBR, max_resolution: int) -> Element:
    """The smallest enlarged element covering ``mbr`` (Lemmas 1-2).

    ``mbr`` must be normalised to the unit square.  Degenerate MBRs
    (stationary trajectories) land at the maximum resolution, which is
    what produces the paper's Figure 12(a) peak.
    """
    if max_resolution < 1:
        raise IndexingError(f"max resolution must be >= 1, got {max_resolution}")
    max_dim = max(mbr.width, mbr.height)
    if max_dim <= 0.0:
        level = max_resolution
    else:
        # Largest l with 2^-l >= max_dim; at that resolution the fit is
        # guaranteed, and Lemma 1 says only l and l + 1 are possible.
        level = min(max_resolution, max(0, int(math.floor(-math.log2(max_dim)))))
        # Guard against floating-point log edge cases in both directions;
        # mathematically only l and l + 1 are possible (Lemma 1), so each
        # loop runs at most a step or two.
        while level > 0 and not _fits(mbr, level):
            level -= 1
        while level < max_resolution and _fits(mbr, level + 1):
            level += 1
    cx = _cell_coordinate(mbr.min_x, level)
    cy = _cell_coordinate(mbr.min_y, level)
    return Element(level, cx, cy)
