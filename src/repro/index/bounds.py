"""World-to-unit-square normalisation.

The XZ* math lives in the unit square ("we normalize the entire space
range to an interval of 0-1", Section IV-B).  ``SpaceBounds`` is the
affine bridge between world coordinates (e.g. lon/lat) and that square.
The paper's default instantiation covers the whole earth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.exceptions import GeometryError
from repro.geometry.mbr import MBR


@dataclass(frozen=True)
class SpaceBounds:
    """An axis-aligned world extent mapped onto the unit square."""

    min_x: float = -180.0
    min_y: float = -90.0
    max_x: float = 180.0
    max_y: float = 90.0

    def __post_init__(self) -> None:
        if self.min_x >= self.max_x or self.min_y >= self.max_y:
            raise GeometryError(
                f"degenerate space bounds ({self.min_x}, {self.min_y}) .. "
                f"({self.max_x}, {self.max_y})"
            )

    @staticmethod
    def whole_earth() -> "SpaceBounds":
        """The paper's default: the index space covers the earth."""
        return SpaceBounds(-180.0, -90.0, 180.0, 90.0)

    @property
    def width(self) -> float:
        return self.max_x - self.min_x

    @property
    def height(self) -> float:
        return self.max_y - self.min_y

    # ------------------------------------------------------------------
    def normalize(self, x: float, y: float) -> Tuple[float, float]:
        """World point -> unit-square point (clamped to [0, 1])."""
        nx = (x - self.min_x) / self.width
        ny = (y - self.min_y) / self.height
        return min(max(nx, 0.0), 1.0), min(max(ny, 0.0), 1.0)

    def denormalize(self, nx: float, ny: float) -> Tuple[float, float]:
        """Unit-square point -> world point."""
        return self.min_x + nx * self.width, self.min_y + ny * self.height

    def normalize_mbr(self, mbr: MBR) -> MBR:
        lo = self.normalize(mbr.min_x, mbr.min_y)
        hi = self.normalize(mbr.max_x, mbr.max_y)
        return MBR(lo[0], lo[1], hi[0], hi[1])

    def normalize_length(self, d: float) -> float:
        """Conservative world length -> unit length conversion.

        A threshold ``eps`` is isotropic in world space but the bounds
        may be anisotropic; using the *larger* scale factor keeps every
        distance-based pruning bound sound (it can only widen windows).
        """
        return d / min(self.width, self.height)

    def contains(self, x: float, y: float) -> bool:
        return self.min_x <= x <= self.max_x and self.min_y <= y <= self.max_y
