"""Alternative polyline simplifiers.

Douglas-Peucker (the paper's choice) is offline and O(n^2) worst case.
Two standard streaming alternatives are provided for comparison and for
ingest pipelines that cannot buffer whole trajectories:

* **sliding window** — grow a window from an anchor; emit the previous
  point when the chord error first exceeds ``theta``;
* **opening window** (a.k.a. Before-Opening-Window) — like sliding
  window but re-checks every buffered point against the current chord.

Both guarantee the same error contract as DP — every dropped point is
within ``theta`` of the chord covering it — so
:func:`repro.features.dp_features.extract_dp_features` accepts their
output interchangeably via the ``indexes`` hook.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.geometry.distance import point_segment_distance

PointTuple = Tuple[float, float]


def sliding_window(points: Sequence[PointTuple], theta: float) -> List[int]:
    """Streaming simplification: emitted indexes, endpoints included.

    Greedy: anchor at the last emitted point; extend the window while
    every interior point stays within ``theta`` of the chord
    anchor->candidate; on violation emit the previous candidate and
    re-anchor there.
    """
    if theta < 0:
        raise ValueError(f"tolerance must be non-negative, got {theta}")
    n = len(points)
    if n == 0:
        raise ValueError("cannot simplify zero points")
    if n <= 2:
        return list(range(n))
    kept = [0]
    anchor = 0
    candidate = 1
    while candidate < n - 1:
        nxt = candidate + 1
        chord_ok = all(
            point_segment_distance(points[i], points[anchor], points[nxt])
            <= theta
            for i in range(anchor + 1, nxt)
        )
        if chord_ok:
            candidate = nxt
        else:
            kept.append(candidate)
            anchor = candidate
            candidate = anchor + 1
    kept.append(n - 1)
    return kept


def opening_window(points: Sequence[PointTuple], theta: float) -> List[int]:
    """Opening-window simplification: emitted indexes.

    Equivalent loop structure to :func:`sliding_window` but on
    violation it re-anchors at the *violating* point's predecessor and
    keeps scanning, which tends to keep slightly fewer points on smooth
    curves.
    """
    if theta < 0:
        raise ValueError(f"tolerance must be non-negative, got {theta}")
    n = len(points)
    if n == 0:
        raise ValueError("cannot simplify zero points")
    if n <= 2:
        return list(range(n))
    kept = [0]
    anchor = 0
    window_end = anchor + 2
    while window_end < n:
        violated_at = -1
        for i in range(anchor + 1, window_end):
            if (
                point_segment_distance(
                    points[i], points[anchor], points[window_end]
                )
                > theta
            ):
                violated_at = i
                break
        if violated_at >= 0:
            emit = window_end - 1
            kept.append(emit)
            anchor = emit
            window_end = anchor + 2
        else:
            window_end += 1
    kept.append(n - 1)
    return sorted(set(kept))


def max_chord_error(
    points: Sequence[PointTuple], kept_indexes: Sequence[int]
) -> float:
    """Largest distance of any dropped point to its covering chord.

    The error metric all three simplifiers are judged by; DP, sliding
    window and opening window must all keep it at or below ``theta``.
    """
    worst = 0.0
    for a, b in zip(kept_indexes, kept_indexes[1:]):
        for i in range(a + 1, b):
            d = point_segment_distance(points[i], points[a], points[b])
            if d > worst:
                worst = d
    return worst
