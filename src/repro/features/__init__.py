"""Representative trajectory features (Section IV-D).

The Douglas-Peucker algorithm picks a handful of representative points
whose connecting chords stay within ``theta`` of every original point;
:class:`DPFeatures` pairs those points with per-chord covering boxes.
Local filtering (Section V-D) runs entirely on these features, which is
what makes it cheap relative to the exact measures.
"""

from repro.features.douglas_peucker import douglas_peucker, douglas_peucker_mask
from repro.features.dp_features import DPFeatures, extract_dp_features
from repro.features.simplify import (
    sliding_window,
    opening_window,
    max_chord_error,
)

__all__ = [
    "douglas_peucker",
    "douglas_peucker_mask",
    "DPFeatures",
    "extract_dp_features",
    "sliding_window",
    "opening_window",
    "max_chord_error",
]
