"""Douglas-Peucker polyline simplification.

Iterative (explicit-stack) formulation of the classic algorithm: keep
the endpoints, find the interior point farthest from the chord, and
recurse on both halves while that distance exceeds ``theta``.  The
output here is the *indexes* of the representative points — the storage
schema (Table I) keeps ``dp-points`` as a list of integers into the raw
point array.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.geometry.distance import point_segment_distance

PointTuple = Tuple[float, float]


def douglas_peucker_mask(
    points: Sequence[PointTuple], theta: float
) -> List[bool]:
    """Boolean keep-mask over ``points`` for tolerance ``theta``.

    The first and last points are always kept.  ``theta`` must be
    non-negative; ``theta == 0`` keeps every point not exactly collinear
    with its chord.
    """
    if theta < 0:
        raise ValueError(f"DP tolerance must be non-negative, got {theta}")
    n = len(points)
    if n == 0:
        raise ValueError("cannot simplify zero points")
    keep = [False] * n
    keep[0] = keep[n - 1] = True
    if n <= 2:
        return keep
    stack: List[Tuple[int, int]] = [(0, n - 1)]
    while stack:
        lo, hi = stack.pop()
        if hi - lo < 2:
            continue
        a, b = points[lo], points[hi]
        worst = -1.0
        worst_at = -1
        for i in range(lo + 1, hi):
            d = point_segment_distance(points[i], a, b)
            if d > worst:
                worst = d
                worst_at = i
        if worst > theta:
            keep[worst_at] = True
            stack.append((lo, worst_at))
            stack.append((worst_at, hi))
    return keep


def douglas_peucker(
    points: Sequence[PointTuple], theta: float
) -> List[int]:
    """Indexes of the representative points for tolerance ``theta``."""
    mask = douglas_peucker_mask(points, theta)
    return [i for i, kept in enumerate(mask) if kept]
