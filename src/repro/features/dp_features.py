"""DP features: representative points plus covering boxes (Section IV-D).

``T.P`` is the Douglas-Peucker representative point list and ``T.B``
the list of boxes covering the raw points between consecutive
representative points, chords included.  Boxes are chord-aligned
(:class:`repro.geometry.segment.OrientedBox` — "not necessarily
parallel to the coordinate axis"), which keeps them tight around long
diagonal runs.

Soundness contract used by Lemmas 13-14: every raw point of ``T`` lies
inside the union of ``T.B``, and every edge of each box carries at
least one raw point of its run (the boxes are tight).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

import numpy as np

from repro.exceptions import GeometryError
from repro.features.douglas_peucker import douglas_peucker
from repro.geometry.mbr import MBR
from repro.geometry.point import Point
from repro.geometry.segment import OrientedBox

PointTuple = Tuple[float, float]


@dataclass(frozen=True)
class DPFeatures:
    """Representative features of one trajectory.

    ``rep_indexes`` are positions into the raw point array (the
    ``dp-points`` column of Table I); ``boxes`` holds one covering box
    per consecutive representative pair (the ``dp-mbrs`` column).
    A single-point trajectory has one representative point and one
    degenerate box.
    """

    rep_indexes: Tuple[int, ...]
    rep_points: Tuple[PointTuple, ...]
    boxes: Tuple[OrientedBox, ...]
    mbr: MBR
    #: axis-aligned envelope per box; cheap prefilter for the exact
    #: rotated-frame tests (distance to an envelope lower-bounds the
    #: distance to its box, so envelope-based rejections are sound)
    envelopes: Tuple[MBR, ...] = ()

    def __post_init__(self) -> None:
        if len(self.envelopes) != len(self.boxes):
            object.__setattr__(
                self, "envelopes", tuple(box.mbr() for box in self.boxes)
            )

    @property
    def num_rep_points(self) -> int:
        return len(self.rep_points)

    @property
    def num_boxes(self) -> int:
        return len(self.boxes)

    # ------------------------------------------------------------------
    def point_to_boxes_distance(self, x: float, y: float) -> float:
        """``d(p, T.B)`` — distance from a point to the box union.

        The minimum over boxes; this lower-bounds the distance from the
        point to every raw point of the trajectory (Lemma 13's bound).
        Envelope distances gate the exact rotated-frame test: a box
        whose envelope is already farther than the best candidate can
        never improve the minimum.
        """
        best = math.inf
        for box, envelope in zip(self.boxes, self.envelopes):
            if envelope.distance_to_point(x, y) >= best:
                continue
            d = box.distance_to_point(x, y)
            if d < best:
                best = d
                if best == 0.0:
                    break
        return best

    def point_exceeds_boxes(self, x: float, y: float, eps: float) -> bool:
        """True iff ``d((x, y), T.B) > eps`` — the Lemma 13 decision.

        Cheaper than :meth:`point_to_boxes_distance` because any box
        within ``eps`` ends the scan, and envelopes gate the exact test.
        """
        for box, envelope in zip(self.boxes, self.envelopes):
            if envelope.distance_to_point(x, y) > eps:
                continue
            if box.distance_to_point(x, y) <= eps:
                return False
        return True

    def segment_to_boxes_distance(self, a: Point, b: Point) -> float:
        """Minimum distance from segment ``a-b`` to the box union."""
        from repro.geometry.distance import segment_rect_distance

        best = math.inf
        for box, envelope in zip(self.boxes, self.envelopes):
            if segment_rect_distance(a, b, envelope) >= best:
                continue
            d = box.distance_to_segment(a, b)
            if d < best:
                best = d
                if best == 0.0:
                    break
        return best

    def _segment_exceeds_boxes(self, a: Point, b: Point, eps: float) -> bool:
        """True iff ``d(segment, T.B) > eps`` with envelope gating."""
        from repro.geometry.distance import segment_rect_distance

        for box, envelope in zip(self.boxes, self.envelopes):
            if segment_rect_distance(a, b, envelope) > eps:
                continue
            if box.distance_to_segment(a, b) <= eps:
                return False
        return True

    def box_lower_bound_against(self, other: "DPFeatures") -> float:
        """``max_{bbox in self.B} max_{edge in bbox} d(edge, other.B)``.

        Lemma 14's bound: each edge of each of our boxes carries a raw
        point, and that point is at least ``min_{p in edge} d(p,
        other.B)`` from every raw point of ``other``; the maximum over
        edges and boxes is therefore a sound lower bound on the
        similarity distance.
        """
        worst = 0.0
        for box in self.boxes:
            for e0, e1 in box.edges():
                d = other.segment_to_boxes_distance(e0, e1)
                if d > worst:
                    worst = d
        return worst

    def exceeds_box_bound(self, other: "DPFeatures", eps: float) -> bool:
        """True as soon as Lemma 14 proves ``f(self, other) > eps``.

        Edge/box pairs are screened by envelope distance first; the
        exact rotated test only runs for pairs the envelopes cannot
        decide, which keeps the stage cheap on disjoint candidates.
        """
        for box in self.boxes:
            for e0, e1 in box.edges():
                if other._segment_exceeds_boxes(e0, e1, eps):
                    return True
        return False


#: chord-aligned covering boxes (the paper's construction)
CHORD_BOXES = "chord"
#: minimum-area oriented rectangles (rotating calipers; never looser)
MIN_AREA_BOXES = "min_area"


def extract_dp_features(
    points: Sequence[PointTuple],
    theta: float,
    box_mode: str = CHORD_BOXES,
) -> DPFeatures:
    """Compute the DP features of a raw point sequence.

    ``theta`` is the paper's "predefined distance" (default 0.01 in the
    evaluation).  Boxes are built over the *inclusive* run between two
    consecutive representative points so that the union of boxes covers
    every raw point.

    ``box_mode`` selects the covering box construction: the paper's
    chord-aligned boxes (default), or minimum-area oriented rectangles.
    Both are tight (every side touches a raw point), so Lemmas 13-14
    stay sound; minimum-area boxes are at most as large.
    """
    if not points:
        raise GeometryError("cannot extract DP features of zero points")
    if box_mode == CHORD_BOXES:
        cover = OrientedBox.cover
    elif box_mode == MIN_AREA_BOXES:
        from repro.geometry.hull import min_area_oriented_box

        cover = min_area_oriented_box
    else:
        raise GeometryError(
            f"box_mode must be {CHORD_BOXES!r} or {MIN_AREA_BOXES!r}, "
            f"got {box_mode!r}"
        )
    rep_indexes = douglas_peucker(points, theta)
    rep_points = tuple(points[i] for i in rep_indexes)
    boxes: List[OrientedBox] = []
    if len(rep_indexes) == 1:
        boxes.append(cover([points[rep_indexes[0]]]))
    else:
        for k in range(len(rep_indexes) - 1):
            lo, hi = rep_indexes[k], rep_indexes[k + 1]
            boxes.append(cover(points[lo : hi + 1]))
    return DPFeatures(
        rep_indexes=tuple(rep_indexes),
        rep_points=rep_points,
        boxes=tuple(boxes),
        mbr=MBR.of_points(points),
    )


# ----------------------------------------------------------------------
# Vectorised kernels (the batch filter path).
#
# Oriented boxes travel as packed parameter rows in the codec's 8-float
# layout — (anchor.x, anchor.y, axis.x, axis.y, length, lo_along,
# lo_perp, hi_perp) — so a whole candidate batch's boxes live in one
# ``(b, 8)`` float64 array.  Each kernel replays the scalar method's
# arithmetic operation-for-operation, which is what keeps the batch
# filter's accept/reject decisions identical to the reference
# implementation (pinned by a property test).
# ----------------------------------------------------------------------

def pack_boxes(boxes: Sequence[OrientedBox]) -> np.ndarray:
    """Boxes as an ``(b, 8)`` parameter array in codec order."""
    out = np.empty((len(boxes), 8), dtype=np.float64)
    for i, box in enumerate(boxes):
        out[i] = (
            box.anchor.x,
            box.anchor.y,
            box.axis[0],
            box.axis[1],
            box.length,
            box.lo_along,
            box.lo_perp,
            box.hi_perp,
        )
    return out


def pack_rects(rects: Sequence[MBR]) -> np.ndarray:
    """MBRs as an ``(b, 4)`` array of (min_x, min_y, max_x, max_y)."""
    out = np.empty((len(rects), 4), dtype=np.float64)
    for i, r in enumerate(rects):
        out[i] = (r.min_x, r.min_y, r.max_x, r.max_y)
    return out


def oriented_box_envelopes(params: np.ndarray) -> np.ndarray:
    """Axis-aligned envelopes of packed boxes, ``(b, 4)``.

    Computes the same four corners as :meth:`OrientedBox.corners` and
    takes their min/max, so the values match ``box.mbr()`` exactly.
    """
    if len(params) == 0:
        return np.empty((0, 4), dtype=np.float64)
    ax, ay = params[:, 0:1], params[:, 1:2]
    ux, uy = params[:, 2:3], params[:, 3:4]
    length, lo_a = params[:, 4], params[:, 5]
    lo_p, hi_p = params[:, 6], params[:, 7]
    along = np.stack([lo_a, length, length, lo_a], axis=1)
    perp = np.stack([lo_p, lo_p, hi_p, hi_p], axis=1)
    cx = ax + along * ux - perp * uy
    cy = ay + along * uy + perp * ux
    out = np.empty((len(params), 4), dtype=np.float64)
    out[:, 0] = cx.min(axis=1)
    out[:, 1] = cy.min(axis=1)
    out[:, 2] = cx.max(axis=1)
    out[:, 3] = cy.max(axis=1)
    return out


def point_box_distance_matrix(
    points: np.ndarray, params: np.ndarray
) -> np.ndarray:
    """Pairwise point-to-oriented-box distances, ``(m, b)``.

    :meth:`OrientedBox.distance_to_point` vectorised: same local-frame
    transform, same clamp sequence, same hypot.
    """
    ax, ay = params[:, 0], params[:, 1]
    ux, uy = params[:, 2], params[:, 3]
    length, lo_a = params[:, 4], params[:, 5]
    lo_p, hi_p = params[:, 6], params[:, 7]
    rx = points[:, 0][:, None] - ax[None, :]
    ry = points[:, 1][:, None] - ay[None, :]
    along = rx * ux + ry * uy
    perp = ry * ux - rx * uy
    da = np.maximum(np.maximum(lo_a - along, 0.0), along - length)
    dp = np.maximum(np.maximum(lo_p - perp, 0.0), perp - hi_p)
    return np.hypot(da, dp)


def point_rect_distance_matrix(
    points: np.ndarray, rects: np.ndarray
) -> np.ndarray:
    """Pairwise point-to-rectangle distances, ``(m, b)``.

    :meth:`MBR.distance_to_point` vectorised over packed rect rows.
    """
    px = points[:, 0][:, None]
    py = points[:, 1][:, None]
    dx = np.maximum(np.maximum(rects[None, :, 0] - px, 0.0), px - rects[None, :, 2])
    dy = np.maximum(np.maximum(rects[None, :, 1] - py, 0.0), py - rects[None, :, 3])
    return np.hypot(dx, dy)


def points_within_box_union(
    points: np.ndarray,
    params: np.ndarray,
    envelopes: np.ndarray,
    eps: float,
) -> np.ndarray:
    """Per (point, box): is the point within ``eps`` of the box, as
    :meth:`DPFeatures.point_exceeds_boxes` decides it?

    The scalar method skips the exact rotated-frame test for boxes whose
    envelope is already beyond ``eps``; a box therefore only counts as
    "within" when both its envelope *and* the box itself are within
    ``eps``.  Replaying that conjunction — instead of the box distance
    alone — keeps the vectorised decision identical even when rounding
    makes an envelope distance land on the far side of ``eps``.
    """
    env_d = point_rect_distance_matrix(points, envelopes)
    box_d = point_box_distance_matrix(points, params)
    return (env_d <= eps) & (box_d <= eps)
