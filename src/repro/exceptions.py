"""Exception hierarchy for the repro (TraSS) library.

Every error raised by this package derives from :class:`ReproError`, so
callers can catch one type at the boundary.  Sub-hierarchies mirror the
package layout: geometry, index, key-value store, and query processing.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this package."""


class GeometryError(ReproError):
    """Invalid geometric input (empty trajectory, inverted MBR, ...)."""


class IndexError_(ReproError):
    """Invalid index parameter or encoding input.

    Named with a trailing underscore to avoid shadowing the built-in
    ``IndexError``; exported as ``IndexingError`` from the package root.
    """


class EncodingError(IndexError_):
    """An index value or (sequence, position-code) pair is out of range."""


class KVStoreError(ReproError):
    """Base class for key-value store failures."""


class TableNotFoundError(KVStoreError):
    """Operation against a table that does not exist."""


class TableExistsError(KVStoreError):
    """Attempt to create a table that already exists."""


class RegionError(KVStoreError):
    """A key was routed to a region that does not own it."""


class CorruptSSTableError(KVStoreError):
    """An SSTable failed its integrity check when opened or read."""


class TransientError(KVStoreError):
    """A retryable store failure; the operation may succeed if repeated.

    Resilient executors treat this class (and subclasses) as the signal
    that retry-with-backoff is worthwhile; every other error is
    permanent and propagates immediately.
    """


class RegionUnavailableError(TransientError):
    """A region (shard) refused a scan — the region-server is down,
    moving, or mid-recovery.  Carries the region's key span so circuit
    breakers can track failures per region."""

    def __init__(self, message: str, region_span=None):
        super().__init__(message)
        #: ``(start_key, end_key)`` of the failing region, or ``None``
        self.region_span = region_span


class ScanTimeoutError(KVStoreError):
    """A multi-range scan exhausted its deadline budget.

    Not transient: retrying inside the same query cannot help once the
    budget is spent.  In degraded mode the executor converts this into
    skipped ranges instead of raising.
    """


class QueryError(ReproError):
    """Invalid query parameter (negative threshold, k < 1, ...)."""


# Public alias with a friendlier name.
IndexingError = IndexError_
