"""Exception hierarchy for the repro (TraSS) library.

Every error raised by this package derives from :class:`ReproError`, so
callers can catch one type at the boundary.  Sub-hierarchies mirror the
package layout: geometry, index, key-value store, and query processing.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this package."""


class GeometryError(ReproError):
    """Invalid geometric input (empty trajectory, inverted MBR, ...)."""


class IndexError_(ReproError):
    """Invalid index parameter or encoding input.

    Named with a trailing underscore to avoid shadowing the built-in
    ``IndexError``; exported as ``IndexingError`` from the package root.
    """


class EncodingError(IndexError_):
    """An index value or (sequence, position-code) pair is out of range."""


class KVStoreError(ReproError):
    """Base class for key-value store failures."""


class TableNotFoundError(KVStoreError):
    """Operation against a table that does not exist."""


class TableExistsError(KVStoreError):
    """Attempt to create a table that already exists."""


class RegionError(KVStoreError):
    """A key was routed to a region that does not own it."""


class CorruptSSTableError(KVStoreError):
    """An SSTable failed its integrity check when opened or read."""


class QueryError(ReproError):
    """Invalid query parameter (negative threshold, k < 1, ...)."""


# Public alias with a friendlier name.
IndexingError = IndexError_
