"""Exception hierarchy for the repro (TraSS) library.

Every error raised by this package derives from :class:`ReproError`, so
callers can catch one type at the boundary.  Sub-hierarchies mirror the
package layout: geometry, index, key-value store, query processing and
the distributed serving tier.

Retry / failover policy is driven **by type**, never by message
matching:

* :class:`TransientError` — the operation may succeed if repeated
  (region briefly unavailable, shard worker restarting).  Resilient
  executors retry these with backoff; the serving coordinator fails
  over to a replica.
* :class:`FatalError` — repeating cannot help (corrupt file, exhausted
  deadline budget, malformed request).  These propagate immediately.
* :class:`DegradedResult` — not a failure of the operation but of its
  *completeness*: raised (or carried) when an answer was produced with
  known-missing key ranges and the caller did not opt into degraded
  mode.  It transports the partial result and the exact skipped ranges
  so callers can still choose to use them.

Anything deriving from neither ``TransientError`` nor
``DegradedResult`` is treated as fatal by the retry machinery, whether
or not it also derives from :class:`FatalError` (which exists to mark
the cases that are *known* to be permanent).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this package."""


class GeometryError(ReproError):
    """Invalid geometric input (empty trajectory, inverted MBR, ...)."""


class IndexError_(ReproError):
    """Invalid index parameter or encoding input.

    Named with a trailing underscore to avoid shadowing the built-in
    ``IndexError``; exported as ``IndexingError`` from the package root.
    """


class EncodingError(IndexError_):
    """An index value or (sequence, position-code) pair is out of range."""


class KVStoreError(ReproError):
    """Base class for key-value store failures."""


class TableNotFoundError(KVStoreError):
    """Operation against a table that does not exist."""


class TableExistsError(KVStoreError):
    """Attempt to create a table that already exists."""


class RegionError(KVStoreError):
    """A key was routed to a region that does not own it."""


# ----------------------------------------------------------------------
# The retryability taxonomy
# ----------------------------------------------------------------------
class TransientError(KVStoreError):
    """A retryable failure; the operation may succeed if repeated.

    Resilient executors treat this class (and subclasses) as the signal
    that retry-with-backoff is worthwhile; the serving coordinator
    treats it as the signal to fail over to another replica.  Every
    other error is permanent and propagates immediately.
    """


class FatalError(ReproError):
    """A failure retrying cannot fix (corrupt state, spent budget).

    The complement of :class:`TransientError`: executors give up on
    these immediately rather than burning their retry budget.
    """


class CorruptSSTableError(FatalError, KVStoreError):
    """An SSTable failed its integrity check when opened or read."""


class CorruptSegmentError(CorruptSSTableError):
    """A compact segment failed an integrity check.

    Raised when a segment's header/index is unreadable at open time, or
    when a block fails its CRC/structure check as it is first
    materialised — corruption in one block surfaces only when that
    block is touched, every other block keeps serving (block-level
    isolation)."""


class RegionUnavailableError(TransientError):
    """A region (shard) refused a scan — the region-server is down,
    moving, or mid-recovery.  Carries the region's key span so circuit
    breakers can track failures per region."""

    def __init__(self, message: str, region_span=None):
        super().__init__(message)
        #: ``(start_key, end_key)`` of the failing region, or ``None``
        self.region_span = region_span


class ScanTimeoutError(FatalError, KVStoreError):
    """A multi-range scan exhausted its deadline budget.

    Not transient: retrying inside the same query cannot help once the
    budget is spent.  In degraded mode the executor converts this into
    skipped ranges instead of raising.
    """


class DegradedResult(ReproError):
    """An answer was produced, but with known-missing key ranges.

    Raised where a partial answer exists and the caller did not opt
    into degraded mode (``degraded_mode=False``): the result is not
    silently dropped — it rides on the exception together with the
    exact skipped ranges, mirroring the ``ScanReport`` contract.
    """

    def __init__(self, message: str, result=None, skipped_ranges=None):
        super().__init__(message)
        #: the partial search result (answers present are exact)
        self.result = result
        #: exactly the key ranges that were never read
        self.skipped_ranges = list(skipped_ranges or [])


class QueryError(ReproError):
    """Invalid query parameter (negative threshold, k < 1, ...)."""


# ----------------------------------------------------------------------
# Distributed serving tier
# ----------------------------------------------------------------------
class ClusterError(ReproError):
    """Base class for serving-tier (coordinator / shard worker) errors."""


class ShardUnavailableError(ClusterError, TransientError):
    """Every replica of a shard partition is unreachable.

    Transient by design: a supervisor restart or operator action can
    bring the partition back, so callers with their own retry budget
    may try again.  Carries the partition id for routing diagnostics.
    """

    def __init__(self, message: str, partition=None):
        super().__init__(message)
        self.partition = partition


class WorkerProtocolError(ClusterError, FatalError):
    """A shard worker sent a malformed or out-of-contract message."""


class OverloadedError(ClusterError):
    """The admission controller shed this request.

    Typed rejection — the front door's contract under overload.
    ``reason`` is ``"quota"`` (per-tenant token bucket empty) or
    ``"queue_depth"`` (too many requests in flight);
    ``retry_after_seconds`` estimates when a retry could be admitted
    (``None`` when shedding is depth-based).
    """

    def __init__(
        self,
        message: str,
        tenant: str = "default",
        reason: str = "quota",
        retry_after_seconds=None,
    ):
        super().__init__(message)
        self.tenant = tenant
        self.reason = reason
        self.retry_after_seconds = retry_after_seconds


#: Friendly alias matching operational vocabulary ("typed Overloaded
#: rejections").
Overloaded = OverloadedError

# Public alias with a friendlier name.
IndexingError = IndexError_
