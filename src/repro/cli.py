"""Command-line interface.

Build a persistent TraSS store from a trajectory CSV and query it::

    python -m repro.cli build  --csv data.csv --store ./store \\
        --bounds 115.8 39.4 117.2 40.6 --resolution 16 --shards 8
    python -m repro.cli info   --store ./store
    python -m repro.cli threshold --store ./store --query-tid taxi42 --eps 0.01
    python -m repro.cli topk      --store ./store --query-tid taxi42 --k 10
    python -m repro.cli query     --store ./store --queries-csv queries.csv \\
        --eps 0.01 --batch --vectorized-filter
    python -m repro.cli range     --store ./store --window 116.0 39.6 116.5 40.0
    python -m repro.cli explain   --store ./store --query-tid taxi42 --eps 0.01
    python -m repro.cli explain   --store ./store --query-tid taxi42 \\
        --eps 0.01 --analyze
    python -m repro.cli trace     --store ./store --query-tid taxi42 --k 10
    python -m repro.cli stats  --store ./store --scan-workers 4 --cache-mb 64
    python -m repro.cli stats  --store ./store --json
    python -m repro.cli chaos  --queries 10 --seed 7 --unavailable-prob 0.3
    python -m repro.cli heatmap --store ./store
    python -m repro.cli doctor  --store ./store --json
    python -m repro.cli replay  --store ./store
    python -m repro.cli serve  --store ./store --shard-workers 4 \\
        --replication 2 --probes 20 --eps 0.01
    python -m repro.cli query  --store ./store --queries-csv queries.csv \\
        --eps 0.01 --batch --cluster 4 --replication 2

Query commands accept ``--scan-workers`` and ``--cache-mb`` to override
the stored execution configuration (answers are identical at any
setting; only speed changes).

The CSV format is the one :mod:`repro.data.io` writes: a ``tid,x,y``
header and one point per row, points of a trajectory consecutive.
Queries take either ``--query-tid`` (a stored trajectory) or
``--query-csv`` (a single-trajectory CSV).
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
import time
from typing import List, Optional

from repro.core.config import TraSSConfig
from repro.core.engine import TraSS
from repro.data.io import load_csv
from repro.exceptions import ReproError
from repro.geometry.mbr import MBR
from repro.geometry.trajectory import Trajectory
from repro.index.bounds import SpaceBounds
from repro.measures import available_measures


def _build(args: argparse.Namespace) -> int:
    trajectories = load_csv(args.csv)
    if not trajectories:
        print("no trajectories in the CSV", file=sys.stderr)
        return 1
    config = TraSSConfig(
        bounds=SpaceBounds(*args.bounds),
        max_resolution=args.resolution,
        dp_tolerance=args.dp_tolerance,
        shards=args.shards,
        measure_name=args.measure,
    )
    started = time.perf_counter()
    engine = TraSS.build(trajectories, config)
    engine.save(args.store)
    elapsed = time.perf_counter() - started
    print(
        f"indexed {len(engine)} trajectories into {args.store} "
        f"in {elapsed:.2f}s ({engine.store.table.num_regions} region(s))"
    )
    return 0


def _load_engine(args: argparse.Namespace) -> TraSS:
    engine = TraSS.load(args.store)
    engine.configure_execution(
        scan_workers=getattr(args, "scan_workers", None),
        cache_mb=getattr(args, "cache_mb", None),
        vectorized_filter=getattr(args, "vectorized_filter", None),
    )
    return engine


def _resolve_query(engine: TraSS, args: argparse.Namespace) -> Trajectory:
    if args.query_csv:
        trajectories = load_csv(args.query_csv)
        if len(trajectories) != 1:
            raise ReproError(
                f"--query-csv must hold exactly one trajectory, "
                f"found {len(trajectories)}"
            )
        return trajectories[0]
    if not args.query_tid:
        raise ReproError("provide --query-tid or --query-csv")
    for record in engine.store.all_records():
        if record.tid == args.query_tid:
            return record.as_trajectory()
    raise ReproError(f"trajectory {args.query_tid!r} not found in the store")


def _info(args: argparse.Namespace) -> int:
    engine = _load_engine(args)
    stats = engine.stats()
    print(f"store:            {args.store}")
    print(f"trajectories:     {stats['trajectories']}")
    print(f"regions:          {stats['regions']}")
    print(f"distinct values:  {stats['distinct_index_values']}")
    print(f"selectivity:      {stats['selectivity']:.4f}")
    print(f"approx bytes:     {stats['approximate_bytes']}")
    print(f"max resolution:   {engine.config.max_resolution}")
    print(f"shards:           {engine.config.shards}")
    print(f"measure:          {engine.config.measure_name}")
    return 0


def _threshold(args: argparse.Namespace) -> int:
    engine = _load_engine(args)
    query = _resolve_query(engine, args)
    result = engine.threshold_search(query, args.eps, measure=args.measure)
    for tid, dist in sorted(result.answers.items(), key=lambda kv: kv[1]):
        print(f"{tid}\t{dist:.6f}")
    print(
        f"# {len(result.answers)} answers, {result.candidates} candidates, "
        f"{result.retrieved_rows} rows scanned, "
        f"{result.total_seconds * 1000:.1f} ms",
        file=sys.stderr,
    )
    return 0


def _topk(args: argparse.Namespace) -> int:
    engine = _load_engine(args)
    query = _resolve_query(engine, args)
    result = engine.topk_search(query, args.k, measure=args.measure)
    for dist, tid in result.answers:
        print(f"{tid}\t{dist:.6f}")
    print(
        f"# {result.candidates} candidates, {result.retrieved_rows} rows "
        f"scanned, {result.total_seconds * 1000:.1f} ms",
        file=sys.stderr,
    )
    return 0


def _query(args: argparse.Namespace) -> int:
    """Run a workload of threshold queries, optionally as one batch.

    ``--batch`` plans every query up front, coalesces the per-query key
    ranges into one deduplicated scan and demultiplexes each scanned
    row to the queries that asked for it; answers are identical to the
    sequential mode, only the I/O shrinks (reported on stderr).
    """
    engine = _load_engine(args)
    if args.queries_csv:
        queries = load_csv(args.queries_csv)
    else:
        if not args.query_tid:
            raise ReproError("provide --query-tid (repeatable) or --queries-csv")
        wanted = set(args.query_tid)
        by_tid = {}
        for record in engine.store.all_records():
            if record.tid in wanted:
                by_tid[record.tid] = record.as_trajectory()
        missing = wanted - set(by_tid)
        if missing:
            raise ReproError(f"trajectories not in the store: {sorted(missing)}")
        queries = [by_tid[tid] for tid in args.query_tid]
    if not queries:
        raise ReproError("no queries to run")

    cluster = None
    if getattr(args, "cluster", None):
        from repro.serve import ServingCluster

        cluster = ServingCluster.from_engine(
            engine,
            partitions=args.cluster,
            replication=args.replication,
            hedge_delay_seconds=args.hedge_delay,
        ).start()
        engine.set_remote_executor(cluster)
    try:
        before = engine.metrics.snapshot()
        started = time.perf_counter()
        if args.batch:
            results = engine.threshold_search_many(
                queries, args.eps, measure=args.measure
            )
        else:
            results = [
                engine.threshold_search(q, args.eps, measure=args.measure)
                for q in queries
            ]
        wall = time.perf_counter() - started
        delta = engine.metrics.diff(before)
    finally:
        if cluster is not None:
            engine.set_remote_executor(None)
            cluster.stop()

    for query, result in zip(queries, results):
        for tid, dist in sorted(result.answers.items(), key=lambda kv: kv[1]):
            print(f"{query.tid}\t{tid}\t{dist:.6f}")
    mode = "batch" if args.batch else "sequential"
    if cluster is not None:
        mode += f", cluster={args.cluster}x{args.replication}"
    print(
        f"# {len(queries)} queries ({mode}"
        f"{', vectorized' if engine.config.vectorized_filter else ''}), "
        f"{sum(len(r.answers) for r in results)} answers, "
        f"{delta['rows_scanned']} rows scanned, "
        f"{delta['batch_ranges_merged']} ranges merged, "
        f"{delta['batch_rows_shared']} row deliveries shared, "
        f"{wall * 1000:.1f} ms",
        file=sys.stderr,
    )
    return 0


def _explain(args: argparse.Namespace) -> int:
    """``explain``: describe the plan; ``explain --analyze``: run the
    query under tracing and report what every phase actually did."""
    engine = _load_engine(args)
    query = _resolve_query(engine, args)
    if not args.analyze:
        if args.eps is None:
            raise ReproError("explain without --analyze requires --eps")
        if args.k is not None:
            raise ReproError("--k requires --analyze (plans are threshold-only)")
        print(engine.explain(query, args.eps))
        return 0
    report = engine.explain_analyze(
        query, eps=args.eps, k=args.k, measure=args.measure
    )
    if args.json:
        import json

        print(
            json.dumps(
                report.to_json(include_events=args.show_events),
                indent=2,
                default=str,
            )
        )
    else:
        print(
            report.render(
                max_children=args.max_children, show_events=args.show_events
            )
        )
    return 0


def _trace(args: argparse.Namespace) -> int:
    """Run one query under tracing and print the raw span tree.

    With ``--cluster N`` the query scatter-gathers through N shard
    workers and the printed tree is the *stitched* cross-process trace:
    coordinator spans with each worker's shipped span subtree grafted
    under its ``serve.partition`` node.
    """
    engine = _load_engine(args)
    query = _resolve_query(engine, args)
    if (args.eps is None) == (args.k is None):
        raise ReproError("provide exactly one of --eps or --k")
    if getattr(args, "cluster", None):
        from repro.serve import ServingCluster

        tracer = engine.make_tracer()
        cluster = ServingCluster.from_engine(
            engine,
            partitions=args.cluster,
            replication=args.replication,
            tracer=tracer,
            observability=True,
        ).start()
        engine.set_remote_executor(cluster)
        try:
            if args.eps is not None:
                engine.threshold_search(
                    query, args.eps, measure=args.measure
                )
            else:
                engine.topk_search(query, args.k, measure=args.measure)
        finally:
            engine.set_remote_executor(None)
            cluster.stop()
    else:
        with engine.traced() as tracer:
            if args.eps is not None:
                engine.threshold_search(
                    query, args.eps, measure=args.measure
                )
            else:
                engine.topk_search(query, args.k, measure=args.measure)
    root = tracer.traces()[-1]
    if args.json:
        import json

        print(
            json.dumps(
                root.to_dict(include_events=args.show_events),
                indent=2,
                default=str,
            )
        )
    else:
        from repro.obs.tracing import format_span_tree

        print(
            format_span_tree(
                root,
                max_children=args.max_children,
                show_events=args.show_events,
            )
        )
    return 0


def _range(args: argparse.Namespace) -> int:
    engine = _load_engine(args)
    window = MBR(*args.window)
    for tid in engine.range_query(window):
        print(tid)
    return 0


def _hit_line(name: str, hits: int, misses: int) -> str:
    total = hits + misses
    rate = f"{hits / total:7.1%}" if total else "    n/a"
    return f"  {name:<14} {rate}  ({hits} hits / {misses} misses)"


def _stats(args: argparse.Namespace) -> int:
    """Report the execution performance layer: worker count, cache hit
    rates and per-phase timings from a small probe workload.

    Each probe query runs twice — the first pass fills the block,
    record and plan caches, the second shows their steady-state hit
    rates — so the numbers reflect a warmed store, the regime the
    caches exist for.

    ``--cluster N`` routes the probe workload through N shard workers
    with cluster observability on, so the JSON/Prometheus output
    describes the whole cluster (per-worker IO, SLO histograms, error
    budget) in one dump.  ``--prometheus`` prints the text exposition
    format instead of the human report.
    """
    engine = _load_engine(args)
    cfg = engine.config
    cluster = None
    if getattr(args, "cluster", None):
        from repro.serve import ServingCluster

        cluster = ServingCluster.from_engine(
            engine,
            partitions=args.cluster,
            replication=args.replication,
            observability=True,
        ).start()
        engine.set_remote_executor(cluster)
    try:
        return _stats_report(engine, cluster, args, cfg)
    finally:
        if cluster is not None:
            engine.set_remote_executor(None)
            cluster.stop()


def _stats_report(engine, cluster, args, cfg) -> int:
    if args.prometheus:
        _run_probe_workload(engine, args.probes, args.eps)
        print(engine.export_metrics("prometheus"))
        return 0
    if args.json:
        import json

        _run_probe_workload(engine, args.probes, args.eps)
        payload = engine.stats()
        payload["config"] = {
            "scan_workers": cfg.scan_workers,
            "cache_mb": cfg.cache_mb,
            "plan_cache_size": cfg.plan_cache_size,
            "storage_telemetry": cfg.storage_telemetry,
        }
        if cluster is not None:
            payload["cluster"] = cluster.stats()
        print(json.dumps(payload, indent=2, default=str))
        return 0
    print(f"store:            {args.store}")
    print(f"scan workers:     {cfg.scan_workers}")
    print(f"cache budget:     {cfg.cache_mb:g} MiB")
    print(f"plan cache size:  {cfg.plan_cache_size}")

    queries = []
    for record in engine.store.all_records():
        queries.append(record.as_trajectory())
        if len(queries) >= args.probes:
            break
    if not queries:
        print("no stored trajectories; skipping probe workload")
        return 0

    pruning = scan = refine = 0.0
    answers = 0
    before = engine.metrics.snapshot()
    started = time.perf_counter()
    for _pass in range(2):
        for q in queries:
            result = engine.threshold_search(q, args.eps)
            pruning += result.pruning_seconds
            scan += result.scan_seconds
            refine += result.refine_seconds
            answers += len(result.answers)
    wall = time.perf_counter() - started
    delta = engine.metrics.diff(before)

    print(
        f"probe workload:   {len(queries)} threshold queries x 2 passes "
        f"(eps={args.eps:g}), {answers} answers, "
        f"{delta['rows_scanned']} rows scanned"
    )
    print("phase seconds:")
    print(f"  pruning        {pruning:8.4f}")
    print(f"  scan           {scan:8.4f}")
    print(f"  refine         {refine:8.4f}")
    print(f"  total wall     {wall:8.4f}")
    print("cache hit rates (both passes):")
    print(
        _hit_line(
            "block cache", delta["block_cache_hits"], delta["block_cache_misses"]
        )
    )
    print(
        _hit_line(
            "record cache",
            delta["record_cache_hits"],
            delta["record_cache_misses"],
        )
    )
    print(
        _hit_line(
            "plan cache", delta["plan_cache_hits"], delta["plan_cache_misses"]
        )
    )
    breaker = engine.store.executor.breaker.snapshot()
    io = engine.metrics.snapshot()
    print("resilience:")
    print(
        f"  breaker        {breaker['open_regions']} open / "
        f"{breaker['tracked_regions']} tracked region(s), "
        f"{breaker['trips']} trip(s)"
    )
    print(
        f"  fault counters {io['faults_injected']} faults injected, "
        f"{io['retries']} retries, {io['ranges_skipped']} ranges skipped"
    )
    from repro.obs.storage_stats import collect_storage_stats

    segments = collect_storage_stats(engine)["segments"]
    if segments["count"]:
        print("compact segments:")
        print(
            f"  {segments['count']} segment(s): "
            f"{segments['file_bytes']} bytes on disk for "
            f"{segments['logical_bytes']} logical bytes "
            f"({segments['compression_ratio']:.1f}x compression), "
            f"{segments['blocks_materialized']}/{segments['blocks']} "
            "block(s) materialised"
        )
    return 0


def _dir_data_bytes(directory: str) -> int:
    """Bytes held in region files (``.sst`` / ``.seg``) of a store."""
    import os

    total = 0
    for name in os.listdir(directory):
        if name.endswith(".sst") or name.endswith(".seg"):
            total += os.path.getsize(os.path.join(directory, name))
    return total


def _compact(args: argparse.Namespace) -> int:
    """Rewrite a saved store's regions as compact mmap segments.

    ``--freeze`` writes the compressed columnar ``.seg`` format (the
    default re-checkpoints as plain SSTables).  In-place by default;
    ``--out`` writes a second store directory instead.
    """
    import json
    import os

    before_bytes = _dir_data_bytes(args.store)
    engine = TraSS.load(args.store)
    out_dir = args.out if args.out else args.store
    engine.save(out_dir, compact=args.freeze)
    after_bytes = _dir_data_bytes(out_dir)
    ratio = before_bytes / after_bytes if after_bytes else 0.0
    report = {
        "store": args.store,
        "out": out_dir,
        "frozen": bool(args.freeze),
        "bytes_before": before_bytes,
        "bytes_after": after_bytes,
        "ratio": ratio,
        "regions": engine.store.table.num_regions,
        "trajectories": engine.store.trajectory_count,
    }
    if args.json:
        print(json.dumps(report, indent=2))
    else:
        mode = "compact segments" if args.freeze else "plain SSTables"
        print(f"rewrote {report['regions']} region(s) as {mode}")
        print(
            f"data bytes: {before_bytes} -> {after_bytes} "
            f"({ratio:.2f}x)" if after_bytes else "data bytes: 0"
        )
    return 0


def _heatmap(args: argparse.Namespace) -> int:
    """Render the key-space heatmap (scan traffic over the salted
    row-key space, decayed toward the recent workload).

    ``--probe`` first runs a small probe workload so a freshly loaded
    store has heat to show; without it the command renders whatever the
    persisted TELEMETRY.json carried."""
    engine = _load_engine(args)
    telemetry = engine.storage_telemetry
    if telemetry is None or telemetry.heatmap is None:
        print(
            "storage telemetry is disabled for this store "
            "(config.storage_telemetry = false)",
            file=sys.stderr,
        )
        return 1
    if args.probe:
        _run_probe_workload(engine, args.probe, args.eps)
    from repro.obs.heatmap import heatmap_json, render_heatmap

    if args.json:
        import json

        print(
            json.dumps(
                heatmap_json(telemetry.heatmap, engine.store.table), indent=2
            )
        )
    else:
        print(
            render_heatmap(
                telemetry.heatmap, engine.store.table, engine.config.shards
            )
        )
    return 0


def _run_probe_workload(engine: TraSS, probes: int, eps: float) -> None:
    queries = []
    for record in engine.store.all_records():
        queries.append(record.as_trajectory())
        if len(queries) >= probes:
            break
    for q in queries:
        engine.threshold_search(q, eps)


def _doctor(args: argparse.Namespace) -> int:
    """Run the tuning advisor and print ranked, evidence-cited
    recommendations."""
    engine = _load_engine(args)
    if args.probe:
        _run_probe_workload(engine, args.probe, args.eps)
    from repro.obs.advisor import render_report, report_json

    recommendations = engine.doctor()
    if args.json:
        import json

        print(json.dumps(report_json(recommendations), indent=2))
    else:
        print(render_report(recommendations))
    return 0


def _replay(args: argparse.Namespace) -> int:
    """Re-execute the captured workload and verify answer digests.

    Exit 0 when every replayed query reproduced its recorded answers
    byte-identically, 1 on any divergence."""
    engine = _load_engine(args)
    recorder = engine.workload_recorder
    if recorder is None:
        print(
            "workload recording is disabled for this store "
            "(config.storage_telemetry = false)",
            file=sys.stderr,
        )
        return 1
    if len(recorder) == 0:
        print("no recorded workload to replay", file=sys.stderr)
        return 1
    report = engine.replay()
    if args.json:
        import json

        print(json.dumps(report.to_json(), indent=2))
    else:
        print(report.render())
    return 0 if report.ok else 1


def _chaos(args: argparse.Namespace) -> int:
    """Run a seeded chaos schedule against a workload and report.

    Every query runs twice — fault-free, then under the injector — and
    the report states whether retries masked every transient fault
    (answer parity) or, in degraded mode, how complete the partial
    answers were and which key ranges were skipped.
    """
    from repro.core.config import TraSSConfig as _Cfg
    from repro.kvstore.faults import FaultInjector, FaultSchedule

    if args.store:
        engine = TraSS.load(args.store)
        # The stored config wins except for the resilience knobs the
        # chaos run is explicitly exercising.
        executor = engine.store.executor
        executor.degraded_mode = args.degraded
        executor.deadline_seconds = args.deadline
        executor.policy = dataclasses.replace(
            executor.policy, max_attempts=args.retry_attempts
        )
        trajectories = [r.as_trajectory() for r in engine.store.all_records()]
    else:
        from repro.data.generators import TDRIVE_BOUNDS, tdrive_like

        trajectories = tdrive_like(args.trajectories, seed=args.seed)
        config = _Cfg(
            bounds=TDRIVE_BOUNDS,
            max_resolution=12,
            dp_tolerance=0.005,
            shards=args.shards,
            degraded_mode=args.degraded,
            scan_deadline_seconds=args.deadline,
            retry_max_attempts=args.retry_attempts,
        )
        engine = TraSS.build(trajectories, config)
    if not trajectories:
        print("no trajectories to run chaos against", file=sys.stderr)
        return 1
    queries = trajectories[: args.queries]

    # Fault-free baseline.
    baseline = []
    for q in queries:
        t = engine.threshold_search(q, args.eps)
        k = engine.topk_search(q, args.k)
        baseline.append((set(t.answers), [tid for _, tid in k.answers]))

    schedule = FaultSchedule(
        seed=args.seed,
        region_unavailable_prob=args.unavailable_prob,
        max_consecutive_failures=args.max_consecutive,
        slow_region_prob=args.slow_prob,
        slow_region_seconds=args.slow_seconds,
        split_prob=args.split_prob,
        compact_prob=args.compact_prob,
    )
    injector = FaultInjector(schedule)
    engine.install_fault_injector(injector)
    before = engine.metrics.snapshot()
    matches = 0
    completenesses: List[float] = []
    skipped_total = 0
    try:
        for (base_threshold, base_topk), q in zip(baseline, queries):
            t = engine.threshold_search(q, args.eps)
            k = engine.topk_search(q, args.k)
            completenesses.extend([t.completeness, k.completeness])
            skipped_total += len(t.skipped_ranges) + len(k.skipped_ranges)
            if (
                set(t.answers) == base_threshold
                and [tid for _, tid in k.answers] == base_topk
            ):
                matches += 1
        # Snapshot before detaching: removing the injector resets the
        # executor's breaker state for the next (fault-free) epoch.
        breaker_state = engine.store.executor.breaker.snapshot()
    finally:
        engine.install_fault_injector(None)
    delta = engine.metrics.diff(before)
    injected = injector.summary()

    min_completeness = min(completenesses)
    mean_completeness = sum(completenesses) / len(completenesses)
    print(f"chaos report (seed={args.seed})")
    print(
        f"  workload:        {len(trajectories)} trajectories, "
        f"{len(queries)} threshold + {len(queries)} top-k queries"
    )
    print(
        f"  faults injected: {injected['region_outages']} region outages, "
        f"{injected['slow_regions']} slow regions, "
        f"{injected['forced_splits']} forced splits, "
        f"{injected['forced_compactions']} forced compactions"
    )
    print(
        f"  retries:         {delta['retries']} "
        f"(virtual latency {injected['virtual_latency_seconds']:.2f}s)"
    )
    print(f"  breaker trips:   {delta['breaker_trips']}")
    print(
        f"  breaker state:   {breaker_state['open_regions']} open / "
        f"{breaker_state['tracked_regions']} tracked region(s) at run end"
    )
    print(
        f"  fault counters:  {delta['faults_injected']} injected, "
        f"{delta['ranges_skipped']} ranges skipped"
    )
    print(f"  degraded mode:   {'on' if args.degraded else 'off'}")
    print(f"  skipped ranges:  {skipped_total}")
    print(
        f"  completeness:    min {min_completeness:.3f} / "
        f"mean {mean_completeness:.3f}"
    )
    print(
        f"  answer parity:   {matches}/{len(queries)} queries identical "
        f"to the fault-free run"
    )
    if args.degraded:
        print("DEGRADED RUN: partial answers above are annotated, not lost")
        return 0
    if matches == len(queries):
        print("RESILIENT: every transient fault was masked by retries")
        return 0
    print("NOT RESILIENT: some faulted answers diverged", file=sys.stderr)
    return 1


def _serve(args: argparse.Namespace) -> int:
    """Start a shard-worker cluster over the store and drive a probe
    workload through it, verifying every answer against the
    single-process engine.

    Exit 0 when all served answers match, 1 on any divergence, 2 on a
    cluster error — so the command doubles as a serving-tier smoke
    test (the CI chaos drill builds on the same machinery).
    """
    from repro.serve import AdmissionController, ServingCluster

    if args.store:
        engine = TraSS.load(args.store)
        trajectories = [r.as_trajectory() for r in engine.store.all_records()]
    else:
        from repro.data.generators import TDRIVE_BOUNDS, tdrive_like

        trajectories = tdrive_like(args.trajectories, seed=args.seed)
        config = TraSSConfig(
            bounds=TDRIVE_BOUNDS,
            max_resolution=12,
            dp_tolerance=0.005,
            shards=args.shards,
        )
        engine = TraSS.build(trajectories, config)
    if not trajectories:
        print("no trajectories to serve", file=sys.stderr)
        return 1
    queries = trajectories[: args.probes]

    admission = None
    if args.tenant_rate is not None or args.max_in_flight is not None:
        admission = AdmissionController(
            tenant_rate=args.tenant_rate,
            tenant_burst=(
                args.tenant_burst
                if args.tenant_burst is not None
                else args.tenant_rate
            ),
            max_in_flight=args.max_in_flight,
        )
    cluster = ServingCluster.from_engine(
        engine,
        partitions=args.shard_workers,
        replication=args.replication,
        request_timeout=args.timeout,
        hedge_delay_seconds=args.hedge_delay,
        degraded_mode=args.degraded,
        admission=admission,
        observability=args.obs,
    )
    started = time.perf_counter()
    with cluster:
        startup = time.perf_counter() - started
        run_started = time.perf_counter()
        served = cluster.threshold_search_many(queries, args.eps)
        wall = time.perf_counter() - run_started
        findings = cluster.doctor() if args.obs else []
        stats = cluster.stats()
    expected = engine.threshold_search_many(queries, args.eps)
    matches = sum(
        1 for s, e in zip(served, expected) if s.answers == e.answers
    )

    if args.json:
        import json

        payload = {
            "shard_workers": args.shard_workers,
            "replication": args.replication,
            "probes": len(queries),
            "eps": args.eps,
            "answers": sum(len(r.answers) for r in served),
            "matches": matches,
            "startup_seconds": startup,
            "workload_seconds": wall,
            "stats": stats,
        }
        if args.obs:
            obs_snapshot = stats.get("observability", {})
            payload["slo"] = obs_snapshot.get("slo", {})
            payload["doctor"] = [f.to_json() for f in findings]
        print(json.dumps(payload, indent=2, default=str))
        return 0 if matches == len(queries) else 1

    counters = stats["counters"]
    print(
        f"serving cluster: {args.shard_workers} shard worker(s) x "
        f"{args.replication} replica(s), started in {startup:.2f}s"
    )
    print(
        f"  workload:      {len(queries)} threshold probes (eps={args.eps:g}) "
        f"in {wall * 1000:.1f} ms "
        f"({len(queries) / wall:.1f} queries/s)"
        if wall > 0
        else f"  workload:      {len(queries)} threshold probes"
    )
    print(
        f"  answers:       {sum(len(r.answers) for r in served)} "
        f"({matches}/{len(queries)} probes identical to the "
        f"single-process engine)"
    )
    print(
        f"  resilience:    {counters['failovers']} failover(s), "
        f"{counters['hedges']} hedge(s) ({counters['hedge_wins']} won), "
        f"{stats['worker_restarts']} worker restart(s), "
        f"{counters['degraded_queries']} degraded quer(y/ies)"
    )
    admission_stats = stats["admission"]
    print(
        f"  admission:     {admission_stats['admitted']} admitted, "
        f"{admission_stats['rejected_quota']} rejected (quota), "
        f"{admission_stats['rejected_queue_depth']} rejected (queue depth)"
    )
    if args.obs:
        slo = stats.get("observability", {}).get("slo", {})
        query_slo = slo.get("summaries", {}).get("query", {})
        budget = slo.get("error_budget", {})
        print(
            f"  slo:           query p50 "
            f"{query_slo.get('p50', 0.0) * 1000:.1f} ms, p95 "
            f"{query_slo.get('p95', 0.0) * 1000:.1f} ms, p99 "
            f"{query_slo.get('p99', 0.0) * 1000:.1f} ms; error-budget "
            f"burn {budget.get('burn_rate', 0.0):.2f}x"
        )
        if findings:
            print(f"  doctor:        {len(findings)} finding(s)")
            for finding in findings:
                print(f"    [{finding.severity}] {finding.title}")
        else:
            print("  doctor:        no findings")
    if matches == len(queries):
        print("EXACT: served answers match the single-process engine")
        return 0
    print("DIVERGED: some served answers differ", file=sys.stderr)
    return 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.cli",
        description="TraSS trajectory similarity search (ICDE 2022 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    build = sub.add_parser("build", help="index a trajectory CSV into a store")
    build.add_argument("--csv", required=True, help="tid,x,y point CSV")
    build.add_argument("--store", required=True, help="output directory")
    build.add_argument(
        "--bounds",
        nargs=4,
        type=float,
        default=[-180.0, -90.0, 180.0, 90.0],
        metavar=("MINX", "MINY", "MAXX", "MAXY"),
        help="index space extent (default: whole earth)",
    )
    build.add_argument("--resolution", type=int, default=16)
    build.add_argument("--dp-tolerance", type=float, default=0.01)
    build.add_argument("--shards", type=int, default=8)
    build.add_argument(
        "--measure", default="frechet", choices=available_measures()
    )
    build.set_defaults(func=_build)

    info = sub.add_parser("info", help="store statistics")
    info.add_argument("--store", required=True)
    info.set_defaults(func=_info)

    def add_perf_args(p):
        p.add_argument(
            "--scan-workers",
            type=int,
            default=None,
            help="parallel scan threads (overrides the stored config; "
            "answers are identical at any setting)",
        )
        p.add_argument(
            "--cache-mb",
            type=float,
            default=None,
            help="scan-block + decoded-record cache budget in MiB "
            "(overrides the stored config; 0 disables)",
        )
        p.add_argument(
            "--vectorized-filter",
            action="store_true",
            default=None,
            help="evaluate the local-filter lemmas over whole candidate "
            "batches with numpy (overrides the stored config; answers "
            "are identical either way)",
        )

    def add_query_args(p):
        p.add_argument("--store", required=True)
        p.add_argument("--query-tid", help="query by stored trajectory id")
        p.add_argument("--query-csv", help="query from a one-trajectory CSV")
        p.add_argument(
            "--measure", default=None, choices=available_measures()
        )
        add_perf_args(p)

    threshold = sub.add_parser("threshold", help="threshold similarity search")
    add_query_args(threshold)
    threshold.add_argument("--eps", type=float, required=True)
    threshold.set_defaults(func=_threshold)

    topk = sub.add_parser("topk", help="top-k similarity search")
    add_query_args(topk)
    topk.add_argument("--k", type=int, required=True)
    topk.set_defaults(func=_topk)

    query = sub.add_parser(
        "query",
        help="run a threshold-query workload; --batch shares one "
        "deduplicated scan across all queries",
    )
    query.add_argument("--store", required=True)
    query.add_argument(
        "--query-tid",
        action="append",
        help="stored trajectory id to query with (repeatable)",
    )
    query.add_argument(
        "--queries-csv",
        help="CSV holding the query trajectories (tid,x,y rows)",
    )
    query.add_argument("--eps", type=float, required=True)
    query.add_argument("--measure", default=None, choices=available_measures())
    query.add_argument(
        "--batch",
        action="store_true",
        help="coalesce all query plans into one shared scan "
        "(identical answers, fewer rows scanned)",
    )
    query.add_argument(
        "--cluster",
        type=int,
        default=None,
        metavar="N",
        help="serve the workload from N shard-worker processes "
        "(scatter-gather; answers identical to the local engine)",
    )
    query.add_argument(
        "--replication",
        type=int,
        default=1,
        help="replicas per shard worker (failover targets; with --cluster)",
    )
    query.add_argument(
        "--hedge-delay",
        type=float,
        default=None,
        help="send a hedged copy to a second replica after this many "
        "seconds without a reply (with --cluster)",
    )
    add_perf_args(query)
    query.set_defaults(func=_query)

    def add_trace_args(p):
        p.add_argument("--eps", type=float, default=None)
        p.add_argument("--k", type=int, default=None)
        p.add_argument(
            "--json", action="store_true", help="emit machine-readable JSON"
        )
        p.add_argument(
            "--show-events",
            action="store_true",
            help="include span events (per-lemma filter decisions)",
        )
        p.add_argument(
            "--max-children",
            type=int,
            default=16,
            help="rendered child spans per node before elision",
        )

    explain = sub.add_parser(
        "explain",
        help="describe a query plan; --analyze runs the query under "
        "tracing and reports per-phase measurements",
    )
    add_query_args(explain)
    add_trace_args(explain)
    explain.add_argument(
        "--analyze",
        action="store_true",
        help="EXPLAIN ANALYZE: execute the query and tie each phase to "
        "its measured counts and durations",
    )
    explain.set_defaults(func=_explain)

    trace = sub.add_parser(
        "trace", help="run one query under tracing and print the span tree"
    )
    add_query_args(trace)
    add_trace_args(trace)
    trace.add_argument(
        "--cluster",
        type=int,
        default=None,
        metavar="N",
        help="route the query through N shard workers and stitch the "
        "coordinator and worker spans into one cross-process trace",
    )
    trace.add_argument(
        "--replication",
        type=int,
        default=1,
        help="replicas per shard worker (with --cluster)",
    )
    trace.set_defaults(func=_trace)

    range_ = sub.add_parser("range", help="spatial range query")
    range_.add_argument("--store", required=True)
    range_.add_argument(
        "--window",
        nargs=4,
        type=float,
        required=True,
        metavar=("MINX", "MINY", "MAXX", "MAXY"),
    )
    range_.set_defaults(func=_range)

    stats = sub.add_parser(
        "stats",
        help="execution-layer report: workers, cache hit rates, "
        "per-phase probe timings",
    )
    stats.add_argument("--store", required=True)
    stats.add_argument(
        "--probes",
        type=int,
        default=5,
        help="stored trajectories used as probe queries (each runs "
        "twice: cold then warm)",
    )
    stats.add_argument("--eps", type=float, default=0.01)
    stats.add_argument(
        "--json",
        action="store_true",
        help="emit the full stats bundle (including the storage "
        "section) as JSON",
    )
    stats.add_argument(
        "--cluster",
        type=int,
        default=None,
        metavar="N",
        help="route the probe workload through N shard workers and "
        "include the cluster-wide observability snapshot",
    )
    stats.add_argument(
        "--replication",
        type=int,
        default=1,
        help="replicas per shard worker (with --cluster)",
    )
    stats.add_argument(
        "--prometheus",
        action="store_true",
        help="print the Prometheus text exposition instead of the "
        "human report (covers the whole cluster with --cluster)",
    )
    add_perf_args(stats)
    stats.set_defaults(func=_stats)

    compact = sub.add_parser(
        "compact",
        help="rewrite a saved store's regions (optionally as "
        "compressed mmap segments)",
    )
    compact.add_argument("--store", required=True)
    compact.add_argument(
        "--freeze",
        action="store_true",
        help="write the compact columnar .seg format (3-7x smaller for "
        "trajectory data) instead of plain SSTables",
    )
    compact.add_argument(
        "--out",
        default=None,
        help="write to this directory instead of rewriting in place",
    )
    compact.add_argument("--json", action="store_true")
    compact.set_defaults(func=_compact)

    heatmap = sub.add_parser(
        "heatmap",
        help="render scan traffic over the salted row-key space "
        "(ASCII, or --json)",
    )
    heatmap.add_argument("--store", required=True)
    heatmap.add_argument(
        "--probe",
        type=int,
        default=0,
        help="run this many probe threshold queries first so a fresh "
        "store has heat to show",
    )
    heatmap.add_argument("--eps", type=float, default=0.01)
    heatmap.add_argument("--json", action="store_true")
    add_perf_args(heatmap)
    heatmap.set_defaults(func=_heatmap)

    doctor = sub.add_parser(
        "doctor",
        help="tuning advisor: ranked recommendations citing the metric "
        "values that triggered them",
    )
    doctor.add_argument("--store", required=True)
    doctor.add_argument(
        "--probe",
        type=int,
        default=0,
        help="run this many probe threshold queries before diagnosing",
    )
    doctor.add_argument("--eps", type=float, default=0.01)
    doctor.add_argument("--json", action="store_true")
    add_perf_args(doctor)
    doctor.set_defaults(func=_doctor)

    replay = sub.add_parser(
        "replay",
        help="re-execute the recorded workload and verify every answer "
        "digest (exit 1 on divergence)",
    )
    replay.add_argument("--store", required=True)
    replay.add_argument("--json", action="store_true")
    add_perf_args(replay)
    replay.set_defaults(func=_replay)

    chaos = sub.add_parser(
        "chaos",
        help="run a seeded fault-injection schedule and report resilience",
    )
    chaos.add_argument(
        "--store",
        help="existing store to attack (default: a synthetic workload)",
    )
    chaos.add_argument(
        "--trajectories",
        type=int,
        default=150,
        help="synthetic workload size when no --store is given",
    )
    chaos.add_argument("--queries", type=int, default=10)
    chaos.add_argument("--seed", type=int, default=0)
    chaos.add_argument("--shards", type=int, default=4)
    chaos.add_argument("--eps", type=float, default=0.02)
    chaos.add_argument("--k", type=int, default=5)
    chaos.add_argument(
        "--unavailable-prob",
        type=float,
        default=0.25,
        help="per region-scan probability of a transient outage",
    )
    chaos.add_argument(
        "--max-consecutive",
        type=int,
        default=2,
        help="cap on back-to-back failures of one region",
    )
    chaos.add_argument("--slow-prob", type=float, default=0.1)
    chaos.add_argument(
        "--slow-seconds",
        type=float,
        default=0.05,
        help="virtual latency charged per slow region scan",
    )
    chaos.add_argument("--split-prob", type=float, default=0.02)
    chaos.add_argument("--compact-prob", type=float, default=0.02)
    chaos.add_argument(
        "--retry-attempts",
        type=int,
        default=6,
        help="scan attempts per range (must exceed --max-consecutive "
        "for full masking)",
    )
    chaos.add_argument(
        "--deadline",
        type=float,
        default=None,
        help="per-query scan budget in seconds (virtual latency counts)",
    )
    chaos.add_argument(
        "--degraded",
        action="store_true",
        help="return partial results instead of failing exhausted ranges",
    )
    chaos.set_defaults(func=_chaos)

    serve = sub.add_parser(
        "serve",
        help="start a shard-worker cluster and verify served answers "
        "against the single-process engine",
    )
    serve.add_argument(
        "--store",
        help="existing store to serve (default: a synthetic workload)",
    )
    serve.add_argument(
        "--trajectories",
        type=int,
        default=150,
        help="synthetic workload size when no --store is given",
    )
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument(
        "--shards",
        type=int,
        default=4,
        help="row-key salt shards for the synthetic store",
    )
    serve.add_argument(
        "--shard-workers",
        type=int,
        default=2,
        help="worker processes, each owning a disjoint salt slice",
    )
    serve.add_argument(
        "--replication",
        type=int,
        default=1,
        help="replicas per shard worker (failover targets)",
    )
    serve.add_argument(
        "--probes",
        type=int,
        default=10,
        help="stored trajectories used as threshold probe queries",
    )
    serve.add_argument("--eps", type=float, default=0.01)
    serve.add_argument(
        "--timeout",
        type=float,
        default=30.0,
        help="per-request timeout before failover to another replica",
    )
    serve.add_argument(
        "--hedge-delay",
        type=float,
        default=None,
        help="send a hedged copy to a second replica after this many "
        "seconds without a reply",
    )
    serve.add_argument(
        "--degraded",
        action="store_true",
        help="return partial answers (with exact skipped-range "
        "accounting) when a whole partition is unreachable",
    )
    serve.add_argument(
        "--obs",
        action="store_true",
        help="enable cluster observability: SLO histograms, per-worker "
        "metrics aggregation and the serving doctor",
    )
    serve.add_argument(
        "--tenant-rate",
        type=float,
        default=None,
        help="admission control: sustained queries/second per tenant",
    )
    serve.add_argument(
        "--tenant-burst",
        type=float,
        default=None,
        help="admission control: per-tenant burst size "
        "(default: --tenant-rate)",
    )
    serve.add_argument(
        "--max-in-flight",
        type=int,
        default=None,
        help="admission control: shed load beyond this many "
        "concurrent queries",
    )
    serve.add_argument("--json", action="store_true")
    serve.set_defaults(func=_serve)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (ReproError, ValueError) as exc:
        # ValueError covers bad schedule/config parameters (e.g. a
        # probability outside [0, 1]) so they fail like other CLI
        # errors instead of with a traceback.
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
