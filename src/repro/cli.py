"""Command-line interface.

Build a persistent TraSS store from a trajectory CSV and query it::

    python -m repro.cli build  --csv data.csv --store ./store \\
        --bounds 115.8 39.4 117.2 40.6 --resolution 16 --shards 8
    python -m repro.cli info   --store ./store
    python -m repro.cli threshold --store ./store --query-tid taxi42 --eps 0.01
    python -m repro.cli topk      --store ./store --query-tid taxi42 --k 10
    python -m repro.cli range     --store ./store --window 116.0 39.6 116.5 40.0

The CSV format is the one :mod:`repro.data.io` writes: a ``tid,x,y``
header and one point per row, points of a trajectory consecutive.
Queries take either ``--query-tid`` (a stored trajectory) or
``--query-csv`` (a single-trajectory CSV).
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro.core.config import TraSSConfig
from repro.core.engine import TraSS
from repro.data.io import load_csv
from repro.exceptions import ReproError
from repro.geometry.mbr import MBR
from repro.geometry.trajectory import Trajectory
from repro.index.bounds import SpaceBounds
from repro.measures import available_measures


def _build(args: argparse.Namespace) -> int:
    trajectories = load_csv(args.csv)
    if not trajectories:
        print("no trajectories in the CSV", file=sys.stderr)
        return 1
    config = TraSSConfig(
        bounds=SpaceBounds(*args.bounds),
        max_resolution=args.resolution,
        dp_tolerance=args.dp_tolerance,
        shards=args.shards,
        measure_name=args.measure,
    )
    started = time.perf_counter()
    engine = TraSS.build(trajectories, config)
    engine.save(args.store)
    elapsed = time.perf_counter() - started
    print(
        f"indexed {len(engine)} trajectories into {args.store} "
        f"in {elapsed:.2f}s ({engine.store.table.num_regions} region(s))"
    )
    return 0


def _load_engine(args: argparse.Namespace) -> TraSS:
    return TraSS.load(args.store)


def _resolve_query(engine: TraSS, args: argparse.Namespace) -> Trajectory:
    if args.query_csv:
        trajectories = load_csv(args.query_csv)
        if len(trajectories) != 1:
            raise ReproError(
                f"--query-csv must hold exactly one trajectory, "
                f"found {len(trajectories)}"
            )
        return trajectories[0]
    if not args.query_tid:
        raise ReproError("provide --query-tid or --query-csv")
    for record in engine.store.all_records():
        if record.tid == args.query_tid:
            return record.as_trajectory()
    raise ReproError(f"trajectory {args.query_tid!r} not found in the store")


def _info(args: argparse.Namespace) -> int:
    engine = _load_engine(args)
    stats = engine.stats()
    print(f"store:            {args.store}")
    print(f"trajectories:     {stats['trajectories']}")
    print(f"regions:          {stats['regions']}")
    print(f"distinct values:  {stats['distinct_index_values']}")
    print(f"selectivity:      {stats['selectivity']:.4f}")
    print(f"approx bytes:     {stats['approximate_bytes']}")
    print(f"max resolution:   {engine.config.max_resolution}")
    print(f"shards:           {engine.config.shards}")
    print(f"measure:          {engine.config.measure_name}")
    return 0


def _threshold(args: argparse.Namespace) -> int:
    engine = _load_engine(args)
    query = _resolve_query(engine, args)
    result = engine.threshold_search(query, args.eps, measure=args.measure)
    for tid, dist in sorted(result.answers.items(), key=lambda kv: kv[1]):
        print(f"{tid}\t{dist:.6f}")
    print(
        f"# {len(result.answers)} answers, {result.candidates} candidates, "
        f"{result.retrieved_rows} rows scanned, "
        f"{result.total_seconds * 1000:.1f} ms",
        file=sys.stderr,
    )
    return 0


def _topk(args: argparse.Namespace) -> int:
    engine = _load_engine(args)
    query = _resolve_query(engine, args)
    result = engine.topk_search(query, args.k, measure=args.measure)
    for dist, tid in result.answers:
        print(f"{tid}\t{dist:.6f}")
    print(
        f"# {result.candidates} candidates, {result.retrieved_rows} rows "
        f"scanned, {result.total_seconds * 1000:.1f} ms",
        file=sys.stderr,
    )
    return 0


def _range(args: argparse.Namespace) -> int:
    engine = _load_engine(args)
    window = MBR(*args.window)
    for tid in engine.range_query(window):
        print(tid)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.cli",
        description="TraSS trajectory similarity search (ICDE 2022 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    build = sub.add_parser("build", help="index a trajectory CSV into a store")
    build.add_argument("--csv", required=True, help="tid,x,y point CSV")
    build.add_argument("--store", required=True, help="output directory")
    build.add_argument(
        "--bounds",
        nargs=4,
        type=float,
        default=[-180.0, -90.0, 180.0, 90.0],
        metavar=("MINX", "MINY", "MAXX", "MAXY"),
        help="index space extent (default: whole earth)",
    )
    build.add_argument("--resolution", type=int, default=16)
    build.add_argument("--dp-tolerance", type=float, default=0.01)
    build.add_argument("--shards", type=int, default=8)
    build.add_argument(
        "--measure", default="frechet", choices=available_measures()
    )
    build.set_defaults(func=_build)

    info = sub.add_parser("info", help="store statistics")
    info.add_argument("--store", required=True)
    info.set_defaults(func=_info)

    def add_query_args(p):
        p.add_argument("--store", required=True)
        p.add_argument("--query-tid", help="query by stored trajectory id")
        p.add_argument("--query-csv", help="query from a one-trajectory CSV")
        p.add_argument(
            "--measure", default=None, choices=available_measures()
        )

    threshold = sub.add_parser("threshold", help="threshold similarity search")
    add_query_args(threshold)
    threshold.add_argument("--eps", type=float, required=True)
    threshold.set_defaults(func=_threshold)

    topk = sub.add_parser("topk", help="top-k similarity search")
    add_query_args(topk)
    topk.add_argument("--k", type=int, required=True)
    topk.set_defaults(func=_topk)

    range_ = sub.add_parser("range", help="spatial range query")
    range_.add_argument("--store", required=True)
    range_.add_argument(
        "--window",
        nargs=4,
        type=float,
        required=True,
        metavar=("MINX", "MINY", "MAXX", "MAXY"),
    )
    range_.set_defaults(func=_range)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
