"""JUST / TrajMesa-style baseline: XZ2 over the key-value substrate.

This is the paper's pivotal comparison.  JUST (ICDE'20) and TrajMesa
store trajectories under GeoMesa's XZ2 index value and, for a
similarity query, scan every element whose enlarged element intersects
the extended query window, filtering candidates by MBR before the exact
measure ("they do not prune index spaces that intersect the MBR of a
query trajectory", Section I).  Running it over the identical
:mod:`repro.kvstore` table makes the rows-scanned comparison with XZ*
an apples-to-apples measurement.
"""

from __future__ import annotations

import math
import time
from typing import Dict, Iterable, List, Optional, Tuple

from repro.baselines.base import BaselineResult, SimilaritySearchBaseline
from repro.core.codec import decode_row, encode_row
from repro.features.dp_features import extract_dp_features
from repro.geometry.mbr import MBR
from repro.geometry.trajectory import Trajectory
from repro.index.bounds import SpaceBounds
from repro.index.xz2 import XZ2Index
from repro.kvstore.metrics import IOMetrics
from repro.kvstore.rowkey import encode_rowkey, rowkey_range, shard_of
from repro.kvstore.table import KVTable, ScanRange


class JustXZ2Baseline(SimilaritySearchBaseline):
    """XZ2-indexed trajectories in a key-value table."""

    name = "JUST"

    def __init__(
        self,
        measure: str = "frechet",
        max_resolution: int = 16,
        bounds: Optional[SpaceBounds] = None,
        shards: int = 8,
        dp_tolerance: float = 0.01,
    ):
        super().__init__(measure)
        self.index = XZ2Index(max_resolution, bounds)
        self.shards = shards
        self.dp_tolerance = dp_tolerance
        self.table = KVTable(name="just")
        self.build_seconds = 0.0

    @property
    def metrics(self) -> IOMetrics:
        return self.table.metrics

    # ------------------------------------------------------------------
    def build(self, trajectories: Iterable[Trajectory]) -> None:
        started = time.perf_counter()
        for trajectory in trajectories:
            placed = self.index.index(trajectory)
            shard = shard_of(trajectory.tid, self.shards)
            key = encode_rowkey(shard, placed.value, trajectory.tid)
            features = extract_dp_features(trajectory.points, self.dp_tolerance)
            self.table.put(key, encode_row(trajectory.tid, trajectory.points, features))
        self.build_seconds = time.perf_counter() - started

    # ------------------------------------------------------------------
    def _scan_candidates(
        self, window: MBR, query_mbr_ext: MBR
    ) -> Tuple[List[Trajectory], int]:
        """Scan all XZ2 ranges for ``window``; MBR-filter candidates."""
        ranges = self.index.window_ranges(window)
        scan_ranges: List[ScanRange] = []
        for shard in range(self.shards):
            for r in ranges:
                start, stop = rowkey_range(shard, r.start, r.stop)
                scan_ranges.append(ScanRange(start, stop))
        before = self.metrics.snapshot()
        candidates: List[Trajectory] = []
        for _, value in self.table.scan_ranges(scan_ranges):
            tid, points, features = decode_row(value)
            if features.mbr.intersects(query_mbr_ext):
                candidates.append(Trajectory(tid, points))
        retrieved = self.metrics.diff(before)["rows_scanned"]
        return candidates, retrieved

    def threshold_search(self, query: Trajectory, eps: float) -> BaselineResult:
        started = time.perf_counter()
        window = query.mbr.expanded(eps)
        candidates, retrieved = self._scan_candidates(window, window)
        return self._verify(query, eps, candidates, retrieved, started)

    def topk_search(self, query: Trajectory, k: int) -> BaselineResult:
        """Expanding-window top-k: widen the query window until at least
        ``k`` candidates appear, then verify exactly and re-check that
        the k-th distance is inside the explored radius."""
        started = time.perf_counter()
        eps = max(query.mbr.width, query.mbr.height, 1e-6) * 0.25
        retrieved_total = 0
        while True:
            window = query.mbr.expanded(eps)
            candidates, retrieved = self._scan_candidates(window, window)
            retrieved_total += retrieved
            if len(candidates) >= k or eps > 4 * max(
                self.index.bounds.width, self.index.bounds.height
            ):
                result = self._rank(query, k, candidates, retrieved_total, started)
                # Sound stop: the k-th answer must be closer than the
                # explored radius, otherwise something outside the
                # window could still beat it.
                if (
                    len(result.ranked) == k
                    and result.ranked[-1][0] <= eps
                ) or eps > 4 * max(
                    self.index.bounds.width, self.index.bounds.height
                ):
                    result.candidates = len(candidates)
                    return result
            eps *= 2.0
