"""DITA baseline (SIGMOD 2018): trie over pivot points.

DITA indexes each trajectory by a short pivot sequence — first point,
last point, then the interior points that deviate most from their
neighbours — in a trie whose levels are grid cells.  Queries walk the
trie level by level, keeping branches whose cell is within ``eps`` of
the corresponding query pivot, then apply MBR-coverage filtering before
the exact measure.  The paper's critique ("a trajectory may appear in a
small area of its representative MBR, thus MBR coverage filtering
prunes fewer trajectories") is what the coverage filter here exhibits.

DITA relies on ordered first/last matching, so it supports Fréchet and
DTW but not Hausdorff — mirroring "DITA does not support the Hausdorff
distance" (Section VII-C).
"""

from __future__ import annotations

import math
import time
from typing import Dict, Iterable, List, Optional, Tuple

from repro.baselines.base import BaselineResult, SimilaritySearchBaseline
from repro.exceptions import QueryError
from repro.geometry.distance import point_segment_distance
from repro.geometry.mbr import MBR
from repro.geometry.trajectory import Trajectory

Cell = Tuple[int, int]


def _select_pivots(points, count: int) -> List[Tuple[float, float]]:
    """First, last, and the ``count - 2`` largest-deviation interior
    points (DITA's pivot selection heuristic)."""
    n = len(points)
    if n <= 2 or count <= 2:
        return [points[0], points[-1]][: max(1, count)]
    deviations = []
    for i in range(1, n - 1):
        deviations.append(
            (point_segment_distance(points[i], points[i - 1], points[i + 1]), i)
        )
    deviations.sort(reverse=True)
    chosen = sorted(i for _, i in deviations[: count - 2])
    return [points[0]] + [points[i] for i in chosen] + [points[-1]]


class _TrieNode:
    __slots__ = ("children", "tids")

    def __init__(self) -> None:
        self.children: Dict[Cell, "_TrieNode"] = {}
        self.tids: List[str] = []


class DITABaseline(SimilaritySearchBaseline):
    """Pivot-point trie with MBR-coverage filtering."""

    name = "DITA"
    supports_threshold = True
    supports_topk = True

    def __init__(
        self,
        measure: str = "frechet",
        cell_size: float = 0.01,
        num_pivots: int = 4,
    ):
        super().__init__(measure)
        if measure == "hausdorff":
            raise QueryError("DITA does not support the Hausdorff distance")
        if cell_size <= 0:
            raise QueryError(f"cell_size must be positive, got {cell_size}")
        self.cell_size = cell_size
        self.num_pivots = max(2, num_pivots)
        self.root = _TrieNode()
        self._by_tid: Dict[str, Trajectory] = {}
        self._pivots: Dict[str, List[Tuple[float, float]]] = {}
        self.build_seconds = 0.0
        self.node_count = 0

    # ------------------------------------------------------------------
    def _cell(self, x: float, y: float) -> Cell:
        return int(math.floor(x / self.cell_size)), int(
            math.floor(y / self.cell_size)
        )

    def build(self, trajectories: Iterable[Trajectory]) -> None:
        started = time.perf_counter()
        for trajectory in trajectories:
            self._by_tid[trajectory.tid] = trajectory
            pivots = _select_pivots(trajectory.points, self.num_pivots)
            self._pivots[trajectory.tid] = pivots
            node = self.root
            for px, py in pivots:
                cell = self._cell(px, py)
                child = node.children.get(cell)
                if child is None:
                    child = _TrieNode()
                    node.children[cell] = child
                    self.node_count += 1
                node = child
            node.tids.append(trajectory.tid)
        self.build_seconds = time.perf_counter() - started

    # ------------------------------------------------------------------
    def _cells_near(self, x: float, y: float, eps: float) -> List[Cell]:
        """Grid cells whose rectangle is within ``eps`` of ``(x, y)``."""
        size = self.cell_size
        cx0 = int(math.floor((x - eps) / size))
        cx1 = int(math.floor((x + eps) / size))
        cy0 = int(math.floor((y - eps) / size))
        cy1 = int(math.floor((y + eps) / size))
        return [
            (cx, cy)
            for cx in range(cx0, cx1 + 1)
            for cy in range(cy0, cy1 + 1)
        ]

    def _trie_candidates(
        self, query: Trajectory, eps: float
    ) -> Tuple[List[str], int]:
        """Walk the trie keeping branches compatible with the query.

        Level 0 must be within ``eps`` of the query's start and the last
        level within ``eps`` of its end (Lemma 12 semantics).  Interior
        pivot levels only require the branch cell to be within ``eps``
        of *some* query point — interior pivots of a similar trajectory
        match unknown interior points of the query.
        """
        visited = 1
        q_start, q_end = query.points[0], query.points[-1]
        q_mbr_ext = query.mbr.expanded(eps)
        tids: List[str] = []
        # Trajectories with fewer pivots than num_pivots terminate at
        # shallower trie nodes, so tids are collected wherever a branch
        # both survives and holds terminals (its cell is the owner's
        # *last* pivot, hence the end-point condition there).
        frontier = [(self.root, 0)]
        while frontier:
            next_frontier = []
            for node, level in frontier:
                for cell, child in node.children.items():
                    visited += 1
                    rect = MBR(
                        cell[0] * self.cell_size,
                        cell[1] * self.cell_size,
                        (cell[0] + 1) * self.cell_size,
                        (cell[1] + 1) * self.cell_size,
                    )
                    if level == 0:
                        ok = rect.distance_to_point(*q_start) <= eps
                    else:
                        ok = rect.intersects(q_mbr_ext)
                    if not ok:
                        continue
                    if child.tids and rect.distance_to_point(*q_end) <= eps:
                        tids.extend(child.tids)
                    if child.children:
                        next_frontier.append((child, level + 1))
            frontier = next_frontier
        return tids, visited

    def _coverage_filter(
        self, query: Trajectory, eps: float, tids: List[str]
    ) -> List[Trajectory]:
        """MBR coverage: candidate MBR must intersect Ext(Q.MBR, eps)."""
        window = query.mbr.expanded(eps)
        out = []
        for tid in tids:
            trajectory = self._by_tid[tid]
            if trajectory.mbr.intersects(window):
                out.append(trajectory)
        return out

    # ------------------------------------------------------------------
    def threshold_search(self, query: Trajectory, eps: float) -> BaselineResult:
        started = time.perf_counter()
        tids, visited = self._trie_candidates(query, eps)
        candidates = self._coverage_filter(query, eps, tids)
        return self._verify(query, eps, candidates, visited, started)

    def topk_search(self, query: Trajectory, k: int) -> BaselineResult:
        """Expanding-threshold top-k over the trie."""
        started = time.perf_counter()
        eps = self.cell_size
        visited_total = 0
        bound = 4 * max(
            abs(query.mbr.max_x) + 1.0, abs(query.mbr.max_y) + 1.0, 360.0
        )
        while True:
            tids, visited = self._trie_candidates(query, eps)
            visited_total += visited
            candidates = self._coverage_filter(query, eps, tids)
            if len(candidates) >= k or eps > bound:
                result = self._rank(query, k, candidates, visited_total, started)
                if (
                    len(result.ranked) == k and result.ranked[-1][0] <= eps
                ) or eps > bound:
                    return result
            eps *= 2.0
