"""Baseline systems the paper compares TraSS against (Section VI).

Every baseline is implemented from scratch in this package, faithful to
the property the paper's analysis leans on:

* :mod:`brute` — full-scan ground truth (correctness oracle, and the
  "no index" lower bound);
* :mod:`rtree` — an R-tree (STR bulk load + quadratic-split inserts),
  the dynamic index DFT builds on;
* :mod:`dft` — DFT (VLDB'17): R-tree over segment MBRs, bitmap
  candidate collection, and the sample-``c*k`` thresholding trick for
  top-k;
* :mod:`dita` — DITA (SIGMOD'18): trie over pivot points with
  MBR-coverage filtering;
* :mod:`just_xz2` — JUST / TrajMesa (ICDE'20): plain XZ2 index over the
  same key-value substrate as TraSS, the central index-level comparison;
* :mod:`repose` — REPOSE (ICDE'21): reference-point trie, top-k only.

All baselines expose ``threshold_search(query, eps)`` and/or
``topk_search(query, k)`` returning the shared result types, plus the
same candidate accounting, so the benches can tabulate them uniformly.
"""

from repro.baselines.base import BaselineResult, SimilaritySearchBaseline
from repro.baselines.brute import BruteForceBaseline
from repro.baselines.rtree import RTree, RTreeEntry
from repro.baselines.just_xz2 import JustXZ2Baseline
from repro.baselines.dft import DFTBaseline
from repro.baselines.dita import DITABaseline
from repro.baselines.repose import REPOSEBaseline

__all__ = [
    "BaselineResult",
    "SimilaritySearchBaseline",
    "BruteForceBaseline",
    "RTree",
    "RTreeEntry",
    "JustXZ2Baseline",
    "DFTBaseline",
    "DITABaseline",
    "REPOSEBaseline",
]
