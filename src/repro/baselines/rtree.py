"""An R-tree: STR bulk loading plus dynamic quadratic-split inserts.

DFT partitions trajectory segments with an R-tree; the paper's
Figure 13 point about *dynamic* indexes ("DFT, DITA and REPOSE use
dynamic index structures, which takes much time to adapt to the
dataset") is exercised by this implementation's insert/split path.

The tree stores arbitrary payloads under MBRs and supports rectangle
intersection queries and best-first nearest-rectangle traversal.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Any, Iterator, List, Optional, Sequence, Tuple

from repro.exceptions import ReproError
from repro.geometry.mbr import MBR


@dataclass
class RTreeEntry:
    """A leaf payload under its bounding rectangle."""

    mbr: MBR
    payload: Any


class _Node:
    __slots__ = ("leaf", "entries", "children", "mbr")

    def __init__(self, leaf: bool):
        self.leaf = leaf
        self.entries: List[RTreeEntry] = []
        self.children: List["_Node"] = []
        self.mbr: Optional[MBR] = None

    def recompute_mbr(self) -> None:
        rects = (
            [e.mbr for e in self.entries]
            if self.leaf
            else [c.mbr for c in self.children if c.mbr is not None]
        )
        self.mbr = MBR.union_all(rects) if rects else None

    def __len__(self) -> int:
        return len(self.entries) if self.leaf else len(self.children)


def _enlargement(mbr: MBR, rect: MBR) -> float:
    grown = mbr.union(rect)
    return grown.area - mbr.area


class RTree:
    """A dynamic R-tree with an optional STR bulk-load constructor."""

    def __init__(self, max_entries: int = 16):
        if max_entries < 4:
            raise ReproError(f"max_entries must be >= 4, got {max_entries}")
        self.max_entries = max_entries
        self.min_entries = max(2, max_entries // 3)
        self.root = _Node(leaf=True)
        self.size = 0
        #: structural-adjustment counter (node splits), the "dynamic
        #: index maintenance" cost Figure 13(a) talks about
        self.split_count = 0

    # ------------------------------------------------------------------
    # Bulk load (Sort-Tile-Recursive)
    # ------------------------------------------------------------------
    @classmethod
    def bulk_load(
        cls, entries: Sequence[RTreeEntry], max_entries: int = 16
    ) -> "RTree":
        """Build with the STR algorithm (how DFT loads its partitions)."""
        tree = cls(max_entries)
        tree.size = len(entries)
        if not entries:
            return tree
        leaves = tree._str_pack(list(entries))
        level = leaves
        while len(level) > 1:
            level = tree._str_pack_nodes(level)
        tree.root = level[0]
        return tree

    def _str_pack(self, entries: List[RTreeEntry]) -> List[_Node]:
        cap = self.max_entries
        entries.sort(key=lambda e: e.mbr.center.x)
        slice_count = max(1, math.ceil(math.sqrt(math.ceil(len(entries) / cap))))
        slice_size = slice_count * cap
        leaves: List[_Node] = []
        for i in range(0, len(entries), slice_size):
            chunk = sorted(
                entries[i : i + slice_size], key=lambda e: e.mbr.center.y
            )
            for j in range(0, len(chunk), cap):
                node = _Node(leaf=True)
                node.entries = chunk[j : j + cap]
                node.recompute_mbr()
                leaves.append(node)
        return leaves

    def _str_pack_nodes(self, nodes: List[_Node]) -> List[_Node]:
        cap = self.max_entries
        nodes.sort(key=lambda n: n.mbr.center.x)  # type: ignore[union-attr]
        slice_count = max(1, math.ceil(math.sqrt(math.ceil(len(nodes) / cap))))
        slice_size = slice_count * cap
        parents: List[_Node] = []
        for i in range(0, len(nodes), slice_size):
            chunk = sorted(
                nodes[i : i + slice_size],
                key=lambda n: n.mbr.center.y,  # type: ignore[union-attr]
            )
            for j in range(0, len(chunk), cap):
                node = _Node(leaf=False)
                node.children = chunk[j : j + cap]
                node.recompute_mbr()
                parents.append(node)
        return parents

    # ------------------------------------------------------------------
    # Dynamic insert
    # ------------------------------------------------------------------
    def insert(self, entry: RTreeEntry) -> None:
        """Insert one entry, splitting nodes as needed."""
        split = self._insert(self.root, entry)
        if split is not None:
            new_root = _Node(leaf=False)
            new_root.children = [self.root, split]
            new_root.recompute_mbr()
            self.root = new_root
        self.size += 1

    def _insert(self, node: _Node, entry: RTreeEntry) -> Optional[_Node]:
        if node.mbr is None:
            node.mbr = entry.mbr
        else:
            node.mbr = node.mbr.union(entry.mbr)
        if node.leaf:
            node.entries.append(entry)
            if len(node.entries) > self.max_entries:
                return self._split_leaf(node)
            return None
        child = self._choose_child(node, entry.mbr)
        split = self._insert(child, entry)
        if split is not None:
            node.children.append(split)
            if len(node.children) > self.max_entries:
                return self._split_inner(node)
        return None

    def _choose_child(self, node: _Node, rect: MBR) -> _Node:
        best = None
        best_key: Tuple[float, float] = (math.inf, math.inf)
        for child in node.children:
            assert child.mbr is not None
            key = (_enlargement(child.mbr, rect), child.mbr.area)
            if key < best_key:
                best_key = key
                best = child
        assert best is not None
        return best

    def _quadratic_seeds(self, rects: List[MBR]) -> Tuple[int, int]:
        worst = -math.inf
        seeds = (0, 1)
        for i in range(len(rects)):
            for j in range(i + 1, len(rects)):
                waste = (
                    rects[i].union(rects[j]).area
                    - rects[i].area
                    - rects[j].area
                )
                if waste > worst:
                    worst = waste
                    seeds = (i, j)
        return seeds

    def _split_leaf(self, node: _Node) -> _Node:
        self.split_count += 1
        entries = node.entries
        rects = [e.mbr for e in entries]
        i, j = self._quadratic_seeds(rects)
        group_a, group_b = [entries[i]], [entries[j]]
        mbr_a, mbr_b = entries[i].mbr, entries[j].mbr
        for idx, entry in enumerate(entries):
            if idx in (i, j):
                continue
            if len(group_a) + (len(entries) - idx) <= self.min_entries:
                group_a.append(entry)
                mbr_a = mbr_a.union(entry.mbr)
                continue
            if len(group_b) + (len(entries) - idx) <= self.min_entries:
                group_b.append(entry)
                mbr_b = mbr_b.union(entry.mbr)
                continue
            if _enlargement(mbr_a, entry.mbr) <= _enlargement(mbr_b, entry.mbr):
                group_a.append(entry)
                mbr_a = mbr_a.union(entry.mbr)
            else:
                group_b.append(entry)
                mbr_b = mbr_b.union(entry.mbr)
        node.entries = group_a
        node.recompute_mbr()
        sibling = _Node(leaf=True)
        sibling.entries = group_b
        sibling.recompute_mbr()
        return sibling

    def _split_inner(self, node: _Node) -> _Node:
        self.split_count += 1
        children = node.children
        rects = [c.mbr for c in children]  # type: ignore[misc]
        i, j = self._quadratic_seeds(rects)  # type: ignore[arg-type]
        group_a, group_b = [children[i]], [children[j]]
        mbr_a, mbr_b = children[i].mbr, children[j].mbr
        assert mbr_a is not None and mbr_b is not None
        for idx, child in enumerate(children):
            if idx in (i, j):
                continue
            assert child.mbr is not None
            if _enlargement(mbr_a, child.mbr) <= _enlargement(mbr_b, child.mbr):
                group_a.append(child)
                mbr_a = mbr_a.union(child.mbr)
            else:
                group_b.append(child)
                mbr_b = mbr_b.union(child.mbr)
        node.children = group_a
        node.recompute_mbr()
        sibling = _Node(leaf=False)
        sibling.children = group_b
        sibling.recompute_mbr()
        return sibling

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def search(self, window: MBR) -> Iterator[RTreeEntry]:
        """All entries whose MBR intersects ``window``."""
        if self.root.mbr is None:
            return
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node.mbr is None or not node.mbr.intersects(window):
                continue
            if node.leaf:
                for entry in node.entries:
                    if entry.mbr.intersects(window):
                        yield entry
            else:
                stack.extend(node.children)

    def nearest(self, x: float, y: float, limit: int) -> List[RTreeEntry]:
        """Best-first nearest entries to a point, up to ``limit``."""
        if self.root.mbr is None or limit < 1:
            return []
        heap: List[Tuple[float, int, object]] = []
        tick = 0
        heapq.heappush(heap, (self.root.mbr.distance_to_point(x, y), tick, self.root))
        out: List[RTreeEntry] = []
        while heap and len(out) < limit:
            _, _, item = heapq.heappop(heap)
            if isinstance(item, RTreeEntry):
                out.append(item)
                continue
            node = item
            if node.leaf:  # type: ignore[union-attr]
                for entry in node.entries:  # type: ignore[union-attr]
                    tick += 1
                    heapq.heappush(
                        heap, (entry.mbr.distance_to_point(x, y), tick, entry)
                    )
            else:
                for child in node.children:  # type: ignore[union-attr]
                    if child.mbr is None:
                        continue
                    tick += 1
                    heapq.heappush(
                        heap, (child.mbr.distance_to_point(x, y), tick, child)
                    )
        return out

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self.size

    def height(self) -> int:
        h = 1
        node = self.root
        while not node.leaf:
            node = node.children[0]
            h += 1
        return h

    def check_invariants(self) -> None:
        """Validate containment and fanout; raises on violation."""
        def visit(node: _Node, is_root: bool) -> None:
            if node.leaf:
                for entry in node.entries:
                    if node.mbr is not None and not node.mbr.contains(entry.mbr):
                        raise ReproError("leaf MBR does not contain entry")
            else:
                if not node.children:
                    raise ReproError("empty inner node")
                for child in node.children:
                    if child.mbr is not None and node.mbr is not None:
                        if not node.mbr.contains(child.mbr):
                            raise ReproError("inner MBR does not contain child")
                    visit(child, False)
            if not is_root and len(node) > self.max_entries:
                raise ReproError("node fanout above maximum")

        visit(self.root, True)
