"""REPOSE baseline (ICDE 2021): reference-point trie, top-k only.

REPOSE selects pivot (reference) trajectories, precomputes each stored
trajectory's distances to them, and organises trajectories in an
RP-Trie keyed by quantised reference distances.  At query time the
triangle inequality gives a per-trajectory lower bound

    LB(T) = max_i | f(Q, R_i) - f(T, R_i) |  <=  f(Q, T)

(valid because discrete Fréchet and Hausdorff are metrics), and a
best-first sweep verifies trajectories in LB order, stopping when the
next lower bound already exceeds the current k-th distance.

Two paper-faithful properties: the build is *expensive* (it evaluates
the exact measure against every reference — the dynamic-index cost in
Figure 13(a)), and pruning quality hinges on reference selection,
which degrades on datasets with huge spatial span ("the spatial span of
the lorry dataset covers china ... which has greatly affected its
pruning performance", Section VI-B).  DTW is not a metric, so under DTW
the lower bound degenerates to zero and REPOSE effectively verifies
everything — we keep that honest degradation.

REPOSE "only support[s] top-k similarity search" (Section VI), so
threshold queries raise.
"""

from __future__ import annotations

import heapq
import math
import random
import time
from typing import Dict, Iterable, List, Tuple

from repro.baselines.base import BaselineResult, SimilaritySearchBaseline
from repro.geometry.trajectory import Trajectory


class REPOSEBaseline(SimilaritySearchBaseline):
    """Reference-point pruning with best-first verification."""

    name = "REPOSE"
    supports_threshold = False
    supports_topk = True

    def __init__(
        self,
        measure: str = "frechet",
        num_references: int = 4,
        seed: int = 17,
    ):
        super().__init__(measure)
        if num_references < 1:
            raise ValueError(
                f"num_references must be >= 1, got {num_references}"
            )
        self.num_references = num_references
        self.seed = seed
        self._by_tid: Dict[str, Trajectory] = {}
        self._references: List[Trajectory] = []
        #: tid -> distances to each reference
        self._ref_distances: Dict[str, Tuple[float, ...]] = {}
        self.build_seconds = 0.0
        self._metric = measure in ("frechet", "hausdorff")

    # ------------------------------------------------------------------
    def build(self, trajectories: Iterable[Trajectory]) -> None:
        started = time.perf_counter()
        data = list(trajectories)
        for trajectory in data:
            self._by_tid[trajectory.tid] = trajectory
        rng = random.Random(self.seed)
        count = min(self.num_references, len(data))
        self._references = rng.sample(data, count) if count else []
        for trajectory in data:
            self._ref_distances[trajectory.tid] = tuple(
                self.measure.distance(trajectory.points, ref.points)
                for ref in self._references
            )
        self.build_seconds = time.perf_counter() - started

    # ------------------------------------------------------------------
    def _lower_bound(self, query_refs: Tuple[float, ...], tid: str) -> float:
        if not self._metric or not query_refs:
            return 0.0
        stored = self._ref_distances[tid]
        return max(abs(q - t) for q, t in zip(query_refs, stored))

    def topk_search(self, query: Trajectory, k: int) -> BaselineResult:
        started = time.perf_counter()
        query_refs = tuple(
            self.measure.distance(query.points, ref.points)
            for ref in self._references
        )
        order = sorted(
            (self._lower_bound(query_refs, tid), tid) for tid in self._by_tid
        )
        heap: List[Tuple[float, str]] = []  # max-heap via negation
        verified = 0
        for lb, tid in order:
            if len(heap) >= k and lb > -heap[0][0]:
                break  # every remaining lower bound is worse
            verified += 1
            dist = self.measure.distance(
                query.points, self._by_tid[tid].points
            )
            if len(heap) < k:
                heapq.heappush(heap, (-dist, tid))
            elif dist < -heap[0][0]:
                heapq.heapreplace(heap, (-dist, tid))
        ranked = sorted((-neg, tid) for neg, tid in heap)
        return BaselineResult(
            answers={tid: dist for dist, tid in ranked},
            candidates=verified,
            retrieved=len(self._by_tid),
            total_seconds=time.perf_counter() - started,
            ranked=ranked,
        )
