"""DFT baseline (VLDB 2017): R-tree over segment MBRs.

DFT partitions the *segments* of all trajectories with an R-tree and
answers queries by collecting, per query, a bitmap of trajectory ids
whose segments fall in partitions intersecting the query window —
"DFT uses the index to obtain a bitmap of candidate trajectories,
collects the bitmap at the master node, and then extracts data by
bitmap to verify" (Section VI-A).  Top-k uses DFT's sampling trick: pick
``c * k`` nearby trajectories, take the k-th best distance among them
as a threshold, then verify everything the threshold admits — the
source of its large candidate sets in Figure 10(b).
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, List, Set, Tuple

from repro.baselines.base import BaselineResult, SimilaritySearchBaseline
from repro.baselines.rtree import RTree, RTreeEntry
from repro.geometry.mbr import MBR
from repro.geometry.trajectory import Trajectory


class DFTBaseline(SimilaritySearchBaseline):
    """Segment R-tree with bitmap candidate collection."""

    name = "DFT"

    def __init__(
        self,
        measure: str = "frechet",
        sample_factor: int = 5,
        max_entries: int = 32,
        bulk: bool = False,
    ):
        super().__init__(measure)
        self.sample_factor = sample_factor
        self.max_entries = max_entries
        self.bulk = bulk
        self.tree = RTree(max_entries)
        self._by_tid: Dict[str, Trajectory] = {}
        self.build_seconds = 0.0

    # ------------------------------------------------------------------
    def build(self, trajectories: Iterable[Trajectory]) -> None:
        started = time.perf_counter()
        entries: List[RTreeEntry] = []
        for trajectory in trajectories:
            self._by_tid[trajectory.tid] = trajectory
            if len(trajectory) == 1:
                entries.append(
                    RTreeEntry(MBR.of_points(trajectory.points), trajectory.tid)
                )
            else:
                for a, b in trajectory.segments():
                    entries.append(RTreeEntry(MBR.of_points([a, b]), trajectory.tid))
        if self.bulk:
            self.tree = RTree.bulk_load(entries, self.max_entries)
        else:
            self.tree = RTree(self.max_entries)
            for entry in entries:
                self.tree.insert(entry)
        self.build_seconds = time.perf_counter() - started

    # ------------------------------------------------------------------
    def _bitmap(self, window: MBR) -> Tuple[Set[str], int]:
        """Candidate tid bitmap plus segment-entry touch count."""
        tids: Set[str] = set()
        touched = 0
        for entry in self.tree.search(window):
            touched += 1
            tids.add(entry.payload)
        return tids, touched

    def threshold_search(self, query: Trajectory, eps: float) -> BaselineResult:
        started = time.perf_counter()
        window = query.mbr.expanded(eps)
        tids, touched = self._bitmap(window)
        candidates = [self._by_tid[tid] for tid in tids]
        return self._verify(query, eps, candidates, touched, started)

    def topk_search(self, query: Trajectory, k: int) -> BaselineResult:
        started = time.perf_counter()
        sample_size = max(1, self.sample_factor * k)
        # Nearest segment entries around the query centroid seed the
        # sample (DFT samples from intersecting partitions).
        cx, cy = query.mbr.center
        seeds = self.tree.nearest(cx, cy, sample_size * 4)
        sample_tids: List[str] = []
        seen: Set[str] = set()
        for entry in seeds:
            if entry.payload not in seen:
                seen.add(entry.payload)
                sample_tids.append(entry.payload)
            if len(sample_tids) >= sample_size:
                break
        if not sample_tids:
            sample_tids = list(self._by_tid)[:sample_size]
        sampled = sorted(
            self.measure.distance(query.points, self._by_tid[tid].points)
            for tid in sample_tids
        )
        cutoff_rank = min(k, len(sampled)) - 1
        threshold = sampled[cutoff_rank] if sampled else 0.0
        # Every trajectory within the threshold is a candidate.
        window = query.mbr.expanded(threshold)
        tids, touched = self._bitmap(window)
        tids.update(sample_tids)
        if len(tids) < k:
            # Sample-derived threshold admitted too few candidates —
            # fall back to a full sweep so the answer stays exact.
            tids = set(self._by_tid)
        candidates = [self._by_tid[tid] for tid in tids]
        return self._rank(query, k, candidates, touched, started)
