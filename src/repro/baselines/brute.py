"""Brute force: scan everything, measure everything.

Ground truth for the correctness tests and the unindexed lower bound
for the benches.  Still uses the early-abandoning measure for threshold
queries, so it is brute force over *candidates*, not over arithmetic.
"""

from __future__ import annotations

import time
from typing import Iterable, List

from repro.baselines.base import BaselineResult, SimilaritySearchBaseline
from repro.geometry.trajectory import Trajectory


class BruteForceBaseline(SimilaritySearchBaseline):
    """No index: every trajectory is a candidate."""

    name = "BruteForce"

    def __init__(self, measure: str = "frechet"):
        super().__init__(measure)
        self._data: List[Trajectory] = []

    def build(self, trajectories: Iterable[Trajectory]) -> None:
        self._data = list(trajectories)

    def threshold_search(self, query: Trajectory, eps: float) -> BaselineResult:
        started = time.perf_counter()
        return self._verify(query, eps, self._data, len(self._data), started)

    def topk_search(self, query: Trajectory, k: int) -> BaselineResult:
        started = time.perf_counter()
        return self._rank(query, k, self._data, len(self._data), started)
