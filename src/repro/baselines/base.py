"""Shared baseline interface and result type.

Baselines report the same three numbers the paper plots for every
system: wall time, candidate count (trajectories that reached the exact
measure), and the answers themselves.
"""

from __future__ import annotations

import abc
import math
import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.exceptions import QueryError
from repro.geometry.trajectory import Trajectory
from repro.measures.base import Measure, get_measure


@dataclass
class BaselineResult:
    """Outcome of one baseline query."""

    #: threshold search: tid -> distance; top-k: filled via ``ranked``
    answers: Dict[str, float]
    #: trajectories that reached the exact measure
    candidates: int
    #: rows/objects the index made the system look at before filtering
    retrieved: int
    total_seconds: float
    #: top-k only: (distance, tid) ascending
    ranked: List[Tuple[float, str]] = field(default_factory=list)


class SimilaritySearchBaseline(abc.ABC):
    """A system answering trajectory similarity queries."""

    #: human-readable system name, e.g. ``"DFT"``
    name: str = "baseline"
    supports_threshold = True
    supports_topk = True

    def __init__(self, measure: str = "frechet"):
        self.measure: Measure = get_measure(measure)

    @abc.abstractmethod
    def build(self, trajectories: Iterable[Trajectory]) -> None:
        """Ingest the dataset (indexing phase, timed by Figure 13)."""

    def threshold_search(self, query: Trajectory, eps: float) -> BaselineResult:
        if not self.supports_threshold:
            raise QueryError(f"{self.name} does not support threshold search")
        raise NotImplementedError

    def topk_search(self, query: Trajectory, k: int) -> BaselineResult:
        if not self.supports_topk:
            raise QueryError(f"{self.name} does not support top-k search")
        raise NotImplementedError

    # ------------------------------------------------------------------
    def _verify(
        self,
        query: Trajectory,
        eps: float,
        candidates: Iterable[Trajectory],
        retrieved: int,
        started: float,
    ) -> BaselineResult:
        """Shared refinement step for threshold queries."""
        answers: Dict[str, float] = {}
        count = 0
        for candidate in candidates:
            count += 1
            if self.measure.within(query.points, candidate.points, eps):
                answers[candidate.tid] = self.measure.distance(
                    query.points, candidate.points
                )
        return BaselineResult(
            answers=answers,
            candidates=count,
            retrieved=retrieved,
            total_seconds=time.perf_counter() - started,
        )

    def _rank(
        self,
        query: Trajectory,
        k: int,
        candidates: Iterable[Trajectory],
        retrieved: int,
        started: float,
    ) -> BaselineResult:
        """Shared exact top-k over a candidate set."""
        import heapq

        heap: List[Tuple[float, str]] = []  # max-heap via negation
        count = 0
        for candidate in candidates:
            count += 1
            dist = self.measure.distance(query.points, candidate.points)
            if len(heap) < k:
                heapq.heappush(heap, (-dist, candidate.tid))
            elif dist < -heap[0][0]:
                heapq.heapreplace(heap, (-dist, candidate.tid))
        ranked = sorted((-neg, tid) for neg, tid in heap)
        return BaselineResult(
            answers={tid: dist for dist, tid in ranked},
            candidates=count,
            retrieved=retrieved,
            total_seconds=time.perf_counter() - started,
            ranked=ranked,
        )
