"""Key-space heatmap: where scan traffic lands in the salted row-key
space.

The heatmap buckets every scanned row into a fixed grid of row-key
ranges computed once from the store's shape (``shards`` salt buckets ×
``heatmap_buckets_per_shard`` ranges over the XZ* value space).  Heat
is **keyed by the key space itself, never by regions or SSTables**:
region splits, flushes and compactions reshuffle the physical layout
but cannot double-count or orphan a single unit of heat, the same
generation-safety argument the PR-2 caches make with their
generation-numbered keys.  Region attribution happens at *read* time,
by mapping the fixed buckets onto whatever region boundaries currently
exist.

Heat decays exponentially per recorded query (half-life
``heat_decay_queries``), so the hot ranges the advisor acts on reflect
the recent workload, not all history; the undecayed per-bucket row
counts are kept alongside for lifetime evidence.
"""

from __future__ import annotations

import bisect
from typing import Any, Dict, List, Optional, Sequence, Tuple

#: the ASCII intensity ramp used by ``repro heatmap``
HEAT_RAMP = " .:-=+*#%@"


def _key_label(key: Optional[bytes]) -> str:
    if key is None:
        return "-inf"
    return key[:12].hex()


def _stop_label(key: Optional[bytes]) -> str:
    """End-of-range labels: an open stop is plus infinity."""
    if key is None:
        return "+inf"
    return key[:12].hex()


def key_space_boundaries(store, buckets_per_shard: int) -> List[bytes]:
    """Fixed interior bucket boundaries over the salted row-key space.

    One block of ``buckets_per_shard`` equal value ranges per salt
    byte, expressed as row keys under the store's key encoding.  The
    list is sorted and deduplicated, so it works for both the integer
    encoding (where value order is byte order) and the TraSS-S string
    encoding (where root-block prefixes sort out of value order).
    """
    total = store.index.total_index_spaces
    boundaries = set()
    for shard in range(store.config.shards):
        for b in range(buckets_per_shard):
            value = min(total - 1, b * total // buckets_per_shard)
            boundaries.add(store.boundary_key(shard, value))
    return sorted(boundaries)


class KeySpaceHeatmap:
    """Exponentially-decayed scan heat over fixed row-key buckets."""

    def __init__(
        self,
        boundaries: Sequence[bytes],
        half_life: float = 512.0,
    ):
        #: sorted interior boundaries; bucket ``i`` covers
        #: ``[boundaries[i-1], boundaries[i])`` (open at both far ends)
        self.boundaries: List[bytes] = list(boundaries)
        #: heat to halve per this many recorded queries (<= 0 disables
        #: decay)
        self.half_life = half_life
        self._decay = (
            0.5 ** (1.0 / half_life) if half_life > 0 else 1.0
        )
        n = len(self.boundaries) + 1
        #: decayed heat per bucket
        self.heat: List[float] = [0.0] * n
        #: undecayed lifetime scanned-row counts per bucket
        self.rows: List[int] = [0] * n
        #: recorded queries (decay ticks) so far
        self.tick = 0

    # ------------------------------------------------------------------
    def spawn(self) -> "KeySpaceHeatmap":
        """An empty sink sharing this map's bucket grid.

        Parallel scan workers record into private spawns (no locking on
        the hot path) which :meth:`merge_from` folds back; merging is
        elementwise addition, so the merged map is identical to what
        sequential execution would have recorded.
        """
        child = KeySpaceHeatmap.__new__(KeySpaceHeatmap)
        child.boundaries = self.boundaries  # shared, immutable by use
        child.half_life = self.half_life
        child._decay = self._decay
        n = len(self.boundaries) + 1
        child.heat = [0.0] * n
        child.rows = [0] * n
        child.tick = 0
        return child

    def merge_from(self, other: "KeySpaceHeatmap") -> None:
        for i, h in enumerate(other.heat):
            if h:
                self.heat[i] += h
        for i, r in enumerate(other.rows):
            if r:
                self.rows[i] += r

    # ------------------------------------------------------------------
    def record(self, key: bytes, weight: float = 1.0) -> None:
        """Attribute one scanned row to its key-space bucket."""
        i = bisect.bisect_right(self.boundaries, key)
        self.heat[i] += weight
        self.rows[i] += 1

    def advance_tick(self) -> None:
        """Decay all heat by one query's worth of half-life."""
        self.tick += 1
        if self._decay >= 1.0:
            return
        d = self._decay
        self.heat = [h * d for h in self.heat]

    @property
    def total_heat(self) -> float:
        return sum(self.heat)

    @property
    def total_rows(self) -> int:
        return sum(self.rows)

    # ------------------------------------------------------------------
    # Read-time attribution
    # ------------------------------------------------------------------
    def bucket_start(self, i: int) -> Optional[bytes]:
        return None if i == 0 else self.boundaries[i - 1]

    def bucket_stop(self, i: int) -> Optional[bytes]:
        return None if i >= len(self.boundaries) else self.boundaries[i]

    def shard_of_bucket(self, i: int) -> int:
        """The salt byte a bucket's keys start with (bucket 0 → 0)."""
        start = self.bucket_start(i)
        return 0 if start is None or not start else start[0]

    def shard_heat(self) -> Dict[int, float]:
        """Decayed heat per salt bucket — the salt-skew evidence."""
        out: Dict[int, float] = {}
        for i, h in enumerate(self.heat):
            shard = self.shard_of_bucket(i)
            out[shard] = out.get(shard, 0.0) + h
        return out

    def region_heat(self, table) -> List[Tuple[Any, float]]:
        """Decayed heat mapped onto the table's *current* regions.

        Each bucket is attributed to exactly one region — the one that
        owns its start key — so the mapping conserves heat exactly
        (``sum == total_heat``) across any sequence of splits and
        compactions: no bucket is counted twice, none is orphaned on a
        dead region.
        """
        heats = [0.0] * table.num_regions
        for i, h in enumerate(self.heat):
            start = self.bucket_start(i)
            idx = 0 if start is None else table._region_index_for(start)
            heats[idx] += h
        return list(zip(table.regions, heats))

    def hot_buckets(
        self, limit: int = 8, min_share: float = 0.01
    ) -> List[Tuple[int, float]]:
        """``(bucket index, heat)`` of the hottest buckets, hot first."""
        total = self.total_heat
        if total <= 0:
            return []
        ranked = sorted(
            ((i, h) for i, h in enumerate(self.heat) if h / total >= min_share),
            key=lambda pair: -pair[1],
        )
        return ranked[:limit]

    # ------------------------------------------------------------------
    # Persistence / export
    # ------------------------------------------------------------------
    def to_json(self) -> Dict[str, Any]:
        return {
            "half_life": self.half_life,
            "tick": self.tick,
            "boundaries": [b.hex() for b in self.boundaries],
            "heat": list(self.heat),
            "rows": list(self.rows),
        }

    @classmethod
    def from_json(cls, data: Dict[str, Any]) -> "KeySpaceHeatmap":
        heatmap = cls(
            [bytes.fromhex(b) for b in data["boundaries"]],
            half_life=float(data.get("half_life", 512.0)),
        )
        heat = [float(h) for h in data.get("heat", [])]
        rows = [int(r) for r in data.get("rows", [])]
        if len(heat) == len(heatmap.heat):
            heatmap.heat = heat
        if len(rows) == len(heatmap.rows):
            heatmap.rows = rows
        heatmap.tick = int(data.get("tick", 0))
        return heatmap

    def restore_from(self, other: "KeySpaceHeatmap") -> bool:
        """Adopt a persisted map's state if the grids are compatible.

        Returns False (and keeps the fresh empty state) when the
        persisted boundaries do not match — e.g. the store was rebuilt
        with a different shard count or bucket resolution.
        """
        if other.boundaries != self.boundaries:
            return False
        self.heat = list(other.heat)
        self.rows = list(other.rows)
        self.tick = other.tick
        return True


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
def render_heatmap(heatmap: KeySpaceHeatmap, table, shards: int) -> str:
    """ASCII heatmap: one row per salt bucket, one cell per key bucket,
    plus the hot-bucket and per-region heat tables the advisor reads."""
    lines: List[str] = []
    lines.append(
        f"key-space heatmap: {len(heatmap.heat)} buckets, "
        f"{heatmap.total_rows} rows recorded, decayed heat "
        f"{heatmap.total_heat:.1f} (tick {heatmap.tick}, "
        f"half-life {heatmap.half_life:g} queries)"
    )
    per_shard: Dict[int, List[float]] = {s: [] for s in range(shards)}
    for i, h in enumerate(heatmap.heat):
        shard = heatmap.shard_of_bucket(i)
        per_shard.setdefault(shard, []).append(h)
    peak = max(heatmap.heat) if heatmap.heat else 0.0
    for shard in sorted(per_shard):
        cells = per_shard[shard]
        if peak > 0:
            row = "".join(
                HEAT_RAMP[
                    min(len(HEAT_RAMP) - 1, int(h / peak * (len(HEAT_RAMP) - 1)))
                ]
                for h in cells
            )
        else:
            row = " " * len(cells)
        lines.append(f"  shard {shard:3d} |{row}|")
    hot = heatmap.hot_buckets()
    if hot:
        lines.append("hot buckets:")
        total = heatmap.total_heat
        for i, h in hot:
            lines.append(
                f"  [{_key_label(heatmap.bucket_start(i))} .. "
                f"{_stop_label(heatmap.bucket_stop(i))}) "
                f"heat {h:.1f} ({h / total:.1%})"
            )
    region_heats = heatmap.region_heat(table)
    total = heatmap.total_heat
    if total > 0:
        lines.append("per-region heat (current boundaries):")
        for region, h in region_heats:
            lines.append(
                f"  region [{_key_label(region.start_key)} .. "
                f"{_stop_label(region.end_key)}) rows={region.row_count} "
                f"heat {h:.1f} ({h / total:.1%})"
            )
    return "\n".join(lines)


def heatmap_json(heatmap: KeySpaceHeatmap, table) -> Dict[str, Any]:
    """The ``repro heatmap --json`` payload."""
    total = heatmap.total_heat
    return {
        "tick": heatmap.tick,
        "half_life": heatmap.half_life,
        "total_heat": total,
        "total_rows": heatmap.total_rows,
        "buckets": [
            {
                "start": _key_label(heatmap.bucket_start(i)),
                "stop": _stop_label(heatmap.bucket_stop(i)),
                "shard": heatmap.shard_of_bucket(i),
                "heat": h,
                "rows": heatmap.rows[i],
            }
            for i, h in enumerate(heatmap.heat)
        ],
        "shard_heat": {
            str(s): h for s, h in sorted(heatmap.shard_heat().items())
        },
        "regions": [
            {
                "start": _key_label(region.start_key),
                "stop": _stop_label(region.end_key),
                "rows": region.row_count,
                "heat": h,
                "share": (h / total) if total > 0 else 0.0,
            }
            for region, h in heatmap.region_heat(table)
        ],
    }
