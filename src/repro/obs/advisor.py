"""The tuning advisor behind ``repro doctor``.

Reads the heatmap, the storage read-model and the metrics registry —
never the hot path — and emits ranked, evidence-cited recommendations.
Every heuristic names the exact metric values that triggered it, so a
recommendation is an argument, not an oracle:

* **hot-region-split** — one region absorbs an outsized share of the
  decayed scan heat (``share >= 0.30`` and at least twice its fair
  share ``1/num_regions``) and has enough rows to split.
* **salt-skew** — the hottest salt shard carries >= 2x the mean shard
  heat: the tid hash is not spreading this workload, so shard scans
  are imbalanced (the Figure 19 failure mode).
* **cache tuning** — heavy scanning with caching disabled, a low block
  cache hit rate under a real lookup volume (raise ``cache_mb``), or a
  near-perfect hit rate suggesting budget can be reclaimed.
* **resolution-mismatch** — the stored resolution histogram piles up
  far below ``max_resolution`` (lower MaxR: shallower tree, cheaper
  planning) or saturates at it (raise MaxR: elements too coarse).
* **compaction-backlog** — some region's run stack is at or past the
  compaction trigger, so reads pay extra seek depth.
* **read-amplification** — the engine scans far more rows than it
  returns (> 8x), i.e. pruning is not containing the scans.
* **freeze-cold-data / segment-compression** — a sizeable store holds
  no compact mmap segments (freezing would cut the footprint
  several-fold), or segments exist and the measured compression ratio
  is worth reporting.

Thresholds live in module constants so tests (and DESIGN.md §9) can
cite them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.obs.heatmap import _key_label

# ---------------------------------------------------------------------
# Heuristic thresholds (documented in DESIGN.md §9; cite, don't inline)
# ---------------------------------------------------------------------
#: a region is hot when it holds this share of total decayed heat...
HOT_REGION_SHARE = 0.30
#: ...and at least this multiple of its fair share (1/num_regions)
HOT_REGION_FAIRNESS = 2.0
#: hottest-shard heat over mean shard heat that flags salt skew
SALT_SKEW_RATIO = 2.0
#: block-cache hit rate below this (with volume) suggests more cache
CACHE_LOW_HIT_RATE = 0.4
#: hit rate above this suggests the budget could be trimmed
CACHE_HIGH_HIT_RATE = 0.95
#: cache lookups needed before hit-rate evidence counts
CACHE_MIN_LOOKUPS = 100
#: rows scanned that make "caching disabled" worth flagging
CACHE_MIN_ROWS_SCANNED = 1000
#: share of rows at/below max_resolution // 2 that flags MaxR too high
RESOLUTION_LOW_MASS = 0.5
#: share of rows exactly at max_resolution that flags MaxR too low
RESOLUTION_SATURATION = 0.6
#: rows scanned per row returned that flags weak pruning
READ_AMP_THRESHOLD = 8.0
#: stored rows that make freezing into compact segments worthwhile
FREEZE_MIN_ROWS = 500

# --- cluster doctor thresholds (``ServingCluster.doctor``) -----------
#: share of a partition's replies served by backup replicas that flags
#: an unhealthy primary (with replication > 1)
REPLICA_BACKUP_SHARE = 0.5
#: per-partition replies needed before replica-balance evidence counts
REPLICA_MIN_SAMPLES = 5
#: breaker trips at/above which the breaker is "flapping"
BREAKER_FLAP_TRIPS = 3
#: hedges needed before hedge-efficacy evidence counts
HEDGE_MIN_SAMPLES = 5
#: hedge win rate below this means hedges are mostly wasted sends
HEDGE_WASTE_WIN_RATE = 0.2
#: hedge win rate above this means primaries straggle chronically
HEDGE_CHRONIC_WIN_RATE = 0.7
#: admission rejections over offered load that flags shedding
SHED_RATE_THRESHOLD = 0.05
#: admission decisions needed before shed-rate evidence counts
SHED_MIN_SAMPLES = 20
#: slowest-partition mean service time over cluster mean that flags skew
SLOW_PARTITION_RATIO = 2.0
#: per-partition replies needed before service-skew evidence counts
SLOW_PARTITION_MIN_SAMPLES = 5

_SEVERITY_ORDER = {"critical": 0, "warning": 1, "info": 2}


@dataclass
class Recommendation:
    """One advisor finding, with the numbers that triggered it."""

    kind: str
    severity: str  # "critical" | "warning" | "info"
    title: str
    action: str
    evidence: Dict[str, Any] = field(default_factory=dict)
    rationale: str = ""

    def to_json(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "severity": self.severity,
            "title": self.title,
            "action": self.action,
            "evidence": self.evidence,
            "rationale": self.rationale,
        }

    def render(self) -> str:
        lines = [f"[{self.severity}] {self.kind}: {self.title}"]
        lines.append(f"  action: {self.action}")
        if self.rationale:
            lines.append(f"  why: {self.rationale}")
        for key, value in sorted(self.evidence.items()):
            lines.append(f"  evidence: {key} = {value}")
        return "\n".join(lines)


def diagnose(engine) -> List[Recommendation]:
    """Run every heuristic against the engine's current read models,
    ranked most severe first (stable within a severity)."""
    from repro.obs.storage_stats import collect_storage_stats

    recs: List[Recommendation] = []
    storage = collect_storage_stats(engine)
    telemetry = engine.store.table.storage_telemetry
    heatmap = telemetry.heatmap if telemetry is not None else None

    recs.extend(_check_hot_regions(engine, heatmap))
    recs.extend(_check_salt_skew(engine, heatmap))
    recs.extend(_check_cache(engine))
    recs.extend(_check_resolution(engine))
    recs.extend(_check_compaction_backlog(engine, storage))
    recs.extend(_check_read_amplification(engine, storage))
    recs.extend(_check_freeze(engine, storage))
    recs.sort(key=lambda r: _SEVERITY_ORDER.get(r.severity, 9))
    return recs


# ---------------------------------------------------------------------
def _check_hot_regions(engine, heatmap) -> List[Recommendation]:
    if heatmap is None or heatmap.total_heat <= 0:
        return []
    table = engine.store.table
    total = heatmap.total_heat
    fair_share = 1.0 / max(1, table.num_regions)
    out: List[Recommendation] = []
    for region, heat in heatmap.region_heat(table):
        share = heat / total
        if share < HOT_REGION_SHARE or share < HOT_REGION_FAIRNESS * fair_share:
            continue
        if region.row_count < 2:
            continue  # nothing to split around
        span = (
            f"[{_key_label(region.start_key)} .. "
            f"{_key_label(region.end_key)})"
        )
        out.append(
            Recommendation(
                kind="hot-region-split",
                severity="critical" if share >= 0.5 else "warning",
                title=(
                    f"region {span} absorbs {share:.0%} of recent scan heat"
                ),
                action=(
                    f"split region {span} (lower max_region_rows below "
                    f"{region.row_count}, or pre-split at the hot bucket "
                    f"boundary) to spread its {region.row_count} rows"
                ),
                evidence={
                    "region": span,
                    "heat_share": round(share, 4),
                    "heat": round(heat, 2),
                    "total_heat": round(total, 2),
                    "fair_share": round(fair_share, 4),
                    "region_rows": region.row_count,
                    "threshold_share": HOT_REGION_SHARE,
                    "threshold_fairness": HOT_REGION_FAIRNESS,
                },
                rationale=(
                    f"share {share:.2f} >= {HOT_REGION_SHARE} and "
                    f">= {HOT_REGION_FAIRNESS}x fair share "
                    f"{fair_share:.3f}; one region serialises most scans"
                ),
            )
        )
    return out


def _check_salt_skew(engine, heatmap) -> List[Recommendation]:
    if heatmap is None:
        return []
    shards = engine.config.shards
    if shards < 2:
        return []
    shard_heat = heatmap.shard_heat()
    values = [shard_heat.get(s, 0.0) for s in range(shards)]
    total = sum(values)
    if total <= 0:
        return []
    mean = total / shards
    peak = max(values)
    hottest = values.index(peak)
    ratio = peak / mean if mean > 0 else 0.0
    if ratio < SALT_SKEW_RATIO:
        return []
    return [
        Recommendation(
            kind="salt-skew",
            severity="warning",
            title=(
                f"shard {hottest} carries {ratio:.1f}x the mean shard heat"
            ),
            action=(
                "rebalance salt buckets: raise `shards` (currently "
                f"{shards}) or revisit the tid hash — scan fan-out is "
                "bounded by the hottest shard"
            ),
            evidence={
                "hottest_shard": hottest,
                "hottest_heat": round(peak, 2),
                "mean_heat": round(mean, 2),
                "skew_ratio": round(ratio, 2),
                "shards": shards,
                "threshold_ratio": SALT_SKEW_RATIO,
                "shard_heat": {
                    str(s): round(h, 2) for s, h in enumerate(values)
                },
            },
            rationale=(
                f"max/mean shard heat {ratio:.2f} >= {SALT_SKEW_RATIO}; "
                "the salt is not spreading this workload evenly"
            ),
        )
    ]


def _check_cache(engine) -> List[Recommendation]:
    io = engine.metrics.snapshot()
    out: List[Recommendation] = []
    cache_mb = engine.config.cache_mb
    rows_scanned = io["rows_scanned"]
    if cache_mb == 0:
        if rows_scanned >= CACHE_MIN_ROWS_SCANNED:
            out.append(
                Recommendation(
                    kind="cache-tuning",
                    severity="warning",
                    title="caching disabled under a scan-heavy workload",
                    action=(
                        "set cache_mb > 0 (e.g. `--cache-mb 16`) to give "
                        "repeated scans a block + record cache"
                    ),
                    evidence={
                        "cache_mb": cache_mb,
                        "rows_scanned": rows_scanned,
                        "threshold_rows": CACHE_MIN_ROWS_SCANNED,
                    },
                    rationale=(
                        f"{rows_scanned} rows scanned with cache_mb=0; every "
                        "repeated range pays full LSM merge cost"
                    ),
                )
            )
        return out
    lookups = io["block_cache_hits"] + io["block_cache_misses"]
    if lookups < CACHE_MIN_LOOKUPS:
        return out
    hit_rate = io["block_cache_hits"] / lookups
    if hit_rate < CACHE_LOW_HIT_RATE:
        out.append(
            Recommendation(
                kind="cache-tuning",
                severity="warning",
                title=(
                    f"block cache hit rate {hit_rate:.0%} over "
                    f"{lookups} lookups"
                ),
                action=(
                    f"raise cache_mb above {cache_mb:g} — the working set "
                    "does not fit the current budget"
                ),
                evidence={
                    "cache_mb": cache_mb,
                    "block_cache_hits": io["block_cache_hits"],
                    "block_cache_misses": io["block_cache_misses"],
                    "hit_rate": round(hit_rate, 4),
                    "threshold_hit_rate": CACHE_LOW_HIT_RATE,
                },
                rationale=(
                    f"hit rate {hit_rate:.2f} < {CACHE_LOW_HIT_RATE} with "
                    f"{lookups} lookups (>= {CACHE_MIN_LOOKUPS})"
                ),
            )
        )
    elif hit_rate > CACHE_HIGH_HIT_RATE and cache_mb >= 8:
        out.append(
            Recommendation(
                kind="cache-tuning",
                severity="info",
                title=(
                    f"block cache hit rate {hit_rate:.0%} — budget may be "
                    "oversized"
                ),
                action=(
                    f"try lowering cache_mb below {cache_mb:g}; the hit "
                    "rate suggests headroom"
                ),
                evidence={
                    "cache_mb": cache_mb,
                    "hit_rate": round(hit_rate, 4),
                    "threshold_hit_rate": CACHE_HIGH_HIT_RATE,
                },
                rationale=(
                    f"hit rate {hit_rate:.2f} > {CACHE_HIGH_HIT_RATE} with "
                    f"cache_mb={cache_mb:g}"
                ),
            )
        )
    return out


def _check_resolution(engine) -> List[Recommendation]:
    store = engine.store
    if store.trajectory_count == 0:
        return []
    histogram = store.resolution_histogram()
    total = sum(histogram.values())
    if total == 0:
        return []
    max_res = engine.config.max_resolution
    low_cut = max_res // 2
    low_mass = sum(c for lvl, c in histogram.items() if lvl <= low_cut) / total
    at_max = histogram.get(max_res, 0) / total
    out: List[Recommendation] = []
    if low_mass >= RESOLUTION_LOW_MASS and max_res > 2:
        out.append(
            Recommendation(
                kind="resolution-mismatch",
                severity="info",
                title=(
                    f"{low_mass:.0%} of trajectories index at resolution "
                    f"<= {low_cut} (MaxR = {max_res})"
                ),
                action=(
                    f"lower max_resolution toward {max(2, low_cut + 2)}: the "
                    "tree is far deeper than the data uses, inflating "
                    "planning work"
                ),
                evidence={
                    "max_resolution": max_res,
                    "low_cut": low_cut,
                    "low_mass": round(low_mass, 4),
                    "threshold_low_mass": RESOLUTION_LOW_MASS,
                    "resolution_histogram": {
                        str(k): v for k, v in sorted(histogram.items())
                    },
                },
                rationale=(
                    f"mass at <= MaxR/2 is {low_mass:.2f} >= "
                    f"{RESOLUTION_LOW_MASS}"
                ),
            )
        )
    if at_max >= RESOLUTION_SATURATION:
        out.append(
            Recommendation(
                kind="resolution-mismatch",
                severity="warning",
                title=(
                    f"{at_max:.0%} of trajectories saturate at resolution "
                    f"{max_res}"
                ),
                action=(
                    f"raise max_resolution above {max_res}: elements are too "
                    "coarse, so index values collide and pruning weakens"
                ),
                evidence={
                    "max_resolution": max_res,
                    "saturated_mass": round(at_max, 4),
                    "threshold_saturation": RESOLUTION_SATURATION,
                    "resolution_histogram": {
                        str(k): v for k, v in sorted(histogram.items())
                    },
                },
                rationale=(
                    f"mass at MaxR is {at_max:.2f} >= "
                    f"{RESOLUTION_SATURATION}"
                ),
            )
        )
    return out


def _check_compaction_backlog(engine, storage) -> List[Recommendation]:
    max_runs = storage["sstables"]["max_runs"]
    trigger = None
    for region in engine.store.table.regions:
        trigger = region.store.compaction_trigger
        break
    if trigger is None or trigger > 10**6:  # policy-driven store
        trigger = 8
    if max_runs < trigger - 1:
        return []
    return [
        Recommendation(
            kind="compaction-backlog",
            severity="warning",
            title=(
                f"a region has {max_runs} SSTable runs (trigger {trigger})"
            ),
            action=(
                "flush + compact (or lower compaction_trigger / flush "
                "threshold): point reads now consult up to "
                f"{max_runs + 1} structures"
            ),
            evidence={
                "max_runs_per_region": max_runs,
                "runs_total": storage["sstables"]["runs_total"],
                "compaction_trigger": trigger,
                "seek_depth_mean": round(
                    storage["seek_depth"]["mean"], 2
                ),
            },
            rationale=(
                f"max runs {max_runs} >= trigger-1 ({trigger - 1}); read "
                "amplification grows with every un-merged run"
            ),
        )
    ]


def _check_freeze(engine, storage) -> List[Recommendation]:
    """Suggest freezing a sizeable un-frozen store into compact
    segments, or report the live compression ratio once frozen."""
    segments = storage["segments"]
    rows = storage["regions"]["rows"]
    if segments["count"] > 0:
        if segments["file_bytes"] == 0:
            return []
        return [
            Recommendation(
                kind="segment-compression",
                severity="info",
                title=(
                    f"{segments['count']} compact segment(s) store "
                    f"{segments['logical_bytes']} logical bytes in "
                    f"{segments['file_bytes']} on disk "
                    f"({segments['compression_ratio']:.1f}x)"
                ),
                action=(
                    "nothing to do — reported so capacity planning can "
                    "use the measured ratio"
                ),
                evidence={
                    "segments": segments["count"],
                    "file_bytes": segments["file_bytes"],
                    "logical_bytes": segments["logical_bytes"],
                    "compression_ratio": round(
                        segments["compression_ratio"], 2
                    ),
                    "blocks_materialized": segments["blocks_materialized"],
                },
                rationale="compact segments are active",
            )
        ]
    if rows < FREEZE_MIN_ROWS:
        return []
    return [
        Recommendation(
            kind="freeze-cold-data",
            severity="info",
            title=(
                f"{rows} rows are stored in uncompressed runs; compact "
                "segments would cut the footprint several-fold"
            ),
            action=(
                "run `repro compact --freeze --store <dir>` (or "
                "`engine.save(dir, compact=True)`) to rewrite cold runs "
                "as compressed mmap segments"
            ),
            evidence={
                "rows": rows,
                "approximate_bytes": engine.store.table.approximate_size,
                "threshold_rows": FREEZE_MIN_ROWS,
            },
            rationale=(
                f"rows {rows} >= {FREEZE_MIN_ROWS} and no compact "
                "segments exist; frozen trajectory blocks typically "
                "compress 3-7x"
            ),
        )
    ]


def _check_read_amplification(engine, storage) -> List[Recommendation]:
    io = engine.metrics.snapshot()
    if io["rows_scanned"] < CACHE_MIN_ROWS_SCANNED:
        return []
    amp = storage["read_amplification"]
    if amp <= READ_AMP_THRESHOLD:
        return []
    return [
        Recommendation(
            kind="read-amplification",
            severity="warning",
            title=(
                f"queries scan {amp:.1f} rows per row returned"
            ),
            action=(
                "tighten pruning: check eps / resolution band, consider "
                "range_merge_gap=0 and verify the resolution histogram — "
                "most scanned rows are discarded by the filter"
            ),
            evidence={
                "read_amplification": round(amp, 2),
                "rows_scanned": io["rows_scanned"],
                "rows_returned": io["rows_returned"],
                "filter_rejections": io["filter_rejections"],
                "threshold": READ_AMP_THRESHOLD,
            },
            rationale=(
                f"rows_scanned/rows_returned = {amp:.2f} > "
                f"{READ_AMP_THRESHOLD}"
            ),
        )
    ]


# ---------------------------------------------------------------------
# Cluster doctor (``repro serve`` / ``ServingCluster.doctor``)
# ---------------------------------------------------------------------
def diagnose_cluster(cluster) -> List[Recommendation]:
    """The serving-tier doctor: every heuristic reads the coordinator's
    aggregated stats (counters, breaker, admission, and — when the
    cluster runs with observability — per-worker reply deltas and SLO
    service times), never the query path.  Ranked like
    :func:`diagnose`."""
    stats = cluster.stats()
    recs: List[Recommendation] = []
    recs.extend(_check_replica_imbalance(stats))
    recs.extend(_check_breaker_flapping(stats))
    recs.extend(_check_hedge_efficacy(stats))
    recs.extend(_check_shed_rate(stats))
    recs.extend(_check_slow_partitions(stats))
    recs.sort(key=lambda r: _SEVERITY_ORDER.get(r.severity, 9))
    return recs


def _check_replica_imbalance(stats) -> List[Recommendation]:
    """With primary-first routing a healthy partition is served by
    replica 0; backups carrying most of a partition's replies means its
    primary keeps failing over."""
    obs = stats.get("observability")
    if not obs or stats["replication"] < 2:
        return []
    per_partition: Dict[int, Dict[int, int]] = {}
    for worker in obs["workers"]:
        slots = per_partition.setdefault(worker["partition"], {})
        slots[worker["replica"]] = worker["queries"]
    out: List[Recommendation] = []
    for partition, slots in sorted(per_partition.items()):
        total = sum(slots.values())
        if total < REPLICA_MIN_SAMPLES:
            continue
        backup = sum(q for slot, q in slots.items() if slot != 0)
        share = backup / total
        if share < REPLICA_BACKUP_SHARE:
            continue
        out.append(
            Recommendation(
                kind="replica-load-imbalance",
                severity="warning",
                title=(
                    f"partition {partition}: backup replicas served "
                    f"{share:.0%} of {total} replies"
                ),
                action=(
                    f"investigate partition {partition}'s primary "
                    "(replica 0): it keeps losing work to failover or "
                    "hedges — check restarts, fault injection, and the "
                    "breaker state for its slot"
                ),
                evidence={
                    "partition": partition,
                    "backup_share": round(share, 4),
                    "replies": total,
                    "per_replica_queries": {
                        str(s): q for s, q in sorted(slots.items())
                    },
                    "threshold_share": REPLICA_BACKUP_SHARE,
                },
                rationale=(
                    f"backup share {share:.2f} >= {REPLICA_BACKUP_SHARE} "
                    f"over {total} replies (>= {REPLICA_MIN_SAMPLES}); "
                    "primary-first routing only skips a primary that "
                    "failed"
                ),
            )
        )
    return out


def _check_breaker_flapping(stats) -> List[Recommendation]:
    breaker = stats["breaker"]
    trips = breaker["trips"]
    if trips < BREAKER_FLAP_TRIPS:
        return []
    return [
        Recommendation(
            kind="breaker-flapping",
            severity="warning",
            title=(
                f"replica circuit breakers tripped {trips} time(s)"
            ),
            action=(
                "a worker slot is repeatedly failing then recovering: "
                "check worker_restarts and fault sources; raise "
                "breaker_cooldown_seconds if probes re-trip instantly, "
                "or replace the unhealthy replica"
            ),
            evidence={
                "trips": trips,
                "open_regions": breaker["open_regions"],
                "probes_admitted": breaker["probes_admitted"],
                "worker_restarts": stats["worker_restarts"],
                "failovers": stats["counters"]["failovers"],
                "threshold_trips": BREAKER_FLAP_TRIPS,
            },
            rationale=(
                f"trips {trips} >= {BREAKER_FLAP_TRIPS}; every trip "
                "cost a cooldown of short-circuited attempts first"
            ),
        )
    ]


def _check_hedge_efficacy(stats) -> List[Recommendation]:
    counters = stats["counters"]
    hedges = counters["hedges"]
    if hedges < HEDGE_MIN_SAMPLES:
        return []
    wins = counters["hedge_wins"]
    win_rate = wins / hedges
    if win_rate <= HEDGE_WASTE_WIN_RATE:
        return [
            Recommendation(
                kind="hedge-efficacy",
                severity="info",
                title=(
                    f"hedges win only {win_rate:.0%} of {hedges} sends"
                ),
                action=(
                    "raise hedge_delay_seconds: most hedges duplicate "
                    "work the primary finishes anyway, doubling load on "
                    "the hedged partitions for little latency return"
                ),
                evidence={
                    "hedges": hedges,
                    "hedge_wins": wins,
                    "win_rate": round(win_rate, 4),
                    "threshold_win_rate": HEDGE_WASTE_WIN_RATE,
                },
                rationale=(
                    f"win rate {win_rate:.2f} <= {HEDGE_WASTE_WIN_RATE} "
                    f"over {hedges} hedges (>= {HEDGE_MIN_SAMPLES})"
                ),
            )
        ]
    if win_rate >= HEDGE_CHRONIC_WIN_RATE:
        return [
            Recommendation(
                kind="hedge-efficacy",
                severity="warning",
                title=(
                    f"hedges win {win_rate:.0%} of {hedges} sends — "
                    "primaries straggle chronically"
                ),
                action=(
                    "the hedge is the common path, not the escape "
                    "hatch: find why primaries stall (GC, stalls, slow "
                    "partition) or lower hedge_delay_seconds further and "
                    "provision for doubled fan-out"
                ),
                evidence={
                    "hedges": hedges,
                    "hedge_wins": wins,
                    "win_rate": round(win_rate, 4),
                    "threshold_win_rate": HEDGE_CHRONIC_WIN_RATE,
                },
                rationale=(
                    f"win rate {win_rate:.2f} >= "
                    f"{HEDGE_CHRONIC_WIN_RATE} over {hedges} hedges"
                ),
            )
        ]
    return []


def _check_shed_rate(stats) -> List[Recommendation]:
    admission = stats["admission"]
    rejected = (
        admission["rejected_quota"] + admission["rejected_queue_depth"]
    )
    offered = admission["admitted"] + rejected
    if offered < SHED_MIN_SAMPLES:
        return []
    shed_rate = rejected / offered
    if shed_rate < SHED_RATE_THRESHOLD:
        return []
    return [
        Recommendation(
            kind="shed-rate",
            severity="critical" if shed_rate >= 0.25 else "warning",
            title=(
                f"admission sheds {shed_rate:.0%} of {offered} requests"
            ),
            action=(
                "add capacity or raise admission limits: tenants are "
                "being turned away at the front door "
                f"({admission['rejected_quota']} on quota, "
                f"{admission['rejected_queue_depth']} on queue depth)"
            ),
            evidence={
                "admitted": admission["admitted"],
                "rejected_quota": admission["rejected_quota"],
                "rejected_queue_depth": admission["rejected_queue_depth"],
                "shed_rate": round(shed_rate, 4),
                "threshold_rate": SHED_RATE_THRESHOLD,
            },
            rationale=(
                f"shed rate {shed_rate:.2f} >= {SHED_RATE_THRESHOLD} "
                f"over {offered} offered requests (>= {SHED_MIN_SAMPLES})"
            ),
        )
    ]


def _check_slow_partitions(stats) -> List[Recommendation]:
    obs = stats.get("observability")
    if not obs:
        return []
    service = obs.get("partition_service") or {}
    means = {
        int(p): entry["mean_seconds"]
        for p, entry in service.items()
        if entry["replies"] >= SLOW_PARTITION_MIN_SAMPLES
    }
    if len(means) < 2:
        return []
    mean = sum(means.values()) / len(means)
    if mean <= 0:
        return []
    slowest = max(means, key=lambda p: means[p])
    ratio = means[slowest] / mean
    if ratio < SLOW_PARTITION_RATIO:
        return []
    return [
        Recommendation(
            kind="slow-partition-skew",
            severity="warning",
            title=(
                f"partition {slowest} serves {ratio:.1f}x the mean "
                "partition service time"
            ),
            action=(
                f"rebalance or investigate partition {slowest}: "
                "scatter latency is bounded by the slowest partition, "
                "so the whole cluster pays this tail — compare its salt "
                "load (cluster heatmap) and worker IO to its peers"
            ),
            evidence={
                "slowest_partition": slowest,
                "slowest_mean_seconds": round(means[slowest], 6),
                "cluster_mean_seconds": round(mean, 6),
                "skew_ratio": round(ratio, 2),
                "per_partition_mean_seconds": {
                    str(p): round(m, 6) for p, m in sorted(means.items())
                },
                "threshold_ratio": SLOW_PARTITION_RATIO,
            },
            rationale=(
                f"max/mean partition service {ratio:.2f} >= "
                f"{SLOW_PARTITION_RATIO} with >= "
                f"{SLOW_PARTITION_MIN_SAMPLES} replies per partition"
            ),
        )
    ]


# ---------------------------------------------------------------------
def render_report(recs: List[Recommendation]) -> str:
    if not recs:
        return "doctor: no findings — storage looks healthy"
    lines = [f"doctor: {len(recs)} finding(s)"]
    for rec in recs:
        lines.append(rec.render())
    return "\n".join(lines)


def report_json(recs: List[Recommendation]) -> Dict[str, Any]:
    return {
        "findings": len(recs),
        "recommendations": [r.to_json() for r in recs],
    }
