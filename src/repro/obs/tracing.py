"""Span-based tracing for the query pipeline.

One query produces one span tree: a root ``query.threshold`` /
``query.topk`` span with ``plan`` / ``scan`` / ``refine`` (or per-unit)
children, and one ``scan.range`` grandchild per key range the executor
ran — carrying retries, breaker rejections, cache hits and the worker
thread that executed it.  Spans hold attributes (set once, rendered in
EXPLAIN ANALYZE) and events (timestamped occurrences, e.g. per-lemma
filter rejections).

Two tracer implementations share the interface:

* :data:`NULL_TRACER` — the default.  Every ``span()`` call returns the
  shared :data:`NULL_SPAN` singleton whose methods are empty; no
  allocation, no locking, no clock reads.  Instrumented code therefore
  costs one attribute load and a truthiness check when tracing is off —
  the zero-overhead-when-off contract.
* :class:`Tracer` — records real spans.  The active span is tracked on
  a *per-thread* stack; parallel scan workers receive the parent span
  explicitly (trace-context propagation across the pool) and tag their
  spans with ``plan.index`` so the tree can be reassembled in plan
  order regardless of completion order.

The clock is injectable.  Query paths use the executor's
``trace_clock`` — wall time plus virtual charges normally, *purely
virtual* time under fault injection — so chaos-run span durations are a
deterministic function of ``(seed, workload)``.

Tracing is observational only: no instrumented code path writes to
:class:`~repro.kvstore.metrics.IOMetrics` or changes control flow, so a
traced query returns byte-identical answers and counters to an
untraced one.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple


class _NoopSpan:
    """The do-nothing span handed out when tracing is off."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set_attr(self, name: str, value: Any) -> None:
        pass

    def set_attrs(self, **attrs: Any) -> None:
        pass

    def add_event(self, name: str, **attrs: Any) -> None:
        pass

    def set_duration(self, seconds: float) -> None:
        pass

    @property
    def duration(self) -> float:
        return 0.0


#: shared no-op span; every ``NoopTracer.span()`` call returns it
NULL_SPAN = _NoopSpan()


class NoopTracer:
    """Tracing disabled: every operation is free and returns nothing."""

    enabled = False

    def span(
        self, name: str, parent: Optional["Span"] = None, **attrs: Any
    ) -> _NoopSpan:
        return NULL_SPAN

    @property
    def current_span(self) -> None:
        return None

    def add_event(self, name: str, **attrs: Any) -> None:
        pass

    def traces(self) -> List["Span"]:
        return []


#: the default tracer on every engine and executor
NULL_TRACER = NoopTracer()


class Span:
    """One traced operation: name, time range, attributes, events,
    children.  Thread-safe for the parallel scan path (children and
    events may be appended from worker threads)."""

    #: cap on recorded events per span (per-record filter events can be
    #: plentiful on large scans); overflow is counted, not stored
    MAX_EVENTS = 10_000

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        parent: Optional["Span"] = None,
        attrs: Optional[Dict[str, Any]] = None,
    ):
        self.tracer = tracer
        self.name = name
        self.parent = parent
        self.attrs: Dict[str, Any] = dict(attrs) if attrs else {}
        #: (clock time, name, attrs) triples
        self.events: List[Tuple[float, str, Dict[str, Any]]] = []
        self.children: List["Span"] = []
        self.start: float = 0.0
        self.end: Optional[float] = None
        self.dropped_events = 0
        self._duration_override: Optional[float] = None
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Context-manager protocol: entering activates the span on the
    # current thread's stack; exiting closes it.
    # ------------------------------------------------------------------
    def __enter__(self) -> "Span":
        self.tracer._activate(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self.set_attr("error", f"{exc_type.__name__}: {exc}")
        self.tracer._deactivate(self)
        return False

    # ------------------------------------------------------------------
    def set_attr(self, name: str, value: Any) -> None:
        self.attrs[name] = value

    def set_attrs(self, **attrs: Any) -> None:
        self.attrs.update(attrs)

    def add_event(self, name: str, **attrs: Any) -> None:
        with self._lock:
            if len(self.events) >= self.MAX_EVENTS:
                self.dropped_events += 1
                return
            self.events.append((self.tracer.clock(), name, attrs))

    def set_duration(self, seconds: float) -> None:
        """Override the measured duration (e.g. refinement time carved
        out of the scan wall clock by the pipelined search)."""
        self._duration_override = float(seconds)

    @property
    def duration(self) -> float:
        if self._duration_override is not None:
            return self._duration_override
        if self.end is None:
            return 0.0
        return self.end - self.start

    # ------------------------------------------------------------------
    def to_dict(self, include_events: bool = True) -> Dict[str, Any]:
        """A JSON-serialisable view of this span's subtree."""
        out: Dict[str, Any] = {
            "name": self.name,
            "duration_seconds": self.duration,
            "attrs": dict(self.attrs),
            "children": [
                child.to_dict(include_events) for child in self.children
            ],
        }
        if include_events:
            out["events"] = [
                {"at": at, "name": name, "attrs": dict(attrs)}
                for at, name, attrs in self.events
            ]
            if self.dropped_events:
                out["dropped_events"] = self.dropped_events
        return out

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> List["Span"]:
        """Every span named ``name`` in this subtree."""
        return [span for span in self.walk() if span.name == name]


def graft_span_dict(
    tracer: "Tracer",
    data: Dict[str, Any],
    parent: Optional["Span"] = None,
) -> "Span":
    """Rebuild a serialised span subtree (:meth:`Span.to_dict` output)
    and graft it under ``parent`` (or as a new root when ``None``).

    This is the coordinator half of cross-process trace propagation:
    workers ship their completed subtrees as plain dicts over the pipe
    and the coordinator stitches them into its own tree.  Durations are
    carried verbatim as overrides (worker clocks — virtual time under
    fault injection — never mix with the coordinator's clock), so a
    stitched chaos trace stays a deterministic function of
    ``(seed, workload)``.
    """
    span = Span(tracer, data["name"], parent, data.get("attrs"))
    span.set_duration(float(data.get("duration_seconds", 0.0)))
    for event in data.get("events", ()):
        span.events.append(
            (
                float(event.get("at", 0.0)),
                event["name"],
                dict(event.get("attrs", {})),
            )
        )
    span.dropped_events = int(data.get("dropped_events", 0))
    for child in data.get("children", ()):
        graft_span_dict(tracer, child, span)
    if parent is None:
        with tracer._lock:
            tracer._roots.append(span)
    else:
        with parent._lock:
            parent.children.append(span)
    return span


class Tracer:
    """Records spans into per-query trees.

    ``clock`` is any ``() -> float`` monotonic-ish callable; engines
    pass the executor's ``trace_clock`` so durations stay deterministic
    under fault injection (virtual time only).
    """

    enabled = True

    def __init__(self, clock: Optional[Callable[[], float]] = None):
        self.clock: Callable[[], float] = (
            clock if clock is not None else time.perf_counter
        )
        self._roots: List[Span] = []
        self._local = threading.local()
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    @property
    def current_span(self) -> Optional[Span]:
        stack = self._stack()
        return stack[-1] if stack else None

    # ------------------------------------------------------------------
    def span(
        self, name: str, parent: Optional[Span] = None, **attrs: Any
    ) -> Span:
        """Create (but not yet activate) a span.

        With no explicit ``parent`` the current thread's active span is
        the parent; parallel workers pass the submitting thread's span
        explicitly to carry the trace context across the pool.  Use as
        a context manager to time it.
        """
        if parent is None:
            parent = self.current_span
        span = Span(self, name, parent, attrs)
        if parent is None:
            with self._lock:
                self._roots.append(span)
        else:
            with parent._lock:
                parent.children.append(span)
        return span

    def _activate(self, span: Span) -> None:
        span.start = self.clock()
        self._stack().append(span)

    def _deactivate(self, span: Span) -> None:
        span.end = self.clock()
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        elif span in stack:
            stack.remove(span)

    def add_event(self, name: str, **attrs: Any) -> None:
        """Attach an event to the current thread's active span (no-op
        when none is active)."""
        span = self.current_span
        if span is not None:
            span.add_event(name, **attrs)

    # ------------------------------------------------------------------
    def traces(self) -> List[Span]:
        """Every root span recorded so far (one per traced query)."""
        with self._lock:
            return list(self._roots)

    def clear(self) -> None:
        with self._lock:
            self._roots.clear()

    @staticmethod
    def sort_children(span: Span, attr: str = "plan.index") -> None:
        """Reassemble ``span.children`` in plan order after a parallel
        fan-out (stable: spans without the attribute keep their place
        at the end)."""
        with span._lock:
            span.children.sort(
                key=lambda child: (
                    attr not in child.attrs,
                    child.attrs.get(attr, 0),
                )
            )


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
def _format_attr(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def format_span_tree(
    span: Span,
    indent: str = "",
    max_children: int = 16,
    show_events: bool = False,
) -> str:
    """A human-readable tree of one span and its descendants.

    ``max_children`` caps the rendered children per span (a wide plan
    can hold hundreds of ``scan.range`` spans); the elision is stated.
    """
    lines: List[str] = []
    _render(span, lines, "", True, True, max_children, show_events)
    return "\n".join(lines)


def _render(
    span: Span,
    lines: List[str],
    prefix: str,
    is_last: bool,
    is_root: bool,
    max_children: int,
    show_events: bool,
) -> None:
    connector = "" if is_root else ("└─ " if is_last else "├─ ")
    attrs = "  ".join(
        f"{k}={_format_attr(v)}" for k, v in span.attrs.items()
    )
    extra = f"  [{len(span.events)} event(s)]" if span.events else ""
    lines.append(
        f"{prefix}{connector}{span.name}  "
        f"{span.duration * 1000.0:.3f} ms"
        f"{('  ' + attrs) if attrs else ''}{extra}"
    )
    child_prefix = prefix + ("" if is_root else ("   " if is_last else "│  "))
    if show_events:
        for at, name, evattrs in span.events:
            rendered = "  ".join(
                f"{k}={_format_attr(v)}" for k, v in evattrs.items()
            )
            lines.append(f"{child_prefix}· {name} {rendered}")
    children = span.children
    shown = children[:max_children]
    for i, child in enumerate(shown):
        last = i == len(shown) - 1 and len(children) <= max_children
        _render(
            child, lines, child_prefix, last, False, max_children, show_events
        )
    if len(children) > max_children:
        lines.append(
            f"{child_prefix}└─ … {len(children) - max_children} more "
            f"child span(s) elided"
        )
