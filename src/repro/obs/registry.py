"""Unified metrics registry: counters, gauges, fixed-bucket histograms.

One registry per engine absorbs every number the system already counts
— :class:`~repro.kvstore.metrics.IOMetrics`, the cache tiers, the
resilience events, breaker state, store shape — under **stable dotted
names** (``trass.io.rows_scanned``, ``trass.cache.block.hits``,
``trass.resilience.breaker.trips``, …) and exports them as JSON or
Prometheus text format.  Query latencies are observed into
fixed-bucket histograms at query time.

The registry is read-model only: refreshing it copies counter values
out of ``IOMetrics``, never writes back, so exporting metrics cannot
perturb the I/O accounting the paper's plots are built on.
"""

from __future__ import annotations

import bisect
import re
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

#: latency buckets in seconds (sub-ms to 10 s; queries above the top
#: bucket land in +Inf)
DEFAULT_TIME_BUCKETS: Tuple[float, ...] = (
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)

_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z0-9_]+)*$")


class Counter:
    """A monotonically increasing count."""

    kind = "counter"

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        self.value += amount

    def set_to(self, value: float) -> None:
        """Overwrite with an externally accumulated total (used when
        absorbing ``IOMetrics``, which already keeps the running sum)."""
        self.value = value

    def to_json(self) -> Dict[str, Any]:
        return {"type": self.kind, "help": self.help, "value": self.value}


class Gauge:
    """A value that can go up and down."""

    kind = "gauge"

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self.value: float = 0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1) -> None:
        self.value += amount

    def dec(self, amount: float = 1) -> None:
        self.value -= amount

    def to_json(self) -> Dict[str, Any]:
        return {"type": self.kind, "help": self.help, "value": self.value}


class Histogram:
    """A fixed-bucket histogram (Prometheus ``le`` semantics).

    ``buckets`` are inclusive upper bounds; an implicit ``+Inf`` bucket
    catches the rest.  Counts are kept per bucket (non-cumulative) and
    cumulated at export time.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_TIME_BUCKETS,
    ):
        if not buckets:
            raise ValueError(f"histogram {name} needs at least one bucket")
        self.name = name
        self.help = help
        self.buckets: Tuple[float, ...] = tuple(sorted(float(b) for b in buckets))
        #: one slot per finite bucket plus the +Inf overflow slot
        self.counts: List[int] = [0] * (len(self.buckets) + 1)
        self.sum: float = 0.0
        self.count: int = 0

    def observe(self, value: float) -> None:
        self.counts[bisect.bisect_left(self.buckets, value)] += 1
        self.sum += value
        self.count += 1

    def set_state(
        self, counts: Sequence[int], sum_: float, count: int
    ) -> None:
        """Overwrite with externally accumulated state (read-model
        absorption of a :class:`~repro.kvstore.metrics.FixedBucketCounts`
        that already keeps the running distribution — overwrite, not
        observe, so repeated refreshes cannot double-count)."""
        if len(counts) != len(self.counts):
            raise ValueError(
                f"histogram {self.name} has {len(self.counts)} slots, "
                f"got {len(counts)}"
            )
        self.counts = [int(c) for c in counts]
        self.sum = float(sum_)
        self.count = int(count)

    def merge_from(self, other: "Histogram") -> None:
        """Element-wise accumulation of another histogram with the same
        bucket layout (cluster rollups sum worker histograms)."""
        if other.buckets != self.buckets:
            raise ValueError(
                f"histogram {self.name} buckets differ from {other.name}"
            )
        for i, c in enumerate(other.counts):
            self.counts[i] += c
        self.sum += other.sum
        self.count += other.count

    def cumulative_counts(self) -> List[int]:
        out: List[int] = []
        running = 0
        for c in self.counts:
            running += c
            out.append(running)
        return out

    def quantile(self, q: float) -> Optional[float]:
        """Estimate the ``q``-quantile (0 < q <= 1) by linear
        interpolation inside the covering bucket — the
        ``histogram_quantile`` convention, computed locally.

        ``None`` on an empty histogram.  Observations in the ``+Inf``
        overflow bucket clamp to the top finite bound (the estimate is
        then a lower bound, exactly as in Prometheus).
        """
        if not 0.0 < q <= 1.0:
            raise ValueError(f"quantile must be in (0, 1], got {q}")
        if self.count == 0:
            return None
        rank = q * self.count
        seen = 0
        for i, c in enumerate(self.counts):
            if c == 0:
                continue
            if seen + c >= rank:
                if i >= len(self.buckets):
                    return self.buckets[-1]
                lo = self.buckets[i - 1] if i > 0 else 0.0
                hi = self.buckets[i]
                return lo + (hi - lo) * ((rank - seen) / c)
            seen += c
        return self.buckets[-1]

    def summary(self) -> Dict[str, Any]:
        """count / sum / mean plus p50, p95 and p99 estimates."""
        return {
            "count": self.count,
            "sum": self.sum,
            "mean": (self.sum / self.count) if self.count else 0.0,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }

    def to_json(self) -> Dict[str, Any]:
        return {
            "type": self.kind,
            "help": self.help,
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "sum": self.sum,
            "count": self.count,
        }


class MetricsRegistry:
    """Named metrics with dotted-path identifiers and two exporters."""

    def __init__(self) -> None:
        self._metrics: Dict[str, Any] = {}

    # ------------------------------------------------------------------
    def _get_or_create(self, name: str, factory, kind: str):
        if not _NAME_RE.match(name):
            raise ValueError(
                f"metric name {name!r} must be dotted lowercase "
                f"[a-z0-9_] segments"
            )
        metric = self._metrics.get(name)
        if metric is None:
            metric = factory()
            self._metrics[name] = metric
        elif metric.kind != kind:
            raise ValueError(
                f"metric {name!r} already registered as {metric.kind}, "
                f"requested {kind}"
            )
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(name, lambda: Counter(name, help), "counter")

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(name, lambda: Gauge(name, help), "gauge")

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_TIME_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(
            name, lambda: Histogram(name, help, buckets), "histogram"
        )

    def get(self, name: str):
        return self._metrics.get(name)

    def names(self) -> List[str]:
        return list(self._metrics)

    # ------------------------------------------------------------------
    # Exporters
    # ------------------------------------------------------------------
    def to_json(self) -> Dict[str, Any]:
        """``{dotted_name: {type, help, value...}}`` for every metric."""
        return {
            name: metric.to_json()
            for name, metric in sorted(self._metrics.items())
        }

    def to_prometheus(self) -> str:
        """Prometheus text exposition format (0.0.4)."""
        lines: List[str] = []
        for name, metric in sorted(self._metrics.items()):
            prom = name.replace(".", "_")
            if metric.help:
                lines.append(f"# HELP {prom} {metric.help}")
            lines.append(f"# TYPE {prom} {metric.kind}")
            if metric.kind in ("counter", "gauge"):
                lines.append(f"{prom} {_format_value(metric.value)}")
            else:
                cumulative = metric.cumulative_counts()
                for bound, count in zip(metric.buckets, cumulative):
                    lines.append(
                        f'{prom}_bucket{{le="{_format_value(bound)}"}} {count}'
                    )
                lines.append(f'{prom}_bucket{{le="+Inf"}} {metric.count}')
                lines.append(f"{prom}_sum {_format_value(metric.sum)}")
                lines.append(f"{prom}_count {metric.count}")
        return "\n".join(lines) + "\n"


def _format_value(value: float) -> str:
    if isinstance(value, float) and value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


# ----------------------------------------------------------------------
# The stable name registry: IOMetrics fields -> dotted metric names.
# These names are a public contract (dashboards, the Prometheus
# scrape); extend, never rename.
# ----------------------------------------------------------------------
IO_METRIC_NAMES: Dict[str, str] = {
    "rows_scanned": "trass.io.rows_scanned",
    "rows_returned": "trass.io.rows_returned",
    "bytes_read": "trass.io.bytes_read",
    "range_seeks": "trass.io.range_seeks",
    "gets": "trass.io.gets",
    "puts": "trass.io.puts",
    "bloom_negatives": "trass.io.bloom_negatives",
    "sstables_opened": "trass.io.sstables_opened",
    "regions_visited": "trass.io.regions_visited",
    "filter_evaluations": "trass.io.filter_evaluations",
    "filter_rejections": "trass.io.filter_rejections",
    "faults_injected": "trass.resilience.faults_injected",
    "retries": "trass.resilience.retries",
    "ranges_skipped": "trass.resilience.ranges_skipped",
    "breaker_trips": "trass.resilience.breaker_trips",
    "block_cache_hits": "trass.cache.block.hits",
    "block_cache_misses": "trass.cache.block.misses",
    "row_cache_hits": "trass.cache.row.hits",
    "row_cache_misses": "trass.cache.row.misses",
    "record_cache_hits": "trass.cache.record.hits",
    "record_cache_misses": "trass.cache.record.misses",
    "plan_cache_hits": "trass.cache.plan.hits",
    "plan_cache_misses": "trass.cache.plan.misses",
    "segment_blocks_materialized": "trass.storage.segment.blocks_materialized",
    "segment_bytes_compressed": "trass.storage.segment.bytes_compressed_read",
    "segment_bytes_logical": "trass.storage.segment.bytes_logical_read",
}


def update_registry_from_engine(registry: MetricsRegistry, engine) -> None:
    """Refresh ``registry`` from an engine's current state.

    Absorbs the ``IOMetrics`` counter bundle, breaker state, store
    shape and the slow-query log under the stable dotted names.  Reads
    only — the engine's own counters are never touched.
    """
    io = engine.metrics.snapshot()
    for field, name in IO_METRIC_NAMES.items():
        registry.counter(name, f"IOMetrics.{field}").set_to(io[field])

    store = engine.store
    registry.gauge(
        "trass.store.trajectories", "stored trajectory count"
    ).set(store.trajectory_count)
    registry.gauge("trass.store.regions", "table region count").set(
        store.table.num_regions
    )
    registry.gauge(
        "trass.store.approximate_bytes", "approximate stored bytes"
    ).set(store.table.approximate_size)
    registry.gauge(
        "trass.store.distinct_index_values", "distinct XZ* index values"
    ).set(len(store.value_histogram))

    breaker = store.executor.breaker.snapshot()
    registry.gauge(
        "trass.resilience.breaker.open_regions",
        "regions currently rejected by an open circuit",
    ).set(breaker["open_regions"])
    registry.gauge(
        "trass.resilience.breaker.tracked_regions",
        "regions with failure history",
    ).set(breaker["tracked_regions"])
    registry.counter(
        "trass.resilience.breaker.trips", "circuit open transitions"
    ).set_to(breaker["trips"])

    registry.gauge(
        "trass.slowlog.entries", "entries in the slow-query ring buffer"
    ).set(len(engine.slow_query_log))

    from repro.obs.storage_stats import update_storage_registry

    update_storage_registry(registry, engine)


def update_registry_from_cluster(registry: MetricsRegistry, cluster) -> None:
    """Refresh ``registry`` from a serving cluster's counters.

    Mirrors :func:`update_registry_from_engine` for the distributed
    tier: scatter-gather traffic, failover/hedging activity, degraded
    queries and the admission front door, all under ``trass.serve.*``.
    Reads only.
    """
    stats = cluster.stats()
    registry.gauge(
        "trass.serve.partitions", "shard partitions in the cluster"
    ).set(stats["partitions"])
    registry.gauge(
        "trass.serve.replication", "replicas per partition"
    ).set(stats["replication"])
    counter_help = {
        "requests": "scatter-gather fan-outs issued",
        "threshold_queries": "threshold queries answered",
        "topk_queries": "top-k queries answered",
        "hedges": "hedged request copies sent",
        "hedge_wins": "queries won by the hedge copy",
        "failovers": "replica failures failed over",
        "degraded_queries": "queries answered with skipped ranges",
        "stale_replies": "late replies drained and dropped",
        "breaker_short_circuits": "replicas skipped by an open circuit",
        "worker_errors": "error replies received from workers",
    }
    for key, value in stats["counters"].items():
        registry.counter(
            f"trass.serve.{key}", counter_help.get(key, key)
        ).set_to(value)
    registry.counter(
        "trass.serve.worker_restarts", "dead workers replaced"
    ).set_to(stats["worker_restarts"])
    admission = stats["admission"]
    registry.gauge(
        "trass.serve.admission.in_flight", "requests currently admitted"
    ).set(admission["in_flight"])
    registry.counter(
        "trass.serve.admission.admitted", "requests admitted"
    ).set_to(admission["admitted"])
    registry.counter(
        "trass.serve.admission.rejected_quota",
        "requests shed by per-tenant quota",
    ).set_to(admission["rejected_quota"])
    registry.counter(
        "trass.serve.admission.rejected_queue_depth",
        "requests shed by queue-depth limit",
    ).set_to(admission["rejected_queue_depth"])

    # Cluster-wide aggregation (present when the cluster runs with
    # observability): coordinator SLO histograms and error budget,
    # per-worker IOMetrics deltas and their cluster rollup.  State is
    # overwritten, not observed, so repeated refreshes cannot
    # double-count.
    obs = stats.get("observability")
    if not obs:
        return
    for key, data in obs["slo"]["histograms"].items():
        hist = registry.histogram(
            f"trass.serve.slo.{key}_seconds",
            data.get("help", f"cluster SLO: {key} seconds"),
            buckets=data["buckets"],
        )
        hist.set_state(data["counts"], data["sum"], data["count"])
    budget = obs["slo"]["error_budget"]
    registry.counter(
        "trass.serve.slo.good_events",
        "queries that met the latency objective completely",
    ).set_to(budget["good_events"])
    registry.counter(
        "trass.serve.slo.bad_events",
        "queries that missed the objective or skipped ranges",
    ).set_to(budget["bad_events"])
    registry.gauge(
        "trass.serve.slo.error_budget_burn",
        "bad-event rate over the allowed rate (burn > 1 overspends)",
    ).set(budget["burn_rate"])
    for worker in obs["workers"]:
        prefix = (
            f"trass.serve.worker.{worker['partition']}.{worker['replica']}"
        )
        registry.counter(
            f"{prefix}.queries",
            "successful query replies from this worker slot",
        ).set_to(worker["queries"])
        for field, value in sorted(worker["io"].items()):
            registry.counter(
                f"{prefix}.{field}",
                f"worker slot IO delta total: {field}",
            ).set_to(value)
    for field, value in sorted(obs["cluster_io"].items()):
        registry.counter(
            f"trass.serve.cluster.io.{field}",
            f"cluster-wide IO rollup: {field}",
        ).set_to(value)


_PROM_LINE_RE = re.compile(
    r"^(#\s(HELP|TYPE)\s[A-Za-z_:][A-Za-z0-9_:]*.*"
    r"|[A-Za-z_:][A-Za-z0-9_:]*(\{[^{}]*\})?\s[^\s]+)$"
)


def parse_prometheus(text: str) -> Dict[str, float]:
    """A strict mini-parser for the exporter's own output.

    Validates every line against the text exposition grammar and
    returns ``{sample_name_with_labels: value}``.  Used by tests and
    the CI perf-smoke job to assert the exporter emits scrapeable
    output.
    """
    samples: Dict[str, float] = {}
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        if not _PROM_LINE_RE.match(line):
            raise ValueError(
                f"line {lineno} is not valid Prometheus text format: "
                f"{line!r}"
            )
        if line.startswith("#"):
            continue
        name, value = line.rsplit(" ", 1)
        samples[name] = float(value)
    return samples
