"""Slow-query log: a bounded ring buffer of queries over threshold.

Every query the engine answers reports its wall time here; entries at
or above ``threshold_seconds`` are kept in a ``deque(maxlen=capacity)``
— O(1) per query, bounded memory, oldest entries evicted first.  The
threshold and capacity come from
:class:`~repro.core.config.TraSSConfig` (``slow_query_threshold_seconds``
/ ``slow_query_log_size``) and persist with the store.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import asdict, dataclass, field, fields
from typing import Any, Dict, List, Optional, Tuple


@dataclass(frozen=True)
class SlowQueryEntry:
    """One over-threshold query."""

    #: "threshold" or "topk"
    kind: str
    query_tid: str
    #: eps for threshold queries, k for top-k
    parameter: float
    seconds: float
    candidates: int
    answers: int
    completeness: float
    #: wall-clock time of record (epoch seconds)
    timestamp: float = field(default_factory=time.time)
    #: where the query executed: "local" (this process) or "cluster"
    #: (scatter-gathered through a serving coordinator)
    origin: str = "local"
    #: for cluster queries, one dict per partition touched —
    #: ``{"partition", "replica", "attempts", "hedged", "reached"}`` —
    #: so a slow entry names which shard/replica served (or stalled) it
    fanout: Optional[Tuple[Dict[str, Any], ...]] = None


class SlowQueryLog:
    """Fixed-capacity, thread-safe ring buffer of slow queries."""

    def __init__(
        self,
        capacity: int = 128,
        threshold_seconds: Optional[float] = None,
    ):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        #: queries at/above this duration are logged; ``None`` disables
        self.threshold_seconds = threshold_seconds
        self._entries: deque = deque(maxlen=capacity)
        self._lock = threading.Lock()

    @property
    def enabled(self) -> bool:
        return self.threshold_seconds is not None

    def observe(
        self,
        kind: str,
        query_tid: str,
        parameter: float,
        seconds: float,
        candidates: int,
        answers: int,
        completeness: float = 1.0,
        origin: str = "local",
        fanout: Optional[List[Dict[str, Any]]] = None,
    ) -> bool:
        """Record the query if it breaches the threshold; returns
        whether it was logged."""
        threshold = self.threshold_seconds
        if threshold is None or seconds < threshold:
            return False
        entry = SlowQueryEntry(
            kind=kind,
            query_tid=query_tid,
            parameter=parameter,
            seconds=seconds,
            candidates=candidates,
            answers=answers,
            completeness=completeness,
            origin=origin,
            fanout=tuple(dict(f) for f in fanout) if fanout else None,
        )
        with self._lock:
            self._entries.append(entry)
        return True

    def entries(self) -> List[SlowQueryEntry]:
        """Oldest-first snapshot of the buffer."""
        with self._lock:
            return list(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def to_json(self) -> List[Dict[str, Any]]:
        return [asdict(entry) for entry in self.entries()]

    def restore_from_json(self, data: List[Dict[str, Any]]) -> None:
        """Refill the ring buffer from :meth:`to_json` output (oldest
        first).  Unknown keys — newer snapshots read by older code —
        are ignored; the capacity bound still applies."""
        known = {f.name for f in fields(SlowQueryEntry)}
        entries = []
        for raw in data:
            kwargs = {k: v for k, v in raw.items() if k in known}
            fanout = kwargs.get("fanout")
            if fanout is not None:
                kwargs["fanout"] = tuple(dict(f) for f in fanout)
            entries.append(SlowQueryEntry(**kwargs))
        with self._lock:
            self._entries.clear()
            self._entries.extend(entries)
