"""Slow-query log: a bounded ring buffer of queries over threshold.

Every query the engine answers reports its wall time here; entries at
or above ``threshold_seconds`` are kept in a ``deque(maxlen=capacity)``
— O(1) per query, bounded memory, oldest entries evicted first.  The
threshold and capacity come from
:class:`~repro.core.config.TraSSConfig` (``slow_query_threshold_seconds``
/ ``slow_query_log_size``) and persist with the store.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional


@dataclass(frozen=True)
class SlowQueryEntry:
    """One over-threshold query."""

    #: "threshold" or "topk"
    kind: str
    query_tid: str
    #: eps for threshold queries, k for top-k
    parameter: float
    seconds: float
    candidates: int
    answers: int
    completeness: float
    #: wall-clock time of record (epoch seconds)
    timestamp: float = field(default_factory=time.time)


class SlowQueryLog:
    """Fixed-capacity, thread-safe ring buffer of slow queries."""

    def __init__(
        self,
        capacity: int = 128,
        threshold_seconds: Optional[float] = None,
    ):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        #: queries at/above this duration are logged; ``None`` disables
        self.threshold_seconds = threshold_seconds
        self._entries: deque = deque(maxlen=capacity)
        self._lock = threading.Lock()

    @property
    def enabled(self) -> bool:
        return self.threshold_seconds is not None

    def observe(
        self,
        kind: str,
        query_tid: str,
        parameter: float,
        seconds: float,
        candidates: int,
        answers: int,
        completeness: float = 1.0,
    ) -> bool:
        """Record the query if it breaches the threshold; returns
        whether it was logged."""
        threshold = self.threshold_seconds
        if threshold is None or seconds < threshold:
            return False
        entry = SlowQueryEntry(
            kind=kind,
            query_tid=query_tid,
            parameter=parameter,
            seconds=seconds,
            candidates=candidates,
            answers=answers,
            completeness=completeness,
        )
        with self._lock:
            self._entries.append(entry)
        return True

    def entries(self) -> List[SlowQueryEntry]:
        """Oldest-first snapshot of the buffer."""
        with self._lock:
            return list(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def to_json(self) -> List[Dict[str, Any]]:
        return [asdict(entry) for entry in self.entries()]
