"""Observability: query tracing, the metrics registry, EXPLAIN
ANALYZE and the slow-query log.

Everything here is read-model machinery over the engine's existing
accounting: tracing is zero-overhead when off (the default
:data:`~repro.obs.tracing.NULL_TRACER` allocates nothing) and never
perturbs :class:`~repro.kvstore.metrics.IOMetrics`, so observed and
unobserved queries return byte-identical answers and counters.
"""

from repro.obs.explain import ExplainAnalyzeReport, explain_analyze
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    IO_METRIC_NAMES,
    MetricsRegistry,
    parse_prometheus,
    update_registry_from_cluster,
    update_registry_from_engine,
)
from repro.obs.slowlog import SlowQueryEntry, SlowQueryLog
from repro.obs.tracing import (
    NULL_SPAN,
    NULL_TRACER,
    NoopTracer,
    Span,
    Tracer,
    format_span_tree,
    graft_span_dict,
)

__all__ = [
    "Counter",
    "ExplainAnalyzeReport",
    "Gauge",
    "Histogram",
    "IO_METRIC_NAMES",
    "MetricsRegistry",
    "NULL_SPAN",
    "NULL_TRACER",
    "NoopTracer",
    "SlowQueryEntry",
    "SlowQueryLog",
    "Span",
    "Tracer",
    "explain_analyze",
    "format_span_tree",
    "graft_span_dict",
    "parse_prometheus",
    "update_registry_from_cluster",
    "update_registry_from_engine",
]
