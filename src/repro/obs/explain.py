"""EXPLAIN ANALYZE: run a query under tracing, render the phase tree.

``engine.explain()`` describes the *plan*; this module runs the query
and ties every phase to what actually happened: candidates in/out,
rows scanned and returned, cache hit rates, the per-lemma rejection
funnel, retries/breaker/skip accounting, and per-phase durations from
the span tree (virtual time under fault injection, so chaos runs
render deterministically).

The counts are taken from the same :class:`IOMetrics` deltas the
benchmarks use — the report's ``rows scanned`` *is* the counter delta
for the query, by construction, not a parallel bookkeeping path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.exceptions import QueryError
from repro.obs.tracing import Span, Tracer, format_span_tree


def _hit_rate(hits: int, misses: int) -> Optional[float]:
    total = hits + misses
    return hits / total if total else None


@dataclass
class ExplainAnalyzeReport:
    """Everything one traced query produced."""

    #: "threshold" or "topk"
    kind: str
    query_tid: str
    #: eps for threshold, k for top-k
    parameter: float
    measure: str
    answers: int
    candidates: int
    retrieved_rows: int
    #: IOMetrics counter deltas over the traced query
    io_delta: Dict[str, int]
    #: the query's root span
    root: Span
    #: per-lemma rejection funnel (None for full-scan fallbacks)
    filter_stats: Optional[Dict[str, int]] = None
    #: ScanReport summary (None for paths that bypass the executor)
    resilience: Optional[Dict[str, Any]] = None
    #: per-region scan distribution + read amplification for this query
    #: (None when storage telemetry is disabled)
    storage: Optional[Dict[str, Any]] = None
    #: per-partition breakdown for cluster-routed queries (None on the
    #: single-process path): attribution plus the worker's own measured
    #: handler duration from the grafted span subtree
    partitions: Optional[List[Dict[str, Any]]] = None
    result: Any = None

    # ------------------------------------------------------------------
    @property
    def duration_seconds(self) -> float:
        return self.root.duration

    def cache_hit_rates(self) -> Dict[str, Optional[float]]:
        d = self.io_delta
        return {
            "block": _hit_rate(
                d["block_cache_hits"], d["block_cache_misses"]
            ),
            "record": _hit_rate(
                d["record_cache_hits"], d["record_cache_misses"]
            ),
            "plan": _hit_rate(d["plan_cache_hits"], d["plan_cache_misses"]),
        }

    # ------------------------------------------------------------------
    def render(self, max_children: int = 16, show_events: bool = False) -> str:
        """The human-readable EXPLAIN ANALYZE output."""
        lines: List[str] = []
        param = (
            f"eps={self.parameter:g}"
            if self.kind == "threshold"
            else f"k={int(self.parameter)}"
        )
        lines.append(
            f"EXPLAIN ANALYZE {self.kind} {param} measure={self.measure} "
            f"query={self.query_tid!r}"
        )
        lines.append(
            f"answers={self.answers}  candidates={self.candidates}  "
            f"rows_scanned={self.io_delta['rows_scanned']}  "
            f"rows_returned={self.io_delta['rows_returned']}  "
            f"duration={self.duration_seconds * 1000.0:.3f} ms"
        )
        rates = self.cache_hit_rates()
        rate_bits = []
        for tier in ("block", "record", "plan"):
            rate = rates[tier]
            rate_bits.append(
                f"{tier}={rate:.1%}" if rate is not None else f"{tier}=n/a"
            )
        lines.append("cache hit rates: " + "  ".join(rate_bits))
        if self.filter_stats is not None:
            fs = self.filter_stats
            lines.append(
                f"local filter funnel: evaluated={fs['evaluated']} -> "
                f"mbr -{fs['rejected_mbr']} -> "
                f"start/end -{fs['rejected_start_end']} -> "
                f"rep-points -{fs['rejected_rep_points']} -> "
                f"boxes -{fs['rejected_boxes']} -> "
                f"passed={fs['passed']}"
            )
        if self.resilience is not None:
            res = self.resilience
            lines.append(
                f"resilience: {res['ranges_completed']}/{res['ranges_total']} "
                f"ranges completed, {res['retries']} retries, "
                f"{res['breaker_short_circuits']} breaker rejections, "
                f"completeness={res['completeness']:.3f}"
            )
        if self.storage is not None:
            st = self.storage
            lines.append(
                f"storage: read amplification {st['read_amplification']:.2f} "
                f"({st['rows_scanned']} scanned / {st['rows_returned']} "
                f"returned) across {len(st['regions'])} region(s)"
            )
            for region in st["regions"]:
                lines.append(
                    f"  region [{region['start']} .. {region['stop']}) "
                    f"scanned={region['rows_scanned']} "
                    f"returned={region['rows_returned']} "
                    f"share={region['share']:.1%}"
                )
        if self.partitions is not None:
            lines.append(
                f"cluster fan-out: {len(self.partitions)} partition(s)"
            )
            for part in self.partitions:
                worker = part.get("worker_seconds")
                worker_bit = (
                    f"worker={worker * 1000.0:.3f} ms"
                    if worker is not None
                    else "worker=n/a"
                )
                lines.append(
                    f"  partition {part['partition']} "
                    f"replica={part['replica']} "
                    f"attempts={part['attempts']} "
                    f"hedged={part['hedged']} reached={part['reached']} "
                    f"{worker_bit}"
                )
        lines.append("")
        lines.append(
            format_span_tree(
                self.root, max_children=max_children, show_events=show_events
            )
        )
        return "\n".join(lines)

    def to_json(self, include_events: bool = False) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "query_tid": self.query_tid,
            "parameter": self.parameter,
            "measure": self.measure,
            "answers": self.answers,
            "candidates": self.candidates,
            "retrieved_rows": self.retrieved_rows,
            "duration_seconds": self.duration_seconds,
            "io_delta": dict(self.io_delta),
            "cache_hit_rates": self.cache_hit_rates(),
            "filter_stats": (
                dict(self.filter_stats)
                if self.filter_stats is not None
                else None
            ),
            "resilience": (
                dict(self.resilience) if self.resilience is not None else None
            ),
            "storage": (
                dict(self.storage) if self.storage is not None else None
            ),
            "partitions": (
                [dict(p) for p in self.partitions]
                if self.partitions is not None
                else None
            ),
            "trace": self.root.to_dict(include_events),
        }


def explain_analyze(
    engine,
    query,
    eps: Optional[float] = None,
    k: Optional[int] = None,
    measure: Optional[str] = None,
) -> ExplainAnalyzeReport:
    """Run one query under a fresh tracer and package the evidence.

    Exactly one of ``eps`` (threshold search) and ``k`` (top-k) must be
    given.  The engine's configured tracer is restored afterwards, and
    the run counts into ``IOMetrics`` exactly like an untraced query.
    """
    if (eps is None) == (k is None):
        raise QueryError("provide exactly one of eps (threshold) or k (topk)")
    if getattr(engine, "remote_executor", None) is not None:
        return _explain_analyze_cluster(engine, query, eps, k, measure)
    tracer = engine.make_tracer()
    before = engine.metrics.snapshot()
    telemetry = engine.storage_telemetry
    regions_before = (
        telemetry.region_snapshot() if telemetry is not None else None
    )
    with engine.traced(tracer):
        if eps is not None:
            result = engine.threshold_search(query, eps, measure=measure)
        else:
            result = engine.topk_search(query, k, measure=measure)
    io_delta = engine.metrics.diff(before)
    roots = tracer.traces()
    if not roots:
        raise QueryError("tracer recorded no spans for the query")
    root = roots[-1]

    filter_stats = getattr(result, "filter_stats", None)
    resilience = getattr(result, "resilience", None)
    if eps is not None:
        kind = "threshold"
        parameter = float(eps)
        answers = len(result.answers)
    else:
        kind = "topk"
        parameter = float(k)
        answers = len(result.answers)
    return ExplainAnalyzeReport(
        kind=kind,
        query_tid=query.tid,
        parameter=parameter,
        measure=engine._resolve_measure(measure).name,
        answers=answers,
        candidates=result.candidates,
        retrieved_rows=result.retrieved_rows,
        io_delta=io_delta,
        root=root,
        filter_stats=(
            filter_stats.as_dict() if filter_stats is not None else None
        ),
        resilience=(
            resilience.summary() if resilience is not None else None
        ),
        storage=_storage_delta(telemetry, regions_before, io_delta),
        result=result,
    )


def _explain_analyze_cluster(
    engine,
    query,
    eps: Optional[float],
    k: Optional[int],
    measure: Optional[str],
) -> ExplainAnalyzeReport:
    """EXPLAIN ANALYZE through the serving tier.

    The coordinator runs under a fresh tracer (trace-stamping every
    worker request, so the span tree stitches coordinator and worker
    halves), and the IO delta comes from the cluster's reply-delta
    rollup — the distributed analogue of the local counter diff.  The
    cluster's configured tracer is restored afterwards.
    """
    from repro.kvstore.metrics import IOMetrics

    cluster = engine.remote_executor
    tracer = engine.make_tracer()
    io_before = cluster.io_totals()
    previous = cluster.tracer
    cluster.tracer = tracer
    try:
        if eps is not None:
            result = engine.threshold_search(query, eps, measure=measure)
        else:
            result = engine.topk_search(query, k, measure=measure)
    finally:
        cluster.tracer = previous
    io_after = cluster.io_totals()
    # Zero-filled over the full IOMetrics field set so the report reads
    # identically to the single-process one; without cluster
    # observability both rollups are empty and the delta is all zeros.
    io_delta = {name: 0 for name in IOMetrics().snapshot()}
    for name in set(io_before) | set(io_after):
        io_delta[name] = io_after.get(name, 0) - io_before.get(name, 0)
    roots = tracer.traces()
    if not roots:
        raise QueryError("tracer recorded no spans for the query")
    root = roots[-1]

    partitions: List[Dict[str, Any]] = []
    for span in root.find("serve.partition"):
        workers = span.find("worker.handle")
        partitions.append(
            {
                "partition": span.attrs.get("partition"),
                "replica": span.attrs.get("replica"),
                "attempts": span.attrs.get("attempts"),
                "hedged": span.attrs.get("hedged"),
                "reached": span.attrs.get("reached"),
                "worker_seconds": (
                    workers[0].duration if workers else None
                ),
            }
        )

    filter_stats = getattr(result, "filter_stats", None)
    resilience = getattr(result, "resilience", None)
    if eps is not None:
        kind = "threshold"
        parameter = float(eps)
    else:
        kind = "topk"
        parameter = float(k)
    return ExplainAnalyzeReport(
        kind=kind,
        query_tid=query.tid,
        parameter=parameter,
        measure=engine._resolve_measure(measure).name,
        answers=len(result.answers),
        candidates=result.candidates,
        retrieved_rows=result.retrieved_rows,
        io_delta=io_delta,
        root=root,
        filter_stats=(
            filter_stats.as_dict() if filter_stats is not None else None
        ),
        resilience=(
            resilience.summary() if resilience is not None else None
        ),
        storage=None,
        partitions=partitions,
        result=result,
    )


def _storage_delta(
    telemetry, regions_before: Optional[Dict[int, Dict[str, Any]]], io_delta
) -> Optional[Dict[str, Any]]:
    """This query's per-region scan distribution: the telemetry
    snapshot delta, plus read amplification from the IOMetrics delta
    (the two agree by construction — both count logical rows)."""
    if telemetry is None or regions_before is None:
        return None
    scanned = io_delta["rows_scanned"]
    returned = io_delta["rows_returned"]
    regions: List[Dict[str, Any]] = []
    for region_id, after in sorted(telemetry.region_snapshot().items()):
        prior = regions_before.get(region_id)
        rows_scanned = after["rows_scanned"] - (
            prior["rows_scanned"] if prior else 0
        )
        rows_returned = after["rows_returned"] - (
            prior["rows_returned"] if prior else 0
        )
        if rows_scanned == 0 and rows_returned == 0:
            continue
        regions.append(
            {
                "start": after["start"],
                "stop": after["stop"],
                "rows_scanned": rows_scanned,
                "rows_returned": rows_returned,
                "share": (rows_scanned / scanned) if scanned else 0.0,
            }
        )
    return {
        "rows_scanned": scanned,
        "rows_returned": returned,
        "read_amplification": (scanned / returned) if returned else 0.0,
        "regions": regions,
    }
