"""Workload capture and deterministic replay.

Every query the engine answers is appended (type, parameters, query
geometry, wall time, I/O deltas, a digest of the answer set) to a
ring-buffered :class:`WorkloadRecorder` that persists with the store
(``TELEMETRY.json`` beside ``STORE.json``).  ``repro replay``
re-executes the captured workload against the current store and checks
every answer digest — byte-identical answers or a named divergence.

The digest is a sha256 over a canonical serialisation of the answer
set (sorted ``(tid, repr(distance))`` pairs for threshold queries, the
ordered ``(repr(distance), tid)`` list for top-k), so it is invariant
to dict ordering but sensitive to any change in membership, ranking or
distance — ``repr`` round-trips floats exactly.
"""

from __future__ import annotations

import hashlib
import json
import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.geometry.trajectory import Trajectory


def answers_digest(kind: str, result) -> str:
    """The canonical sha256 digest of a query result's answer set."""
    if kind == "threshold":
        canonical: Any = sorted(
            (tid, repr(float(dist))) for tid, dist in result.answers.items()
        )
    else:
        canonical = [
            (repr(float(dist)), tid) for dist, tid in result.answers
        ]
    blob = json.dumps(canonical, separators=(",", ":")).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()


@dataclass
class WorkloadEntry:
    """One captured query."""

    seq: int
    kind: str  # "threshold" | "topk"
    tid: str
    points: List[Tuple[float, float]]
    parameter: float  # eps or k
    measure: Optional[str]
    seconds: float
    io_delta: Dict[str, int]
    answers: int
    answers_digest: str
    generation: int  # table generation when answered

    def query(self) -> Trajectory:
        return Trajectory(self.tid, [tuple(p) for p in self.points])

    def to_json(self) -> Dict[str, Any]:
        return {
            "seq": self.seq,
            "kind": self.kind,
            "tid": self.tid,
            "points": [list(p) for p in self.points],
            "parameter": self.parameter,
            "measure": self.measure,
            "seconds": self.seconds,
            "io_delta": dict(self.io_delta),
            "answers": self.answers,
            "answers_digest": self.answers_digest,
            "generation": self.generation,
        }

    @classmethod
    def from_json(cls, data: Dict[str, Any]) -> "WorkloadEntry":
        return cls(
            seq=int(data["seq"]),
            kind=data["kind"],
            tid=data["tid"],
            points=[tuple(p) for p in data["points"]],
            parameter=float(data["parameter"]),
            measure=data.get("measure"),
            seconds=float(data["seconds"]),
            io_delta={k: int(v) for k, v in data.get("io_delta", {}).items()},
            answers=int(data.get("answers", 0)),
            answers_digest=data["answers_digest"],
            generation=int(data.get("generation", 0)),
        )


class WorkloadRecorder:
    """A ring buffer of captured queries.

    ``enabled`` gates capture; :meth:`paused` suspends it temporarily
    (replay runs under a pause so replaying a workload does not append
    it to itself).  Thread-safe: queries may record from any thread.
    """

    def __init__(self, capacity: int = 1024, enabled: bool = True):
        self.capacity = capacity
        self.enabled = enabled
        self._entries: deque = deque(maxlen=capacity)
        self._seq = 0
        self._lock = threading.Lock()

    def record(
        self,
        kind: str,
        query: Trajectory,
        parameter: float,
        measure: Optional[str],
        seconds: float,
        io_delta: Dict[str, int],
        result,
        generation: int,
    ) -> Optional[WorkloadEntry]:
        if not self.enabled:
            return None
        with self._lock:
            entry = WorkloadEntry(
                seq=self._seq,
                kind=kind,
                tid=query.tid,
                points=[tuple(p) for p in query.points],
                parameter=float(parameter),
                measure=measure,
                seconds=seconds,
                io_delta=dict(io_delta),
                answers=len(result.answers),
                answers_digest=answers_digest(kind, result),
                generation=generation,
            )
            self._seq += 1
            self._entries.append(entry)
            return entry

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def entries(self) -> List[WorkloadEntry]:
        with self._lock:
            return list(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    class _Paused:
        def __init__(self, recorder: "WorkloadRecorder"):
            self.recorder = recorder
            self.was_enabled = recorder.enabled

        def __enter__(self):
            self.recorder.enabled = False
            return self.recorder

        def __exit__(self, *exc):
            self.recorder.enabled = self.was_enabled

    def paused(self) -> "WorkloadRecorder._Paused":
        return WorkloadRecorder._Paused(self)

    # ------------------------------------------------------------------
    def to_json(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "capacity": self.capacity,
                "next_seq": self._seq,
                "entries": [e.to_json() for e in self._entries],
            }

    def restore_from_json(self, data: Dict[str, Any]) -> None:
        with self._lock:
            self._entries.clear()
            for raw in data.get("entries", []):
                self._entries.append(WorkloadEntry.from_json(raw))
            self._seq = int(data.get("next_seq", len(self._entries)))


# ----------------------------------------------------------------------
# Replay
# ----------------------------------------------------------------------
@dataclass
class ReplayOutcome:
    """Per-entry replay verdict."""

    entry: WorkloadEntry
    seconds: float
    answers: int
    digest: str

    @property
    def matched(self) -> bool:
        return self.digest == self.entry.answers_digest

    def to_json(self) -> Dict[str, Any]:
        return {
            "seq": self.entry.seq,
            "kind": self.entry.kind,
            "tid": self.entry.tid,
            "parameter": self.entry.parameter,
            "matched": self.matched,
            "recorded_digest": self.entry.answers_digest,
            "replayed_digest": self.digest,
            "recorded_seconds": self.entry.seconds,
            "replayed_seconds": self.seconds,
            "recorded_answers": self.entry.answers,
            "replayed_answers": self.answers,
        }


@dataclass
class ReplayReport:
    outcomes: List[ReplayOutcome] = field(default_factory=list)

    @property
    def total(self) -> int:
        return len(self.outcomes)

    @property
    def mismatches(self) -> List[ReplayOutcome]:
        return [o for o in self.outcomes if not o.matched]

    @property
    def ok(self) -> bool:
        return not self.mismatches

    def to_json(self) -> Dict[str, Any]:
        return {
            "total": self.total,
            "matched": self.total - len(self.mismatches),
            "mismatched": len(self.mismatches),
            "ok": self.ok,
            "outcomes": [o.to_json() for o in self.outcomes],
        }

    def render(self) -> str:
        lines = [
            f"replayed {self.total} queries: "
            f"{self.total - len(self.mismatches)} matched, "
            f"{len(self.mismatches)} diverged"
        ]
        for o in self.mismatches:
            lines.append(
                f"  DIVERGED seq={o.entry.seq} {o.entry.kind} "
                f"tid={o.entry.tid} param={o.entry.parameter:g}: "
                f"recorded {o.entry.answers} answers "
                f"({o.entry.answers_digest[:12]}…), replayed "
                f"{o.answers} ({o.digest[:12]}…)"
            )
        return "\n".join(lines)


def replay_workload(
    engine, entries: Optional[Iterable[WorkloadEntry]] = None
) -> ReplayReport:
    """Re-execute a captured workload in sequence order.

    Uses the engine's recorded entries by default.  The recorder is
    paused for the duration, so replays never append to the log they
    replay from; answers are digested the same way capture digested
    them and compared entry by entry.
    """
    import time

    if entries is None:
        recorder = engine.workload_recorder
        entries = recorder.entries() if recorder is not None else []
    entries = sorted(entries, key=lambda e: e.seq)
    report = ReplayReport()
    recorder = engine.workload_recorder
    ctx = recorder.paused() if recorder is not None else _null_context()
    with ctx:
        for entry in entries:
            query = entry.query()
            started = time.perf_counter()
            if entry.kind == "threshold":
                result = engine.threshold_search(
                    query, entry.parameter, measure=entry.measure
                )
            else:
                result = engine.topk_search(
                    query, int(entry.parameter), measure=entry.measure
                )
            elapsed = time.perf_counter() - started
            report.outcomes.append(
                ReplayOutcome(
                    entry=entry,
                    seconds=elapsed,
                    answers=len(result.answers),
                    digest=answers_digest(entry.kind, result),
                )
            )
    return report


class _null_context:
    def __enter__(self):
        return None

    def __exit__(self, *exc):
        return None


# ----------------------------------------------------------------------
# Persistence: TELEMETRY.json beside STORE.json
# ----------------------------------------------------------------------
TELEMETRY_FILE = "TELEMETRY.json"


def save_observability(engine, directory: str) -> None:
    """Persist the heatmap, workload log and slow-query log beside the
    store snapshot."""
    import os

    telemetry = engine.storage_telemetry
    recorder = engine.workload_recorder
    slowlog = engine.slow_query_log
    if telemetry is None and recorder is None and len(slowlog) == 0:
        return
    payload: Dict[str, Any] = {"version": 1}
    if telemetry is not None and telemetry.heatmap is not None:
        payload["heatmap"] = telemetry.heatmap.to_json()
    if recorder is not None:
        payload["workload"] = recorder.to_json()
    if len(slowlog):
        payload["slow_queries"] = slowlog.to_json()
    with open(os.path.join(directory, TELEMETRY_FILE), "w") as fh:
        json.dump(payload, fh)


def load_observability(engine, directory: str) -> bool:
    """Restore persisted telemetry into a freshly loaded engine.

    Missing file (older snapshot) or an incompatible heatmap grid (the
    store was rebuilt with different shards/buckets) degrades to the
    fresh empty state — never an error.  Returns True when anything was
    restored.
    """
    import os

    path = os.path.join(directory, TELEMETRY_FILE)
    if not os.path.exists(path):
        return False
    with open(path) as fh:
        payload = json.load(fh)
    restored = False
    telemetry = engine.storage_telemetry
    if (
        telemetry is not None
        and telemetry.heatmap is not None
        and "heatmap" in payload
    ):
        from repro.obs.heatmap import KeySpaceHeatmap

        persisted = KeySpaceHeatmap.from_json(payload["heatmap"])
        restored = telemetry.heatmap.restore_from(persisted) or restored
    recorder = engine.workload_recorder
    if recorder is not None and "workload" in payload:
        recorder.restore_from_json(payload["workload"])
        restored = True
    if "slow_queries" in payload:
        engine.slow_query_log.restore_from_json(payload["slow_queries"])
        restored = True
    return restored
