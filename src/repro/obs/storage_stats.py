"""Deep storage-engine telemetry (the layer beneath PR-3's tracing).

Two complementary halves:

* :class:`StorageTelemetry` — the **write side**: a per-table sink the
  scan and get paths feed (per-region rows scanned / returned / bytes,
  read amplification, key-space heat).  It follows the same
  thread-local discipline as :class:`~repro.kvstore.metrics.IOMetrics`:
  the parallel scan executor binds one private spawn per worker and
  merges them back in plan order, so telemetry stays exact without a
  single lock on the row loop.  Gated by
  ``TraSSConfig.storage_telemetry`` — disabled, the scan path does not
  execute one extra instruction per row, and query answers plus
  ``IOMetrics`` totals are byte-identical either way (telemetry never
  writes to ``IOMetrics`` at all).

* :func:`collect_storage_stats` / :func:`update_storage_registry` — the
  **read side**: a read-model walk over the live table (regions → LSM
  stores → SSTables → WAL totals) plus the telemetry sink, surfacing
  flush/compaction bytes & durations, seek-depth distribution, bloom
  false-positive rate, per-level run counts and read amplification
  under stable ``trass.storage.*`` dotted names.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.kvstore.metrics import (
    DURATION_BUCKETS,
    SEEK_DEPTH_BUCKETS,
    FixedBucketCounts,
)
from repro.obs.heatmap import KeySpaceHeatmap, _key_label, _stop_label

#: per-region rows_scanned distribution buckets (registry histogram)
REGION_ROWS_BUCKETS: Tuple[float, ...] = (
    10,
    100,
    1_000,
    10_000,
    100_000,
    1_000_000,
)


@dataclass
class RegionScanStats:
    """Scan-side counters for one region (keyed by its stable id)."""

    #: printable key-range label captured when first seen
    start_label: str = "-inf"
    stop_label: str = "+inf"
    scans: int = 0
    rows_scanned: int = 0
    rows_returned: int = 0
    bytes_read: int = 0
    gets: int = 0

    @property
    def read_amplification(self) -> float:
        """Rows the store touched per row that survived filtering."""
        if self.rows_returned == 0:
            return float(self.rows_scanned) if self.rows_scanned else 0.0
        return self.rows_scanned / self.rows_returned

    def merge_from(self, other: "RegionScanStats") -> None:
        self.scans += other.scans
        self.rows_scanned += other.rows_scanned
        self.rows_returned += other.rows_returned
        self.bytes_read += other.bytes_read
        self.gets += other.gets

    def to_json(self) -> Dict[str, Any]:
        return {
            "start": self.start_label,
            "stop": self.stop_label,
            "scans": self.scans,
            "rows_scanned": self.rows_scanned,
            "rows_returned": self.rows_returned,
            "bytes_read": self.bytes_read,
            "gets": self.gets,
            "read_amplification": self.read_amplification,
        }


class StorageTelemetry:
    """The per-table storage telemetry sink.

    One instance hangs off the table (``table.storage_telemetry``);
    parallel scan workers bind private :meth:`spawn`\\ s through
    ``table.bind_thread_metrics`` exactly like their ``IOMetrics``
    sinks, and the executor merges them back in plan order.
    """

    def __init__(self, heatmap: Optional[KeySpaceHeatmap] = None):
        self.heatmap = heatmap
        #: region id -> scan stats; ids are never reused, so a split
        #: retires the parent's entry rather than aliasing a daughter
        self.regions: Dict[int, RegionScanStats] = {}

    # ------------------------------------------------------------------
    def spawn(self) -> "StorageTelemetry":
        """A private empty sink for one scan worker."""
        return StorageTelemetry(
            self.heatmap.spawn() if self.heatmap is not None else None
        )

    def merge_from(self, other: "StorageTelemetry") -> None:
        for region_id, stats in other.regions.items():
            mine = self.regions.get(region_id)
            if mine is None:
                self.regions[region_id] = stats
            else:
                mine.merge_from(stats)
        if self.heatmap is not None and other.heatmap is not None:
            self.heatmap.merge_from(other.heatmap)

    # ------------------------------------------------------------------
    # Write side (called from the table's scan/get hot paths)
    # ------------------------------------------------------------------
    def region_stats(self, region) -> RegionScanStats:
        stats = self.regions.get(region.region_id)
        if stats is None:
            stats = RegionScanStats(
                start_label=_key_label(region.start_key),
                stop_label=_stop_label(region.end_key),
            )
            self.regions[region.region_id] = stats
        return stats

    def advance_tick(self) -> None:
        """One recorded query has completed; age the heat."""
        if self.heatmap is not None:
            self.heatmap.advance_tick()

    # ------------------------------------------------------------------
    # Read side
    # ------------------------------------------------------------------
    def totals(self) -> Dict[str, int]:
        scanned = sum(s.rows_scanned for s in self.regions.values())
        returned = sum(s.rows_returned for s in self.regions.values())
        return {
            "rows_scanned": scanned,
            "rows_returned": returned,
            "bytes_read": sum(s.bytes_read for s in self.regions.values()),
            "scans": sum(s.scans for s in self.regions.values()),
            "gets": sum(s.gets for s in self.regions.values()),
        }

    def region_snapshot(self) -> Dict[int, Dict[str, Any]]:
        """A plain-dict copy (for before/after diffs in EXPLAIN
        ANALYZE)."""
        return {
            region_id: stats.to_json()
            for region_id, stats in self.regions.items()
        }

    def to_json(self) -> Dict[str, Any]:
        return {
            "regions": self.region_snapshot(),
            "totals": self.totals(),
            "heatmap": (
                self.heatmap.to_json() if self.heatmap is not None else None
            ),
        }


# ----------------------------------------------------------------------
# Read-model collection over the live table
# ----------------------------------------------------------------------
def collect_storage_stats(engine) -> Dict[str, Any]:
    """The ``storage`` section of ``repro stats --json``.

    A pure read: walks regions, their LSM stores and SSTables, the WAL
    process totals and the telemetry sink, and aggregates.
    """
    table = engine.store.table
    from repro.kvstore.wal import WriteAheadLog

    runs_per_region: List[int] = []
    region_rows: List[Dict[str, Any]] = []
    gets = seek_total = 0
    flush_count = flush_bytes = 0
    compaction_count = compaction_bytes = 0
    flush_seconds = compaction_seconds = 0.0
    bloom_reads = bloom_negatives = bloom_false_positives = 0
    segment_count = segment_file_bytes = segment_logical_bytes = 0
    segment_blocks = segment_blocks_materialized = 0
    seek_hist = FixedBucketCounts(SEEK_DEPTH_BUCKETS)
    for region in table.regions:
        store = region.store
        runs_per_region.append(len(store.sstables))
        region_rows.append(
            {
                "start": _key_label(region.start_key),
                "stop": _stop_label(region.end_key),
                "rows": region.row_count,
                "runs": len(store.sstables),
                "memtable_bytes": store.memtable.approximate_size,
            }
        )
        gets += store.gets
        seek_total += store.seek_depth_total
        seek_hist.merge_from(store.seek_depth_hist)
        flush_count += store.flush_count
        flush_bytes += store.flush_bytes
        flush_seconds += store.flush_seconds
        compaction_count += store.compaction_count
        compaction_bytes += store.compaction_bytes
        compaction_seconds += store.compaction_seconds
        for run in store.sstables:
            bloom_reads += run.reads
            bloom_negatives += run.bloom_negatives
            bloom_false_positives += run.bloom_false_positives
            # Compact mmap segments (duck-detected: only they carry a
            # logical-vs-physical byte split).
            if hasattr(run, "logical_bytes"):
                segment_count += 1
                segment_file_bytes += run.size_bytes
                segment_logical_bytes += run.logical_bytes
                segment_blocks += run.num_blocks
                segment_blocks_materialized += run.blocks_materialized

    bloom_passes = bloom_reads - bloom_negatives
    io = engine.metrics.snapshot()
    returned = io["rows_returned"]
    telemetry = getattr(table, "storage_telemetry", None)
    return {
        "regions": {
            "count": table.num_regions,
            "rows": table.row_count,
            "boundaries": region_rows,
        },
        "sstables": {
            "runs_total": sum(runs_per_region),
            "runs_per_region": runs_per_region,
            "max_runs": max(runs_per_region) if runs_per_region else 0,
        },
        "segments": {
            "count": segment_count,
            "file_bytes": segment_file_bytes,
            "logical_bytes": segment_logical_bytes,
            "compression_ratio": (
                segment_logical_bytes / segment_file_bytes
                if segment_file_bytes
                else 0.0
            ),
            "blocks": segment_blocks,
            "blocks_materialized": segment_blocks_materialized,
        },
        "bloom": {
            "reads": bloom_reads,
            "negatives": bloom_negatives,
            "false_positives": bloom_false_positives,
            "false_positive_rate": (
                bloom_false_positives / bloom_passes if bloom_passes else 0.0
            ),
        },
        "seek_depth": {
            "gets": gets,
            "total": seek_total,
            "mean": (seek_total / gets) if gets else 0.0,
            "buckets": list(seek_hist.buckets),
            "counts": list(seek_hist.counts),
        },
        "flush": {
            "count": flush_count,
            "bytes": flush_bytes,
            "seconds": flush_seconds,
        },
        "compaction": {
            "count": compaction_count,
            "bytes": compaction_bytes,
            "seconds": compaction_seconds,
        },
        "wal": dict(WriteAheadLog.totals),
        "read_amplification": (
            io["rows_scanned"] / returned if returned else 0.0
        ),
        "telemetry": (
            telemetry.to_json() if telemetry is not None else None
        ),
    }


def update_storage_registry(registry, engine) -> None:
    """Refresh the ``trass.storage.*`` names from current engine state.

    Called from :func:`repro.obs.registry.update_registry_from_engine`;
    read-only, idempotent (counters are overwritten with the live
    running totals, histograms have their state replaced wholesale).
    """
    stats = collect_storage_stats(engine)

    def c(name: str, help_: str, value) -> None:
        registry.counter(name, help_).set_to(value)

    def g(name: str, help_: str, value) -> None:
        registry.gauge(name, help_).set(value)

    flush = stats["flush"]
    c("trass.storage.flush.count", "memtable flushes", flush["count"])
    c("trass.storage.flush.bytes", "bytes frozen by flushes", flush["bytes"])
    c(
        "trass.storage.flush.seconds_total",
        "seconds spent flushing",
        flush["seconds"],
    )
    compaction = stats["compaction"]
    c("trass.storage.compaction.count", "compactions run", compaction["count"])
    c(
        "trass.storage.compaction.bytes",
        "bytes rewritten by compactions",
        compaction["bytes"],
    )
    c(
        "trass.storage.compaction.seconds_total",
        "seconds spent compacting",
        compaction["seconds"],
    )
    bloom = stats["bloom"]
    c("trass.storage.bloom.reads", "SSTable point reads", bloom["reads"])
    c(
        "trass.storage.bloom.negatives",
        "reads the bloom filter short-circuited",
        bloom["negatives"],
    )
    c(
        "trass.storage.bloom.false_positives",
        "bloom passes that then missed",
        bloom["false_positives"],
    )
    g(
        "trass.storage.bloom.false_positive_rate",
        "bloom false positives over passes",
        bloom["false_positive_rate"],
    )
    wal = stats["wal"]
    c("trass.storage.wal.appends", "WAL records appended", wal["appends"])
    c("trass.storage.wal.fsyncs", "WAL fsync calls", wal["fsyncs"])
    c(
        "trass.storage.wal.bytes_appended",
        "WAL bytes appended",
        wal["bytes_appended"],
    )
    g(
        "trass.storage.runs.total",
        "SSTable runs across all regions",
        stats["sstables"]["runs_total"],
    )
    g(
        "trass.storage.runs.max_per_region",
        "deepest per-region run stack",
        stats["sstables"]["max_runs"],
    )
    g(
        "trass.storage.read_amplification",
        "rows scanned per row returned",
        stats["read_amplification"],
    )
    segments = stats["segments"]
    g(
        "trass.storage.segment.count",
        "compact mmap segments across all regions",
        segments["count"],
    )
    g(
        "trass.storage.segment.file_bytes",
        "on-disk bytes held in compact segments",
        segments["file_bytes"],
    )
    g(
        "trass.storage.segment.logical_bytes",
        "uncompressed entry bytes those segments represent",
        segments["logical_bytes"],
    )
    g(
        "trass.storage.segment.compression_ratio",
        "logical bytes per on-disk byte across segments",
        segments["compression_ratio"],
    )
    g(
        "trass.storage.segment.blocks",
        "total blocks across compact segments",
        segments["blocks"],
    )
    g(
        "trass.storage.segment.blocks_resident",
        "segment blocks currently materialised",
        segments["blocks_materialized"],
    )

    # Histograms: replace state wholesale so repeated refreshes cannot
    # double-count.
    seek = stats["seek_depth"]
    registry.histogram(
        "trass.storage.seek_depth",
        "structures consulted per LSM point read",
        buckets=SEEK_DEPTH_BUCKETS,
    ).set_state(seek["counts"], float(seek["total"]), seek["gets"])

    flush_hist = FixedBucketCounts(DURATION_BUCKETS)
    compaction_hist = FixedBucketCounts(DURATION_BUCKETS)
    for region in engine.store.table.regions:
        flush_hist.merge_from(region.store.flush_duration_hist)
        compaction_hist.merge_from(region.store.compaction_duration_hist)
    registry.histogram(
        "trass.storage.flush.duration_seconds",
        "memtable flush durations",
        buckets=DURATION_BUCKETS,
    ).set_state(*flush_hist.state())
    registry.histogram(
        "trass.storage.compaction.duration_seconds",
        "compaction durations",
        buckets=DURATION_BUCKETS,
    ).set_state(*compaction_hist.state())

    telemetry = getattr(engine.store.table, "storage_telemetry", None)
    region_hist = FixedBucketCounts(REGION_ROWS_BUCKETS)
    if telemetry is not None:
        for stats_ in telemetry.regions.values():
            region_hist.observe(stats_.rows_scanned)
        if telemetry.heatmap is not None:
            heat = telemetry.heatmap
            g(
                "trass.storage.heat.total",
                "decayed scan heat across the key space",
                heat.total_heat,
            )
            g(
                "trass.storage.heat.ticks",
                "queries recorded into the heatmap",
                heat.tick,
            )
            shard_heat = heat.shard_heat()
            if shard_heat:
                values = list(shard_heat.values())
                mean = sum(values) / len(values)
                g(
                    "trass.storage.heat.shard_skew",
                    "hottest shard heat over mean shard heat",
                    (max(values) / mean) if mean > 0 else 0.0,
                )
    registry.histogram(
        "trass.storage.region.rows_scanned",
        "per-region scanned-row distribution",
        buckets=REGION_ROWS_BUCKETS,
    ).set_state(*region_hist.state())
