"""Embedded HBase-like key-value store.

The paper instantiates TraSS on HBase; this package is the stand-in
substrate: a log-structured store with sorted memtables, immutable
SSTables, bloom filters and compaction (:mod:`lsm`), split into
key-range *regions* (:mod:`region`) behind a table facade
(:mod:`table`) that supports salted row keys, multi-range scans and
server-side filter push-down ("coprocessors").  Every read path is
instrumented (:mod:`metrics`) because the paper's central claims are
about I/O — rows scanned vs. rows returned.
"""

from repro.kvstore.metrics import IOMetrics
from repro.kvstore.rowkey import (
    encode_rowkey,
    decode_rowkey,
    encode_string_rowkey,
    decode_string_rowkey,
)
from repro.kvstore.bloom import BloomFilter
from repro.kvstore.memtable import MemTable
from repro.kvstore.sstable import SSTable
from repro.kvstore.lsm import LSMStore
from repro.kvstore.region import Region
from repro.kvstore.filters import RowFilter, AcceptAllFilter, PredicateFilter
from repro.kvstore.table import KVTable, ScanRange
from repro.kvstore.wal import WriteAheadLog
from repro.kvstore.faults import (
    ALL_CRASH_SITES,
    FaultInjector,
    FaultSchedule,
    SimulatedCrash,
)
from repro.kvstore.cache import LRUCache, CachedKVTable
from repro.kvstore.cluster import ClusterModel
from repro.kvstore.compaction import (
    CompactingLSMStore,
    CompactionPolicy,
    FullCompactionPolicy,
    SizeTieredPolicy,
)
from repro.kvstore.persistence import (
    DurableKVTable,
    load_table,
    save_table,
)

__all__ = [
    "IOMetrics",
    "encode_rowkey",
    "decode_rowkey",
    "encode_string_rowkey",
    "decode_string_rowkey",
    "BloomFilter",
    "MemTable",
    "SSTable",
    "LSMStore",
    "Region",
    "RowFilter",
    "AcceptAllFilter",
    "PredicateFilter",
    "KVTable",
    "ScanRange",
    "WriteAheadLog",
    "ALL_CRASH_SITES",
    "FaultInjector",
    "FaultSchedule",
    "SimulatedCrash",
    "LRUCache",
    "CachedKVTable",
    "ClusterModel",
    "CompactingLSMStore",
    "CompactionPolicy",
    "FullCompactionPolicy",
    "SizeTieredPolicy",
    "DurableKVTable",
    "load_table",
    "save_table",
]
