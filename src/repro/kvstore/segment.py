"""Compact mmap segments: the frozen, read-optimized run format.

A segment is an immutable sorted run — the same logical object as an
:class:`~repro.kvstore.sstable.SSTable` — persisted in a compressed
columnar layout and opened through ``mmap``:

* the file carries a **block index** (first/last key, file offset,
  length, entry count, CRC32 and logical byte size per block) plus a
  **persisted bloom filter**, so opening a segment parses only the
  index section — no entry bytes are touched;
* entry data lives in **blocks** that are materialised lazily on first
  access.  Blocks holding trajectory rows are stored columnar:
  front-coded keys, delta-encoded + quantised point coordinates
  (``np.frombuffer`` off the decompressed stream), delta-encoded DP
  representative indexes, and covering boxes *rebuilt* from the points
  (they are a pure function of points + representative indexes + box
  mode) rather than stored — the big wins behind the 3x+ footprint
  reduction;
* every block is **verified at encode time**: the writer decodes each
  block it just encoded and compares the result byte-for-byte with the
  input, falling back to a plain zlib block (and, for points, to raw
  float64) on any mismatch.  Byte-identical reads are therefore a
  construction-time guarantee, never a float-determinism argument;
* per-block CRC32 gives **block-level corruption isolation**: a flipped
  bit in one block raises :class:`~repro.exceptions.CorruptSegmentError`
  when that block is first touched, while every other block keeps
  serving.

Quantisation is lossless by *test*, not by assumption: a coordinate
column is stored as scaled integers only when ``round(x * 10^p) / 10^p``
reproduces every float64 bit-exactly (true for decimal-precision GPS
data, the common case) — otherwise the raw float64 bytes are kept.

The class duck-types the SSTable run interface (``scan`` / ``get`` /
``might_contain`` / ``min_key`` / ``max_key`` / ``size_bytes`` /
telemetry counters), so LSM merges, region scans, caches, the parallel
executor and fault injection all work over mixed run stacks unchanged.
"""

from __future__ import annotations

import bisect
import mmap
import os
import struct
import threading
import zlib
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.exceptions import CorruptSegmentError, KVStoreError
from repro.kvstore.bloom import BloomFilter
from repro.kvstore.memtable import TOMBSTONE, Entry

import numpy as np

MAGIC = b"RSG1"
VERSION = 1
_HEADER = struct.Struct(">4sBBHQQ")  # magic, version, flags, pad, count, index offset
_BLOCK_META = struct.Struct(">QIIBIQ")  # offset, length, entries, codec, crc, logical
_U32 = struct.Struct(">I")
_U16 = struct.Struct(">H")

#: block codecs
CODEC_RAW = 0  #: zlib over a plain (key, flag, value) record stream
CODEC_TRAJ = 1  #: columnar trajectory layout (see module docstring)

#: points sub-codecs inside a TRAJ block
_POINTS_QUANT = 0
_POINTS_RAW = 1

#: covering-box modes inside a TRAJ block
_BOXES_CHORD = 0  #: rebuild with OrientedBox.cover
_BOXES_MIN_AREA = 1  #: rebuild with min_area_oriented_box
_BOXES_EXPLICIT = 2  #: stored verbatim

#: trajectory-id modes inside a TRAJ block
_TID_INT_KEY = 0  #: tid is the row-key suffix (integer encoding)
_TID_STRING_KEY = 1  #: tid is the third '#' field (string encoding)
_TID_EXPLICIT = 2  #: stored verbatim

#: target uncompressed payload bytes per block.  Small blocks are what
#: make lazy materialisation selective (a cold query decodes only the
#: key ranges it scans); 16 KiB measured best on the cold
#: time-to-first-answer protocol while keeping the compression ratio
#: comfortably above the 3x gate (finer blocks reset the per-block
#: codecs too often, coarser ones decode bytes no query asked for).
DEFAULT_BLOCK_LOGICAL_BYTES = 16 * 1024

#: decimal scales tried for lossless coordinate quantisation
_QUANT_DECIMALS = (5, 6, 7, 4, 3)

_INT_KEY_PREFIX = 9  # salt byte + 8-byte big-endian index value


# ----------------------------------------------------------------------
# Small codecs
# ----------------------------------------------------------------------
def _zigzag(values: np.ndarray) -> np.ndarray:
    """Signed int64 -> unsigned zigzag (small magnitudes stay small)."""
    return ((values << 1) ^ (values >> 63)).astype(np.uint64)


def _unzigzag(values: np.ndarray) -> np.ndarray:
    v = values.astype(np.uint64)
    return ((v >> np.uint64(1)).astype(np.int64)) ^ -(
        (v & np.uint64(1)).astype(np.int64)
    )


def _transpose_compress(arr_u32: np.ndarray) -> bytes:
    """Byte-transpose a u32 array then zlib (groups similar bytes)."""
    planes = arr_u32.astype(">u4").view(np.uint8).reshape(-1, 4)
    return zlib.compress(planes.T.tobytes(), 6)


def _transpose_decompress(data: bytes, count: int) -> np.ndarray:
    planes = np.frombuffer(zlib.decompress(data), np.uint8).reshape(4, count)
    return planes.T.copy().view(">u4").reshape(count).astype(np.uint32)


def _pack_stream(raw: bytes) -> bytes:
    comp = zlib.compress(raw, 6)
    return _U32.pack(len(comp)) + comp


def _read_stream(payload: memoryview, offset: int) -> Tuple[bytes, int]:
    (comp_len,) = _U32.unpack_from(payload, offset)
    offset += 4
    raw = zlib.decompress(payload[offset : offset + comp_len])
    return raw, offset + comp_len


def _pack_raw_stream(raw: bytes) -> bytes:
    """A stream whose bytes are already compressed (length-prefixed)."""
    return _U32.pack(len(raw)) + raw


# ----------------------------------------------------------------------
# RAW block codec (arbitrary entries, tombstones included)
# ----------------------------------------------------------------------
def _encode_raw_block(keys: Sequence[bytes], values: Sequence[object]) -> bytes:
    parts: List[bytes] = []
    for key, value in zip(keys, values):
        if value is TOMBSTONE:
            parts.append(_U32.pack(len(key)) + b"\x01" + _U32.pack(0) + key)
        else:
            data = bytes(value)  # type: ignore[arg-type]
            parts.append(
                _U32.pack(len(key)) + b"\x00" + _U32.pack(len(data)) + key + data
            )
    return zlib.compress(b"".join(parts), 6)


def _decode_raw_block(
    payload: bytes, n_entries: int
) -> Tuple[List[bytes], List[object]]:
    plain = zlib.decompress(payload)
    keys: List[bytes] = []
    values: List[object] = []
    offset = 0
    for _ in range(n_entries):
        if offset + 9 > len(plain):
            raise CorruptSegmentError("segment block entry past end")
        (key_len,) = _U32.unpack_from(plain, offset)
        flag = plain[offset + 4]
        (val_len,) = _U32.unpack_from(plain, offset + 5)
        offset += 9
        if offset + key_len + val_len > len(plain):
            raise CorruptSegmentError("segment block entry past end")
        keys.append(plain[offset : offset + key_len])
        offset += key_len
        if flag:
            values.append(TOMBSTONE)
        else:
            values.append(plain[offset : offset + val_len])
            offset += val_len
    if offset != len(plain):
        raise CorruptSegmentError("trailing bytes in segment block")
    return keys, values


# ----------------------------------------------------------------------
# TRAJ block codec (columnar trajectory rows)
# ----------------------------------------------------------------------
def _split_trajectory_value(value: bytes):
    """Structurally parse one codec row blob; raises on any mismatch.

    Returns ``(points_f64, rep_u32, boxes_bytes, tid_bytes)`` where
    ``points_f64`` is the native-endian float64 copy of the point
    coordinates (in x0,y0,x1,y1,... order).
    """
    (n_points,) = _U32.unpack_from(value, 0)
    offset = 4
    if n_points == 0 or offset + 16 * n_points > len(value):
        raise KVStoreError("not a trajectory row")
    points = np.frombuffer(value, ">f8", 2 * n_points, offset).astype(np.float64)
    offset += 16 * n_points
    (n_rep,) = _U32.unpack_from(value, offset)
    offset += 4
    if offset + 4 * n_rep > len(value):
        raise KVStoreError("not a trajectory row")
    reps = np.frombuffer(value, ">u4", n_rep, offset).astype(np.uint32)
    offset += 4 * n_rep
    (n_boxes,) = _U32.unpack_from(value, offset)
    offset += 4
    if offset + 64 * n_boxes > len(value):
        raise KVStoreError("not a trajectory row")
    boxes = value[offset : offset + 64 * n_boxes]
    offset += 64 * n_boxes
    (tid_len,) = _U16.unpack_from(value, offset)
    offset += 2
    tid = value[offset : offset + tid_len]
    offset += tid_len
    if offset != len(value):
        raise KVStoreError("not a trajectory row")
    return points, reps, boxes, tid


def _tid_from_key(key: bytes, mode: int) -> Optional[bytes]:
    if mode == _TID_INT_KEY:
        return key[_INT_KEY_PREFIX:] if len(key) >= _INT_KEY_PREFIX else None
    try:
        _, _, tid = key[1:].split(b"#", 2)
    except ValueError:
        return None
    return tid


def _rebuild_boxes(points: np.ndarray, reps: np.ndarray, mode: int) -> bytes:
    """Re-derive the serialised covering boxes from points + reps.

    The boxes stored in a row are a pure function of the raw points,
    the representative indexes and the box mode (see
    ``extract_dp_features``), which is what lets a segment drop them
    from disk entirely.
    """
    if mode == _BOXES_CHORD:
        return _rebuild_chord_boxes(points, reps)
    from repro.core.codec import _pack_box
    from repro.geometry.hull import min_area_oriented_box

    pts = points.reshape(-1, 2).tolist()
    parts: List[bytes] = []
    if len(reps) == 1:
        parts.append(_pack_box(min_area_oriented_box([pts[int(reps[0])]])))
    else:
        for k in range(len(reps) - 1):
            lo, hi = int(reps[k]), int(reps[k + 1])
            parts.append(_pack_box(min_area_oriented_box(pts[lo : hi + 1])))
    return b"".join(parts)


def _cover_chords(
    pts: np.ndarray, los: np.ndarray, his: np.ndarray
) -> np.ndarray:
    """Vectorised ``OrientedBox.cover`` over many chords of ``pts``.

    ``los``/``his`` are inclusive point-index ranges, one per chord
    (``lo == hi`` is the degenerate single-point box).  Box rebuild
    dominates cold block decodes, so the per-chord scalar loop is
    replaced with one reduceat pass over all chords.  The arithmetic
    mirrors ``cover`` operation for operation — same order,
    ``math.hypot`` for the chord norm (CPython's hypot is not libm's),
    and a ``+ 0.0`` on every extent to normalise ``-0.0`` the way the
    scalar ``min(0.0, ...)``/``max(0.0, ...)`` chain does — so the
    output is bit-identical and the encoder's verification pass keeps
    choosing the compact chord mode.

    Returns an ``(n_chords, 8)`` float64 array in ``_pack_box`` field
    order.
    """
    import math

    first = pts[los]
    delta = pts[his] - first
    norms = np.array(
        [math.hypot(dx, dy) for dx, dy in delta.tolist()], dtype=np.float64
    )
    zero = norms == 0.0
    safe = np.where(zero, 1.0, norms)
    ux = np.where(zero, 1.0, delta[:, 0] / safe)
    uy = np.where(zero, 0.0, delta[:, 1] / safe)
    chord = np.where(zero, 0.0, norms)

    lengths = his - los + 1
    starts = np.cumsum(lengths) - lengths
    cid = np.repeat(np.arange(len(los)), lengths)
    idx = np.arange(int(lengths.sum())) - starts[cid] + los[cid]
    rx = pts[idx, 0] - first[cid, 0]
    ry = pts[idx, 1] - first[cid, 1]
    along = rx * ux[cid] + ry * uy[cid]
    perp = -rx * uy[cid] + ry * ux[cid]

    boxes = np.empty((len(los), 8), dtype=np.float64)
    boxes[:, 0] = first[:, 0]
    boxes[:, 1] = first[:, 1]
    boxes[:, 2] = ux
    boxes[:, 3] = uy
    boxes[:, 4] = np.maximum(np.maximum.reduceat(along, starts), chord) + 0.0
    boxes[:, 5] = np.minimum.reduceat(along, starts) + 0.0
    boxes[:, 6] = np.minimum.reduceat(perp, starts) + 0.0
    boxes[:, 7] = np.maximum.reduceat(perp, starts) + 0.0
    return boxes


def _rebuild_chord_boxes(points: np.ndarray, reps: np.ndarray) -> bytes:
    """Chord-mode box rebuild for a single row (see ``_cover_chords``)."""
    pts = points.reshape(-1, 2)
    reps64 = reps.astype(np.int64)
    if len(reps64) == 1:
        los = his = reps64
    else:
        los, his = reps64[:-1], reps64[1:]
    return _cover_chords(pts, los, his).astype(">f8").tobytes()


def _choose_quantisation(flat: np.ndarray) -> Optional[Tuple[int, np.ndarray]]:
    """Smallest decimal scale that round-trips every float bit-exactly.

    Returns ``(decimals, int64 quantised values)`` or ``None`` when the
    data is not decimal-precision (full-entropy floats stay raw).
    """
    if len(flat) == 0:
        return None
    if not np.all(np.isfinite(flat)):
        return None
    for decimals in sorted(_QUANT_DECIMALS):
        scale = float(10.0**decimals)
        q = np.round(flat * scale)
        if np.any(np.abs(q) >= 2.0**53):
            continue
        qi = q.astype(np.int64)
        back = qi.astype(np.float64) / scale
        # Bit-level comparison: -0.0/NaN oddities must not slip through.
        if np.array_equal(back.view(np.int64), flat.view(np.int64)):
            return decimals, qi
    return None


def _encode_points_stream(
    all_points: np.ndarray,
) -> Tuple[int, int, bytes]:
    """Encode the concatenated coordinate column.

    Quantised path: per-axis delta over the whole block (row boundaries
    ignored — the decoder cumsums globally), zigzag to u32, byte
    transpose, zlib.  Raw path: the big-endian float64 bytes, zlib.
    Returns ``(sub_codec, decimals, stream_bytes)``.
    """
    chosen = _choose_quantisation(all_points)
    if chosen is not None:
        decimals, qi = chosen
        pairs = qi.reshape(-1, 2)
        deltas = np.empty_like(pairs)
        deltas[0] = pairs[0]
        np.subtract(pairs[1:], pairs[:-1], out=deltas[1:])
        zz = _zigzag(deltas.reshape(-1))
        if np.all(zz < 2**32):
            stream = _pack_raw_stream(_transpose_compress(zz.astype(np.uint32)))
            return _POINTS_QUANT, decimals, stream
    raw = all_points.astype(">f8").tobytes()
    return _POINTS_RAW, 0, _pack_stream(raw)


def _decode_points_stream(
    payload: memoryview, offset: int, sub_codec: int, decimals: int, n_total: int
) -> Tuple[np.ndarray, int]:
    """Inverse of :func:`_encode_points_stream` -> (flat float64, offset)."""
    if sub_codec == _POINTS_QUANT:
        (comp_len,) = _U32.unpack_from(payload, offset)
        offset += 4
        zz = _transpose_decompress(
            payload[offset : offset + comp_len], 2 * n_total
        )
        offset += comp_len
        deltas = _unzigzag(zz).reshape(-1, 2)
        qi = np.cumsum(deltas, axis=0, dtype=np.int64)
        scale = float(10.0**decimals)
        return qi.reshape(-1).astype(np.float64) / scale, offset
    raw, offset = _read_stream(payload, offset)
    return np.frombuffer(raw, ">f8", 2 * n_total).astype(np.float64), offset


def _encode_traj_block(
    keys: Sequence[bytes],
    values: Sequence[bytes],
    box_mode: int,
    tid_mode: int,
    rows,
) -> bytes:
    n_rows = len(keys)
    # --- keys: front-coded -------------------------------------------
    key_parts: List[bytes] = []
    prev = b""
    for key in keys:
        shared = 0
        limit = min(len(prev), len(key))
        while shared < limit and prev[shared] == key[shared]:
            shared += 1
        suffix = key[shared:]
        key_parts.append(_U32.pack(shared) + _U32.pack(len(suffix)) + suffix)
        prev = key
    keys_stream = _pack_stream(b"".join(key_parts))

    # --- per-row counts ----------------------------------------------
    n_points = np.fromiter(
        (len(r[0]) // 2 for r in rows), np.uint32, count=n_rows
    )
    n_rep = np.fromiter((len(r[1]) for r in rows), np.uint32, count=n_rows)
    counts_stream = _pack_raw_stream(
        _transpose_compress(np.concatenate([n_points, n_rep]))
    )

    # --- points -------------------------------------------------------
    all_points = (
        np.concatenate([r[0] for r in rows])
        if n_rows
        else np.zeros(0, np.float64)
    )
    points_codec, decimals, points_stream = _encode_points_stream(all_points)

    # --- representative indexes: per-row first + positive deltas ------
    rep_parts: List[np.ndarray] = []
    for r in rows:
        reps = r[1].astype(np.int64)
        if len(reps):
            deltas = np.empty(len(reps), np.int64)
            deltas[0] = reps[0]
            np.subtract(reps[1:], reps[:-1], out=deltas[1:])
            rep_parts.append(deltas)
    rep_flat = (
        np.concatenate(rep_parts) if rep_parts else np.zeros(0, np.int64)
    )
    if np.any(rep_flat < 0) or np.any(rep_flat >= 2**32):
        raise KVStoreError("representative indexes not delta-encodable")
    reps_stream = _pack_raw_stream(
        _transpose_compress(rep_flat.astype(np.uint32))
    )

    # --- boxes (only when not rebuildable) ----------------------------
    if box_mode == _BOXES_EXPLICIT:
        n_boxes = np.fromiter(
            (len(r[2]) // 64 for r in rows), np.uint32, count=n_rows
        )
        boxes_stream = _pack_raw_stream(
            _transpose_compress(n_boxes)
        ) + _pack_stream(b"".join(r[2] for r in rows))
    else:
        boxes_stream = b""

    # --- trajectory ids (only when not derivable from keys) -----------
    if tid_mode == _TID_EXPLICIT:
        tids_stream = _pack_stream(
            b"".join(_U32.pack(len(r[3])) + r[3] for r in rows)
        )
    else:
        tids_stream = b""

    header = struct.pack(
        ">IBBBB", n_rows, points_codec, decimals, box_mode, tid_mode
    )
    return (
        header
        + keys_stream
        + counts_stream
        + points_stream
        + reps_stream
        + boxes_stream
        + tids_stream
    )


def _decode_traj_block(
    payload_bytes: bytes, n_entries: int
) -> Tuple[List[bytes], List[object]]:
    payload = memoryview(payload_bytes)
    try:
        n_rows, points_codec, decimals, box_mode, tid_mode = struct.unpack_from(
            ">IBBBB", payload, 0
        )
        offset = 8
        if n_rows != n_entries:
            raise CorruptSegmentError("segment block row count mismatch")

        keys_raw, offset = _read_stream(payload, offset)
        keys: List[bytes] = []
        prev = b""
        key_off = 0
        for _ in range(n_rows):
            prefix_len, suffix_len = struct.unpack_from(">II", keys_raw, key_off)
            key_off += 8
            key = prev[:prefix_len] + keys_raw[key_off : key_off + suffix_len]
            key_off += suffix_len
            keys.append(key)
            prev = key

        (comp_len,) = _U32.unpack_from(payload, offset)
        offset += 4
        counts = _transpose_decompress(
            payload[offset : offset + comp_len], 2 * n_rows
        )
        offset += comp_len
        n_points = counts[:n_rows].astype(np.int64)
        n_rep = counts[n_rows:].astype(np.int64)
        n_total = int(n_points.sum())

        flat_points, offset = _decode_points_stream(
            payload, offset, points_codec, decimals, n_total
        )
        point_bytes = flat_points.astype(">f8").tobytes()
        point_offsets = np.zeros(n_rows + 1, np.int64)
        np.cumsum(n_points, out=point_offsets[1:])

        (comp_len,) = _U32.unpack_from(payload, offset)
        offset += 4
        total_rep = int(n_rep.sum())
        rep_deltas = _transpose_decompress(
            payload[offset : offset + comp_len], total_rep
        ).astype(np.int64)
        offset += comp_len
        rep_offsets = np.zeros(n_rows + 1, np.int64)
        np.cumsum(n_rep, out=rep_offsets[1:])
        # Segmented cumsum: per-row representative indexes restored from
        # their deltas in one pass over the whole block.
        rep_running = np.cumsum(rep_deltas)
        rep_all = rep_running - np.repeat(
            rep_running[rep_offsets[:-1]] - rep_deltas[rep_offsets[:-1]],
            n_rep,
        )

        if box_mode == _BOXES_EXPLICIT:
            (comp_len,) = _U32.unpack_from(payload, offset)
            offset += 4
            n_boxes = _transpose_decompress(
                payload[offset : offset + comp_len], n_rows
            ).astype(np.int64)
            offset += comp_len
            boxes_raw, offset = _read_stream(payload, offset)
            box_offsets = np.zeros(n_rows + 1, np.int64)
            np.cumsum(n_boxes, out=box_offsets[1:])
        else:
            boxes_raw = b""
            box_offsets = None

        if tid_mode == _TID_EXPLICIT:
            tids_raw, offset = _read_stream(payload, offset)
        else:
            tids_raw = b""
        if offset != len(payload):
            raise CorruptSegmentError("trailing bytes in segment block")

        if box_mode == _BOXES_CHORD and n_rows:
            # One vectorised cover pass over every chord in the block
            # (per-row numpy calls dominate decode otherwise).  Chords
            # never cross rows, so row-local rep indexes shift to
            # global point indexes and slice back apart afterwards.
            n_chords = np.where(n_rep > 1, n_rep - 1, 1)
            chord_offsets = np.zeros(n_rows + 1, np.int64)
            np.cumsum(n_chords, out=chord_offsets[1:])
            row_of = np.repeat(np.arange(n_rows), n_chords)
            k = np.arange(int(chord_offsets[-1])) - chord_offsets[:-1][row_of]
            lo_idx = rep_offsets[:-1][row_of] + k
            hi_idx = np.minimum(lo_idx + 1, rep_offsets[1:][row_of] - 1)
            rep_global = rep_all + np.repeat(point_offsets[:-1], n_rep)
            chord_boxes = _cover_chords(
                flat_points.reshape(-1, 2),
                rep_global[lo_idx],
                rep_global[hi_idx],
            ).astype(">f8").tobytes()
        else:
            chord_boxes = b""
            chord_offsets = None

        values: List[object] = []
        tid_off = 0
        for i in range(n_rows):
            p_lo, p_hi = int(point_offsets[i]), int(point_offsets[i + 1])
            row_points = flat_points[2 * p_lo : 2 * p_hi]
            r_lo, r_hi = int(rep_offsets[i]), int(rep_offsets[i + 1])
            reps = rep_all[r_lo:r_hi]
            if tid_mode == _TID_EXPLICIT:
                (tid_len,) = _U32.unpack_from(tids_raw, tid_off)
                tid_off += 4
                tid = tids_raw[tid_off : tid_off + tid_len]
                tid_off += tid_len
            else:
                tid = _tid_from_key(keys[i], tid_mode)
                if tid is None:
                    raise CorruptSegmentError(
                        "segment row key does not carry its trajectory id"
                    )
            if box_mode == _BOXES_EXPLICIT:
                boxes = boxes_raw[
                    64 * int(box_offsets[i]) : 64 * int(box_offsets[i + 1])
                ]
            elif box_mode == _BOXES_CHORD:
                boxes = chord_boxes[
                    64 * int(chord_offsets[i]) : 64 * int(chord_offsets[i + 1])
                ]
            else:
                boxes = _rebuild_boxes(row_points, reps, box_mode)
            values.append(
                _U32.pack(p_hi - p_lo)
                + point_bytes[16 * p_lo : 16 * p_hi]
                + _U32.pack(r_hi - r_lo)
                + reps.astype(">u4").tobytes()
                + _U32.pack(len(boxes) // 64)
                + boxes
                + _U16.pack(len(tid))
                + tid
            )
        return keys, values
    except CorruptSegmentError:
        raise
    except Exception as exc:
        raise CorruptSegmentError(f"corrupt segment block: {exc}") from exc


def _decode_block(
    codec: int, payload: bytes, n_entries: int
) -> Tuple[List[bytes], List[object]]:
    if codec == CODEC_RAW:
        return _decode_raw_block(payload, n_entries)
    if codec == CODEC_TRAJ:
        return _decode_traj_block(payload, n_entries)
    raise CorruptSegmentError(f"unknown segment block codec {codec}")


def _encode_block(
    keys: Sequence[bytes], values: Sequence[object]
) -> Tuple[int, bytes]:
    """Encode one block, choosing the best codec that verifies.

    The TRAJ encode is attempted with progressively weaker assumptions
    (rebuildable chord boxes -> min-area boxes -> explicit boxes), and
    every candidate payload is decoded and compared byte-for-byte with
    the input before being accepted; anything that fails drops to the
    RAW codec, which round-trips arbitrary bytes by construction.
    """
    if all(value is not TOMBSTONE for value in values):
        try:
            rows = [_split_trajectory_value(v) for v in values]  # type: ignore[arg-type]
        except (KVStoreError, struct.error):
            rows = None
        if rows is not None:
            tid_mode = _TID_EXPLICIT
            for mode in (_TID_INT_KEY, _TID_STRING_KEY):
                if all(
                    _tid_from_key(k, mode) == r[3]
                    for k, r in zip(keys, rows)
                ):
                    tid_mode = mode
                    break
            box_modes = [_BOXES_CHORD, _BOXES_MIN_AREA, _BOXES_EXPLICIT]
            for box_mode in box_modes:
                try:
                    if box_mode != _BOXES_EXPLICIT and not all(
                        _rebuild_boxes(r[0], r[1].astype(np.int64), box_mode)
                        == r[2]
                        for r in rows
                    ):
                        continue
                    payload = _encode_traj_block(
                        keys, values, box_mode, tid_mode, rows
                    )
                    got_keys, got_values = _decode_traj_block(
                        payload, len(keys)
                    )
                    if got_keys == list(keys) and got_values == list(values):
                        return CODEC_TRAJ, payload
                except Exception:
                    continue
    return CODEC_RAW, _encode_raw_block(keys, values)


# ----------------------------------------------------------------------
# Writer
# ----------------------------------------------------------------------
def build_segment_bytes(
    entries: Iterable[Entry],
    block_logical_bytes: Optional[int] = None,
) -> bytes:
    """Serialise sorted ``(key, value | TOMBSTONE)`` entries to a segment.

    Entries must arrive in strictly increasing key order (the order
    every run scan produces).

    ``block_logical_bytes`` defaults to ``DEFAULT_BLOCK_LOGICAL_BYTES``
    at call time (late-bound so the knob is patchable in experiments).
    """
    if block_logical_bytes is None:
        block_logical_bytes = DEFAULT_BLOCK_LOGICAL_BYTES
    keys: List[bytes] = []
    values: List[object] = []
    for key, value in entries:
        key = bytes(key)
        if keys and keys[-1] >= key:
            raise KVStoreError(
                f"segment entries out of order at key {key!r}"
            )
        keys.append(key)
        values.append(value if value is TOMBSTONE else bytes(value))

    bloom = BloomFilter(max(1, len(keys)))
    for key in keys:
        bloom.add(key)

    blocks: List[bytes] = []
    metas: List[bytes] = []
    offset = _HEADER.size
    lo = 0
    while lo < len(keys):
        logical = 0
        hi = lo
        while hi < len(keys) and (hi == lo or logical < block_logical_bytes):
            logical += len(keys[hi])
            if values[hi] is not TOMBSTONE:
                logical += len(values[hi])  # type: ignore[arg-type]
            hi += 1
        codec, payload = _encode_block(keys[lo:hi], values[lo:hi])
        metas.append(
            _BLOCK_META.pack(
                offset,
                len(payload),
                hi - lo,
                codec,
                zlib.crc32(payload),
                logical,
            )
            + _U32.pack(len(keys[lo]))
            + keys[lo]
            + _U32.pack(len(keys[hi - 1]))
            + keys[hi - 1]
        )
        blocks.append(payload)
        offset += len(payload)
        lo = hi

    bloom_bytes = bloom.to_bytes()
    index = (
        _U32.pack(len(metas))
        + b"".join(metas)
        + _U32.pack(len(bloom_bytes))
        + bloom_bytes
    )
    index += _U32.pack(zlib.crc32(index))
    header = _HEADER.pack(MAGIC, VERSION, 0, 0, len(keys), offset)
    return header + b"".join(blocks) + index


def write_segment(
    path: str,
    entries: Iterable[Entry],
    block_logical_bytes: Optional[int] = None,
) -> "Segment":
    """Write a segment file and open it (mmap-backed)."""
    data = build_segment_bytes(entries, block_logical_bytes)
    with open(path, "wb") as fh:
        fh.write(data)
    return Segment.open(path)


# ----------------------------------------------------------------------
# Reader
# ----------------------------------------------------------------------
class _BlockMeta:
    __slots__ = (
        "offset",
        "length",
        "n_entries",
        "codec",
        "crc",
        "logical_bytes",
        "first_key",
        "last_key",
    )

    def __init__(self, offset, length, n_entries, codec, crc, logical, first, last):
        self.offset = offset
        self.length = length
        self.n_entries = n_entries
        self.codec = codec
        self.crc = crc
        self.logical_bytes = logical
        self.first_key = first
        self.last_key = last


class Segment:
    """An immutable mmap-backed compact run (SSTable-duck-compatible).

    Opening parses only the header, block index and bloom filter; entry
    blocks are decoded lazily on first touch and cached, so a query
    that scans three blocks of a thousand-block segment pays for three.
    ``size_bytes`` is the real on-disk footprint (the file size), and
    ``logical_bytes`` the uncompressed entry payload it represents —
    their ratio is the compression the advisor and registry report.
    """

    def __init__(self, path: str, fileobj, mm: mmap.mmap):
        self.path = path
        self._file = fileobj
        self._mmap = mm
        self._view = memoryview(mm)
        #: decoded block cache: index -> (keys, values)
        self._blocks: dict = {}
        self._lock = threading.Lock()
        # Run-level telemetry, same names as SSTable's.
        self.reads = 0
        self.bloom_negatives = 0
        self.bloom_false_positives = 0
        #: blocks decoded so far / physical + logical bytes they cost
        self.blocks_materialized = 0
        self.bytes_compressed_read = 0
        self.bytes_logical_read = 0
        #: optional zero-arg callable returning the owning table's
        #: thread-local :class:`~repro.kvstore.metrics.IOMetrics` sink
        self.metrics_provider = None

        try:
            self._parse(path)
        except Exception:
            # The exception traceback keeps this frame (and ``self``)
            # alive, so the exported memoryview must be released here
            # or the caller's ``mmap.close()`` hits BufferError.
            self._view.release()
            raise

    def _parse(self, path: str) -> None:
        data = self._view
        if len(data) < _HEADER.size + 4:
            raise CorruptSegmentError(f"segment file truncated: {path}")
        magic, version, _flags, _pad, count, index_offset = _HEADER.unpack_from(
            data, 0
        )
        if magic != MAGIC:
            raise CorruptSegmentError(f"bad segment magic {bytes(magic)!r}")
        if version != VERSION:
            raise CorruptSegmentError(f"unsupported segment version {version}")
        if index_offset + 8 > len(data):
            raise CorruptSegmentError("segment index offset past end of file")
        index = bytes(data[index_offset:-4])
        (index_crc,) = _U32.unpack_from(data, len(data) - 4)
        if zlib.crc32(index) != index_crc:
            raise CorruptSegmentError("segment index checksum mismatch")

        self.entry_count = count
        self._metas: List[_BlockMeta] = []
        try:
            (n_blocks,) = _U32.unpack_from(index, 0)
            pos = 4
            for _ in range(n_blocks):
                offset, length, n_entries, codec, crc, logical = (
                    _BLOCK_META.unpack_from(index, pos)
                )
                pos += _BLOCK_META.size
                (first_len,) = _U32.unpack_from(index, pos)
                pos += 4
                first = index[pos : pos + first_len]
                pos += first_len
                (last_len,) = _U32.unpack_from(index, pos)
                pos += 4
                last = index[pos : pos + last_len]
                pos += last_len
                if offset + length > index_offset:
                    raise CorruptSegmentError(
                        "segment block extends into the index"
                    )
                self._metas.append(
                    _BlockMeta(
                        offset, length, n_entries, codec, crc, logical, first, last
                    )
                )
            (bloom_len,) = _U32.unpack_from(index, pos)
            pos += 4
            self.bloom = BloomFilter.from_bytes(index[pos : pos + bloom_len])
            pos += bloom_len
            if pos != len(index):
                raise CorruptSegmentError("trailing bytes in segment index")
        except (struct.error, KVStoreError) as exc:
            raise CorruptSegmentError(f"corrupt segment index: {exc}") from exc
        if sum(m.n_entries for m in self._metas) != count:
            raise CorruptSegmentError("segment entry count mismatch")
        self._first_keys = [m.first_key for m in self._metas]
        self.size_bytes = len(data)
        self.logical_bytes = sum(m.logical_bytes for m in self._metas)

    # ------------------------------------------------------------------
    @staticmethod
    def open(path: str, metrics_provider=None) -> "Segment":
        fh = open(path, "rb")
        try:
            size = os.fstat(fh.fileno()).st_size
            if size == 0:
                raise CorruptSegmentError(f"segment file empty: {path}")
            mm = mmap.mmap(fh.fileno(), 0, access=mmap.ACCESS_READ)
        except Exception:
            fh.close()
            raise
        try:
            segment = Segment(path, fh, mm)
        except Exception:
            mm.close()
            fh.close()
            raise
        segment.metrics_provider = metrics_provider
        return segment

    def close(self) -> None:
        self._blocks.clear()
        try:
            self._view.release()
            self._mmap.close()
        finally:
            self._file.close()

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self.entry_count

    @property
    def num_blocks(self) -> int:
        return len(self._metas)

    @property
    def min_key(self) -> Optional[bytes]:
        return self._metas[0].first_key if self._metas else None

    @property
    def max_key(self) -> Optional[bytes]:
        return self._metas[-1].last_key if self._metas else None

    @property
    def compression_ratio(self) -> float:
        return self.logical_bytes / self.size_bytes if self.size_bytes else 0.0

    # ------------------------------------------------------------------
    def _block(self, i: int) -> Tuple[List[bytes], List[object]]:
        """Materialise block ``i`` (CRC-checked, decoded, cached)."""
        cached = self._blocks.get(i)
        if cached is not None:
            return cached
        with self._lock:
            cached = self._blocks.get(i)
            if cached is not None:
                return cached
            meta = self._metas[i]
            payload = bytes(
                self._view[meta.offset : meta.offset + meta.length]
            )
            if zlib.crc32(payload) != meta.crc:
                raise CorruptSegmentError(
                    f"segment block {i} checksum mismatch in {self.path}"
                )
            block = _decode_block(meta.codec, payload, meta.n_entries)
            self._blocks[i] = block
            self.blocks_materialized += 1
            self.bytes_compressed_read += meta.length
            self.bytes_logical_read += meta.logical_bytes
            provider = self.metrics_provider
            if provider is not None:
                metrics = provider()
                metrics.segment_blocks_materialized += 1
                metrics.segment_bytes_compressed += meta.length
                metrics.segment_bytes_logical += meta.logical_bytes
            return block

    def _block_index_for(self, key: bytes) -> int:
        """Index of the block that could hold ``key`` (or -1)."""
        i = bisect.bisect_right(self._first_keys, key) - 1
        if i < 0 or key > self._metas[i].last_key:
            return -1
        return i

    # ------------------------------------------------------------------
    def get(self, key: bytes) -> Optional[object]:
        """Value, ``TOMBSTONE``, or ``None``; bloom-gated block probe."""
        key = bytes(key)
        self.reads += 1
        if not self.bloom.might_contain(key):
            self.bloom_negatives += 1
            return None
        i = self._block_index_for(key)
        if i >= 0:
            keys, values = self._block(i)
            j = bisect.bisect_left(keys, key)
            if j < len(keys) and keys[j] == key:
                return values[j]
        self.bloom_false_positives += 1
        return None

    def might_contain(self, key: bytes) -> bool:
        return self.bloom.might_contain(bytes(key))

    def scan(
        self, start: Optional[bytes] = None, stop: Optional[bytes] = None
    ) -> Iterator[Entry]:
        """Entries with ``start <= key < stop``, tombstones included.

        Only blocks overlapping the range are materialised.
        """
        if not self._metas:
            return
        lo_block = 0
        if start is not None:
            start = bytes(start)
            lo_block = max(0, bisect.bisect_right(self._first_keys, start) - 1)
        if stop is not None:
            stop = bytes(stop)
        for i in range(lo_block, len(self._metas)):
            meta = self._metas[i]
            if stop is not None and meta.first_key >= stop:
                return
            if start is not None and meta.last_key < start:
                continue
            keys, values = self._block(i)
            lo = 0 if start is None else bisect.bisect_left(keys, start)
            hi = len(keys) if stop is None else bisect.bisect_left(keys, stop)
            for j in range(lo, hi):
                yield keys[j], values[j]

    def overlaps_range(
        self, start: Optional[bytes], stop: Optional[bytes]
    ) -> bool:
        if not self._metas:
            return False
        if start is not None and self.max_key < start:
            return False
        if stop is not None and self.min_key >= stop:
            return False
        return True
