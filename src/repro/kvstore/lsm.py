"""Log-structured merge store: one memtable over a stack of SSTables.

Writes land in the memtable; when it exceeds ``flush_threshold`` bytes
it is frozen into an SSTable.  Reads merge the memtable and all tables
newest-first so fresher versions (and tombstones) shadow older ones.
When the table count passes ``compaction_trigger`` every run is merged
into one, dropping shadowed versions and tombstones — size-tiered
compaction in its simplest honest form.
"""

from __future__ import annotations

import heapq
import time
from typing import Iterator, List, Optional, Tuple

from repro.kvstore.memtable import TOMBSTONE, Entry, MemTable
from repro.kvstore.metrics import (
    DURATION_BUCKETS,
    SEEK_DEPTH_BUCKETS,
    FixedBucketCounts,
)
from repro.kvstore.sstable import SSTable


class LSMStore:
    """An embedded LSM tree over byte keys and byte values."""

    def __init__(
        self,
        flush_threshold: int = 4 * 1024 * 1024,
        compaction_trigger: int = 8,
    ):
        self.flush_threshold = flush_threshold
        self.compaction_trigger = compaction_trigger
        self.memtable = MemTable()
        #: newest first
        self.sstables: List[SSTable] = []
        self.flush_count = 0
        self.compaction_count = 0
        #: optional FaultInjector consulted at the flush crash points
        self.fault_injector = None
        # ------------------------------------------------------------------
        # Storage-engine telemetry.  Always-on local counters, like
        # ``flush_count`` above: they never touch ``IOMetrics`` and cost
        # a handful of integer adds, so query answers and I/O accounting
        # are byte-identical whether or not anyone reads them.
        # ------------------------------------------------------------------
        #: point reads served by this store
        self.gets = 0
        #: total structures consulted across all point reads
        self.seek_depth_total = 0
        #: seek-depth distribution (1 = memtable hit)
        self.seek_depth_hist = FixedBucketCounts(SEEK_DEPTH_BUCKETS)
        #: payload bytes frozen into SSTables by flushes
        self.flush_bytes = 0
        #: wall seconds spent in flushes
        self.flush_seconds = 0.0
        self.flush_duration_hist = FixedBucketCounts(DURATION_BUCKETS)
        #: payload bytes rewritten by compactions
        self.compaction_bytes = 0
        #: wall seconds spent in compactions
        self.compaction_seconds = 0.0
        self.compaction_duration_hist = FixedBucketCounts(DURATION_BUCKETS)

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def put(self, key: bytes, value: bytes) -> None:
        self.memtable.put(key, value)
        self._maybe_flush()

    def delete(self, key: bytes) -> None:
        self.memtable.delete(key)
        self._maybe_flush()

    def _maybe_flush(self) -> None:
        if self.memtable.approximate_size >= self.flush_threshold:
            self.flush()

    def flush(self) -> None:
        """Freeze the memtable into a new SSTable (no-op when empty).

        A crash between the two ``memtable.flush`` crash points loses
        only in-memory state — durability always comes from the WAL +
        checkpoint pair, which is exactly what the crash-recovery suite
        demonstrates by killing the process here.
        """
        if len(self.memtable) == 0:
            return
        if self.fault_injector is not None:
            from repro.kvstore.faults import CRASH_MEMTABLE_FLUSH_PRE

            self.fault_injector.crash_point(CRASH_MEMTABLE_FLUSH_PRE)
        started = time.perf_counter()
        run = SSTable.from_entries(self.memtable.items())
        self.sstables.insert(0, run)
        self.memtable = MemTable()
        self.flush_count += 1
        self._record_flush(run.size_bytes, time.perf_counter() - started)
        if self.fault_injector is not None:
            from repro.kvstore.faults import CRASH_MEMTABLE_FLUSH_POST

            self.fault_injector.crash_point(CRASH_MEMTABLE_FLUSH_POST)
        if len(self.sstables) >= self.compaction_trigger:
            self.compact()

    def compact(self) -> None:
        """Merge every run into one, dropping shadowed versions and
        tombstones (a full compaction may drop tombstones safely)."""
        if len(self.sstables) <= 1 and len(self.memtable) == 0:
            return
        started = time.perf_counter()
        merged = [
            (key, value)
            for key, value in self._merged_entries(None, None)
            if value is not TOMBSTONE
        ]
        self.memtable = MemTable()
        self.sstables = [SSTable.from_entries(merged)] if merged else []
        self.compaction_count += 1
        self._record_compaction(
            self.sstables[0].size_bytes if self.sstables else 0,
            time.perf_counter() - started,
        )

    # ------------------------------------------------------------------
    # Telemetry recording (shared with CompactingLSMStore)
    # ------------------------------------------------------------------
    def _record_flush(self, nbytes: int, seconds: float) -> None:
        self.flush_bytes += nbytes
        self.flush_seconds += seconds
        self.flush_duration_hist.observe(seconds)

    def _record_compaction(self, nbytes: int, seconds: float) -> None:
        self.compaction_bytes += nbytes
        self.compaction_seconds += seconds
        self.compaction_duration_hist.observe(seconds)

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def get(self, key: bytes) -> Optional[bytes]:
        """Newest visible value for ``key`` or ``None``.

        Seek depth — how many structures the read consulted before
        resolving (memtable counts as one, each SSTable one more) — is
        the per-read face of read amplification and feeds the
        ``trass.storage.seek_depth`` histogram.
        """
        self.gets += 1
        depth = 1
        found = self.memtable.get(key)
        if found is not None:
            self._record_seek(depth)
            return None if found is TOMBSTONE else found  # type: ignore[return-value]
        for table in self.sstables:
            depth += 1
            found = table.get(key)
            if found is not None:
                self._record_seek(depth)
                return None if found is TOMBSTONE else found  # type: ignore[return-value]
        self._record_seek(depth)
        return None

    def _record_seek(self, depth: int) -> None:
        self.seek_depth_total += depth
        self.seek_depth_hist.observe(depth)

    def _merged_entries(
        self, start: Optional[bytes], stop: Optional[bytes]
    ) -> Iterator[Entry]:
        """K-way merge of all runs, newest version per key, tombstones
        still present (dropped by :meth:`scan`)."""
        sources: List[Iterator[Entry]] = [self.memtable.scan(start, stop)]
        sources.extend(t.scan(start, stop) for t in self.sstables)
        # Heap items: (key, source priority, tiebreak, value, source iter).
        # Lower priority = newer source, so the first item popped for a
        # key is the authoritative version.
        heap: List[Tuple[bytes, int, object, Iterator[Entry]]] = []
        for priority, source in enumerate(sources):
            for key, value in source:
                heap.append((key, priority, value, source))
                break
        heapq.heapify(heap)
        last_key: Optional[bytes] = None
        while heap:
            key, priority, value, source = heapq.heappop(heap)
            for next_key, next_value in source:
                heapq.heappush(heap, (next_key, priority, next_value, source))
                break
            if key == last_key:
                continue  # older version shadowed
            last_key = key
            yield key, value

    def scan(
        self, start: Optional[bytes] = None, stop: Optional[bytes] = None
    ) -> Iterator[Tuple[bytes, bytes]]:
        """Visible entries with ``start <= key < stop``, key order."""
        for key, value in self._merged_entries(start, stop):
            if value is not TOMBSTONE:
                yield key, value  # type: ignore[misc]

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        """Number of visible entries (requires a scan; diagnostic)."""
        return sum(1 for _ in self.scan())

    @property
    def approximate_size(self) -> int:
        """Payload bytes across the memtable and every run."""
        return self.memtable.approximate_size + sum(
            t.size_bytes for t in self.sstables
        )

    def entries(self) -> Iterator[Tuple[bytes, bytes]]:
        """Alias of a full :meth:`scan` (used by region splits)."""
        return self.scan()
