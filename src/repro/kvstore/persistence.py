"""Table persistence: save/load a :class:`KVTable` as a directory.

Layout::

    <dir>/MANIFEST.json            table metadata + region boundaries
    <dir>/region-GGGGG-00000.sst   one compacted SSTable per region,
                                   named by checkpoint *generation*
    <dir>/wal.log                  mutation log for writes after the
                                   snapshot

``save_table`` snapshots each region into an SSTable file;
``load_table`` restores the regions and replays any WAL tail, giving
the embedded store the full HBase durability story in miniature:
snapshot + log = recoverable state.

Crash-safety of the checkpoint itself (the hardening a real kill
demands):

* region files are written under a fresh generation number — a
  checkpoint never overwrites the files the current manifest points at,
  so dying mid-write leaves the previous snapshot fully intact;
* the manifest is written to a temporary file, fsynced, then atomically
  ``os.replace``\\ d into place — readers see either the old or the new
  manifest, never a torn one;
* the WAL is deleted only *after* the new manifest is durable, so a
  crash between those steps merely replays writes the snapshot already
  holds (puts and deletes are idempotent);
* stale files from superseded or aborted generations are swept last,
  and again on the next successful checkpoint.

Killing the process at any :mod:`~repro.kvstore.faults` crash point in
this sequence therefore recovers exactly the acknowledged writes — the
property ``tests/test_crash_recovery.py`` proves site by site.
"""

from __future__ import annotations

import base64
import json
import os
from typing import Optional

from repro.exceptions import KVStoreError
from repro.kvstore.faults import (
    CRASH_CHECKPOINT_MANIFEST_POST,
    CRASH_CHECKPOINT_MANIFEST_PRE,
    CRASH_CHECKPOINT_MANIFEST_TORN,
    CRASH_CHECKPOINT_REGION_PRE,
    CRASH_CHECKPOINT_REGION_TORN,
    CRASH_CHECKPOINT_WAL_TRUNCATE_PRE,
)
from repro.kvstore.segment import Segment, build_segment_bytes
from repro.kvstore.sstable import SSTable
from repro.kvstore.table import KVTable
from repro.kvstore.wal import OP_DELETE, OP_PUT, WriteAheadLog

MANIFEST_NAME = "MANIFEST.json"
WAL_NAME = "wal.log"
#: version 2 added generation-numbered region files; version 3 added
#: compact ``.seg`` region files (``save_table(compact=True)``).  Older
#: directories still load.
FORMAT_VERSION = 2
COMPACT_FORMAT_VERSION = 3
_SUPPORTED_VERSIONS = (1, 2, 3)


def _encode_key(key: Optional[bytes]) -> Optional[str]:
    return None if key is None else base64.b16encode(key).decode("ascii")


def _decode_key(text: Optional[str]) -> Optional[bytes]:
    return None if text is None else base64.b16decode(text.encode("ascii"))


def _fsync_file(path: str) -> None:
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _read_manifest(directory: str) -> dict:
    manifest_path = os.path.join(directory, MANIFEST_NAME)
    try:
        with open(manifest_path) as fh:
            manifest = json.load(fh)
    except FileNotFoundError:
        raise KVStoreError(f"no manifest in {directory}") from None
    except json.JSONDecodeError as exc:
        raise KVStoreError(f"corrupt manifest in {directory}: {exc}") from exc
    if manifest.get("format_version") not in _SUPPORTED_VERSIONS:
        raise KVStoreError(
            f"unsupported table format {manifest.get('format_version')!r}"
        )
    return manifest


def _current_generation(directory: str) -> int:
    try:
        return int(_read_manifest(directory).get("generation", 0))
    except KVStoreError:
        return 0


def _sweep_stale_files(directory: str, keep: set) -> None:
    """Remove checkpoint debris not referenced by the live manifest."""
    for name in os.listdir(directory):
        if name in keep or name == WAL_NAME or name == MANIFEST_NAME:
            continue
        if (
            name.endswith(".sst")
            or name.endswith(".seg")
            or name == MANIFEST_NAME + ".tmp"
        ):
            try:
                os.remove(os.path.join(directory, name))
            except OSError:  # pragma: no cover - best-effort sweep
                pass


def save_table(
    table: KVTable, directory: str, fault_injector=None, compact: bool = False
) -> None:
    """Snapshot ``table`` into ``directory`` (created if missing).

    The checkpoint is atomic: until the manifest rename lands, a crash
    leaves the previous snapshot (and the WAL) untouched.

    With ``compact=True`` each region is written as a compressed
    columnar ``.seg`` file (format version 3) instead of a plain
    ``.sst`` — the same entries, a fraction of the bytes, and loadable
    lazily through ``mmap``.
    """
    os.makedirs(directory, exist_ok=True)
    injector = fault_injector
    generation = _current_generation(directory) + 1
    suffix = "seg" if compact else "sst"
    regions = []
    for i, region in enumerate(table.regions):
        filename = f"region-{generation:05d}-{i:05d}.{suffix}"
        path = os.path.join(directory, filename)
        if injector is not None:
            injector.crash_point(CRASH_CHECKPOINT_REGION_PRE)
        if compact:
            blob = build_segment_bytes(region.store.scan())
        else:
            blob = SSTable.from_entries(region.store.scan()).to_bytes()
        if injector is not None and injector.should_crash(
            CRASH_CHECKPOINT_REGION_TORN
        ):
            with open(path, "wb") as fh:
                fh.write(blob[: max(1, len(blob) // 2)])
            injector.crash(CRASH_CHECKPOINT_REGION_TORN)
        with open(path, "wb") as fh:
            fh.write(blob)
        _fsync_file(path)
        regions.append(
            {
                "file": filename,
                "start_key": _encode_key(region.start_key),
                "end_key": _encode_key(region.end_key),
            }
        )
    manifest = {
        "format_version": COMPACT_FORMAT_VERSION if compact else FORMAT_VERSION,
        "generation": generation,
        "name": table.name,
        "max_region_rows": table.max_region_rows,
        "flush_threshold": table.flush_threshold,
        "regions": regions,
    }
    manifest_path = os.path.join(directory, MANIFEST_NAME)
    tmp_path = manifest_path + ".tmp"
    if injector is not None:
        injector.crash_point(CRASH_CHECKPOINT_MANIFEST_PRE)
    text = json.dumps(manifest, indent=2)
    if injector is not None and injector.should_crash(
        CRASH_CHECKPOINT_MANIFEST_TORN
    ):
        with open(tmp_path, "w") as fh:
            fh.write(text[: len(text) // 2])
        injector.crash(CRASH_CHECKPOINT_MANIFEST_TORN)
    with open(tmp_path, "w") as fh:
        fh.write(text)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp_path, manifest_path)
    if injector is not None:
        injector.crash_point(CRASH_CHECKPOINT_MANIFEST_POST)
    # The snapshot is durable; the log it supersedes can go, and stale
    # generations with it.
    if injector is not None:
        injector.crash_point(CRASH_CHECKPOINT_WAL_TRUNCATE_PRE)
    wal_path = os.path.join(directory, WAL_NAME)
    if os.path.exists(wal_path):
        os.remove(wal_path)
    _sweep_stale_files(directory, {entry["file"] for entry in regions})


def load_table(directory: str) -> KVTable:
    """Restore a table saved with :func:`save_table`, replaying the WAL.

    Tolerates every crash artefact an interrupted checkpoint can leave:
    a stray ``MANIFEST.json.tmp``, torn or orphaned region files from an
    aborted generation, a WAL whose contents the snapshot already
    absorbed (replay is idempotent), and a directory with a WAL but no
    manifest at all — a store that died before its first checkpoint.
    A *corrupt* manifest still raises: that is data loss, not a fresh
    store.
    """
    manifest: Optional[dict] = None
    if os.path.exists(os.path.join(directory, MANIFEST_NAME)):
        manifest = _read_manifest(directory)
    elif not os.path.exists(os.path.join(directory, WAL_NAME)):
        raise KVStoreError(f"no manifest or WAL in {directory}")

    if manifest is None:
        table = KVTable()
        for op, key, value in WriteAheadLog.replay(
            os.path.join(directory, WAL_NAME)
        ):
            if op == OP_PUT:
                table.put(key, value)
            else:
                table.delete(key)
        return table

    table = KVTable(
        name=manifest["name"],
        max_region_rows=manifest["max_region_rows"],
        flush_threshold=manifest["flush_threshold"],
    )
    from repro.kvstore.region import Region

    regions = []
    for entry in manifest["regions"]:
        region = Region(
            _decode_key(entry["start_key"]),
            _decode_key(entry["end_key"]),
            manifest["flush_threshold"],
        )
        path = os.path.join(directory, entry["file"])
        if entry["file"].endswith(".seg"):
            # Compact segment: mmap-backed, lazily materialised — the
            # load touches only the header/index/bloom sections.
            run = Segment.open(path)
            table.adopt_segment(run)
        else:
            run = SSTable.load(path)
        region.store.sstables = [run]
        region.row_count = len(run)
        regions.append(region)
    if regions:
        table.regions = regions

    # Replay writes that landed after the snapshot.
    for op, key, value in WriteAheadLog.replay(os.path.join(directory, WAL_NAME)):
        if op == OP_PUT:
            table.put(key, value)
        else:
            table.delete(key)
    return table


class DurableKVTable:
    """A :class:`KVTable` wrapper that logs every mutation to a WAL.

    Use :meth:`checkpoint` periodically to snapshot; on restart,
    :func:`load_table` restores the snapshot and replays the log.  A
    context manager (``with DurableKVTable(...) as t: ...``) so handles
    are closed deterministically instead of by garbage collection;
    ``close()`` is idempotent.

    With ``sync=True`` a mutation is acknowledged (the call returns)
    only after its WAL record is fsynced — the durability point the
    crash-recovery suite asserts against.
    """

    def __init__(
        self,
        table: KVTable,
        directory: str,
        sync: bool = False,
        fault_injector=None,
    ):
        os.makedirs(directory, exist_ok=True)
        self.table = table
        self.directory = directory
        self.fault_injector = fault_injector
        self.wal = WriteAheadLog(
            os.path.join(directory, WAL_NAME),
            sync=sync,
            fault_injector=fault_injector,
        )

    def put(self, key: bytes, value: bytes) -> None:
        self.wal.append_put(bytes(key), bytes(value))
        self.table.put(key, value)

    def delete(self, key: bytes) -> None:
        self.wal.append_delete(bytes(key))
        self.table.delete(key)

    def checkpoint(self) -> None:
        """Snapshot the table and truncate the log."""
        self.wal.flush()
        save_table(self.table, self.directory, self.fault_injector)
        self.wal.truncate()

    def close(self) -> None:
        self.wal.close()

    def __enter__(self) -> "DurableKVTable":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __getattr__(self, name):
        return getattr(self.table, name)
