"""Table persistence: save/load a :class:`KVTable` as a directory.

Layout::

    <dir>/MANIFEST.json     table metadata + region boundaries
    <dir>/region-00000.sst  one compacted SSTable per region
    <dir>/wal.log           mutation log for writes after the snapshot

``save_table`` snapshots each region into an SSTable file;
``load_table`` restores the regions and replays any WAL tail, giving
the embedded store the full HBase durability story in miniature:
snapshot + log = recoverable state.
"""

from __future__ import annotations

import base64
import json
import os
from typing import Optional

from repro.exceptions import KVStoreError
from repro.kvstore.sstable import SSTable
from repro.kvstore.table import KVTable
from repro.kvstore.wal import OP_DELETE, OP_PUT, WriteAheadLog

MANIFEST_NAME = "MANIFEST.json"
WAL_NAME = "wal.log"
FORMAT_VERSION = 1


def _encode_key(key: Optional[bytes]) -> Optional[str]:
    return None if key is None else base64.b16encode(key).decode("ascii")


def _decode_key(text: Optional[str]) -> Optional[bytes]:
    return None if text is None else base64.b16decode(text.encode("ascii"))


def save_table(table: KVTable, directory: str) -> None:
    """Snapshot ``table`` into ``directory`` (created if missing)."""
    os.makedirs(directory, exist_ok=True)
    regions = []
    for i, region in enumerate(table.regions):
        filename = f"region-{i:05d}.sst"
        run = SSTable.from_entries(region.store.scan())
        run.write_to(os.path.join(directory, filename))
        regions.append(
            {
                "file": filename,
                "start_key": _encode_key(region.start_key),
                "end_key": _encode_key(region.end_key),
            }
        )
    manifest = {
        "format_version": FORMAT_VERSION,
        "name": table.name,
        "max_region_rows": table.max_region_rows,
        "flush_threshold": table.flush_threshold,
        "regions": regions,
    }
    with open(os.path.join(directory, MANIFEST_NAME), "w") as fh:
        json.dump(manifest, fh, indent=2)
    # A fresh snapshot supersedes any previous log.
    wal_path = os.path.join(directory, WAL_NAME)
    if os.path.exists(wal_path):
        os.remove(wal_path)


def load_table(directory: str) -> KVTable:
    """Restore a table saved with :func:`save_table`, replaying the WAL."""
    manifest_path = os.path.join(directory, MANIFEST_NAME)
    try:
        with open(manifest_path) as fh:
            manifest = json.load(fh)
    except FileNotFoundError:
        raise KVStoreError(f"no manifest in {directory}") from None
    except json.JSONDecodeError as exc:
        raise KVStoreError(f"corrupt manifest in {directory}: {exc}") from exc
    if manifest.get("format_version") != FORMAT_VERSION:
        raise KVStoreError(
            f"unsupported table format {manifest.get('format_version')!r}"
        )

    table = KVTable(
        name=manifest["name"],
        max_region_rows=manifest["max_region_rows"],
        flush_threshold=manifest["flush_threshold"],
    )
    from repro.kvstore.region import Region

    regions = []
    for entry in manifest["regions"]:
        region = Region(
            _decode_key(entry["start_key"]),
            _decode_key(entry["end_key"]),
            manifest["flush_threshold"],
        )
        run = SSTable.load(os.path.join(directory, entry["file"]))
        region.store.sstables = [run]
        region.row_count = len(run)
        regions.append(region)
    if regions:
        table.regions = regions

    # Replay writes that landed after the snapshot.
    for op, key, value in WriteAheadLog.replay(os.path.join(directory, WAL_NAME)):
        if op == OP_PUT:
            table.put(key, value)
        else:
            table.delete(key)
    return table


class DurableKVTable:
    """A :class:`KVTable` wrapper that logs every mutation to a WAL.

    Use :func:`save_table` periodically to checkpoint; on restart,
    :func:`load_table` restores the snapshot and replays the log.
    """

    def __init__(self, table: KVTable, directory: str, sync: bool = False):
        os.makedirs(directory, exist_ok=True)
        self.table = table
        self.directory = directory
        self.wal = WriteAheadLog(os.path.join(directory, WAL_NAME), sync=sync)

    def put(self, key: bytes, value: bytes) -> None:
        self.wal.append_put(bytes(key), bytes(value))
        self.table.put(key, value)

    def delete(self, key: bytes) -> None:
        self.wal.append_delete(bytes(key))
        self.table.delete(key)

    def checkpoint(self) -> None:
        """Snapshot the table and truncate the log."""
        self.wal.flush()
        save_table(self.table, self.directory)
        self.wal.truncate()

    def close(self) -> None:
        self.wal.flush()
        self.wal.close()

    def __getattr__(self, name):
        return getattr(self.table, name)
