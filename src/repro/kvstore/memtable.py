"""Sorted in-memory write buffer.

A memtable keeps the newest version of each mutation, ordered by key,
until it is flushed into an immutable SSTable.  Deletions are recorded
as tombstones so a flushed delete can still shadow an older SSTable
entry; tombstones are only dropped during a full compaction.

Implementation: a sorted key list maintained with :mod:`bisect` plus a
dict for O(1) point reads.  Updates to existing keys avoid the O(n)
insert, so bulk loads of mostly-fresh keys are the only O(n log n)-ish
path — the same asymmetry a skip-list memtable has in practice.
"""

from __future__ import annotations

import bisect
from typing import Dict, Iterator, List, Optional, Tuple

from repro.exceptions import KVStoreError

#: marker distinguishing "deleted" from "absent"
TOMBSTONE = object()

Entry = Tuple[bytes, object]  # value bytes or TOMBSTONE


class MemTable:
    """A mutable, sorted map from byte keys to values-or-tombstones."""

    __slots__ = ("_keys", "_data", "_approx_bytes")

    def __init__(self) -> None:
        self._keys: List[bytes] = []
        self._data: Dict[bytes, object] = {}
        self._approx_bytes = 0

    def __len__(self) -> int:
        return len(self._keys)

    @property
    def approximate_size(self) -> int:
        """Rough payload size in bytes, used for flush thresholds."""
        return self._approx_bytes

    # ------------------------------------------------------------------
    def put(self, key: bytes, value: bytes) -> None:
        if not isinstance(key, (bytes, bytearray)):
            raise KVStoreError(f"keys must be bytes, got {type(key).__name__}")
        if not isinstance(value, (bytes, bytearray)):
            raise KVStoreError(f"values must be bytes, got {type(value).__name__}")
        key = bytes(key)
        self._upsert(key, bytes(value), len(key) + len(value))

    def delete(self, key: bytes) -> None:
        """Record a tombstone for ``key``."""
        key = bytes(key)
        self._upsert(key, TOMBSTONE, len(key))

    def _upsert(self, key: bytes, value: object, size: int) -> None:
        if key in self._data:
            old = self._data[key]
            self._approx_bytes -= len(key) + (
                len(old) if isinstance(old, (bytes, bytearray)) else 0
            )
        else:
            bisect.insort(self._keys, key)
        self._data[key] = value
        self._approx_bytes += size

    # ------------------------------------------------------------------
    def get(self, key: bytes) -> Optional[object]:
        """The stored value, ``TOMBSTONE``, or ``None`` when absent."""
        return self._data.get(bytes(key))

    def scan(
        self, start: Optional[bytes] = None, stop: Optional[bytes] = None
    ) -> Iterator[Entry]:
        """Entries with ``start <= key < stop``, tombstones included.

        Tombstones must flow to the merge so deletions shadow older
        SSTables; the caller drops them at the top of the read path.
        """
        lo = 0 if start is None else bisect.bisect_left(self._keys, bytes(start))
        hi = len(self._keys) if stop is None else bisect.bisect_left(
            self._keys, bytes(stop)
        )
        for i in range(lo, hi):
            key = self._keys[i]
            yield key, self._data[key]

    def items(self) -> Iterator[Entry]:
        """All entries in key order (flush path)."""
        return self.scan()

    def clear(self) -> None:
        self._keys.clear()
        self._data.clear()
        self._approx_bytes = 0
