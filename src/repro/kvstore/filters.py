"""Server-side scan filters ("coprocessor push-down").

TraSS pushes global-pruning ranges and local filtering into the HBase
coprocessor so dissimilar trajectories never cross the wire
(Figure 8).  In this substrate a :class:`RowFilter` plays that role: it
runs inside the region scan, sees the raw row, and decides whether the
row is returned to the client.  Rejected rows still count as scanned
I/O — that distinction is the paper's Figure 11(b) versus 11(c).
"""

from __future__ import annotations

import abc
from typing import Callable, Sequence


class RowFilter(abc.ABC):
    """Decides, server-side, whether a scanned row is returned."""

    @abc.abstractmethod
    def accept(self, key: bytes, value: bytes) -> bool:
        """True to return the row to the client."""

    # ------------------------------------------------------------------
    # Parallel-scan protocol: each worker screens rows through its own
    # clone so per-filter state (stats, accepted-row caches) is never
    # mutated concurrently; the executor merges the clones back in plan
    # order.  Stateless filters are their own clone.
    # ------------------------------------------------------------------
    def spawn(self) -> "RowFilter":
        """An independent clone for one parallel scan worker."""
        return self

    def absorb(self, worker: "RowFilter") -> None:
        """Merge a spawned clone's state back (no-op when stateless)."""


class AcceptAllFilter(RowFilter):
    """The identity filter."""

    def accept(self, key: bytes, value: bytes) -> bool:
        return True


class PredicateFilter(RowFilter):
    """Adapts a plain callable ``(key, value) -> bool``."""

    def __init__(self, predicate: Callable[[bytes, bytes], bool]):
        self._predicate = predicate

    def accept(self, key: bytes, value: bytes) -> bool:
        return bool(self._predicate(key, value))


class PrefixFilter(RowFilter):
    """Accepts rows whose key starts with a given prefix."""

    def __init__(self, prefix: bytes):
        self._prefix = bytes(prefix)

    def accept(self, key: bytes, value: bytes) -> bool:
        return key.startswith(self._prefix)


class ConjunctionFilter(RowFilter):
    """All member filters must accept (short-circuits)."""

    def __init__(self, filters: Sequence[RowFilter]):
        self._filters = list(filters)

    def accept(self, key: bytes, value: bytes) -> bool:
        return all(f.accept(key, value) for f in self._filters)

    def spawn(self) -> "RowFilter":
        spawned = [f.spawn() for f in self._filters]
        if all(s is f for s, f in zip(spawned, self._filters)):
            return self  # every member is stateless
        return ConjunctionFilter(spawned)

    def absorb(self, worker: "RowFilter") -> None:
        if worker is self:
            return
        for mine, theirs in zip(self._filters, worker._filters):
            if theirs is not mine:
                mine.absorb(theirs)
