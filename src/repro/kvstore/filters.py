"""Server-side scan filters ("coprocessor push-down").

TraSS pushes global-pruning ranges and local filtering into the HBase
coprocessor so dissimilar trajectories never cross the wire
(Figure 8).  In this substrate a :class:`RowFilter` plays that role: it
runs inside the region scan, sees the raw row, and decides whether the
row is returned to the client.  Rejected rows still count as scanned
I/O — that distinction is the paper's Figure 11(b) versus 11(c).
"""

from __future__ import annotations

import abc
from typing import Callable, Sequence


class RowFilter(abc.ABC):
    """Decides, server-side, whether a scanned row is returned."""

    @abc.abstractmethod
    def accept(self, key: bytes, value: bytes) -> bool:
        """True to return the row to the client."""


class AcceptAllFilter(RowFilter):
    """The identity filter."""

    def accept(self, key: bytes, value: bytes) -> bool:
        return True


class PredicateFilter(RowFilter):
    """Adapts a plain callable ``(key, value) -> bool``."""

    def __init__(self, predicate: Callable[[bytes, bytes], bool]):
        self._predicate = predicate

    def accept(self, key: bytes, value: bytes) -> bool:
        return bool(self._predicate(key, value))


class PrefixFilter(RowFilter):
    """Accepts rows whose key starts with a given prefix."""

    def __init__(self, prefix: bytes):
        self._prefix = bytes(prefix)

    def accept(self, key: bytes, value: bytes) -> bool:
        return key.startswith(self._prefix)


class ConjunctionFilter(RowFilter):
    """All member filters must accept (short-circuits)."""

    def __init__(self, filters: Sequence[RowFilter]):
        self._filters = list(filters)

    def accept(self, key: bytes, value: bytes) -> bool:
        return all(f.accept(key, value) for f in self._filters)
