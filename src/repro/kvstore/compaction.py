"""Compaction policies for the LSM store.

The base :class:`~repro.kvstore.lsm.LSMStore` merges everything into
one run when its table count passes a trigger — simple, but every
compaction rewrites the whole store.  Real LSM engines trade that
write amplification against read amplification with tiering; this
module adds the standard **size-tiered** policy (merge only runs of
similar size, like Cassandra's STCS and HBase's exploring compactor)
behind a policy interface, plus the amplification counters needed to
compare them.

    policy = SizeTieredPolicy(min_merge=4)
    store = CompactingLSMStore(policy=policy)
"""

from __future__ import annotations

import abc
import os
from typing import List, Optional, Sequence, Tuple

from repro.kvstore.lsm import LSMStore
from repro.kvstore.memtable import TOMBSTONE, MemTable
from repro.kvstore.segment import Segment, write_segment
from repro.kvstore.sstable import SSTable


class CompactionPolicy(abc.ABC):
    """Chooses which runs to merge after a flush."""

    @abc.abstractmethod
    def select(self, runs: Sequence[SSTable]) -> List[int]:
        """Indexes of the runs to merge; empty means no compaction."""


class FullCompactionPolicy(CompactionPolicy):
    """Merge everything once the run count passes ``trigger``."""

    def __init__(self, trigger: int = 8):
        self.trigger = trigger

    def select(self, runs: Sequence[SSTable]) -> List[int]:
        if len(runs) >= self.trigger:
            return list(range(len(runs)))
        return []


class SizeTieredPolicy(CompactionPolicy):
    """Merge ``min_merge``+ runs whose sizes are within ``ratio``.

    Buckets runs by size; the first bucket with at least ``min_merge``
    members is merged.  Small fresh runs get consolidated quickly while
    a large old run is left alone until enough peers accumulate —
    the behaviour that keeps write amplification logarithmic.
    """

    def __init__(self, min_merge: int = 4, ratio: float = 2.0):
        self.min_merge = max(2, min_merge)
        self.ratio = max(1.1, ratio)

    def select(self, runs: Sequence[SSTable]) -> List[int]:
        order = sorted(range(len(runs)), key=lambda i: runs[i].size_bytes)
        bucket: List[int] = []
        bucket_floor = 0.0
        for idx in order:
            size = max(1.0, float(runs[idx].size_bytes))
            if not bucket:
                bucket = [idx]
                bucket_floor = size
                continue
            if size <= bucket_floor * self.ratio:
                bucket.append(idx)
                if len(bucket) >= self.min_merge:
                    return bucket
            else:
                bucket = [idx]
                bucket_floor = size
        return []


def freeze_run(run, path: str) -> Segment:
    """Rewrite one run 1:1 into a compact segment file.

    Tombstones are preserved, so the segment shadows older runs exactly
    the way the source run did — freezing is a representation change,
    never a semantic one.
    """
    return write_segment(path, run.scan())


class FreezeTier:
    """Rewrites cold runs into mmap-backed compact segments.

    The *oldest* run in a store is, by LSM construction, the coldest:
    everything newer shadows it.  Once it is big enough to be worth the
    rewrite (``min_bytes``) it is frozen in place — same position in
    the run stack, same entries, compressed columnar bytes on disk.
    """

    def __init__(self, directory: str, min_bytes: int = 256 * 1024):
        self.directory = directory
        self.min_bytes = min_bytes
        self._sequence = 0
        os.makedirs(directory, exist_ok=True)

    def maybe_freeze(self, store: LSMStore) -> int:
        """Freeze eligible cold runs in ``store``; returns runs frozen."""
        frozen = 0
        # Oldest-first; stop at the first run that is not cold enough.
        for i in range(len(store.sstables) - 1, -1, -1):
            run = store.sstables[i]
            if isinstance(run, Segment):
                continue  # already frozen
            if run.size_bytes < self.min_bytes:
                break
            path = os.path.join(self.directory, f"frozen-{self._sequence:06d}.seg")
            self._sequence += 1
            store.sstables[i] = freeze_run(run, path)
            frozen += 1
        return frozen


class CompactingLSMStore(LSMStore):
    """An :class:`LSMStore` driven by a pluggable compaction policy.

    Tracks the two amplification metrics:

    * ``bytes_written`` — payload bytes written by flushes *and*
      rewrites during compaction (write amplification's numerator);
    * ``bytes_ingested`` — payload bytes the caller actually put.
    """

    def __init__(
        self,
        flush_threshold: int = 4 * 1024 * 1024,
        policy: Optional[CompactionPolicy] = None,
        freeze_dir: Optional[str] = None,
        freeze_min_bytes: int = 256 * 1024,
    ):
        super().__init__(flush_threshold=flush_threshold, compaction_trigger=10**9)
        self.policy = policy if policy is not None else SizeTieredPolicy()
        self.bytes_written = 0
        self.bytes_ingested = 0
        self.freeze_tier = (
            FreezeTier(freeze_dir, freeze_min_bytes) if freeze_dir else None
        )
        self.frozen_count = 0

    # ------------------------------------------------------------------
    def put(self, key: bytes, value: bytes) -> None:
        self.bytes_ingested += len(key) + len(value)
        super().put(key, value)

    def flush(self) -> None:
        if len(self.memtable) == 0:
            return
        import time

        started = time.perf_counter()
        run = SSTable.from_entries(self.memtable.items())
        self.bytes_written += run.size_bytes
        self.sstables.insert(0, run)
        self.memtable = MemTable()
        self.flush_count += 1
        self._record_flush(run.size_bytes, time.perf_counter() - started)
        self._policy_compact()
        if self.freeze_tier is not None:
            self.frozen_count += self.freeze_tier.maybe_freeze(self)

    def _policy_compact(self) -> None:
        while True:
            chosen = self.policy.select(self.sstables)
            if not chosen:
                return
            self._merge_runs(sorted(chosen))

    def _merge_runs(self, indexes: List[int]) -> None:
        """Merge the chosen runs (newest-first order preserved)."""
        import heapq
        import time

        started = time.perf_counter()
        chosen = [self.sstables[i] for i in indexes]
        keep_tombstones = len(chosen) < len(self.sstables)
        # Newest-first priority matches the store's read path.
        heap: List[Tuple[bytes, int, object, object]] = []
        for priority, run in enumerate(chosen):
            it = run.scan()
            for key, value in it:
                heap.append((key, priority, value, it))
                break
        heapq.heapify(heap)
        merged: List[Tuple[bytes, object]] = []
        last_key: Optional[bytes] = None
        while heap:
            key, priority, value, it = heapq.heappop(heap)
            for nk, nv in it:
                heapq.heappush(heap, (nk, priority, nv, it))
                break
            if key == last_key:
                continue
            last_key = key
            if value is TOMBSTONE and not keep_tombstones:
                continue  # full merge: the tombstone has done its job
            merged.append((key, value))
        new_run = SSTable.from_entries(merged)
        self.bytes_written += new_run.size_bytes
        # Replace the chosen runs, keeping overall newest-first order at
        # the position of the newest chosen run.
        insert_at = indexes[0]
        for i in reversed(indexes):
            del self.sstables[i]
        if len(new_run):
            self.sstables.insert(insert_at, new_run)
        self.compaction_count += 1
        self._record_compaction(
            new_run.size_bytes, time.perf_counter() - started
        )

    # ------------------------------------------------------------------
    @property
    def write_amplification(self) -> float:
        """Bytes written to runs per byte ingested (>= 1 after flushes)."""
        if self.bytes_ingested == 0:
            return 0.0
        return self.bytes_written / self.bytes_ingested

    @property
    def read_amplification(self) -> int:
        """Structures a point read may consult: memtable + runs."""
        return 1 + len(self.sstables)
