"""Deterministic fault injection for the embedded key-value store.

The paper's system runs on a five-node HBase cluster where regions move,
region-servers stall, splits and compactions race scans, and processes
die mid-write.  The embedded store cannot *encounter* any of that, so
this module *manufactures* it, reproducibly: a :class:`FaultInjector`
installed on a :class:`~repro.kvstore.table.KVTable` consults a seeded
schedule at well-defined hook points and

* raises transient :class:`~repro.exceptions.RegionUnavailableError`\\ s
  when a region scan starts (at most ``max_consecutive_failures`` in a
  row per region, so a retrying caller with a larger attempt budget is
  *guaranteed* to eventually succeed);
* charges virtual latency against slow regions (straggler simulation —
  accounted on :attr:`FaultInjector.virtual_seconds`, never slept, so
  chaos suites stay fast while deadline budgets still fire);
* forces region splits and compactions in the middle of an ongoing
  scan (the classic HBase race);
* simulates process death at named *crash points* on the durable write
  path (WAL append, memtable flush, checkpoint file writes) by raising
  :class:`SimulatedCrash` — deliberately a ``BaseException`` so no
  ``except Exception`` recovery path can accidentally swallow a "kill".

Everything is driven by one ``random.Random(seed)`` stream plus
per-site hit counters, so a given schedule replays identically:
same seed, same workload, same faults.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.exceptions import RegionUnavailableError

# ----------------------------------------------------------------------
# Crash-point sites (the durable write path, in execution order).
# ----------------------------------------------------------------------
CRASH_WAL_APPEND_PRE = "wal.append.pre"
#: a torn record: half the payload reaches the file, then the crash
CRASH_WAL_APPEND_TORN = "wal.append.torn"
CRASH_WAL_APPEND_POST = "wal.append.post"
CRASH_MEMTABLE_FLUSH_PRE = "memtable.flush.pre"
CRASH_MEMTABLE_FLUSH_POST = "memtable.flush.post"
CRASH_CHECKPOINT_REGION_PRE = "checkpoint.region-file.pre"
#: a torn SSTable file: half the bytes land, then the crash
CRASH_CHECKPOINT_REGION_TORN = "checkpoint.region-file.torn"
CRASH_CHECKPOINT_MANIFEST_PRE = "checkpoint.manifest.pre"
#: a torn temporary manifest (never renamed into place)
CRASH_CHECKPOINT_MANIFEST_TORN = "checkpoint.manifest.torn"
CRASH_CHECKPOINT_MANIFEST_POST = "checkpoint.manifest.post"
CRASH_CHECKPOINT_WAL_TRUNCATE_PRE = "checkpoint.wal-truncate.pre"

ALL_CRASH_SITES = (
    CRASH_WAL_APPEND_PRE,
    CRASH_WAL_APPEND_TORN,
    CRASH_WAL_APPEND_POST,
    CRASH_MEMTABLE_FLUSH_PRE,
    CRASH_MEMTABLE_FLUSH_POST,
    CRASH_CHECKPOINT_REGION_PRE,
    CRASH_CHECKPOINT_REGION_TORN,
    CRASH_CHECKPOINT_MANIFEST_PRE,
    CRASH_CHECKPOINT_MANIFEST_TORN,
    CRASH_CHECKPOINT_MANIFEST_POST,
    CRASH_CHECKPOINT_WAL_TRUNCATE_PRE,
)


class SimulatedCrash(BaseException):
    """Process death injected at a crash point.

    Derives from ``BaseException`` on purpose: a simulated kill must
    tear through every ``except Exception`` / ``except ReproError``
    handler exactly like a real ``kill -9`` would.
    """

    def __init__(self, site: str):
        super().__init__(f"simulated crash at {site}")
        self.site = site


@dataclass
class FaultSchedule:
    """A seeded, declarative description of what to inject.

    Probabilities are evaluated per *region-scan start* (availability,
    latency, disruption) on one shared RNG stream, so a schedule is a
    pure function of ``(seed, workload)``.
    """

    seed: int = 0
    #: probability a region scan fails with RegionUnavailableError
    region_unavailable_prob: float = 0.0
    #: cap on back-to-back failures of one region (transience guarantee)
    max_consecutive_failures: int = 2
    #: probability a region scan is a straggler
    slow_region_prob: float = 0.0
    #: virtual seconds charged per straggler scan
    slow_region_seconds: float = 0.05
    #: probability a region scan schedules a forced mid-scan split
    split_prob: float = 0.0
    #: probability a region scan schedules a forced mid-scan compaction
    compact_prob: float = 0.0
    #: crash site -> 1-based hit index at which to die
    crash_sites: Dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for name in (
            "region_unavailable_prob",
            "slow_region_prob",
            "split_prob",
            "compact_prob",
        ):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {p}")
        if self.max_consecutive_failures < 1:
            raise ValueError(
                "max_consecutive_failures must be >= 1, got "
                f"{self.max_consecutive_failures}"
            )
        if self.slow_region_seconds < 0:
            raise ValueError(
                f"slow_region_seconds must be >= 0, got "
                f"{self.slow_region_seconds}"
            )
        unknown = set(self.crash_sites) - set(ALL_CRASH_SITES)
        if unknown:
            raise ValueError(f"unknown crash sites: {sorted(unknown)}")


RegionSpan = Tuple[Optional[bytes], Optional[bytes]]


class FaultInjector:
    """Executes a :class:`FaultSchedule` against a table's hook points.

    Install with ``table.fault_injector = FaultInjector(schedule)`` (or
    :meth:`TraSS.install_fault_injector`); remove by setting the
    attribute back to ``None``.  One injector should serve one table —
    its RNG stream and per-region state are not meant to be shared.
    """

    def __init__(self, schedule: Optional[FaultSchedule] = None):
        self.schedule = schedule if schedule is not None else FaultSchedule()
        self._rng = random.Random(self.schedule.seed)
        #: virtual seconds of injected latency (charged, never slept)
        self.virtual_seconds = 0.0
        # Tallies (also mirrored into the table's IOMetrics where they
        # describe I/O the table experienced).
        self.unavailable_injected = 0
        self.latency_injected = 0
        self.forced_splits = 0
        self.forced_compactions = 0
        self.crashes: List[str] = []
        self._consecutive: Dict[RegionSpan, int] = {}
        self._hits: Dict[str, int] = {}
        #: pending mid-scan disruption: (kind, rows-until-trigger)
        self._disruption: Optional[Tuple[str, int]] = None

    # ------------------------------------------------------------------
    # Scan-path hooks (called by KVTable.scan)
    # ------------------------------------------------------------------
    def on_region_scan_start(self, table, region) -> None:
        """Hook at the start of one region's contribution to a scan.

        May raise :class:`RegionUnavailableError`, charge straggler
        latency, or arm a mid-scan split/compaction.
        """
        sched = self.schedule
        span: RegionSpan = (region.start_key, region.end_key)
        if sched.region_unavailable_prob > 0.0:
            fails = self._consecutive.get(span, 0)
            if (
                fails < sched.max_consecutive_failures
                and self._rng.random() < sched.region_unavailable_prob
            ):
                self._consecutive[span] = fails + 1
                self.unavailable_injected += 1
                table.metrics.faults_injected += 1
                raise RegionUnavailableError(
                    f"injected outage of region [{region.start_key!r}, "
                    f"{region.end_key!r}) (consecutive failure "
                    f"{fails + 1}/{sched.max_consecutive_failures})",
                    region_span=span,
                )
            self._consecutive[span] = 0
        if (
            sched.slow_region_prob > 0.0
            and self._rng.random() < sched.slow_region_prob
        ):
            self.virtual_seconds += sched.slow_region_seconds
            self.latency_injected += 1
        if sched.split_prob > 0.0 and self._rng.random() < sched.split_prob:
            self._disruption = ("split", self._rng.randint(1, 5))
        elif (
            sched.compact_prob > 0.0
            and self._rng.random() < sched.compact_prob
        ):
            self._disruption = ("compact", self._rng.randint(1, 5))

    def on_row_scanned(self, table, region) -> None:
        """Hook after each row a scan touches; fires armed disruptions.

        The disruption races the *ongoing* scan on purpose: the scan
        holds iterators over the pre-split / pre-compaction structures
        (which both operations leave intact), so exactly-once delivery
        is preserved — the property the race tests pin down.
        """
        if self._disruption is None:
            return
        kind, countdown = self._disruption
        if countdown > 1:
            self._disruption = (kind, countdown - 1)
            return
        self._disruption = None
        if kind == "split":
            self._force_split(table, region)
        else:
            region.store.compact()
            self.forced_compactions += 1

    def _force_split(self, table, region) -> None:
        for idx, candidate in enumerate(table.regions):
            if candidate is region:
                if region.row_count >= 2:
                    table._split_region(idx)
                    self.forced_splits += 1
                return
        # Region already replaced (e.g. by an earlier forced split of a
        # scan that is still draining the old object): nothing to do.

    # ------------------------------------------------------------------
    # Crash points (called by WAL / LSM flush / persistence)
    # ------------------------------------------------------------------
    def should_crash(self, site: str) -> bool:
        """True when this hit of ``site`` is the scheduled death.

        Callers that need to leave torn state behind (half a WAL
        record, half an SSTable) check this, write the partial bytes,
        then call :meth:`crash`.
        """
        target = self.schedule.crash_sites.get(site)
        if target is None:
            return False
        hit = self._hits.get(site, 0) + 1
        self._hits[site] = hit
        return hit == target

    def crash(self, site: str) -> None:
        """Record and raise the simulated death."""
        self.crashes.append(site)
        raise SimulatedCrash(site)

    def crash_point(self, site: str) -> None:
        """Die here iff the schedule says so (clean, non-torn sites)."""
        if self.should_crash(site):
            self.crash(site)

    # ------------------------------------------------------------------
    def summary(self) -> Dict[str, object]:
        """Injection tallies (the chaos CLI's report source)."""
        return {
            "seed": self.schedule.seed,
            "region_outages": self.unavailable_injected,
            "slow_regions": self.latency_injected,
            "virtual_latency_seconds": self.virtual_seconds,
            "forced_splits": self.forced_splits,
            "forced_compactions": self.forced_compactions,
            "crashes": list(self.crashes),
        }
