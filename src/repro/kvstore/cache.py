"""Read caching for the key-value store (the multi-tier cache layer).

HBase fronts its store files with a BlockCache; this module provides
the embedded equivalents:

* :class:`LRUCache` — a byte-budgeted LRU over ``bytes -> bytes``
  entries (point reads);
* :class:`ObjectLRUCache` — the same eviction policy over arbitrary
  hashable keys and Python values with an explicit per-entry cost,
  behind a lock so concurrent scan workers can share it.  The scan
  block cache, the decoded-record cache and the pruning-plan cache are
  all instances of it;
* :class:`CachedKVTable` — a table front that serves repeated point
  reads from memory and invalidates through the table's mutation
  ``generation`` (every write bumps it), so even writes that bypass
  the wrapper can never expose a stale cached row.

All caches expose the same accounting surface: ``hits`` / ``misses`` /
``evictions`` / ``invalidations``, a ``hit_rate``, and
``reset_stats()``.  ``clear()`` drops every entry *and* resets the
stats — a cleared cache starts a fresh accounting epoch, so hit rates
never mix measurements across an invalidation boundary.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import TYPE_CHECKING, Any, Hashable, Iterator, Optional, Tuple

from repro.exceptions import KVStoreError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.kvstore.table import KVTable


class _CacheAccounting:
    """Shared hit/miss/eviction/invalidation counters."""

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    def reset_stats(self) -> None:
        """Zero the counters (entries are untouched)."""
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class LRUCache(_CacheAccounting):
    """A byte-budgeted least-recently-used map from bytes to bytes."""

    def __init__(self, capacity_bytes: int = 16 * 1024 * 1024):
        if capacity_bytes < 1:
            raise KVStoreError(
                f"cache capacity must be >= 1 byte, got {capacity_bytes}"
            )
        super().__init__()
        self.capacity_bytes = capacity_bytes
        self._data: "OrderedDict[bytes, bytes]" = OrderedDict()
        self.current_bytes = 0

    def __len__(self) -> int:
        return len(self._data)

    def get(self, key: bytes) -> Optional[bytes]:
        key = bytes(key)
        if key in self._data:
            self._data.move_to_end(key)
            self.hits += 1
            return self._data[key]
        self.misses += 1
        return None

    def put(self, key: bytes, value: bytes) -> None:
        key, value = bytes(key), bytes(value)
        entry_size = len(key) + len(value)
        if entry_size > self.capacity_bytes:
            return  # larger than the whole cache: not cacheable
        if key in self._data:
            self.current_bytes -= len(key) + len(self._data[key])
            del self._data[key]
        while self.current_bytes + entry_size > self.capacity_bytes:
            old_key, old_value = self._data.popitem(last=False)
            self.current_bytes -= len(old_key) + len(old_value)
            self.evictions += 1
        self._data[key] = value
        self.current_bytes += entry_size

    def invalidate(self, key: bytes) -> None:
        key = bytes(key)
        if key in self._data:
            self.current_bytes -= len(key) + len(self._data[key])
            del self._data[key]
            self.invalidations += 1

    def clear(self) -> None:
        """Drop every entry and start a fresh accounting epoch."""
        self._data.clear()
        self.current_bytes = 0
        self.reset_stats()


class ObjectLRUCache(_CacheAccounting):
    """A cost-budgeted, lock-guarded LRU over arbitrary hashable keys.

    Each :meth:`put` declares its entry's cost (bytes, points — any
    consistent unit); the cache evicts least-recently-used entries to
    stay under ``capacity``.  All operations take an internal lock, so
    one instance can back concurrent scan workers.
    """

    def __init__(self, capacity: int):
        if capacity < 1:
            raise KVStoreError(
                f"cache capacity must be >= 1, got {capacity}"
            )
        super().__init__()
        self.capacity = capacity
        self.current_cost = 0
        self._data: "OrderedDict[Hashable, Tuple[Any, int]]" = OrderedDict()
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._data)

    def get(self, key: Hashable) -> Optional[Any]:
        with self._lock:
            entry = self._data.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._data.move_to_end(key)
            self.hits += 1
            return entry[0]

    def put(self, key: Hashable, value: Any, cost: int = 1) -> None:
        cost = max(1, int(cost))
        if cost > self.capacity:
            return  # larger than the whole cache: not cacheable
        with self._lock:
            old = self._data.pop(key, None)
            if old is not None:
                self.current_cost -= old[1]
            while self.current_cost + cost > self.capacity:
                _, (_, old_cost) = self._data.popitem(last=False)
                self.current_cost -= old_cost
                self.evictions += 1
            self._data[key] = (value, cost)
            self.current_cost += cost

    def invalidate(self, key: Hashable) -> None:
        with self._lock:
            entry = self._data.pop(key, None)
            if entry is not None:
                self.current_cost -= entry[1]
                self.invalidations += 1

    def clear(self) -> None:
        """Drop every entry and start a fresh accounting epoch."""
        with self._lock:
            self._data.clear()
            self.current_cost = 0
            self.reset_stats()

    def stats(self) -> dict:
        """Counter snapshot (the ``repro stats`` CLI's source)."""
        return {
            "entries": len(self._data),
            "cost": self.current_cost,
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "hit_rate": self.hit_rate,
        }


def scan_block_cache(capacity_bytes: int) -> ObjectLRUCache:
    """The LSM scan block cache: materialised merged runs per
    ``(region, key range, generation)``, cost-accounted in row bytes.

    Keys embed the table's mutation generation, so entries belonging
    to superseded states are unreachable the moment a write lands —
    invalidation is by construction, not by enumeration.
    """
    return ObjectLRUCache(capacity_bytes)


def record_cache(capacity_bytes: int) -> ObjectLRUCache:
    """The decoded-``TrajectoryRecord`` cache (skips ``decode_row``),
    keyed by ``(row key, generation)`` and cost-accounted in encoded
    row bytes."""
    return ObjectLRUCache(capacity_bytes)


def columnar_cache(capacity_bytes: int) -> ObjectLRUCache:
    """The columnar decoded-candidate cache for the vectorised filter
    path (skips ``decode_row_columnar``), keyed by ``(row key,
    generation)`` and cost-accounted in encoded row bytes.

    Entries also carry their lazily derived scalar views (``features``,
    ``as_record()``), so a warm row pays decoding and feature
    reconstruction exactly once per table generation."""
    return ObjectLRUCache(capacity_bytes)


class CachedKVTable:
    """A :class:`KVTable` front with an LRU over point reads.

    Scans bypass the cache (range reads would churn it, the same reason
    HBase marks scans non-caching by default).  Cached entries are
    keyed under the table's mutation ``generation``, so *any* write —
    through this wrapper or directly against the underlying table —
    makes every previously cached value unreachable; the wrapper can
    never serve a stale row.
    """

    def __init__(self, table: "KVTable", capacity_bytes: int = 16 * 1024 * 1024):
        self.table = table
        self.cache = LRUCache(capacity_bytes)

    def _cache_key(self, key: bytes) -> bytes:
        return b"%d\x00%s" % (self.table.generation, bytes(key))

    def get(self, key: bytes) -> Optional[bytes]:
        ck = self._cache_key(key)
        cached = self.cache.get(ck)
        if cached is not None:
            self.table.metrics.row_cache_hits += 1
            return cached
        self.table.metrics.row_cache_misses += 1
        value = self.table.get(key)
        if value is not None:
            self.cache.put(ck, value)
        return value

    def put(self, key: bytes, value: bytes) -> None:
        self.cache.invalidate(self._cache_key(key))
        self.table.put(key, value)

    def delete(self, key: bytes) -> None:
        self.cache.invalidate(self._cache_key(key))
        self.table.delete(key)

    def scan(self, *args, **kwargs) -> Iterator[Tuple[bytes, bytes]]:
        return self.table.scan(*args, **kwargs)

    def __getattr__(self, name):
        return getattr(self.table, name)
