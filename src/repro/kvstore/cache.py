"""Read caching for the key-value store.

HBase fronts its store files with a BlockCache; this module provides
the embedded equivalent: a byte-bounded LRU (:class:`LRUCache`) and a
table wrapper (:class:`CachedKVTable`) that serves repeated point reads
from memory, invalidates on writes, and counts hits/misses so benches
can report cache effectiveness.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterator, Optional, Tuple

from repro.exceptions import KVStoreError
from repro.kvstore.table import KVTable


class LRUCache:
    """A byte-budgeted least-recently-used map from bytes to bytes."""

    def __init__(self, capacity_bytes: int = 16 * 1024 * 1024):
        if capacity_bytes < 1:
            raise KVStoreError(
                f"cache capacity must be >= 1 byte, got {capacity_bytes}"
            )
        self.capacity_bytes = capacity_bytes
        self._data: "OrderedDict[bytes, bytes]" = OrderedDict()
        self.current_bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._data)

    def get(self, key: bytes) -> Optional[bytes]:
        key = bytes(key)
        if key in self._data:
            self._data.move_to_end(key)
            self.hits += 1
            return self._data[key]
        self.misses += 1
        return None

    def put(self, key: bytes, value: bytes) -> None:
        key, value = bytes(key), bytes(value)
        entry_size = len(key) + len(value)
        if entry_size > self.capacity_bytes:
            return  # larger than the whole cache: not cacheable
        if key in self._data:
            self.current_bytes -= len(key) + len(self._data[key])
            del self._data[key]
        while self.current_bytes + entry_size > self.capacity_bytes:
            old_key, old_value = self._data.popitem(last=False)
            self.current_bytes -= len(old_key) + len(old_value)
            self.evictions += 1
        self._data[key] = value
        self.current_bytes += entry_size

    def invalidate(self, key: bytes) -> None:
        key = bytes(key)
        if key in self._data:
            self.current_bytes -= len(key) + len(self._data[key])
            del self._data[key]

    def clear(self) -> None:
        self._data.clear()
        self.current_bytes = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class CachedKVTable:
    """A :class:`KVTable` front with an LRU over point reads.

    Scans bypass the cache (range reads would churn it, the same reason
    HBase marks scans non-caching by default); writes invalidate.
    """

    def __init__(self, table: KVTable, capacity_bytes: int = 16 * 1024 * 1024):
        self.table = table
        self.cache = LRUCache(capacity_bytes)

    def get(self, key: bytes) -> Optional[bytes]:
        cached = self.cache.get(key)
        if cached is not None:
            return cached
        value = self.table.get(key)
        if value is not None:
            self.cache.put(key, value)
        return value

    def put(self, key: bytes, value: bytes) -> None:
        self.cache.invalidate(key)
        self.table.put(key, value)

    def delete(self, key: bytes) -> None:
        self.cache.invalidate(key)
        self.table.delete(key)

    def scan(self, *args, **kwargs) -> Iterator[Tuple[bytes, bytes]]:
        return self.table.scan(*args, **kwargs)

    def __getattr__(self, name):
        return getattr(self.table, name)
