"""Regions: contiguous key-range partitions of a table.

Each region owns the half-open key range ``[start_key, end_key)`` and
an :class:`~repro.kvstore.lsm.LSMStore`.  When a region grows past its
size threshold it splits at its median key, exactly the automatic
partitioning the paper relies on ("most key-value stores have an
automatic partitioning strategy", Section IV-E).
"""

from __future__ import annotations

import itertools
from typing import Iterator, List, Optional, Tuple

from repro.exceptions import RegionError
from repro.kvstore.lsm import LSMStore

#: process-wide region identities; splits mint fresh ids, so a cache
#: entry keyed by region id can never alias a daughter region's data
_REGION_IDS = itertools.count()


class Region:
    """One key-range shard of a table."""

    def __init__(
        self,
        start_key: Optional[bytes],
        end_key: Optional[bytes],
        flush_threshold: int = 4 * 1024 * 1024,
    ):
        self.start_key = start_key
        self.end_key = end_key
        self.store = LSMStore(flush_threshold=flush_threshold)
        self.row_count = 0
        #: stable identity for cache keys (never reused, unlike ``id()``)
        self.region_id = next(_REGION_IDS)

    # ------------------------------------------------------------------
    def owns(self, key: bytes) -> bool:
        """True if ``key`` falls in this region's range."""
        if self.start_key is not None and key < self.start_key:
            return False
        if self.end_key is not None and key >= self.end_key:
            return False
        return True

    def put(self, key: bytes, value: bytes) -> None:
        if not self.owns(key):
            raise RegionError(
                f"key {key!r} routed to region [{self.start_key!r}, "
                f"{self.end_key!r})"
            )
        before = self.store.get(key)
        self.store.put(key, value)
        if before is None:
            self.row_count += 1

    def delete(self, key: bytes) -> None:
        if not self.owns(key):
            raise RegionError(
                f"key {key!r} routed to region [{self.start_key!r}, "
                f"{self.end_key!r})"
            )
        if self.store.get(key) is not None:
            self.row_count -= 1
        self.store.delete(key)

    def get(self, key: bytes) -> Optional[bytes]:
        return self.store.get(key)

    def scan(
        self, start: Optional[bytes], stop: Optional[bytes]
    ) -> Iterator[Tuple[bytes, bytes]]:
        """Entries in the intersection of the request and the region."""
        lo = self.start_key if start is None else (
            start if self.start_key is None else max(start, self.start_key)
        )
        hi = self.end_key if stop is None else (
            stop if self.end_key is None else min(stop, self.end_key)
        )
        return self.store.scan(lo, hi)

    @property
    def approximate_size(self) -> int:
        return self.store.approximate_size

    # ------------------------------------------------------------------
    def split(self) -> Tuple["Region", "Region"]:
        """Split at the median visible key.

        Returns the two daughter regions; raises when the region has
        fewer than two rows (nothing to split around).
        """
        keys = [key for key, _ in self.store.scan()]
        if len(keys) < 2:
            raise RegionError("cannot split a region with fewer than 2 rows")
        pivot = keys[len(keys) // 2]
        left = Region(self.start_key, pivot, self.store.flush_threshold)
        right = Region(pivot, self.end_key, self.store.flush_threshold)
        for key, value in self.store.scan():
            (left if key < pivot else right).put(key, value)
        return left, right

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Region([{self.start_key!r}, {self.end_key!r}), "
            f"rows={self.row_count})"
        )
