"""The table facade: routing, auto-splitting, multi-range scans.

``KVTable`` is what the rest of the library talks to.  It mimics the
slice of the HBase surface TraSS uses: batched puts, point gets, and —
the centrepiece — multi-range scans with a server-side filter, where
every row touched inside the requested ranges is accounted as scan I/O
whether or not the filter lets it through.
"""

from __future__ import annotations

import bisect
import threading
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.exceptions import KVStoreError
from repro.kvstore.cache import ObjectLRUCache, scan_block_cache
from repro.kvstore.filters import RowFilter
from repro.kvstore.metrics import IOMetrics
from repro.kvstore.region import Region


@dataclass(frozen=True)
class ScanRange:
    """A half-open row-key range ``[start, stop)``; ``None`` = open end."""

    start: Optional[bytes] = None
    stop: Optional[bytes] = None

    def __post_init__(self) -> None:
        if (
            self.start is not None
            and self.stop is not None
            and self.start >= self.stop
        ):
            raise KVStoreError(
                f"empty scan range [{self.start!r}, {self.stop!r})"
            )


class KVTable:
    """A sorted key-value table split into auto-managed regions."""

    def __init__(
        self,
        name: str = "table",
        max_region_rows: int = 100_000,
        flush_threshold: int = 4 * 1024 * 1024,
        metrics: Optional[IOMetrics] = None,
    ):
        if max_region_rows < 2:
            raise KVStoreError(
                f"max_region_rows must be >= 2, got {max_region_rows}"
            )
        self.name = name
        self.max_region_rows = max_region_rows
        self.flush_threshold = flush_threshold
        self._metrics = metrics if metrics is not None else IOMetrics()
        # Parallel scan workers bind a private sink here so counters
        # stay exact without per-increment locking; the executor merges
        # the sinks back into ``_metrics`` in plan order.
        self._thread_metrics = threading.local()
        #: optional :class:`~repro.obs.storage_stats.StorageTelemetry`
        #: (per-region scan stats + key-space heat); ``None`` keeps the
        #: scan path free of telemetry work entirely
        self.storage_telemetry = None
        #: regions ordered by start key; region 0 starts open
        self.regions: List[Region] = [Region(None, None, flush_threshold)]
        #: optional :class:`~repro.kvstore.faults.FaultInjector`; when
        #: set, scans pass through its hook points
        self.fault_injector = None
        #: mutation epoch: bumped by every put/delete/split/flush/
        #: compaction; cache keys embed it, so entries of superseded
        #: states are unreachable rather than merely invalidated
        self.generation = 0
        #: optional scan block cache (``enable_scan_cache``)
        self.scan_cache: Optional[ObjectLRUCache] = None
        # Cached (region_count, sorted non-root start keys) for bisect
        # routing; regions only change by growing, so the count is a
        # sufficient invalidation key.
        self._starts_cache: Tuple[int, List[bytes]] = (0, [])

    # ------------------------------------------------------------------
    # Metrics (thread-local sinks for parallel scans)
    # ------------------------------------------------------------------
    @property
    def metrics(self) -> IOMetrics:
        sink = getattr(self._thread_metrics, "sink", None)
        return sink if sink is not None else self._metrics

    @metrics.setter
    def metrics(self, value: IOMetrics) -> None:
        self._metrics = value

    @property
    def telemetry(self):
        """The storage telemetry sink for the current thread.

        Scan workers bound via :meth:`bind_thread_metrics` get their
        private spawn; everyone else the table-wide sink (or ``None``
        when storage telemetry is disabled).
        """
        sink = getattr(self._thread_metrics, "telemetry", None)
        return sink if sink is not None else self.storage_telemetry

    def bind_thread_metrics(self, sink: IOMetrics, telemetry=None) -> None:
        """Route this thread's counter updates into ``sink`` (and its
        telemetry into ``telemetry`` when given)."""
        self._thread_metrics.sink = sink
        self._thread_metrics.telemetry = telemetry

    def unbind_thread_metrics(self) -> None:
        self._thread_metrics.sink = None
        self._thread_metrics.telemetry = None

    # ------------------------------------------------------------------
    # Caching
    # ------------------------------------------------------------------
    def enable_scan_cache(self, capacity_bytes: int) -> None:
        """Attach a scan block cache (``<= 0`` detaches).

        The cache sits *below* the I/O accounting: a cached scan still
        counts every row as scanned, so pruning and I/O-reduction
        numbers stay cache-agnostic — only wall time changes.
        """
        self.scan_cache = (
            scan_block_cache(capacity_bytes) if capacity_bytes > 0 else None
        )

    def _bump_generation(self) -> None:
        self.generation += 1

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def _region_starts(self) -> List[bytes]:
        """Sorted start keys of regions 1..n-1 (region 0 starts open)."""
        count, starts = self._starts_cache
        if count != len(self.regions):
            starts = [r.start_key for r in self.regions[1:]]
            self._starts_cache = (len(self.regions), starts)
        return starts

    def _region_index_for(self, key: bytes) -> int:
        """Index of the region owning ``key``."""
        # Region 0 has start None (the minimum); bisect the rest.
        return bisect.bisect_right(self._region_starts(), key)

    def overlapping_region_span(
        self, start: Optional[bytes], stop: Optional[bytes]
    ) -> Tuple[int, int]:
        """``[lo, hi)`` region indices intersecting ``[start, stop)``.

        Regions tile the key space contiguously (splits preserve this),
        so two bisects over the sorted start keys replace the linear
        overlap test — the difference between O(log regions) and
        O(regions) per range in the Figure 19 shard sweep.
        """
        starts = self._region_starts()
        lo = 0 if start is None else bisect.bisect_right(starts, start)
        hi = (
            len(self.regions)
            if stop is None
            else bisect.bisect_left(starts, stop) + 1
        )
        return lo, max(lo, hi)

    def region_for(self, key: bytes) -> Region:
        return self.regions[self._region_index_for(bytes(key))]

    @property
    def num_regions(self) -> int:
        return len(self.regions)

    @property
    def row_count(self) -> int:
        return sum(r.row_count for r in self.regions)

    @property
    def approximate_size(self) -> int:
        return sum(r.approximate_size for r in self.regions)

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def put(self, key: bytes, value: bytes) -> None:
        key = bytes(key)
        idx = self._region_index_for(key)
        region = self.regions[idx]
        region.put(key, value)
        self._bump_generation()
        self.metrics.puts += 1
        if region.row_count > self.max_region_rows:
            self._split_region(idx)

    def batch_put(self, items: Iterable[Tuple[bytes, bytes]]) -> int:
        """Apply puts in bulk; returns the number written."""
        count = 0
        for key, value in items:
            self.put(key, value)
            count += 1
        return count

    def delete(self, key: bytes) -> None:
        key = bytes(key)
        self.region_for(key).delete(key)
        self._bump_generation()

    def _split_region(self, idx: int) -> None:
        left, right = self.regions[idx].split()
        self.regions[idx : idx + 1] = [left, right]
        self._bump_generation()

    def flush_all(self) -> None:
        # Flush/compaction leave visible data intact, but they replace
        # the physical runs cached blocks were built from — invalidate
        # conservatively, exactly as HBase's BlockCache does.
        for region in self.regions:
            region.store.flush()
        self._bump_generation()

    def compact_all(self) -> None:
        for region in self.regions:
            region.store.compact()
        self._bump_generation()

    def freeze(self, directory: str) -> List[str]:
        """Rewrite every region into one compact mmap segment each.

        A full merge per region (memtable + all runs, tombstones
        dropped — nothing older exists to shadow) is written as
        ``freeze-<generation>-<region>.seg`` under ``directory`` and
        adopted as the region's only run.  Visible data is unchanged;
        only the physical representation (and the on-disk footprint)
        changes.  Returns the paths written.
        """
        import os

        from repro.kvstore.memtable import MemTable
        from repro.kvstore.segment import write_segment

        os.makedirs(directory, exist_ok=True)
        paths: List[str] = []
        for i, region in enumerate(self.regions):
            entries = list(region.store.scan())
            region.store.memtable = MemTable()
            if entries:
                path = os.path.join(
                    directory, f"freeze-{self.generation:05d}-{i:05d}.seg"
                )
                segment = write_segment(path, entries)
                self.adopt_segment(segment)
                region.store.sstables = [segment]
                paths.append(path)
            else:
                region.store.sstables = []
        self._bump_generation()
        return paths

    def adopt_segment(self, segment) -> None:
        """Point a segment's counters at this table's metrics sink.

        Late-bound through the ``metrics`` property so parallel scan
        workers report into their thread-local sinks, exactly like
        every other ``IOMetrics`` counter.
        """
        segment.metrics_provider = lambda: self.metrics

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def get(self, key: bytes) -> Optional[bytes]:
        key = bytes(key)
        self.metrics.gets += 1
        region = self.region_for(key)
        value = region.get(key)
        if value is not None:
            self.metrics.bytes_read += len(key) + len(value)
        tel = self.telemetry
        if tel is not None:
            tel.region_stats(region).gets += 1
            if tel.heatmap is not None:
                tel.heatmap.record(key)
        return value

    def _regions_overlapping(
        self, start: Optional[bytes], stop: Optional[bytes]
    ) -> List[Region]:
        lo, hi = self.overlapping_region_span(start, stop)
        return self.regions[lo:hi]

    def scan(
        self,
        start: Optional[bytes] = None,
        stop: Optional[bytes] = None,
        row_filter: Optional[RowFilter] = None,
    ) -> Iterator[Tuple[bytes, bytes]]:
        """Rows in ``[start, stop)`` surviving the server-side filter.

        Rows the filter rejects are still counted in ``rows_scanned``
        and ``bytes_read`` — they were real I/O on the server.

        With a fault injector installed the scan passes through its
        hook points: a region may raise
        :class:`~repro.exceptions.RegionUnavailableError` as its scan
        starts (nothing of that region was delivered yet, so a caller
        that retries the whole range sees every row at most once), and
        splits/compactions may be forced mid-scan — the region list and
        row iterators captured here keep reading the pre-mutation
        structures, so delivery stays exactly-once.
        """
        injector = self.fault_injector
        tel = self.telemetry
        self.metrics.range_seeks += 1
        for region in self._regions_overlapping(start, stop):
            if injector is not None:
                injector.on_region_scan_start(self, region)
            self.metrics.regions_visited += 1
            if tel is not None:
                region_stats = tel.region_stats(region)
                region_stats.scans += 1
                heatmap = tel.heatmap
            for key, value in self._region_rows(region, start, stop):
                self.metrics.rows_scanned += 1
                self.metrics.bytes_read += len(key) + len(value)
                if tel is not None:
                    region_stats.rows_scanned += 1
                    region_stats.bytes_read += len(key) + len(value)
                    if heatmap is not None:
                        heatmap.record(key)
                if injector is not None:
                    injector.on_row_scanned(self, region)
                if row_filter is not None:
                    self.metrics.filter_evaluations += 1
                    if not row_filter.accept(key, value):
                        self.metrics.filter_rejections += 1
                        continue
                self.metrics.rows_returned += 1
                if tel is not None:
                    region_stats.rows_returned += 1
                yield key, value

    def _region_rows(
        self, region: Region, start: Optional[bytes], stop: Optional[bytes]
    ):
        """One region's merged run for ``[start, stop)``, block-cached.

        Keys embed ``(region id, range, generation)``, so any write
        since the entry was built makes it unreachable — a hit is
        always current.  With a fault injector installed the cache is
        bypassed entirely: injected mid-scan disruptions must race the
        *live* LSM iterators, exactly as on the seed read path.
        """
        cache = self.scan_cache
        if cache is None or self.fault_injector is not None:
            return region.scan(start, stop)
        key = (region.region_id, start, stop, self.generation)
        rows = cache.get(key)
        if rows is not None:
            self.metrics.block_cache_hits += 1
            return rows
        self.metrics.block_cache_misses += 1
        rows = list(region.scan(start, stop))
        cost = sum(len(k) + len(v) for k, v in rows) + 64
        cache.put(key, rows, cost)
        return rows

    def scan_ranges(
        self,
        ranges: Sequence[ScanRange],
        row_filter: Optional[RowFilter] = None,
    ) -> List[Tuple[bytes, bytes]]:
        """Execute every range scan and concatenate the results.

        Ranges are executed in the given order; overlapping ranges will
        return duplicate rows (the planner is expected to merge first).
        """
        out: List[Tuple[bytes, bytes]] = []
        for scan_range in ranges:
            out.extend(self.scan(scan_range.start, scan_range.stop, row_filter))
        return out

    def full_scan(self) -> Iterator[Tuple[bytes, bytes]]:
        """Every row in the table (baseline work / verification)."""
        return self.scan(None, None, None)
