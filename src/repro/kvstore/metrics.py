"""I/O accounting for the key-value store.

The paper's evaluation reports *retrieved trajectories*, *candidates
after pruning* and I/O reduction percentages; these counters are where
those numbers come from in this reproduction.  ``rows_scanned`` counts
every row the store had to look at inside scan ranges, whether or not a
server-side filter later dropped it; ``rows_returned`` counts rows that
survived filtering and crossed the (simulated) client boundary.
"""

from __future__ import annotations

import bisect
import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

#: seek-depth buckets: structures consulted by one LSM point read
#: (1 = memtable hit, each SSTable adds one)
SEEK_DEPTH_BUCKETS: Tuple[float, ...] = (1, 2, 3, 4, 6, 8, 12, 16)

#: flush / compaction duration buckets in seconds
DURATION_BUCKETS: Tuple[float, ...] = (
    0.0001,
    0.0005,
    0.001,
    0.005,
    0.01,
    0.05,
    0.1,
    0.5,
    1.0,
    5.0,
)


class FixedBucketCounts:
    """A mergeable fixed-bucket histogram (Prometheus ``le`` semantics).

    The storage-engine telemetry keeps distributions (seek depth, flush
    and compaction durations) as raw per-bucket counts down here in the
    kvstore layer; the observability registry copies the state out at
    refresh time, so exporting can never perturb the accounting.
    """

    __slots__ = ("buckets", "counts", "sum", "count")

    def __init__(self, buckets: Sequence[float]):
        self.buckets: Tuple[float, ...] = tuple(float(b) for b in buckets)
        #: one slot per finite bucket plus the +Inf overflow slot
        self.counts: List[int] = [0] * (len(self.buckets) + 1)
        self.sum: float = 0.0
        self.count: int = 0

    def observe(self, value: float) -> None:
        self.counts[bisect.bisect_left(self.buckets, value)] += 1
        self.sum += value
        self.count += 1

    def merge_from(self, other: "FixedBucketCounts") -> None:
        if other.buckets != self.buckets:
            raise ValueError("cannot merge histograms with different buckets")
        for i, c in enumerate(other.counts):
            self.counts[i] += c
        self.sum += other.sum
        self.count += other.count

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def state(self) -> Tuple[List[int], float, int]:
        """``(counts, sum, count)`` for registry absorption."""
        return list(self.counts), self.sum, self.count


@dataclass
class IOMetrics:
    """Mutable counter bundle; one per table, shareable by scanners."""

    rows_scanned: int = 0
    rows_returned: int = 0
    bytes_read: int = 0
    range_seeks: int = 0
    gets: int = 0
    puts: int = 0
    bloom_negatives: int = 0
    sstables_opened: int = 0
    regions_visited: int = 0
    filter_evaluations: int = 0
    filter_rejections: int = 0
    #: transient faults the injector raised against this table
    faults_injected: int = 0
    #: range-scan attempts repeated after a transient failure
    retries: int = 0
    #: ranges abandoned in degraded mode (retry budget / breaker / deadline)
    ranges_skipped: int = 0
    #: circuit-breaker open transitions
    breaker_trips: int = 0
    # ------------------------------------------------------------------
    # Cache tiers (the execution performance layer).  Hits/misses are
    # *additional* accounting: a block-cache hit still counts its rows
    # as ``rows_scanned`` (the rows were logically scanned, just served
    # from memory), so pruning/I-O comparisons stay cache-agnostic.
    # ------------------------------------------------------------------
    #: LSM scan block cache (materialised merged runs per key range)
    block_cache_hits: int = 0
    block_cache_misses: int = 0
    #: point-read row cache (the HBase BlockCache stand-in for gets)
    row_cache_hits: int = 0
    row_cache_misses: int = 0
    #: decoded-``TrajectoryRecord`` cache (skips ``decode_row``)
    record_cache_hits: int = 0
    record_cache_misses: int = 0
    #: global-pruning plan cache (skips Algorithm 1 re-planning)
    plan_cache_hits: int = 0
    plan_cache_misses: int = 0
    #: columnar decoded-candidate cache (skips ``decode_row_columnar``)
    columnar_cache_hits: int = 0
    columnar_cache_misses: int = 0
    # ------------------------------------------------------------------
    # Scan-plan coalescing (the vectorised batch query pipeline).
    # ------------------------------------------------------------------
    #: single-query scan ranges eliminated by gap coalescing in the
    #: planner (``range_merge_gap`` > 0)
    ranges_merged: int = 0
    #: per-query key ranges folded into the shared plan of a multi-query
    #: batch (planned ranges minus ranges actually scanned)
    batch_ranges_merged: int = 0
    #: row deliveries served from a shared batch scan beyond the first
    #: (each counts a row some query did *not* have to re-scan)
    batch_rows_shared: int = 0
    # ------------------------------------------------------------------
    # Compact mmap segments (the frozen read-optimized format).  The
    # compressed/logical pair is what the advisor divides to report the
    # live compression ratio of the bytes actually touched.
    # ------------------------------------------------------------------
    #: segment blocks decoded (lazy materialisation, counted once each)
    segment_blocks_materialized: int = 0
    #: on-disk (compressed) bytes of the blocks materialised
    segment_bytes_compressed: int = 0
    #: logical (uncompressed entry payload) bytes those blocks carry
    segment_bytes_logical: int = 0

    def snapshot(self) -> Dict[str, int]:
        """A plain-dict copy of the current counters."""
        return {
            f.name: getattr(self, f.name) for f in dataclasses.fields(self)
        }

    def reset(self) -> None:
        """Zero every counter (between benchmark phases)."""
        for name in self.snapshot():
            setattr(self, name, 0)

    def diff(self, before: Dict[str, int]) -> Dict[str, int]:
        """Counter deltas since a :meth:`snapshot`."""
        now = self.snapshot()
        return {name: now[name] - before.get(name, 0) for name in now}

    def merge_from(self, other: "IOMetrics") -> None:
        """Add every counter of ``other`` into this bundle.

        The parallel scan executor gives each worker thread a private
        ``IOMetrics`` sink and merges them here — under the caller's
        lock discipline — so concurrent scans keep counters exact
        without per-increment synchronisation.
        """
        for f in dataclasses.fields(self):
            setattr(
                self, f.name, getattr(self, f.name) + getattr(other, f.name)
            )
