"""Write-ahead log for crash-safe ingestion.

HBase buffers writes in a memtable but survives crashes by logging each
mutation first; this module gives the embedded store the same
guarantee.  Records are length-prefixed and individually CRC-protected,
so replay stops cleanly at a torn tail instead of propagating garbage:

    u8 op (1=put, 2=delete) | u32 key len | u32 value len |
    key bytes | value bytes | u32 crc32(of everything above)
"""

from __future__ import annotations

import os
import struct
import zlib
from typing import Iterator, List, Optional, Tuple

from repro.exceptions import KVStoreError

OP_PUT = 1
OP_DELETE = 2

_RECORD_HEADER = struct.Struct(">BII")
_CRC = struct.Struct(">I")


class WriteAheadLog:
    """An append-only mutation log with per-record checksums."""

    def __init__(self, path: str, sync: bool = False):
        self.path = path
        self.sync = sync
        self._fh = open(path, "ab")

    # ------------------------------------------------------------------
    def append_put(self, key: bytes, value: bytes) -> None:
        self._append(OP_PUT, key, value)

    def append_delete(self, key: bytes) -> None:
        self._append(OP_DELETE, key, b"")

    def _append(self, op: int, key: bytes, value: bytes) -> None:
        body = _RECORD_HEADER.pack(op, len(key), len(value)) + key + value
        self._fh.write(body)
        self._fh.write(_CRC.pack(zlib.crc32(body)))
        if self.sync:
            self._fh.flush()
            os.fsync(self._fh.fileno())

    def flush(self) -> None:
        self._fh.flush()

    # ------------------------------------------------------------------
    def truncate(self) -> None:
        """Discard the log (after its contents reached durable storage)."""
        self._fh.close()
        self._fh = open(self.path, "wb")

    def close(self) -> None:
        self._fh.close()

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    @staticmethod
    def replay(path: str) -> List[Tuple[int, bytes, bytes]]:
        """Read back every intact record as ``(op, key, value)``.

        A torn or corrupted tail (the expected crash artefact) ends the
        replay at the last intact record; corruption *before* the tail
        raises, because silently skipping interior records would reorder
        history.
        """
        if not os.path.exists(path):
            return []
        with open(path, "rb") as fh:
            data = fh.read()
        records: List[Tuple[int, bytes, bytes]] = []
        offset = 0
        while offset < len(data):
            if offset + _RECORD_HEADER.size > len(data):
                break  # torn header at the tail
            op, key_len, val_len = _RECORD_HEADER.unpack_from(data, offset)
            body_end = offset + _RECORD_HEADER.size + key_len + val_len
            if body_end + _CRC.size > len(data):
                break  # torn record at the tail
            body = data[offset:body_end]
            (crc,) = _CRC.unpack_from(data, body_end)
            if zlib.crc32(body) != crc:
                if body_end + _CRC.size == len(data):
                    break  # corrupted final record: treat as torn tail
                raise KVStoreError(
                    f"WAL corruption mid-file at offset {offset} in {path}"
                )
            if op not in (OP_PUT, OP_DELETE):
                raise KVStoreError(f"unknown WAL opcode {op} in {path}")
            key_start = offset + _RECORD_HEADER.size
            key = data[key_start : key_start + key_len]
            value = data[key_start + key_len : body_end]
            records.append((op, key, value))
            offset = body_end + _CRC.size
        return records
