"""Write-ahead log for crash-safe ingestion.

HBase buffers writes in a memtable but survives crashes by logging each
mutation first; this module gives the embedded store the same
guarantee.  Records are length-prefixed and individually CRC-protected,
so replay stops cleanly at a torn tail instead of propagating garbage:

    u8 op (1=put, 2=delete) | u32 key len | u32 value len |
    key bytes | value bytes | u32 crc32(of everything above)

Durability contract: with ``sync=True`` every append (and every
``flush()``) ends in an ``fsync``, so a record whose append returned is
on stable storage — the *acknowledged* point crash-recovery tests pin
down.  With ``sync=False`` the tail rides in OS/userspace buffers until
``flush()``; a crash can lose it (and only it).

The log is a context manager with an idempotent ``close()``; a
:class:`~repro.kvstore.faults.FaultInjector` can be attached to die at
the ``wal.append.*`` crash points, including a torn-record death that
leaves half a record on disk for replay to discard.
"""

from __future__ import annotations

import os
import struct
import zlib
from typing import Iterator, List, Optional, Tuple

from repro.exceptions import KVStoreError
from repro.kvstore.faults import (
    CRASH_WAL_APPEND_POST,
    CRASH_WAL_APPEND_PRE,
    CRASH_WAL_APPEND_TORN,
)

OP_PUT = 1
OP_DELETE = 2

_RECORD_HEADER = struct.Struct(">BII")
_CRC = struct.Struct(">I")


class WriteAheadLog:
    """An append-only mutation log with per-record checksums."""

    #: process-wide WAL telemetry, summed over every log instance —
    #: absorbed by the metrics registry as ``trass.storage.wal.*``
    #: (appends that returned, fsync calls issued, record bytes written)
    totals = {"appends": 0, "fsyncs": 0, "bytes_appended": 0}

    def __init__(self, path: str, sync: bool = False, fault_injector=None):
        self.path = path
        self.sync = sync
        self.fault_injector = fault_injector
        self._fh = open(path, "ab")
        self._closed = False
        #: per-log telemetry (same fields as :attr:`totals`)
        self.appends = 0
        self.fsyncs = 0
        self.bytes_appended = 0

    # ------------------------------------------------------------------
    def append_put(self, key: bytes, value: bytes) -> None:
        self._append(OP_PUT, key, value)

    def append_delete(self, key: bytes) -> None:
        self._append(OP_DELETE, key, b"")

    def _append(self, op: int, key: bytes, value: bytes) -> None:
        if self._closed:
            raise KVStoreError(f"append to closed WAL {self.path}")
        injector = self.fault_injector
        if injector is not None:
            injector.crash_point(CRASH_WAL_APPEND_PRE)
        body = _RECORD_HEADER.pack(op, len(key), len(value)) + key + value
        record = body + _CRC.pack(zlib.crc32(body))
        if injector is not None and injector.should_crash(
            CRASH_WAL_APPEND_TORN
        ):
            # Half the record reaches stable storage, then the process
            # dies: the torn-tail artefact replay must discard.
            self._fh.write(record[: max(1, len(record) // 2)])
            self._fh.flush()
            os.fsync(self._fh.fileno())
            injector.crash(CRASH_WAL_APPEND_TORN)
        self._fh.write(record)
        self.appends += 1
        self.bytes_appended += len(record)
        totals = WriteAheadLog.totals
        totals["appends"] += 1
        totals["bytes_appended"] += len(record)
        if self.sync:
            self._fh.flush()
            os.fsync(self._fh.fileno())
            self._record_fsync()
        if injector is not None:
            injector.crash_point(CRASH_WAL_APPEND_POST)

    def flush(self) -> None:
        """Push buffered records down; with ``sync=True`` also fsync.

        Safe on a closed log (no-op) so shutdown paths can call it
        unconditionally.
        """
        if self._closed:
            return
        self._fh.flush()
        if self.sync:
            os.fsync(self._fh.fileno())
            self._record_fsync()

    def _record_fsync(self) -> None:
        self.fsyncs += 1
        WriteAheadLog.totals["fsyncs"] += 1

    # ------------------------------------------------------------------
    def truncate(self) -> None:
        """Discard the log (after its contents reached durable storage)."""
        if not self._closed:
            self._fh.close()
        self._fh = open(self.path, "wb")
        self._closed = False

    def close(self) -> None:
        """Flush and close; idempotent (second close is a no-op)."""
        if self._closed:
            return
        self.flush()
        self._closed = True
        self._fh.close()

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    @staticmethod
    def replay(path: str) -> List[Tuple[int, bytes, bytes]]:
        """Read back every intact record as ``(op, key, value)``.

        A torn or corrupted tail (the expected crash artefact) ends the
        replay at the last intact record; corruption *before* the tail
        raises, because silently skipping interior records would reorder
        history.
        """
        if not os.path.exists(path):
            return []
        with open(path, "rb") as fh:
            data = fh.read()
        records: List[Tuple[int, bytes, bytes]] = []
        offset = 0
        while offset < len(data):
            if offset + _RECORD_HEADER.size > len(data):
                break  # torn header at the tail
            op, key_len, val_len = _RECORD_HEADER.unpack_from(data, offset)
            body_end = offset + _RECORD_HEADER.size + key_len + val_len
            if body_end + _CRC.size > len(data):
                break  # torn record at the tail
            body = data[offset:body_end]
            (crc,) = _CRC.unpack_from(data, body_end)
            if zlib.crc32(body) != crc:
                if body_end + _CRC.size == len(data):
                    break  # corrupted final record: treat as torn tail
                raise KVStoreError(
                    f"WAL corruption mid-file at offset {offset} in {path}"
                )
            if op not in (OP_PUT, OP_DELETE):
                raise KVStoreError(f"unknown WAL opcode {op} in {path}")
            key_start = offset + _RECORD_HEADER.size
            key = data[key_start : key_start + key_len]
            value = data[key_start + key_len : body_end]
            records.append((op, key, value))
            offset = body_end + _CRC.size
        return records
