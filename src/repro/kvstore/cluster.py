"""The *offline* cluster cost model for the embedded store.

This module is the analytical counterpart of the real serving tier in
:mod:`repro.serve`: ``repro doctor`` and the Figure 19 shard sweep use
``ClusterModel`` to *predict* placement effects without spawning
processes, while ``repro serve`` actually runs shard workers.  Two
cluster effects matter for the prediction:

* **skew** — with few salt shards, similar trajectories concentrate in
  few regions, so one region server does most of a query's scanning
  while the others idle (query latency ~ the *maximum* per-node work);
* **fan-out** — with many shards every query multiplies its range
  scans, paying a per-range RPC cost on every node.

``ClusterModel`` replays a table's regions onto ``n`` simulated nodes
(round-robin by region order, like HBase's balancer at steady state)
and converts observed scan statistics into a makespan:

    latency(query) = max over nodes of
        rows_scanned(node) * row_cost + ranges(node) * seek_cost

It is a *model* — deliberately simple, stated in DESIGN.md — but it is
driven by the real per-region scan counts of the real store, so the
U-shape it produces comes from measured data placement, not from
assumptions about it.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.exceptions import KVStoreError
from repro.kvstore.table import KVTable, ScanRange


@dataclass
class NodeLoad:
    """Per-node tallies for one simulated query."""

    rows_scanned: int = 0
    range_seeks: int = 0

    def cost(self, row_cost: float, seek_cost: float) -> float:
        return self.rows_scanned * row_cost + self.range_seeks * seek_cost


class ClusterModel:
    """Replays multi-range scans onto ``n`` simulated region servers."""

    def __init__(
        self,
        table: KVTable,
        nodes: int = 5,
        row_cost: float = 1.0,
        seek_cost: float = 20.0,
    ):
        if nodes < 1:
            raise KVStoreError(f"node count must be >= 1, got {nodes}")
        if row_cost < 0:
            raise KVStoreError(f"row_cost must be >= 0, got {row_cost}")
        if seek_cost < 0:
            raise KVStoreError(f"seek_cost must be >= 0, got {seek_cost}")
        self.table = table
        self.nodes = nodes
        self.row_cost = row_cost
        self.seek_cost = seek_cost

    # ------------------------------------------------------------------
    def _node_of_region(self, region_index: int) -> int:
        """Round-robin region placement (HBase balancer steady state)."""
        return region_index % self.nodes

    def simulate_scan(self, ranges: Sequence[ScanRange]) -> Dict[int, NodeLoad]:
        """Per-node load of executing ``ranges`` against the table.

        Counts the same rows the real scan would touch (pre-filter),
        attributed to the node hosting each region.  The region list is
        snapshotted once up front: a mid-query split (fault injection
        can force one from inside ``region.scan``) would otherwise
        shift region indices between ranges, reassigning nodes mid-way
        and attributing a split region's rows twice — once as the whole
        and once per half.  Split-off regions keep their own stores, so
        the snapshot stays scannable and every row is counted exactly
        once under one consistent placement.

        Overlapping regions come from a bisect over the sorted region
        boundaries (regions tile the key space), so a query of R ranges
        costs O(R log regions) plus the rows actually inside the ranges.
        """
        regions: List = list(self.table.regions)
        starts = [r.start_key for r in regions[1:]]
        loads: Dict[int, NodeLoad] = {
            node: NodeLoad() for node in range(self.nodes)
        }
        for scan_range in ranges:
            lo = (
                0
                if scan_range.start is None
                else bisect.bisect_right(starts, scan_range.start)
            )
            hi = (
                len(regions)
                if scan_range.stop is None
                else bisect.bisect_left(starts, scan_range.stop) + 1
            )
            for idx in range(lo, max(lo, hi)):
                region = regions[idx]
                node = self._node_of_region(idx)
                load = loads[node]
                load.range_seeks += 1
                load.rows_scanned += sum(
                    1 for _ in region.scan(scan_range.start, scan_range.stop)
                )
        return loads

    def makespan(self, ranges: Sequence[ScanRange]) -> float:
        """Query latency under the model: the slowest node's cost."""
        loads = self.simulate_scan(ranges)
        return max(
            load.cost(self.row_cost, self.seek_cost) for load in loads.values()
        )

    def skew(self, ranges: Sequence[ScanRange]) -> float:
        """Load imbalance: max node rows over mean node rows (>= 1).

        1.0 is a perfectly balanced query; the paper's "data skew
        problem" with small shard counts shows up as large values.
        """
        loads = self.simulate_scan(ranges)
        rows = [load.rows_scanned for load in loads.values()]
        total = sum(rows)
        if total == 0:
            return 1.0
        mean = total / self.nodes
        return max(rows) / mean
