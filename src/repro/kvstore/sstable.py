"""Immutable sorted string tables.

An SSTable is a frozen, sorted run of ``(key, value | tombstone)``
entries produced by flushing a memtable or by compaction.  Point reads
consult a per-table bloom filter first and then binary-search the key
array; scans bisect to the start key.  Tables can round-trip through a
compact binary file format with a CRC32 integrity check, mirroring the
HFile role in HBase.
"""

from __future__ import annotations

import bisect
import mmap
import struct
import zlib
from typing import Iterable, Iterator, List, Optional, Tuple

from repro.exceptions import CorruptSSTableError, KVStoreError
from repro.kvstore.bloom import BloomFilter
from repro.kvstore.memtable import TOMBSTONE, Entry

_MAGIC = b"RSST"
_VERSION = 1
_HEADER = struct.Struct(">4sBQ")  # magic, version, entry count
_ENTRY_HEADER = struct.Struct(">IBI")  # key len, tombstone flag, value len


class SSTable:
    """An immutable sorted run with a bloom filter."""

    __slots__ = (
        "_keys",
        "_values",
        "bloom",
        "size_bytes",
        "reads",
        "bloom_negatives",
        "bloom_false_positives",
    )

    def __init__(self, keys: List[bytes], values: List[object]):
        if len(keys) != len(values):
            raise KVStoreError("key/value count mismatch")
        for i in range(1, len(keys)):
            if keys[i - 1] >= keys[i]:
                raise KVStoreError(
                    f"SSTable entries out of order at position {i}"
                )
        self._keys = keys
        self._values = values
        self.bloom = BloomFilter(max(1, len(keys)))
        # Telemetry: point reads against this run, reads the bloom
        # filter short-circuited, and reads it let through that then
        # missed (the false-positive rate the tuning advisor reports).
        self.reads = 0
        self.bloom_negatives = 0
        self.bloom_false_positives = 0
        # The exact serialised size (what `to_bytes` will produce), so
        # flush/compaction byte accounting matches bytes on disk.
        self.size_bytes = _HEADER.size + 8  # + bloom length u32 + CRC32
        for key, value in zip(keys, values):
            self.bloom.add(key)
            self.size_bytes += _ENTRY_HEADER.size + len(key)
            if value is not TOMBSTONE:
                self.size_bytes += len(value)  # type: ignore[arg-type]
        self.size_bytes += 18 + (self.bloom.num_bits + 7) // 8

    # ------------------------------------------------------------------
    @classmethod
    def _assemble(
        cls,
        keys: List[bytes],
        values: List[object],
        bloom: BloomFilter,
        size_bytes: int,
    ) -> "SSTable":
        """Fast path for CRC-verified data: no re-sort check, no bloom
        rebuild — the persisted filter is adopted as-is."""
        table = cls.__new__(cls)
        table._keys = keys
        table._values = values
        table.bloom = bloom
        table.size_bytes = size_bytes
        table.reads = 0
        table.bloom_negatives = 0
        table.bloom_false_positives = 0
        return table

    @staticmethod
    def from_entries(entries: Iterable[Entry]) -> "SSTable":
        """Build from an iterable already sorted by key."""
        keys: List[bytes] = []
        values: List[object] = []
        for key, value in entries:
            keys.append(bytes(key))
            values.append(value)
        return SSTable(keys, values)

    def __len__(self) -> int:
        return len(self._keys)

    @property
    def min_key(self) -> Optional[bytes]:
        return self._keys[0] if self._keys else None

    @property
    def max_key(self) -> Optional[bytes]:
        return self._keys[-1] if self._keys else None

    # ------------------------------------------------------------------
    def get(self, key: bytes) -> Optional[object]:
        """Value, ``TOMBSTONE``, or ``None``; bloom-gated binary search."""
        key = bytes(key)
        self.reads += 1
        if not self.bloom.might_contain(key):
            self.bloom_negatives += 1
            return None
        i = bisect.bisect_left(self._keys, key)
        if i < len(self._keys) and self._keys[i] == key:
            return self._values[i]
        self.bloom_false_positives += 1
        return None

    def might_contain(self, key: bytes) -> bool:
        return self.bloom.might_contain(bytes(key))

    def scan(
        self, start: Optional[bytes] = None, stop: Optional[bytes] = None
    ) -> Iterator[Entry]:
        """Entries with ``start <= key < stop``, tombstones included."""
        lo = 0 if start is None else bisect.bisect_left(self._keys, bytes(start))
        hi = (
            len(self._keys)
            if stop is None
            else bisect.bisect_left(self._keys, bytes(stop))
        )
        for i in range(lo, hi):
            yield self._keys[i], self._values[i]

    def overlaps_range(self, start: Optional[bytes], stop: Optional[bytes]) -> bool:
        """True if any entry could fall in ``[start, stop)``."""
        if not self._keys:
            return False
        if start is not None and self._keys[-1] < start:
            return False
        if stop is not None and self._keys[0] >= stop:
            return False
        return True

    # ------------------------------------------------------------------
    # File round trip
    # ------------------------------------------------------------------
    def to_bytes(self) -> bytes:
        """Serialise: header, entries, bloom, CRC32 trailer."""
        parts = [_HEADER.pack(_MAGIC, _VERSION, len(self._keys))]
        for key, value in zip(self._keys, self._values):
            if value is TOMBSTONE:
                parts.append(_ENTRY_HEADER.pack(len(key), 1, 0))
                parts.append(key)
            else:
                data = bytes(value)  # type: ignore[arg-type]
                parts.append(_ENTRY_HEADER.pack(len(key), 0, len(data)))
                parts.append(key)
                parts.append(data)
        bloom_bytes = self.bloom.to_bytes()
        parts.append(struct.pack(">I", len(bloom_bytes)))
        parts.append(bloom_bytes)
        body = b"".join(parts)
        return body + struct.pack(">I", zlib.crc32(body))

    @staticmethod
    def from_bytes(data) -> "SSTable":
        """Deserialise and verify; raises :class:`CorruptSSTableError`.

        Accepts any bytes-like buffer (``bytes``, ``memoryview``, an
        ``mmap``), so :meth:`load` can parse straight off the page
        cache without first copying the whole file into a string.
        """
        size = len(data)
        if size < _HEADER.size + 4:
            raise CorruptSSTableError("SSTable file truncated")
        (crc,) = struct.unpack_from(">I", data, size - 4)
        body = memoryview(data)[: size - 4]
        try:
            return SSTable._parse_body(body, crc, size)
        finally:
            # Explicit release: a propagating CorruptSSTableError keeps
            # the parse frame (and this view) alive via its traceback,
            # which would make ``load``'s ``mmap.close()`` fail with
            # BufferError.  Every parsed field is copied out, so the
            # view is dead weight by now either way.
            body.release()

    @staticmethod
    def _parse_body(body, crc: int, size: int) -> "SSTable":
        if zlib.crc32(body) != crc:
            raise CorruptSSTableError("SSTable checksum mismatch")
        magic, version, count = _HEADER.unpack_from(body, 0)
        if magic != _MAGIC:
            raise CorruptSSTableError(f"bad magic {bytes(magic)!r}")
        if version != _VERSION:
            raise CorruptSSTableError(f"unsupported SSTable version {version}")
        offset = _HEADER.size
        keys: List[bytes] = []
        values: List[object] = []
        for _ in range(count):
            if offset + _ENTRY_HEADER.size > len(body):
                raise CorruptSSTableError("entry header past end of file")
            key_len, flag, val_len = _ENTRY_HEADER.unpack_from(body, offset)
            offset += _ENTRY_HEADER.size
            if offset + key_len + val_len > len(body):
                raise CorruptSSTableError("entry data past end of file")
            keys.append(bytes(body[offset : offset + key_len]))
            offset += key_len
            if flag:
                values.append(TOMBSTONE)
            else:
                values.append(bytes(body[offset : offset + val_len]))
                offset += val_len
        (bloom_len,) = struct.unpack_from(">I", body, offset)
        offset += 4
        if offset + bloom_len != len(body):
            raise CorruptSSTableError("bloom filter section length mismatch")
        # Adopt the persisted bloom filter instead of re-hashing every
        # key (the bytes are already CRC-protected with the rest of the
        # file).
        try:
            bloom = BloomFilter.from_bytes(bytes(body[offset : offset + bloom_len]))
        except KVStoreError as exc:
            raise CorruptSSTableError(f"corrupt bloom filter: {exc}") from exc
        return SSTable._assemble(keys, values, bloom, size)

    def write_to(self, path: str) -> None:
        with open(path, "wb") as fh:
            fh.write(self.to_bytes())

    @staticmethod
    def load(path: str) -> "SSTable":
        """Load via ``mmap``: entries are parsed straight off the page
        cache rather than through a full in-heap copy of the file."""
        with open(path, "rb") as fh:
            try:
                mapped = mmap.mmap(fh.fileno(), 0, access=mmap.ACCESS_READ)
            except ValueError as exc:  # zero-length file
                raise CorruptSSTableError(f"SSTable file empty: {path}") from exc
            try:
                return SSTable.from_bytes(mapped)
            finally:
                mapped.close()
