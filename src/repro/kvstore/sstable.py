"""Immutable sorted string tables.

An SSTable is a frozen, sorted run of ``(key, value | tombstone)``
entries produced by flushing a memtable or by compaction.  Point reads
consult a per-table bloom filter first and then binary-search the key
array; scans bisect to the start key.  Tables can round-trip through a
compact binary file format with a CRC32 integrity check, mirroring the
HFile role in HBase.
"""

from __future__ import annotations

import bisect
import struct
import zlib
from typing import Iterable, Iterator, List, Optional, Tuple

from repro.exceptions import CorruptSSTableError, KVStoreError
from repro.kvstore.bloom import BloomFilter
from repro.kvstore.memtable import TOMBSTONE, Entry

_MAGIC = b"RSST"
_VERSION = 1
_HEADER = struct.Struct(">4sBQ")  # magic, version, entry count
_ENTRY_HEADER = struct.Struct(">IBI")  # key len, tombstone flag, value len


class SSTable:
    """An immutable sorted run with a bloom filter."""

    __slots__ = (
        "_keys",
        "_values",
        "bloom",
        "size_bytes",
        "reads",
        "bloom_negatives",
        "bloom_false_positives",
    )

    def __init__(self, keys: List[bytes], values: List[object]):
        if len(keys) != len(values):
            raise KVStoreError("key/value count mismatch")
        for i in range(1, len(keys)):
            if keys[i - 1] >= keys[i]:
                raise KVStoreError(
                    f"SSTable entries out of order at position {i}"
                )
        self._keys = keys
        self._values = values
        self.bloom = BloomFilter(max(1, len(keys)))
        # Telemetry: point reads against this run, reads the bloom
        # filter short-circuited, and reads it let through that then
        # missed (the false-positive rate the tuning advisor reports).
        self.reads = 0
        self.bloom_negatives = 0
        self.bloom_false_positives = 0
        self.size_bytes = 0
        for key, value in zip(keys, values):
            self.bloom.add(key)
            self.size_bytes += len(key)
            if value is not TOMBSTONE:
                self.size_bytes += len(value)  # type: ignore[arg-type]

    # ------------------------------------------------------------------
    @staticmethod
    def from_entries(entries: Iterable[Entry]) -> "SSTable":
        """Build from an iterable already sorted by key."""
        keys: List[bytes] = []
        values: List[object] = []
        for key, value in entries:
            keys.append(bytes(key))
            values.append(value)
        return SSTable(keys, values)

    def __len__(self) -> int:
        return len(self._keys)

    @property
    def min_key(self) -> Optional[bytes]:
        return self._keys[0] if self._keys else None

    @property
    def max_key(self) -> Optional[bytes]:
        return self._keys[-1] if self._keys else None

    # ------------------------------------------------------------------
    def get(self, key: bytes) -> Optional[object]:
        """Value, ``TOMBSTONE``, or ``None``; bloom-gated binary search."""
        key = bytes(key)
        self.reads += 1
        if not self.bloom.might_contain(key):
            self.bloom_negatives += 1
            return None
        i = bisect.bisect_left(self._keys, key)
        if i < len(self._keys) and self._keys[i] == key:
            return self._values[i]
        self.bloom_false_positives += 1
        return None

    def might_contain(self, key: bytes) -> bool:
        return self.bloom.might_contain(bytes(key))

    def scan(
        self, start: Optional[bytes] = None, stop: Optional[bytes] = None
    ) -> Iterator[Entry]:
        """Entries with ``start <= key < stop``, tombstones included."""
        lo = 0 if start is None else bisect.bisect_left(self._keys, bytes(start))
        hi = (
            len(self._keys)
            if stop is None
            else bisect.bisect_left(self._keys, bytes(stop))
        )
        for i in range(lo, hi):
            yield self._keys[i], self._values[i]

    def overlaps_range(self, start: Optional[bytes], stop: Optional[bytes]) -> bool:
        """True if any entry could fall in ``[start, stop)``."""
        if not self._keys:
            return False
        if start is not None and self._keys[-1] < start:
            return False
        if stop is not None and self._keys[0] >= stop:
            return False
        return True

    # ------------------------------------------------------------------
    # File round trip
    # ------------------------------------------------------------------
    def to_bytes(self) -> bytes:
        """Serialise: header, entries, bloom, CRC32 trailer."""
        parts = [_HEADER.pack(_MAGIC, _VERSION, len(self._keys))]
        for key, value in zip(self._keys, self._values):
            if value is TOMBSTONE:
                parts.append(_ENTRY_HEADER.pack(len(key), 1, 0))
                parts.append(key)
            else:
                data = bytes(value)  # type: ignore[arg-type]
                parts.append(_ENTRY_HEADER.pack(len(key), 0, len(data)))
                parts.append(key)
                parts.append(data)
        bloom_bytes = self.bloom.to_bytes()
        parts.append(struct.pack(">I", len(bloom_bytes)))
        parts.append(bloom_bytes)
        body = b"".join(parts)
        return body + struct.pack(">I", zlib.crc32(body))

    @staticmethod
    def from_bytes(data: bytes) -> "SSTable":
        """Deserialise and verify; raises :class:`CorruptSSTableError`."""
        if len(data) < _HEADER.size + 4:
            raise CorruptSSTableError("SSTable file truncated")
        body, (crc,) = data[:-4], struct.unpack(">I", data[-4:])
        if zlib.crc32(body) != crc:
            raise CorruptSSTableError("SSTable checksum mismatch")
        magic, version, count = _HEADER.unpack_from(body, 0)
        if magic != _MAGIC:
            raise CorruptSSTableError(f"bad magic {magic!r}")
        if version != _VERSION:
            raise CorruptSSTableError(f"unsupported SSTable version {version}")
        offset = _HEADER.size
        keys: List[bytes] = []
        values: List[object] = []
        for _ in range(count):
            if offset + _ENTRY_HEADER.size > len(body):
                raise CorruptSSTableError("entry header past end of file")
            key_len, flag, val_len = _ENTRY_HEADER.unpack_from(body, offset)
            offset += _ENTRY_HEADER.size
            if offset + key_len + val_len > len(body):
                raise CorruptSSTableError("entry data past end of file")
            keys.append(body[offset : offset + key_len])
            offset += key_len
            if flag:
                values.append(TOMBSTONE)
            else:
                values.append(body[offset : offset + val_len])
                offset += val_len
        table = SSTable(keys, values)
        # The bloom filter is rebuilt by the constructor; the stored one
        # is only read to validate the section framing.
        (bloom_len,) = struct.unpack_from(">I", body, offset)
        offset += 4
        if offset + bloom_len != len(body):
            raise CorruptSSTableError("bloom filter section length mismatch")
        return table

    def write_to(self, path: str) -> None:
        with open(path, "wb") as fh:
            fh.write(self.to_bytes())

    @staticmethod
    def load(path: str) -> "SSTable":
        with open(path, "rb") as fh:
            return SSTable.from_bytes(fh.read())
