"""Row-key construction (Section IV-E).

The storage schema is ``rowkey = shard + index value + tid``:

* ``shard`` — one salt byte, a hash of the trajectory id modulo the
  shard count, decentralising hot index ranges across regions;
* ``index value`` — the XZ* integer, 8 bytes big-endian so that byte
  order equals numeric order (the property every range scan relies on);
* ``tid`` — the trajectory identifier, UTF-8.

``encode_string_rowkey`` is the TraSS-S variant from Figure 13(c): the
quadrant sequence as a digit string plus a two-digit position code.  It
is byte-order-compatible with lexicographic sequence order but costs
roughly 2x the bytes at resolution 16, which is the storage overhead
the paper quantifies (32% / 27% savings on real data).
"""

from __future__ import annotations

import struct
from typing import Tuple

from repro.exceptions import KVStoreError

_VALUE_STRUCT = struct.Struct(">q")
VALUE_WIDTH = _VALUE_STRUCT.size  # 8 bytes, as in the paper


def shard_of(tid: str, shards: int) -> int:
    """Deterministic salt for a trajectory id.

    Uses FNV-1a rather than :func:`hash` so the placement is stable
    across processes and runs.
    """
    if shards < 1:
        raise KVStoreError(f"shard count must be >= 1, got {shards}")
    h = 0xCBF29CE484222325
    for byte in tid.encode("utf-8"):
        h ^= byte
        h = (h * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return h % shards


def encode_rowkey(shard: int, value: int, tid: str) -> bytes:
    """Binary row key: 1 salt byte + 8-byte big-endian value + tid."""
    if not 0 <= shard <= 0xFF:
        raise KVStoreError(f"shard {shard} out of range 0..255")
    if value < 0:
        raise KVStoreError(f"index value must be non-negative, got {value}")
    return bytes([shard]) + _VALUE_STRUCT.pack(value) + tid.encode("utf-8")

def decode_rowkey(key: bytes) -> Tuple[int, int, str]:
    """Inverse of :func:`encode_rowkey` -> (shard, value, tid)."""
    if len(key) < 1 + VALUE_WIDTH:
        raise KVStoreError(f"row key too short: {key!r}")
    shard = key[0]
    (value,) = _VALUE_STRUCT.unpack_from(key, 1)
    tid = key[1 + VALUE_WIDTH :].decode("utf-8")
    return shard, value, tid


def rowkey_range(shard: int, start_value: int, stop_value: int) -> Tuple[bytes, bytes]:
    """The row-key range covering index values ``[start, stop)`` in a shard.

    The stop key is exclusive, so it is the first key of ``stop_value``
    with an empty tid.
    """
    if start_value >= stop_value:
        raise KVStoreError(f"empty value range [{start_value}, {stop_value})")
    return (
        bytes([shard]) + _VALUE_STRUCT.pack(start_value),
        bytes([shard]) + _VALUE_STRUCT.pack(stop_value),
    )


# ----------------------------------------------------------------------
# String-encoded keys (the TraSS-S baseline of Figure 13)
# ----------------------------------------------------------------------
def encode_string_rowkey(
    shard: int, sequence: str, position_code: int, tid: str
) -> bytes:
    """String row key: salt + quadrant digits + 2-digit code + tid.

    A separator guards against digit/tid ambiguity.  At resolution 16
    this costs 16 (digits) + 2 (code) + 2 (separators) bytes where the
    integer encoding costs 8, which is where the paper's ~2x row-key
    overhead figure comes from.
    """
    if not 0 <= shard <= 0xFF:
        raise KVStoreError(f"shard {shard} out of range 0..255")
    if not 1 <= position_code <= 10:
        raise KVStoreError(f"position code {position_code} out of range 1..10")
    body = f"{sequence}#{position_code:02d}#{tid}"
    return bytes([shard]) + body.encode("utf-8")


def decode_string_rowkey(key: bytes) -> Tuple[int, str, int, str]:
    """Inverse of :func:`encode_string_rowkey`."""
    if len(key) < 1:
        raise KVStoreError(f"row key too short: {key!r}")
    shard = key[0]
    try:
        sequence, code, tid = key[1:].decode("utf-8").split("#", 2)
        return shard, sequence, int(code), tid
    except ValueError:
        raise KVStoreError(f"malformed string row key: {key!r}") from None
