"""Bloom filter for SSTable point lookups.

Standard double-hashing construction (Kirsch-Mitzenmacher): ``k`` probe
positions derived from two independent 64-bit hashes of the key.  Sized
from an expected element count and target false-positive rate, exactly
the knobs HBase exposes per store file.
"""

from __future__ import annotations

import math

from repro.exceptions import KVStoreError

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_MASK = 0xFFFFFFFFFFFFFFFF


def _fnv1a(data: bytes, seed: int) -> int:
    h = (_FNV_OFFSET ^ seed) & _MASK
    for byte in data:
        h ^= byte
        h = (h * _FNV_PRIME) & _MASK
    return h


class BloomFilter:
    """A fixed-size bloom filter over byte keys."""

    __slots__ = ("num_bits", "num_hashes", "_bits", "count")

    def __init__(self, expected_items: int, false_positive_rate: float = 0.01):
        if expected_items < 1:
            raise KVStoreError(
                f"expected item count must be >= 1, got {expected_items}"
            )
        if not 0.0 < false_positive_rate < 1.0:
            raise KVStoreError(
                f"false positive rate must be in (0, 1), got {false_positive_rate}"
            )
        ln2 = math.log(2.0)
        bits = int(math.ceil(-expected_items * math.log(false_positive_rate) / (ln2 * ln2)))
        self.num_bits = max(64, bits)
        self.num_hashes = max(1, int(round(self.num_bits / expected_items * ln2)))
        self._bits = bytearray((self.num_bits + 7) // 8)
        self.count = 0

    def _positions(self, key: bytes):
        h1 = _fnv1a(key, 0)
        h2 = _fnv1a(key, 0x9E3779B97F4A7C15) | 1  # odd stride
        for i in range(self.num_hashes):
            yield ((h1 + i * h2) & _MASK) % self.num_bits

    def add(self, key: bytes) -> None:
        for pos in self._positions(key):
            self._bits[pos >> 3] |= 1 << (pos & 7)
        self.count += 1

    def might_contain(self, key: bytes) -> bool:
        """False means definitely absent; True means possibly present."""
        return all(
            self._bits[pos >> 3] & (1 << (pos & 7)) for pos in self._positions(key)
        )

    @property
    def saturation(self) -> float:
        """Fraction of set bits (diagnostic; ~0.5 at design load)."""
        set_bits = sum(bin(b).count("1") for b in self._bits)
        return set_bits / self.num_bits

    def to_bytes(self) -> bytes:
        """Serialised filter (bit count, hash count, count, bit array)."""
        header = self.num_bits.to_bytes(8, "big") + self.num_hashes.to_bytes(
            2, "big"
        ) + self.count.to_bytes(8, "big")
        return header + bytes(self._bits)

    @staticmethod
    def from_bytes(data: bytes) -> "BloomFilter":
        if len(data) < 18:
            raise KVStoreError("truncated bloom filter")
        num_bits = int.from_bytes(data[0:8], "big")
        num_hashes = int.from_bytes(data[8:10], "big")
        count = int.from_bytes(data[10:18], "big")
        bits = bytearray(data[18:])
        if len(bits) != (num_bits + 7) // 8:
            raise KVStoreError("bloom filter bit array length mismatch")
        bf = BloomFilter.__new__(BloomFilter)
        bf.num_bits = num_bits
        bf.num_hashes = num_hashes
        bf._bits = bits
        bf.count = count
        return bf
